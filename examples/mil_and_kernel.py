"""The database internals: BATs, MIL, Moa->MIL rewriting, parallel HMMs.

This example works at the paper's physical and logical levels directly —
the machinery the Formula 1 case study runs on.

Run:  python examples/mil_and_kernel.py        (seconds)
"""

import numpy as np

from repro.hmm import DiscreteHmm, HmmExtension, sample
from repro.moa import Aggregate, Cmp, Const, MoaCompiler, Select, Var
from repro.monet import BAT, MonetKernel

kernel = MonetKernel()

print("--- BATs: the binary-relational storage model -----------------")
speeds = BAT("void", "dbl")
speeds.insert_bulk(None, [312.0, 298.5, 305.2, 341.9, 322.7])
kernel.persist("speeds", speeds)
print(f"  speeds: {speeds}")
print(f"  top speed via MIL: {kernel.run('RETURN speeds.max;')} km/h")

print("\n--- MIL procedures (the Fig. 4 idiom) --------------------------")
kernel.run(
    """
    PROC fastest(BAT[void,dbl] s) : int := {
      VAR best := s.max;
      RETURN (s.reverse).find(best);
    }
    """
)
print(f"  fastest lap oid: {kernel.call('fastest', [speeds])}")

print("\n--- Moa algebra rewritten into MIL -----------------------------")
compiler = MoaCompiler(kernel)
expression = Aggregate(
    "count", Select("x", Cmp(">", Var("x"), Const(310.0)), Var("speeds"))
)
plan = compiler.compile(expression)
print("  emitted MIL plan:")
for line in plan.mil_source.strip().splitlines():
    print(f"    {line}")
print(f"  laps over 310 km/h: {compiler.execute(plan, speeds=speeds)}")

print("\n--- Parallel HMM evaluation (Fig. 3/4) --------------------------")
extension = HmmExtension(kernel, n_servers=6)
names = ["Service", "Forehand", "Smash", "Backhand", "VolleyB", "VolleyF"]
models = {}
for index, name in enumerate(names):
    model = DiscreteHmm.random(4, 6, rng=np.random.default_rng(50 + index), name=name)
    extension.deploy(name, model)
    models[name] = model

observations = sample(models["Backhand"], 200, np.random.default_rng(1))[1]
winner = extension.classify(observations)
calls = sum(server.calls for server in extension.servers)
print(f"  classified stroke: {winner} ({calls} parallel server evaluations)")
