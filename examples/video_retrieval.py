"""Content-based retrieval: the paper's §5.6 query session.

Builds the full Cobra VDBMS (Monet kernel + Moa extensions + metadata
store), ingests a race (OCR text metadata at ingest; DBN events extracted
dynamically by the query preprocessor), and runs the paper's example
queries — including a user-defined compound event.

Run:  python examples/video_retrieval.py        (~2-3 minutes)
"""

from repro.cobra import Component, CompoundEventDef, TemporalConstraint
from repro.fusion import prepare_race
from repro.retrieval import FormulaOneSystem
from repro.synth import RaceSpec

spec = RaceSpec(
    name="hockenheim",
    duration=300.0,
    n_passings=3,
    n_fly_outs=2,
    n_pit_stops=2,
    passing_visibility=0.9,
    excitement_reaction=0.7,
    seed=21,
)

print("Synthesizing and ingesting the race (OCR runs at ingest) ...")
data = prepare_race(spec)
system = FormulaOneSystem(data, include_passing=False)

def show(result, label):
    print(f"\n  {label}")
    print(f"    COQL: RETRIEVE {result.query.kind} ...")
    if result.report.ran_extraction:
        print(f"    (preprocessor extracted: {result.report.extracted})")
    for record in result.records[:5]:
        interval = record["interval"]
        print(
            f"    {interval.start:6.1f} .. {interval.end:6.1f} s  "
            f"confidence {record['confidence']:.2f}  source {record['source']}"
        )
    if not result.records:
        print("    (no matches)")

print("\n--- The paper's example queries ------------------------------")
show(system.ask("Retrieve all fly outs"), "Retrieve all fly outs")
show(
    system.query("RETRIEVE pit_stop"),
    "Retrieve the video sequences showing pit stops",
)
show(
    system.ask("Retrieve the sequences with the race leader crossing the finish line"),
    "Retrieve the race winner",
)
show(system.ask("Retrieve all highlights"), "Retrieve all highlights")

# Position queries against the recognized classification overlays.
for driver in ("SCHUMACHER", "BARRICHELLO", "HAKKINEN", "COULTHARD", "MONTOYA", "RALF"):
    result = system.query(f"RETRIEVE classification WHERE POSITION {driver} = 1")
    if len(result):
        show(result, f"Retrieve sequences with {driver} leading the race")
        break

print("\n--- Combining DBN events with recognized text ----------------")
show(
    system.query("RETRIEVE highlight WHERE INTERSECTS excited_speech"),
    "Retrieve all highlights the announcer got excited about",
)

print("\n--- User-defined compound event (§5.6) -----------------------")
system.db.define_compound_event(
    CompoundEventDef(
        "announced_flyout",
        [Component("f", "fly_out"), Component("e", "excited_speech")],
        [TemporalConstraint("f", "intersects", "e")],
    )
)
count = system.db.materialize_compound_event("announced_flyout", spec.name)
print(f"  materialized {count} 'announced_flyout' events into the metadata")
show(system.query("RETRIEVE announced_flyout"), "Retrieve all announced fly outs")
