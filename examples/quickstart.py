"""Quickstart: synthesize a race, train the fusion DBN, find highlights.

Run:  python examples/quickstart.py        (~1-2 minutes)
"""

from repro.fusion import AvExperiment, prepare_race
from repro.synth import RaceSpec

# 1. A small synthetic Grand Prix (the stand-in for a digitized broadcast).
spec = RaceSpec(
    name="demo",
    duration=240.0,
    n_passings=2,
    n_fly_outs=1,
    n_pit_stops=1,
    passing_visibility=0.9,  # German-GP-style camera work
    excitement_reaction=0.7,
    seed=7,
)

print("Synthesizing race and extracting f1..f17 evidence streams ...")
data = prepare_race(spec)
print(f"  {data.features.n_steps} evidence steps at 10 Hz")
print(f"  ground truth: {len(data.truth.highlights)} highlight segments")

# 2. Train the audio-visual DBN (Fig. 10/11 of the paper) on the race's
#    annotated segments, then run filtering inference over the whole race.
print("Training the audio-visual DBN ...")
experiment = AvExperiment(data, include_passing=True, seed=2)

# 3. Evaluate against ground truth with the paper's segmentation rule
#    (posterior >= 0.5, minimum duration 6 s).
evaluation = experiment.evaluate(data)
print(f"Highlight detection: {evaluation.highlight_scores}")
for node, scores in evaluation.event_scores.items():
    print(f"  {node:8s} {scores}")

print("Detected highlight segments:")
for segment in evaluation.highlight_segments:
    print(f"  {segment.start:6.1f} .. {segment.end:6.1f} s")
