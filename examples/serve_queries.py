"""Serving concurrent queries with admission control and graceful drain.

The paper's prototype answers one query at a time; `repro.service` puts an
overload-safe front door on it: a bounded priority queue, rate limiting,
cancellation tokens that reach down to MIL statement dispatch, and a drain
that flushes the WAL. This walkthrough drives each piece.

Run:  python examples/serve_queries.py        (a few seconds)
"""

import tempfile

from repro.cobra.catalog import DomainKnowledge, ExtractionMethod
from repro.cobra.model import RawVideo, VideoDocument
from repro.cobra.vdbms import CobraVDBMS
from repro.errors import MilCheckError, OverloadError
from repro.faults import FaultInjector, FaultPlan, FaultSpec, get_plan
from repro.service import Priority, QueryService, ServiceConfig
from repro.sharding import ShardConfig, ShardedKernel
from repro.synth.annotations import Interval

# 1. A tiny VDBMS with one synthetic extraction method.


def make_document(video_id: str) -> VideoDocument:
    document = VideoDocument(
        raw=RawVideo(video_id, f"synthetic://{video_id}", 120.0, 10.0, 192, 144, 16000)
    )
    document.new_event("highlight", Interval(9, 20), 0.8, source="dbn")
    return document


def extract(document):
    return [document.new_event("excited_speech", Interval(5, 9), 0.7, source="dbn")]


db = CobraVDBMS()
db.register_domain(
    DomainKnowledge(
        "f1",
        methods=[ExtractionMethod("demo_dbn", ("excited_speech",), extract, quality=0.8)],
    )
)

# 2. A service with a deliberately small front door: 4 queued requests,
#    shed-oldest under saturation.
service = QueryService(db, ServiceConfig(queue_capacity=4, shed_policy="oldest"))

print("Registering broadcasts on the batch lane ...")
for index in range(3):
    service.submit_register(make_document(f"race{index}"), "f1")
service.run_until_idle()

# 3. Saturate the queue. Batch queries fill it; the interactive query
#    displaces the oldest batch request (shed-oldest never works the
#    other way around). Every refusal is a typed OverloadError.
print("Submitting a burst of queries ...")
tickets = [
    service.submit_query(f"RETRIEVE excited_speech FROM race{i % 3}", Priority.BATCH)
    for i in range(4)
]
urgent = service.submit_query("RETRIEVE highlight FROM race0", Priority.INTERACTIVE)
service.run_until_idle()

print(f"  urgent query: {urgent.status} -> {len(urgent.result())} segment(s)")
for ticket in tickets:
    try:
        ticket.result()
        print(f"  batch #{ticket.seq}: {ticket.status}")
    except OverloadError as error:
        print(f"  batch #{ticket.seq}: {ticket.status} ({error.reason})")

# 4. MIL PROCs join the service only through the SVC001 gate: an
#    unbounded WHILE must carry a cancelpoint() so a drain can stop it.
print("Registering MIL PROCs for service execution ...")
try:
    service.register_proc(
        "PROC spin() : int := { VAR go := 1; VAR x := 0;"
        " WHILE (go > 0) { x := x + 1; } RETURN x; }"
    )
except MilCheckError as error:
    print(f"  spin() rejected: {error.diagnostics[0].code}")

service.register_proc(
    "PROC hop(int n) : int := { VAR i := 0; VAR c := 0;"
    " WHILE (i < n) { c := cancelpoint(); i := i + 1; } RETURN i; }"
)
hop = service.submit_proc_call("hop", (10,))
service.run_until_idle()
print(f"  hop(10) -> {hop.result()}")

# 5. Graceful drain: admissions stop, the rest finishes within the
#    budget, and the report is the deterministic ledger of everything.
report = service.shutdown(deadline=2.0)
print(report.describe())
try:
    service.submit_query("RETRIEVE highlight FROM race0")
except OverloadError as error:
    print(f"late submission refused: {error.reason}")

# 6. Degraded answers. A service fronting a sharded fleet
#    (QueryService(db, fleet=...)) keeps answering when shards die:
#    the gather returns a partial result instead of raising, and the
#    coverage report says exactly how partial. Check result.degraded /
#    result.degradations() before trusting a fleet answer — a completed
#    ticket may carry 4/6 of the corpus, which is an answer *and* a
#    warning. Below the fleet's min_coverage floor the query fails
#    loudly with InsufficientCoverageError instead.
print("Scatter-gather under a dying shard ...")
with tempfile.TemporaryDirectory() as scratch:
    fleet = ShardedKernel(
        scratch,
        shards=3,
        config=ShardConfig(min_coverage=0.25, fsync=False),
        faults=FaultInjector(get_plan("shard-death")),
    )
    fleet_service = QueryService(CobraVDBMS(check="off"), fleet=fleet)
    for index in range(6):
        fleet_service.submit_register(make_document(f"race{index}"), "f1")
    fleet_service.run_until_idle()
    partial = fleet_service.submit_query("RETRIEVE highlight")
    fleet_service.run_until_idle()
    result = partial.result()
    print(f"  degraded: {result.degraded}")
    for note in result.degradations():
        print(f"  {note}")
    fleet_service.shutdown()
    fleet.close()

# 7. Dual reads during an online split. While a document is migrating
#    to a newly added shard (fleet.split / fleet.migrations), its rows
#    exist on both the source and the half-built destination; if a
#    gather loses the current owner it answers through the *other* side
#    instead of dropping the document, and the coverage report says so:
#    `migrating` counts in-flight documents, `dual_read` counts answers
#    served off-owner. A mid-split answer is still one row per document
#    — the ownership merge never duplicates — but check those counters
#    (they ride the ServiceReport record's coverage payload too) before
#    treating a mid-split gather as a steady-state one.
print("Online split with a dual read ...")
with tempfile.TemporaryDirectory() as scratch:
    fleet = ShardedKernel(
        scratch, shards=2, config=ShardConfig(min_coverage=0.25, fsync=False),
        faults=FaultInjector(
            FaultPlan(
                seed=7,
                name="cut-the-source",
                specs=(
                    FaultSpec(
                        site="sharding.transport:shard-1",
                        kind="partition",
                        max_triggers=1,
                    ),
                ),
            )
        ),
    )
    docs = {}
    for index in range(6):
        docs[f"race{index}"] = make_document(f"race{index}")
        fleet.register_document(docs[f"race{index}"], "f1")
    remapped = fleet.add_shard("shard-2")   # ring extends; minimal remap
    pilot = remapped[0]
    fleet.migrations.plan(pilot)
    fleet.migrations.copy(pilot)            # rows now on both sides
    mid = fleet.query("RETRIEVE highlight") # source partitioned: dual read
    print(f"  {mid.coverage.describe()}")
    fleet.split("shard-2")                  # idempotent: finishes the moves
    done = fleet.query("RETRIEVE highlight")
    print(f"  after the split: {done.coverage.describe()}")
    fleet.close()
