"""Multimodal fusion in depth: audio-only vs audio-visual highlight
detection, and the BN-vs-DBN smoothness contrast of Fig. 9.

Run:  python examples/highlight_extraction.py        (~2-3 minutes)
"""

import numpy as np

from repro.fusion import (
    AudioExperiment,
    AvExperiment,
    extract_segments,
    prepare_race,
    segment_precision_recall,
)
from repro.fusion.audio_networks import AUDIO_NODE_TO_FEATURE
from repro.fusion.discretize import hard_evidence
from repro.synth import GERMAN_GP

print("Preparing the synthetic German GP (600 s) ...")
german = prepare_race(GERMAN_GP)

# ---------------------------------------------------------------------------
# Audio-only: the excited-announcer DBN (Fig. 7a + Fig. 8).
# ---------------------------------------------------------------------------
print("\nTraining the audio DBN (excited speech) ...")
audio = AudioExperiment(german, structure="a", temporal="v1", seed=1)
audio_eval = audio.evaluate(german)
print(f"Excited speech detection: {audio_eval.scores}")

audio_segments = extract_segments(
    audio.posterior(german), min_duration=2.6, merge_gap=0.5
)
audio_vs_highlights = segment_precision_recall(
    audio_segments, german.truth.highlights
)
print(
    f"Audio-only vs ALL interesting segments: recall "
    f"{audio_vs_highlights.recall:.0%}  (paper: about 50%)"
)

# ---------------------------------------------------------------------------
# Audio-visual fusion (Fig. 10/11): replays, semaphore, dust/sand, motion.
# ---------------------------------------------------------------------------
print("\nTraining the audio-visual DBN ...")
av = AvExperiment(german, include_passing=True, seed=2)
av_eval = av.evaluate(german)
print(f"AV highlight detection: {av_eval.highlight_scores}  (paper: 84%/86%)")
print(
    f"Fusion recall gain over audio-only: "
    f"{av_eval.highlight_scores.recall - audio_vs_highlights.recall:+.0%}"
)

# ---------------------------------------------------------------------------
# Fig. 9: the plain BN's per-step output is spiky; the DBN's is smooth.
# ---------------------------------------------------------------------------
print("\nComparing BN vs DBN output traces (Fig. 9) ...")
bn = AudioExperiment(german, structure="a", temporal=None, seed=1)
evidence = hard_evidence(bn.template, german.features, AUDIO_NODE_TO_FEATURE)
bn_trace = bn._engine.static_posterior_series(evidence, "EA")[:3000, 1]
dbn_trace = audio.posterior(german)[:3000]
print(f"  BN  mean |step|: {np.abs(np.diff(bn_trace)).mean():.4f}")
print(f"  DBN mean |step|: {np.abs(np.diff(dbn_trace)).mean():.4f}")
print("  -> the DBN output can be thresholded directly; the BN cannot.")
