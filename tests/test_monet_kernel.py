"""Kernel catalog, modules, parallel executor, multi-BAT operators."""

import threading
import time

import pytest

from repro.errors import MonetError
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel
from repro.monet.module import MonetModule, command
from repro.monet.operators import decompose, group_count, project, reconstruct
from repro.monet.parallel import ParallelExecutor


class TestCatalog:
    def test_persist_and_fetch(self):
        k = MonetKernel()
        b = BAT("void", "int")
        k.persist("numbers", b)
        assert k.bat("numbers") is b
        assert "numbers" in k.catalog_names()

    def test_missing_bat(self):
        with pytest.raises(MonetError):
            MonetKernel().bat("nope")

    def test_drop(self):
        k = MonetKernel()
        k.persist("x", BAT("void", "int"))
        k.drop("x")
        with pytest.raises(MonetError):
            k.bat("x")

    def test_catalog_visible_from_mil(self):
        k = MonetKernel()
        b = BAT("void", "int")
        b.insert_bulk(None, [1, 2, 3])
        k.persist("nums", b)
        assert k.run("RETURN nums.count();") == 3


class TestModules:
    def test_load_module_registers_commands(self):
        class Demo(MonetModule):
            name = "demo"

            @command()
            def triple(self, n: int) -> int:
                return n * 3

        k = MonetKernel()
        k.load_module(Demo())
        assert k.has_command("triple")
        assert k.run("RETURN triple(4);") == 12

    def test_duplicate_module_rejected(self):
        class Demo(MonetModule):
            name = "demo"

            @command()
            def f(self):
                return 1

        k = MonetKernel()
        k.load_module(Demo())
        with pytest.raises(MonetError):
            k.load_module(Demo())

    def test_command_clash_rejected(self):
        class A(MonetModule):
            name = "a"

            @command()
            def same(self):
                return 1

        class B(MonetModule):
            name = "b"

            @command()
            def same(self):
                return 2

        k = MonetKernel()
        k.load_module(A())
        with pytest.raises(MonetError):
            k.load_module(B())

    def test_custom_command_name(self):
        class Named(MonetModule):
            name = "named"

            @command("otherName")
            def python_name(self):
                return "ok"

        k = MonetKernel()
        k.load_module(Named())
        assert k.run("RETURN otherName();") == "ok"


class TestParallelExecutor:
    def test_threadcnt_convention(self):
        ex = ParallelExecutor()
        assert ex.threadcnt(7) == 6  # n workers = threadcnt - 1

    def test_threadcnt_minimum(self):
        assert ParallelExecutor().threadcnt(1) == 1

    def test_invalid_thread_count(self):
        with pytest.raises(MonetError):
            ParallelExecutor(threads=0)

    def test_results_in_submission_order(self):
        ex = ParallelExecutor(threads=4)
        results = ex.run([lambda i=i: i * i for i in range(10)])
        assert results == [i * i for i in range(10)]

    def test_actually_concurrent(self):
        ex = ParallelExecutor(threads=4)
        barrier = threading.Barrier(3, timeout=5)
        results = ex.run([barrier.wait for _ in range(3)])
        assert len(results) == 3

    def test_error_propagates_with_original_type(self):
        ex = ParallelExecutor(threads=2)
        seen = []

        def good():
            seen.append(1)

        def bad():
            raise RuntimeError("x")

        # Already-running branches finish; queued ones may be cancelled.
        with pytest.raises(RuntimeError, match="x"):
            ex.run([bad, good, good])
        assert len(seen) <= 2

    def test_failure_cancels_queued_branches(self):
        ex = ParallelExecutor(threads=2)
        seen = []

        def bad():
            raise RuntimeError("first branch down")

        def good():
            time.sleep(0.005)
            seen.append(1)

        with pytest.raises(RuntimeError) as info:
            ex.run([bad] + [good] * 50)
        # the failure must have stopped the queue well before it drained
        assert len(seen) < 50
        context = getattr(info.value, "context_notes", [])
        assert any("parallel branch 1" in note for note in context)
        assert any("cancelled" in note for note in context)

    def test_empty_run(self):
        assert ParallelExecutor().run([]) == []


class TestMultiBatOperators:
    RECORDS = [
        {"name": "SCHUMACHER", "position": 1},
        {"name": "HAKKINEN", "position": 2},
    ]
    SCHEMA = {"name": "str", "position": "int"}

    def test_decompose_reconstruct_roundtrip(self):
        bats = decompose(self.RECORDS, self.SCHEMA)
        assert reconstruct(bats) == self.RECORDS

    def test_decompose_shares_heads(self):
        bats = decompose(self.RECORDS, self.SCHEMA)
        assert bats["name"].heads() == bats["position"].heads()

    def test_missing_attribute(self):
        from repro.errors import BatError

        with pytest.raises(BatError):
            decompose([{"name": "X"}], self.SCHEMA)

    def test_project_by_oid(self):
        bats = decompose(self.RECORDS, self.SCHEMA)
        assert project(bats, [1]) == [self.RECORDS[1]]

    def test_group_count(self):
        b = BAT("void", "str")
        for v in ("a", "b", "a"):
            b.insert(v)
        assert group_count(b) == {"a": 2, "b": 1}
