"""Sharded kernel fleet: consistent-hash placement, two-phase registration,
partial-failure-tolerant gathers, the SHARD static pass, and the seeded
shard-death chaos scenario."""

import json

import pytest

from repro.check.diagnostics import Severity
from repro.check.shardcheck import check_fleet_config, check_scatter_source
from repro.cobra.model import RawVideo, VideoDocument, VideoObject
from repro.cobra.preprocessor import choose_scatter_plan
from repro.cobra.query import parse_coql
from repro.errors import (
    InsufficientCoverageError,
    PlacementError,
    ShardingCheckError,
    SimulatedCrash,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec, get_plan
from repro.sharding import (
    HashRing,
    ShardConfig,
    ShardedKernel,
)
from repro.sharding.chaos import (
    PLACEMENT_KILL_SITES,
    placement_kill_sweep,
    shard_death_scenario,
)
from repro.synth.annotations import Interval

THREE = ["shard-0", "shard-1", "shard-2"]


def make_document(video_id, n_events=1):
    doc = VideoDocument(
        raw=RawVideo(video_id, "synthetic://f1", 100.0, 10.0, 192, 144, 16000)
    )
    doc.add_object(VideoObject(f"{video_id}/d1", "driver", "HAKKINEN"))
    for i in range(n_events):
        doc.new_event(
            "fly_out",
            Interval(10 + i, 18 + i),
            0.9,
            {"driver": f"{video_id}/d1"},
            "dbn",
        )
    return doc


def make_fleet(tmp_path, shards=3, faults=None, **overrides):
    overrides.setdefault("fsync", False)
    return ShardedKernel(
        tmp_path, shards=shards, config=ShardConfig(**overrides), faults=faults
    )


# ---------------------------------------------------------------------------
# the placement ring
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_placement_is_deterministic(self):
        a = HashRing(THREE)
        b = HashRing(THREE)
        keys = [f"race{i}" for i in range(20)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_every_shard_owns_something(self):
        ring = HashRing(THREE)
        owners = {ring.owner(f"race{i}") for i in range(20)}
        assert owners == set(THREE)

    def test_exclusion_only_remaps_the_excluded_shards_keys(self):
        """Consistent hashing's point: killing one shard moves only its
        keys; everyone else's placement is untouched."""
        ring = HashRing(THREE)
        keys = [f"race{i}" for i in range(20)]
        before = {k: ring.owner(k) for k in keys}
        after = {k: ring.owner(k, exclude=["shard-1"]) for k in keys}
        for key in keys:
            if before[key] == "shard-1":
                assert after[key] != "shard-1"
            else:
                assert after[key] == before[key]

    def test_successors_walk_distinct_shards(self):
        ring = HashRing(THREE)
        chain = ring.successors("race0")
        assert sorted(chain) == sorted(THREE)
        assert chain[0] == ring.owner("race0")


# ---------------------------------------------------------------------------
# the SHARD static pass
# ---------------------------------------------------------------------------


class TestShardCheck:
    def test_shard001_rejects_non_owner_routing(self, tmp_path):
        report = check_fleet_config(
            ShardConfig(write_routing="shard-0"), THREE
        )
        assert [d.code for d in report] == ["SHARD001"]
        with pytest.raises(ShardingCheckError, match="SHARD001"):
            make_fleet(tmp_path, write_routing="shard-0")

    def test_shard002_warns_on_missing_coverage_floor(self, tmp_path):
        report = check_fleet_config(ShardConfig(min_coverage=0.0), THREE)
        [diag] = list(report)
        assert diag.code == "SHARD002"
        assert diag.severity == Severity.WARNING
        # a warning: construction succeeds but records the finding
        fleet = make_fleet(tmp_path, min_coverage=0.0)
        assert [d.code for d in fleet.diagnostics] == ["SHARD002"]
        fleet.close()

    def test_shard003_rejects_unfenced_replication(self, tmp_path):
        report = check_fleet_config(
            ShardConfig(replication=1, fencing=False), THREE
        )
        assert "SHARD003" in [d.code for d in report]
        with pytest.raises(ShardingCheckError, match="SHARD003"):
            make_fleet(tmp_path, replication=1, fencing=False)

    def test_bare_unfenced_fleet_is_clean(self):
        assert not list(check_fleet_config(ShardConfig(fencing=False), THREE))

    #: Two pure branches, each a certified fusion region under one
    #: kernel's BAT lock — exactly what scattering dissolves.
    PARALLEL_SOURCE = """
PROC fanout(BAT[void,dbl] f) : any := {
  PARALLEL {
    VAR a := f.select(0.1, 0.5);
    VAR b := f.select(0.5, 0.9);
  }
  RETURN f;
}
"""

    def test_shard004_decertifies_parallel_fusion_regions(self):
        report = check_scatter_source(self.PARALLEL_SOURCE, name="<test>")
        codes = [d.code for d in report]
        assert codes == ["SHARD004", "SHARD004"]  # one per certified branch
        assert all(d.severity == Severity.WARNING for d in report)

    def test_shard004_lands_on_fleet_diagnostics(self, tmp_path):
        fleet = make_fleet(tmp_path, shards=2)
        fleet.run(self.PARALLEL_SOURCE)
        assert "SHARD004" in [d.code for d in fleet.diagnostics]
        fleet.close()


# ---------------------------------------------------------------------------
# the preprocessor's scatter cost model
# ---------------------------------------------------------------------------


class TestScatterPlan:
    def test_from_video_query_is_shard_local(self):
        query = parse_coql("RETRIEVE fly_out FROM race1")
        plan = choose_scatter_plan(query, {"shard-0": 500.0, "shard-1": 500.0})
        assert plan.mode == "shard-local"
        assert not plan.scattered

    def test_small_shards_gather_sequentially(self):
        """The PERF006 situation: per-branch overhead exceeds the
        concurrency win, so the planner refuses to scatter."""
        query = parse_coql("RETRIEVE fly_out")
        plan = choose_scatter_plan(query, {"shard-0": 10.0, "shard-1": 10.0})
        assert plan.mode == "sequential"
        assert plan.fan_out_cost >= plan.sequential_cost

    def test_large_balanced_shards_fan_out(self):
        query = parse_coql("RETRIEVE fly_out")
        plan = choose_scatter_plan(
            query, {"shard-0": 200.0, "shard-1": 200.0, "shard-2": 200.0}
        )
        assert plan.mode == "fan-out"
        assert plan.scattered
        assert plan.fan_out_cost < plan.sequential_cost
        assert plan.shards == ("shard-0", "shard-1", "shard-2")


# ---------------------------------------------------------------------------
# placement + two-phase registration
# ---------------------------------------------------------------------------


class TestRegistration:
    def test_documents_spread_and_route_queries_to_the_owner(self, tmp_path):
        fleet = make_fleet(tmp_path)
        owners = {
            vid: fleet.register_document(make_document(vid), "f1")
            for vid in ("race0", "race1", "race2", "race3", "race4", "race5")
        }
        assert set(owners.values()) == set(THREE)  # every shard owns some
        assert fleet.placements() == owners
        result = fleet.query("RETRIEVE fly_out FROM race1")
        assert result.coverage.plan == "shard-local"
        assert result.coverage.targeted == (owners["race1"],)
        assert [r["video_id"] for r in result.records] == ["race1"]
        fleet.close()

    def test_registration_journals_prepare_then_commit(self, tmp_path):
        fleet = make_fleet(tmp_path, shards=2)
        fleet.register_document(make_document("race0"), "f1")
        records = [
            json.loads(line)
            for line in (tmp_path / "placements.log").read_text().splitlines()
        ]
        assert [r["op"] for r in records] == ["prepare", "commit"]
        assert records[0]["video"] == "race0"
        fleet.close()

    def test_reregistration_is_idempotent(self, tmp_path):
        fleet = make_fleet(tmp_path, shards=2)
        first = fleet.register_document(make_document("race0"), "f1")
        second = fleet.register_document(make_document("race0"), "f1")
        assert first == second
        assert not fleet.convergence_report()  # rows landed exactly once
        fleet.close()

    def test_new_registrations_route_around_dead_shards(self, tmp_path):
        fleet = make_fleet(tmp_path)
        owner = fleet.ring.owner("race0")
        fleet.mark_dead(owner)
        placed = fleet.register_document(make_document("race0"), "f1")
        assert placed != owner
        assert placed == fleet.ring.owner("race0", exclude=[owner])
        fleet.close()


class TestCrashRecovery:
    def _crash_at(self, tmp_path, site):
        plan = FaultPlan(
            seed=1,
            name="placement-kill",
            specs=(FaultSpec(site=site, kind="kill", max_triggers=1),),
        )
        fleet = make_fleet(tmp_path, shards=2, faults=FaultInjector(plan))
        with pytest.raises(SimulatedCrash):
            fleet.register_document(make_document("race0"), "f1")
        fleet.close()
        return make_fleet(tmp_path, shards=2)

    def test_crash_after_prepare_rolls_back(self, tmp_path):
        recovered = self._crash_at(tmp_path, "sharding.place:prepared")
        assert recovered.placements() == {}
        ops = [r["op"] for r in recovered._journal.records()]
        assert ops == ["prepare", "abort"]
        recovered.close()

    def test_crash_after_shard_write_rolls_forward(self, tmp_path):
        recovered = self._crash_at(tmp_path, "sharding.place:registered")
        placements = recovered.placements()
        assert list(placements) == ["race0"]
        ops = [r["op"] for r in recovered._journal.records()]
        assert ops == ["prepare", "commit"]
        # the rolled-forward document is queryable once its handle returns
        recovered.register_document(make_document("race0"), "f1")
        result = recovered.query("RETRIEVE fly_out FROM race0")
        assert len(result.records) == 1
        assert not recovered.convergence_report()
        recovered.close()

    def test_placement_kill_sweep_recovers_every_site(self, tmp_path):
        summary = placement_kill_sweep(tmp_path, fsync=False)
        assert summary.ok, summary.describe()
        assert [r["site"] for r in summary.results] == list(
            PLACEMENT_KILL_SITES
        )
        assert json.dumps(summary.to_dict())  # CI artifact is serializable


# ---------------------------------------------------------------------------
# partial-failure gathers
# ---------------------------------------------------------------------------


class TestGather:
    CORPUS = ("race0", "race1", "race2", "race3", "race4", "race5")

    def _loaded_fleet(self, tmp_path, faults=None, **overrides):
        fleet = make_fleet(tmp_path, faults=faults, **overrides)
        for vid in self.CORPUS:
            fleet.register_document(make_document(vid), "f1")
        return fleet

    def test_healthy_gather_is_complete(self, tmp_path):
        fleet = self._loaded_fleet(tmp_path)
        result = fleet.query("RETRIEVE fly_out")
        assert result.coverage.complete
        assert result.coverage.fraction == 1.0
        assert not result.degraded
        assert len(result.records) == len(self.CORPUS)
        # the merged answer is deterministically ordered
        assert [r["video_id"] for r in result.records] == sorted(self.CORPUS)
        fleet.close()

    def test_shard_death_plan_degrades_instead_of_raising(self, tmp_path):
        """The ISSUE acceptance gather: under the named ``shard-death``
        plan a bare shard-1 dies mid-scatter and shard-0 straggles (and is
        answered through a hedged second attempt); the gather returns a
        degraded result with an exact coverage report — no exception."""
        fleet = self._loaded_fleet(
            tmp_path, faults=FaultInjector(get_plan("shard-death"))
        )
        lost = {v for v, s in fleet.placements().items() if s == "shard-1"}
        result = fleet.query("RETRIEVE fly_out")
        coverage = result.coverage
        assert coverage.answered == ("shard-0", "shard-2")
        assert coverage.hedged == ("shard-0",)
        assert coverage.dead == ("shard-1",)
        assert coverage.documents_covered == len(self.CORPUS) - len(lost)
        assert 0 < coverage.fraction < 1
        assert result.degraded
        assert any("partial shard coverage" in d for d in result.degradations())
        assert {r["video_id"] for r in result.records} == (
            set(self.CORPUS) - lost
        )
        assert fleet.dead_shards() == ["shard-1"]
        fleet.close()

    def test_coverage_floor_raises_typed_error(self, tmp_path):
        fleet = self._loaded_fleet(
            tmp_path, faults=FaultInjector(get_plan("shard-death"))
        )
        with pytest.raises(InsufficientCoverageError) as excinfo:
            fleet.query("RETRIEVE fly_out", min_coverage=0.99)
        err = excinfo.value
        assert err.required == 0.99
        assert err.coverage < 0.99
        assert err.report.dead == ("shard-1",)
        fleet.close()

    def test_open_breaker_sheds_the_shard(self, tmp_path):
        fleet = self._loaded_fleet(tmp_path, failure_threshold=1)
        fleet.shard("shard-2").breaker.record_failure()  # trips at 1
        result = fleet.query("RETRIEVE fly_out")
        assert result.coverage.shed == ("shard-2",)
        assert "shard-2" not in result.coverage.answered
        assert not result.coverage.complete
        fleet.close()

    def test_scatter_call_gathers_per_shard_values(self, tmp_path):
        fleet = self._loaded_fleet(tmp_path)
        fleet.run("PROC two() : int := { RETURN 2; }")
        gathered = fleet.scatter_call("two")
        assert gathered.coverage.complete
        assert gathered.values == {name: 2 for name in THREE}
        fleet.close()


# ---------------------------------------------------------------------------
# failover, fencing, rebalance
# ---------------------------------------------------------------------------


class TestFailoverAndRebalance:
    def test_write_after_shard_failover_fences_and_retries_once(
        self, tmp_path
    ):
        fleet = make_fleet(tmp_path, shards=1, replication=1)
        fleet.register_document(make_document("race0"), "f1")
        fleet.pump()
        group = fleet.shard("shard-0").group
        group.report_primary_failure()
        group.failover()  # promotion bumps the epoch; the cached lease is stale
        fleet.register_document(make_document("race1"), "f1")
        assert fleet.fenced_retries == 1
        fleet.pump()
        assert not fleet.convergence_report()
        fleet.close()

    def test_rebalance_moves_only_the_dead_shards_documents(self, tmp_path):
        fleet = make_fleet(tmp_path)
        corpus = ("race0", "race1", "race2", "race3", "race4", "race5")
        for vid in corpus:
            fleet.register_document(make_document(vid), "f1")
        before = fleet.placements()
        victims = sorted(v for v, s in before.items() if s == "shard-1")
        fleet.mark_dead("shard-1")
        report = fleet.rebalance()
        assert report.dead == ("shard-1",)
        assert sorted(move[0] for move in report.moves) == victims
        assert all(src == "shard-1" for _, src, _ in report.moves)
        after = fleet.placements()
        for vid in corpus:
            if vid in victims:
                assert after[vid] != "shard-1"
            else:
                assert after[vid] == before[vid]
        result = fleet.query("RETRIEVE fly_out")
        assert result.coverage.complete
        assert "shard-1" not in result.coverage.targeted
        assert not fleet.convergence_report()
        fleet.close()

    def test_rebalance_without_handles_fails_loudly(self, tmp_path):
        fleet = make_fleet(tmp_path, shards=2)
        fleet.register_document(make_document("race0"), "f1")
        owner = fleet.placements()["race0"]
        fleet.close()
        reopened = make_fleet(tmp_path, shards=2)  # placements, no handles
        reopened.mark_dead(owner)
        with pytest.raises(PlacementError, match="no document handle"):
            reopened.rebalance()
        reopened.close()

    def test_status_snapshot_is_deterministic(self, tmp_path):
        fleet = make_fleet(tmp_path, shards=2)
        fleet.register_document(make_document("race0"), "f1")
        status = fleet.status()
        assert status.documents == 1
        assert sum(s.documents for s in status.shards) == 1
        assert status == fleet.status()
        assert "sharded fleet: 2 shard(s)" in status.describe()
        fleet.close()


# ---------------------------------------------------------------------------
# the seeded chaos scenario + CLI
# ---------------------------------------------------------------------------


class TestChaosScenario:
    def test_scenario_converges_and_is_deterministic(self, tmp_path):
        first = shard_death_scenario(tmp_path / "a", fsync=False)
        assert first.ok, first.describe()
        assert first.dead == ["shard-1"]
        assert first.fenced_retries == 1
        assert first.epochs["shard-2"] == 2  # survived by in-shard failover
        assert first.degraded_coverage["documents_covered"] == 2
        second = shard_death_scenario(tmp_path / "b", fsync=False)
        assert first.to_dict() == second.to_dict()


class TestCli:
    def test_cli_reports_convergence_and_exits_zero(self, tmp_path, capsys):
        from repro.sharding.__main__ import main

        out = tmp_path / "SHARD_convergence.json"
        code = main(
            ["--dir", str(tmp_path / "scratch"), "--out", str(out), "--no-fsync"]
        )
        assert code == 0
        assert "shard chaos: CONVERGED" in capsys.readouterr().out
        document = json.loads(out.read_text())
        assert document["format"] == "repro-shard-chaos/2"
        assert document["ok"] and document["deterministic"]
        assert len(document["sweep"]["results"]) == len(PLACEMENT_KILL_SITES)


# ---------------------------------------------------------------------------
# service integration
# ---------------------------------------------------------------------------


class TestServiceIntegration:
    def test_service_routes_through_the_fleet(self, tmp_path):
        from repro.cobra.vdbms import CobraVDBMS
        from repro.service import QueryService

        fleet = make_fleet(tmp_path)
        service = QueryService(CobraVDBMS(check="off"), fleet=fleet)
        for vid in ("race0", "race1", "race2"):
            service.submit_register(make_document(vid), "f1")
        service.run_until_idle()
        ticket = service.submit_query("RETRIEVE fly_out")
        report = service.run_until_idle()
        result = ticket.result()
        assert result.coverage.complete
        registers = [r for r in report.records if r.kind == "register"]
        assert all(r.detail.startswith("placed@") for r in registers)
        query = next(r for r in report.records if r.kind == "query")
        assert query.detail.startswith("gather@")
        assert "coverage=1.000" in query.detail
        final = service.shutdown()
        assert final.sharding is not None
        assert final.sharding.documents == 3
        assert "sharded fleet" in final.describe()
        fleet.close()

    def test_group_and_fleet_are_mutually_exclusive(self, tmp_path):
        from repro.cobra.vdbms import CobraVDBMS
        from repro.errors import ReproError
        from repro.service import QueryService

        fleet = make_fleet(tmp_path / "fleet", shards=2)
        with pytest.raises(ReproError, match="not both"):
            QueryService(CobraVDBMS(check="off"), group=object(), fleet=fleet)
        fleet.close()
