"""Visual substrate: histograms, shots, motion, semaphore, DVE, fly-out."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.video.flyout import dust_fraction, sand_fraction
from repro.video.frames import FrameStream, check_frame
from repro.video.histogram import color_histogram, histogram_difference
from repro.video.motion import frame_difference, motion_histogram, passing_score
from repro.video.replay import DveDetector, ReplaySegmenter, wipe_band_score
from repro.video.semaphore import SemaphoreTracker, red_rectangle, semaphore_score
from repro.video.shots import ShotDetector

H, W = 72, 96


def flat(value, h=H, w=W):
    return np.full((h, w, 3), value, dtype=np.uint8)


def noisy(base, rng, amplitude=5):
    return np.clip(
        base.astype(np.int16) + rng.integers(-amplitude, amplitude + 1, base.shape),
        0,
        255,
    ).astype(np.uint8)


class TestFrames:
    def test_check_frame_shape(self):
        with pytest.raises(SignalError):
            check_frame(np.zeros((10, 10)))

    def test_check_frame_range(self):
        with pytest.raises(SignalError):
            check_frame(np.full((4, 4, 3), 300.0))

    def test_stream_length_enforced(self):
        stream = FrameStream(lambda: iter([flat(10)]), fps=10, n_frames=2)
        with pytest.raises(SignalError):
            list(stream)

    def test_stream_replayable(self):
        stream = FrameStream.from_frames([flat(10), flat(20)], fps=10)
        assert len(list(stream)) == 2
        assert len(list(stream)) == 2  # second pass works

    def test_duration(self):
        stream = FrameStream.from_frames([flat(0)] * 30, fps=10)
        assert stream.duration == pytest.approx(3.0)


class TestHistograms:
    def test_histogram_normalized(self):
        h = color_histogram(flat(100))
        assert h.shape == (3, 8)
        assert np.allclose(h.sum(axis=1), 1.0)

    def test_difference_zero_for_identical(self):
        h = color_histogram(flat(100))
        assert histogram_difference(h, h) == 0.0

    def test_difference_max_for_disjoint(self):
        d = histogram_difference(color_histogram(flat(0)), color_histogram(flat(255)))
        assert d == pytest.approx(2.0)

    def test_shape_mismatch(self):
        with pytest.raises(SignalError):
            histogram_difference(np.ones((3, 8)), np.ones((3, 4)))


class TestShots:
    def test_detects_single_cut(self, rng):
        frames = [noisy(flat(60), rng) for _ in range(20)]
        frames += [noisy(flat(180), rng) for _ in range(20)]
        cuts = ShotDetector().cuts(FrameStream.from_frames(frames, 10))
        assert cuts == [20]

    def test_no_cut_in_static_scene(self, rng):
        frames = [noisy(flat(90), rng) for _ in range(30)]
        assert ShotDetector().cuts(FrameStream.from_frames(frames, 10)) == []

    def test_gradual_motion_not_a_cut(self, rng):
        frames = []
        for i in range(40):
            f = flat(90)
            x = (i * 3) % (W - 10)
            f[30:40, x : x + 10] = 200
            frames.append(noisy(f, rng))
        assert ShotDetector().cuts(FrameStream.from_frames(frames, 10)) == []

    def test_shots_partition_stream(self, rng):
        frames = [noisy(flat(60), rng) for _ in range(15)]
        frames += [noisy(flat(190), rng) for _ in range(15)]
        shots = ShotDetector().shots(FrameStream.from_frames(frames, 10))
        assert shots[0].start_frame == 0
        assert shots[-1].end_frame == 30
        assert sum(s.n_frames for s in shots) == 30

    def test_debounce(self, rng):
        # two "cuts" 1 frame apart: only the first counts
        frames = [noisy(flat(60), rng)] * 10 + [noisy(flat(180), rng)] + [
            noisy(flat(60), rng)
        ] * 10
        cuts = ShotDetector(min_shot_frames=3).cuts(
            FrameStream.from_frames(frames, 10)
        )
        assert len(cuts) <= 2


class TestMotion:
    def test_frame_difference_gated(self, rng):
        a = noisy(flat(100), rng)
        b = noisy(flat(100), rng)
        assert frame_difference(a, b) == pytest.approx(0.0, abs=1e-4)

    def test_frame_difference_detects_change(self):
        a = flat(100)
        b = flat(100)
        b[:, : W // 2] = 200
        assert frame_difference(a, b) > 0.1

    def test_motion_histogram_uniform_for_static(self):
        h = motion_histogram(flat(50), flat(50))
        assert np.allclose(h, 1.0 / len(h))

    def test_motion_histogram_localizes(self):
        a = flat(50)
        b = flat(50)
        b[:, :8] = 250
        h = motion_histogram(a, b, n_bands=12)
        assert h[0] > 0.9

    def test_passing_score_high_for_sweep(self):
        hists = []
        prev = None
        for i in range(6):
            f = flat(80)
            x = 10 + i * 12
            f[30:50, x : x + 14] = 230
            if prev is not None:
                hists.append(motion_histogram(prev, f))
            prev = f
        assert passing_score(np.stack(hists)) > 0.3

    def test_passing_score_low_for_static_blob(self):
        hists = []
        prev = None
        for i in range(6):
            f = flat(80)
            f[30:50, 40:54] = 230 if i % 2 else 210
            if prev is not None:
                hists.append(motion_histogram(prev, f))
            prev = f
        assert passing_score(np.stack(hists)) < 0.15

    def test_passing_score_needs_three(self):
        with pytest.raises(SignalError):
            passing_score(np.ones((2, 12)) / 12)


class TestSemaphore:
    def _semaphore_frame(self, width):
        f = flat(40)
        f[10:16, 20 : 20 + width, 0] = 220
        f[10:16, 20 : 20 + width, 1] = 30
        f[10:16, 20 : 20 + width, 2] = 30
        return f

    def test_red_rectangle_found(self):
        rect = red_rectangle(self._semaphore_frame(24))
        assert rect is not None
        assert rect.width == 24
        assert rect.fill > 0.9

    def test_no_rectangle_on_plain(self):
        assert red_rectangle(flat(90)) is None

    def test_semaphore_score_prefers_wide(self):
        wide = semaphore_score(self._semaphore_frame(32))
        # a tall-thin red blob is not a semaphore
        f = flat(40)
        f[10:40, 20:26, 0] = 220
        f[10:40, 20:26, 1] = 30
        f[10:40, 20:26, 2] = 30
        assert wide > semaphore_score(f)

    def test_tracker_rewards_regular_growth(self):
        tracker = SemaphoreTracker()
        score = 0.0
        for i in range(30):
            score = tracker.update(self._semaphore_frame(8 + 4 * (i // 5)))
        assert score > 0.6

    def test_tracker_low_without_semaphore(self, rng):
        tracker = SemaphoreTracker()
        scores = [tracker.update(noisy(flat(90), rng)) for _ in range(20)]
        assert max(scores) < 0.2

    def test_tracker_reset(self):
        tracker = SemaphoreTracker()
        tracker.update(self._semaphore_frame(16))
        tracker.reset()
        assert tracker.score() == 0.0


class TestFlyout:
    def test_sand_fraction(self):
        sand = flat(0)
        sand[:, :, 0] = 194
        sand[:, :, 1] = 178
        sand[:, :, 2] = 128
        assert sand_fraction(sand) > 0.95
        assert sand_fraction(flat(90)) == 0.0

    def test_dust_needs_low_saturation(self):
        dust = flat(0)
        dust[:, :, 0] = 170
        dust[:, :, 1] = 160
        dust[:, :, 2] = 140
        assert dust_fraction(dust) > 0.95
        saturated = flat(0)
        saturated[:, :, 0] = 170
        saturated[:, :, 1] = 160
        saturated[:, :, 2] = 40  # not dust: too colorful
        assert dust_fraction(saturated) == 0.0


class TestDve:
    def _wipe_frames(self, steps=10):
        frames = [flat(50)]
        for i in range(1, steps):
            f = flat(50)
            f[:, : int(W * i / steps)] = 200
            frames.append(f)
        return frames

    def test_wipe_band_score_concentrated(self):
        frames = self._wipe_frames()
        concentration, _ = wipe_band_score(frames[3], frames[4])
        assert concentration > 0.5

    def test_detector_fires_on_wipe(self):
        detector = DveDetector()
        scores = [detector.update(f) for f in self._wipe_frames(12)]
        assert max(scores) > 0.6

    def test_detector_quiet_on_noise(self, rng):
        detector = DveDetector()
        scores = [detector.update(noisy(flat(90), rng)) for _ in range(20)]
        assert max(scores) == 0.0

    def test_hard_cut_is_not_a_dve(self, rng):
        detector = DveDetector()
        scores = [detector.update(noisy(flat(60), rng)) for _ in range(5)]
        scores.append(detector.update(noisy(flat(200), rng)))
        scores += [detector.update(noisy(flat(200), rng)) for _ in range(5)]
        assert max(scores) == 0.0

    def test_replay_segmenter_pairs_dves(self):
        fps = 10.0
        scores = np.zeros(200)
        scores[20:24] = 0.9   # DVE in at ~2.2 s
        scores[80:84] = 0.9   # DVE out at ~8.2 s
        segments = ReplaySegmenter(fps).segments(scores)
        assert len(segments) == 1
        assert segments[0].start_time == pytest.approx(2.15, abs=0.3)
        assert segments[0].end_time == pytest.approx(8.15, abs=0.3)

    def test_replay_indicator_raster(self):
        scores = np.zeros(100)
        scores[10:12] = 1.0
        scores[50:52] = 1.0
        indicator = ReplaySegmenter(10.0).indicator(scores)
        assert indicator[30] == 1.0
        assert indicator[80] == 0.0

    def test_unpaired_dve_gives_no_replay(self):
        scores = np.zeros(100)
        scores[10:12] = 1.0
        assert ReplaySegmenter(10.0).segments(scores) == []
