"""MIL interpreter: tokenizer, parser, evaluation, procedures, PARALLEL."""

import pytest

from repro.errors import MilNameError, MilSyntaxError, MilTypeError
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel
from repro.monet.mil import parse, tokenize


@pytest.fixture()
def kernel():
    return MonetKernel()


class TestTokenizer:
    def test_numbers(self):
        kinds = [t.kind for t in tokenize("1 2.5 2.2e-3 .5")]
        assert kinds == ["int", "float", "float", "float", "eof"]

    def test_strings_and_escapes(self):
        tokens = tokenize('"hello" "a\\"b"')
        assert tokens[0].kind == "string"
        assert tokens[1].kind == "string"

    def test_keywords_case_insensitive(self):
        assert tokenize("proc")[0].kind == "PROC"
        assert tokenize("Var")[0].kind == "VAR"

    def test_comments_skipped(self):
        tokens = tokenize("x # a comment\ny")
        assert [t.text for t in tokens[:-1]] == ["x", "y"]

    def test_unknown_character(self):
        with pytest.raises(MilSyntaxError):
            tokenize("x @ y")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]


class TestParser:
    def test_var_decl(self):
        assert len(parse("VAR x := 1;")) == 1

    def test_missing_semicolon(self):
        with pytest.raises(MilSyntaxError):
            parse("VAR x := 1")

    def test_proc_with_bat_params(self):
        (proc,) = parse("PROC f(BAT[oid,dbl] a, int n) : str := { RETURN n; }")
        assert proc.params[0].type_name == "BAT[oid,dbl]"
        assert proc.params[1].type_name == "int"

    def test_nested_method_chain(self):
        parse("VAR y := (b.reverse).find(x);")

    def test_if_else_while(self):
        parse("IF (x > 1) { y := 1; } ELSE { y := 2; } WHILE (y < 5) { y := y + 1; }")


class TestEvaluation:
    def test_arithmetic(self, kernel):
        assert kernel.run("VAR x := 2 + 3 * 4; RETURN x;") == 14

    def test_precedence_parentheses(self, kernel):
        assert kernel.run("RETURN (2 + 3) * 4;") == 20

    def test_comparison_and_boolean(self, kernel):
        assert kernel.run("RETURN 1 < 2 AND NOT (3 = 4);") is True

    def test_string_concat(self, kernel):
        assert kernel.run('RETURN "a" + "b";') == "ab"

    def test_unary_minus(self, kernel):
        assert kernel.run("RETURN -3 + 5;") == 2

    def test_scientific_literal(self, kernel):
        assert kernel.run("RETURN 2.2e-3;") == pytest.approx(0.0022)

    def test_new_creates_bat(self, kernel):
        result = kernel.run("VAR b := new(void, int); b.insert(7); RETURN b;")
        assert isinstance(result, BAT)
        assert result.tails() == [7]

    def test_undeclared_assignment_rejected(self, kernel):
        with pytest.raises(MilNameError):
            kernel.run("x := 1;")

    def test_unknown_name(self, kernel):
        with pytest.raises(MilNameError):
            kernel.run("RETURN mystery;")

    def test_private_attribute_blocked(self, kernel):
        with pytest.raises(MilNameError):
            kernel.run("VAR b := new(void, int); RETURN b._head;")

    def test_builtin_functions(self, kernel):
        assert kernel.run("RETURN sqrt(9.0);") == 3.0
        assert kernel.run("RETURN abs(-4);") == 4

    def test_if_branches(self, kernel):
        source = """
        VAR x := 10;
        VAR label := "";
        IF (x > 5) { label := "big"; } ELSE { label := "small"; }
        RETURN label;
        """
        assert kernel.run(source) == "big"

    def test_while_loop(self, kernel):
        source = """
        VAR total := 0;
        VAR i := 0;
        WHILE (i < 5) { total := total + i; i := i + 1; }
        RETURN total;
        """
        assert kernel.run(source) == 10


class TestProcedures:
    def test_define_and_call(self, kernel):
        kernel.run("PROC double(int n) : int := { RETURN n * 2; }")
        assert kernel.call("double", [21]) == 42

    def test_proc_arity_check(self, kernel):
        kernel.run("PROC f(int n) : int := { RETURN n; }")
        with pytest.raises(MilTypeError):
            kernel.call("f", [1, 2])

    def test_proc_bat_parameter_typecheck(self, kernel):
        kernel.run("PROC g(BAT[void,int] b) : int := { RETURN b.count(); }")
        with pytest.raises(MilTypeError):
            kernel.call("g", [42])

    def test_proc_calls_proc(self, kernel):
        kernel.run(
            """
            PROC inc(int n) : int := { RETURN n + 1; }
            PROC twice(int n) : int := { RETURN inc(inc(n)); }
            """
        )
        assert kernel.call("twice", [5]) == 7

    def test_unknown_proc(self, kernel):
        with pytest.raises(MilNameError):
            kernel.call("nope", [])

    def test_paper_fig4_shape(self, kernel):
        """The Fig. 4 pattern: parallel inserts, max, reverse-find."""
        kernel.register_command("score", lambda name: {"a": 0.2, "b": 0.9}[name])
        kernel.run(
            """
            PROC pick() : str := {
              VAR n := threadcnt(3);
              VAR parEval := new(str, flt);
              PARALLEL {
                parEval.insert("a", score("a"));
                parEval.insert("b", score("b"));
              }
              VAR best := parEval.max;
              RETURN (parEval.reverse).find(best);
            }
            """
        )
        assert kernel.call("pick", []) == "b"


class TestParallel:
    def test_parallel_inserts_complete(self, kernel):
        kernel.run(
            """
            VAR acc := new(str, int);
            VAR n := threadcnt(5);
            PARALLEL {
              acc.insert("a", 1);
              acc.insert("b", 2);
              acc.insert("c", 3);
              acc.insert("d", 4);
            }
            RETURN acc;
            """
        )
        # the final RETURN ran after the barrier
        kernel.run("VAR x := 0; RETURN x;")  # separate run ok
        # re-run to fetch the catalog-less local: use a PROC instead
        kernel.run(
            """
            PROC count4() : int := {
              VAR acc := new(str, int);
              PARALLEL {
                acc.insert("a", 1);
                acc.insert("b", 2);
                acc.insert("c", 3);
                acc.insert("d", 4);
              }
              RETURN acc.count();
            }
            """
        )
        assert kernel.call("count4", []) == 4

    def test_parallel_propagates_errors(self, kernel):
        def boom():
            raise ValueError("worker failure")

        kernel.register_command("boom", boom)
        with pytest.raises(ValueError):
            kernel.run("PARALLEL { boom(); }")
