"""The overload-safe query service: admission, shedding, drain, replay.

Unit tests run against a minimal fake VDBMS (the service only touches
``faults``, ``kernel``, ``query`` and ``register_document``), which keeps
queue/limiter/shed semantics observable and fast. The integration test at
the bottom reruns the seeded overload chaos scenario from
``python -m repro.service`` and asserts its determinism bar.
"""

import threading
import time
from types import SimpleNamespace

import pytest

from repro.errors import (
    MilCheckError,
    OverloadError,
    ReproError,
    RequestCancelled,
)
from repro.faults import FaultInjector, get_plan
from repro.faults.plan import FaultPlan, FaultSpec
from repro.monet.kernel import MonetKernel
from repro.service import (
    AdmissionQueue,
    Priority,
    QueryService,
    RequestRecord,
    ServiceConfig,
    ServiceReport,
    TERMINAL_STATUSES,
    TokenBucket,
    percentile,
)
from repro.service.__main__ import run_scenario


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class FakeVdbms:
    """The minimal surface QueryService drives, with observable call order."""

    def __init__(self, faults: FaultInjector | None = None):
        self.faults = faults or FaultInjector.disabled()
        self.kernel = MonetKernel(faults=self.faults)
        self.calls: list[tuple[str, object]] = []

    def query(self, coql, token=None):
        if token is not None:
            token.check("fake.query")
        self.calls.append(("query", coql))
        return f"result:{coql}"

    def register_document(self, document, domain, token=None):
        if token is not None:
            token.check("fake.register")
        self.calls.append(("register", document))
        return document


class SlowFakeVdbms(FakeVdbms):
    """Each query burns one second of the injected fake clock."""

    def __init__(self, clock: FakeClock):
        super().__init__()
        self.clock = clock

    def query(self, coql, token=None):
        self.clock.now += 1.0
        return super().query(coql, token)


class BlockingFakeVdbms(FakeVdbms):
    """Queries spin until their token is cancelled — a wedged extractor."""

    def __init__(self):
        super().__init__()
        self.started = threading.Event()

    def query(self, coql, token=None):
        self.started.set()
        while True:
            time.sleep(0.005)
            if token is not None:
                token.check("fake.blocking")


def entry(priority: Priority, lane: str = "x", tag: str = ""):
    return SimpleNamespace(priority=priority, lane=lane, tag=tag)


class TestAdmissionQueue:
    def test_rejects_when_full_without_shedding(self):
        queue = AdmissionQueue(2)
        queue.push(entry(Priority.BATCH))
        queue.push(entry(Priority.BATCH))
        with pytest.raises(OverloadError) as err:
            queue.push(entry(Priority.INTERACTIVE))
        assert err.value.reason == "queue-full"

    def test_shed_oldest_evicts_oldest_least_urgent(self):
        queue = AdmissionQueue(2)
        first = entry(Priority.BATCH, tag="first")
        queue.push(first)
        queue.push(entry(Priority.BATCH, tag="second"))
        victim = queue.push(entry(Priority.INTERACTIVE), shed_oldest=True)
        assert victim is first

    def test_batch_cannot_displace_interactive(self):
        queue = AdmissionQueue(2)
        queue.push(entry(Priority.INTERACTIVE))
        queue.push(entry(Priority.INTERACTIVE))
        with pytest.raises(OverloadError) as err:
            queue.push(entry(Priority.BATCH), shed_oldest=True)
        assert err.value.reason == "queue-full"

    def test_pop_serves_interactive_first_fifo_within_class(self):
        queue = AdmissionQueue(4)
        b1 = entry(Priority.BATCH, tag="b1")
        i1 = entry(Priority.INTERACTIVE, tag="i1")
        b2 = entry(Priority.BATCH, tag="b2")
        i2 = entry(Priority.INTERACTIVE, tag="i2")
        for e in (b1, i1, b2, i2):
            queue.push(e)
        assert [queue.pop().tag for _ in range(4)] == ["i1", "i2", "b1", "b2"]
        assert queue.pop() is None

    def test_pop_lane_filters_by_lane(self):
        queue = AdmissionQueue(4)
        queue.push(entry(Priority.BATCH, lane="batch", tag="b"))
        queue.push(entry(Priority.INTERACTIVE, lane="interactive", tag="i"))
        assert queue.pop_lane("batch").tag == "b"
        assert queue.pop_lane("batch") is None
        assert queue.pop_lane("interactive").tag == "i"


class TestTokenBucket:
    def test_burst_then_rate_limited_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=2, clock=clock)
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        retry_after = bucket.try_acquire()
        assert retry_after == pytest.approx(1.0)
        clock.now += 1.0
        assert bucket.try_acquire() is None

    def test_refill_never_exceeds_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=3, clock=clock)
        clock.now += 100.0
        assert bucket.available() == pytest.approx(3.0)


class TestServiceAdmission:
    def test_queue_full_rejection_is_typed_and_on_the_record(self):
        service = QueryService(
            FakeVdbms(), ServiceConfig(queue_capacity=1, shed_policy="reject")
        )
        ticket = service.submit_query("RETRIEVE a FROM b")
        with pytest.raises(OverloadError) as err:
            service.submit_query("RETRIEVE c FROM d")
        assert err.value.reason == "queue-full"
        report = service.run_until_idle()
        assert [r.status for r in report.records] == ["completed", "rejected"]
        assert report.records[1].detail == "queue-full"
        assert ticket.result() == "result:RETRIEVE a FROM b"

    def test_interactive_displaces_queued_batch_under_shed_oldest(self):
        service = QueryService(
            FakeVdbms(), ServiceConfig(queue_capacity=2, shed_policy="oldest")
        )
        shed_me = service.submit_query("old batch", priority=Priority.BATCH)
        service.submit_query("young batch", priority=Priority.BATCH)
        service.submit_query("urgent", priority=Priority.INTERACTIVE)
        report = service.run_until_idle()
        assert report.records[0].status == "shed"
        assert report.records[0].detail == "shed"
        with pytest.raises(OverloadError) as err:
            shed_me.result()
        assert err.value.reason == "shed"
        # the survivors both completed; the interactive one ran first
        assert report.records[1].status == "completed"
        assert report.records[2].status == "completed"

    def test_rate_limited_admission(self):
        clock = FakeClock()
        service = QueryService(
            FakeVdbms(),
            ServiceConfig(queue_capacity=8, rate_limit=1.0, rate_burst=1),
            clock=clock,
        )
        service.submit_query("first")
        with pytest.raises(OverloadError) as err:
            service.submit_query("too fast")
        assert err.value.reason == "rate-limited"
        assert err.value.retry_after and err.value.retry_after > 0
        clock.now += err.value.retry_after
        service.submit_query("after backoff")
        report = service.run_until_idle()
        assert report.counts() == {"completed": 2, "rejected": 1}

    def test_draining_service_refuses_new_work(self):
        service = QueryService(FakeVdbms(), ServiceConfig(queue_capacity=2))
        service.shutdown()
        with pytest.raises(OverloadError) as err:
            service.submit_query("late")
        assert err.value.reason == "draining"

    def test_unknown_proc_submission_fails_fast(self):
        service = QueryService(FakeVdbms())
        with pytest.raises(ReproError):
            service.submit_proc_call("never_registered")


BURST_EVERY_QUERY = FaultPlan(
    seed=7,
    name="unit-burst",
    specs=(FaultSpec(site="service.submit:query", kind="burst", rate=1.0, factor=3),),
)


class TestBurstShedding:
    def _run_once(self) -> ServiceReport:
        service = QueryService(
            FakeVdbms(FaultInjector(BURST_EVERY_QUERY)),
            ServiceConfig(queue_capacity=4, shed_policy="oldest"),
        )
        for i in range(3):
            service.submit_query(f"q{i}")
        service.run_until_idle()
        return service.shutdown()

    def test_shed_oldest_under_burst_is_deterministic(self):
        """3 arrivals x4 amplification into a 4-deep queue: sheds replay."""
        report = self._run_once()
        replay = self._run_once()
        assert report.records == replay.records
        assert len(report) == 12
        assert report.shed == 8
        assert report.completed == 4
        assert report.all_terminal
        # clones carry their original's seq, so amplification is auditable
        clones = [r for r in report.records if r.clone_of is not None]
        assert len(clones) == 9

    def test_burst_clones_rejected_loudly_under_reject_policy(self):
        service = QueryService(
            FakeVdbms(FaultInjector(BURST_EVERY_QUERY)),
            ServiceConfig(queue_capacity=2, shed_policy="reject"),
        )
        ticket = service.submit_query("q")  # 4 arrivals against capacity 2
        report = service.run_until_idle()
        assert ticket.result() == "result:q"
        assert report.counts() == {"completed": 2, "rejected": 2}
        for record in report.by_status("rejected"):
            assert record.detail == "queue-full"
            assert record.clone_of == 0


class TestDrain:
    def test_sync_drain_sheds_what_the_deadline_cannot_fund(self):
        clock = FakeClock()
        service = QueryService(
            SlowFakeVdbms(clock),
            ServiceConfig(queue_capacity=8),
            clock=clock,
        )
        for i in range(4):
            service.submit_query(f"q{i}")
        report = service.shutdown(deadline=2.5)
        # each query burns 1.0s of fake clock: three fit, the fourth sheds
        assert [r.status for r in report.records] == [
            "completed",
            "completed",
            "completed",
            "shed",
        ]
        assert report.records[3].detail == "draining"

    def test_sync_drain_without_deadline_finishes_everything(self):
        service = QueryService(FakeVdbms(), ServiceConfig(queue_capacity=8))
        for i in range(3):
            service.submit_query(f"q{i}")
        report = service.shutdown()
        assert report.completed == 3
        assert report.all_terminal

    def test_threaded_drain_cancels_in_flight_work(self):
        db = BlockingFakeVdbms()
        service = QueryService(db, ServiceConfig(queue_capacity=4))
        service.start()
        ticket = service.submit_query("wedged")
        assert db.started.wait(timeout=2.0)
        report = service.shutdown(deadline=0.1)
        assert ticket.status == "cancelled"
        with pytest.raises(RequestCancelled):
            ticket.result()
        assert report.all_terminal

    def test_client_cancel_stops_a_running_request(self):
        db = BlockingFakeVdbms()
        service = QueryService(db, ServiceConfig(queue_capacity=4))
        service.start()
        ticket = service.submit_query("doomed")
        assert db.started.wait(timeout=2.0)
        ticket.cancel("client changed its mind")
        for _ in range(200):
            if ticket.status == "cancelled":
                break
            time.sleep(0.01)
        assert ticket.status == "cancelled"
        service.shutdown(deadline=1.0)


SPIN_FOREVER = """
PROC spin() : int := {
  VAR stop := 0;
  VAR x := 0;
  WHILE (stop < 1) { x := x + 1; }
  RETURN x;
}
"""

SPIN_WITH_CHECKPOINT = """
PROC spin_ck() : int := {
  VAR stop := 0;
  VAR x := 0;
  VAR c := 0;
  WHILE (stop < 1) { c := cancelpoint(); x := x + 1; stop := fuse(); }
  RETURN x;
}
"""

BOUNDED_HOP = """
PROC hop(int n) : int := {
  VAR i := 0;
  VAR c := 0;
  WHILE (i < n) { c := cancelpoint(); i := i + 1; }
  RETURN i;
}
"""


class TestRegisterProc:
    def test_unbounded_while_without_cancelpoint_is_rejected(self):
        service = QueryService(FakeVdbms())
        with pytest.raises(MilCheckError) as err:
            service.register_proc(SPIN_FOREVER)
        assert any(d.code == "SVC001" for d in err.value.diagnostics)
        assert not service._db.kernel.has_command("spin")

    def test_cancelpoint_satisfies_the_gate(self):
        db = FakeVdbms()
        db.kernel.register_command("fuse", lambda: 1)
        service = QueryService(db)
        assert service.register_proc(SPIN_WITH_CHECKPOINT) == ["spin_ck"]

    def test_registered_proc_runs_through_the_service(self):
        service = QueryService(FakeVdbms())
        assert service.register_proc(BOUNDED_HOP) == ["hop"]
        ticket = service.submit_proc_call("hop", (5,))
        report = service.run_until_idle()
        assert ticket.result() == 5
        assert report.records[0].kind == "proc"
        assert report.records[0].status == "completed"


class TestServiceReport:
    def test_equality_ignores_latency_measurements(self):
        records = (
            RequestRecord(seq=0, kind="query", priority="INTERACTIVE",
                          lane="interactive", status="completed"),
        )
        a = ServiceReport(records=records, checkpoint_seqno=1,
                          admission_latencies=(0.001,))
        b = ServiceReport(records=records, checkpoint_seqno=1,
                          admission_latencies=(9.999,))
        assert a == b

    def test_percentile_nearest_rank(self):
        assert percentile([], 99.0) == 0.0
        assert percentile([0.5], 99.0) == 0.5
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 99.0) == 100.0
        assert percentile(values, 100.0) == 100.0

    def test_terminal_statuses_cover_every_outcome(self):
        assert {"completed", "failed", "rejected", "shed", "cancelled",
                "timed-out"} == set(TERMINAL_STATUSES)


class TestOverloadChaosScenario:
    """The CI acceptance scenario: sustained 4x burst against a durable
    kernel — deterministic sheds, typed failures, real progress."""

    def test_seeded_burst_replays_exactly(self, tmp_path):
        report, committed = run_scenario(tmp_path / "run1", capacity=8)
        replay, _ = run_scenario(tmp_path / "run2", capacity=8)
        assert report.records == replay.records
        assert report.all_terminal
        assert report.shed + report.rejected > 0, "overload controls never engaged"
        assert report.completed > 0, "the service made no progress"
        for record in report.by_status("failed"):
            assert record.detail, "untyped failure"
        assert committed, "no registration survived to the WAL"
