"""Audio substrate: framing, features, endpoint detection, keyword spotting."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.audio.endpoint import EndpointConfig, detect_speech
from repro.audio.excitement import extract_excitement_features
from repro.audio.features import (
    frame_entropy,
    mel_filterbank,
    mfcc,
    pause_rate,
    pitch_track,
    short_time_energy,
    zero_crossing_rate,
)
from repro.audio.filters import bandpass
from repro.audio.keywords import (
    CLEAN_SPEECH_MODEL,
    F1_KEYWORDS,
    PHONES,
    TV_NEWS_MODEL,
    KeywordSpotter,
    keyword_stream,
)
from repro.audio.signal import AudioSignal, clip_statistics, window_function
from repro.errors import SignalError

FS = 16000


def tone(freq: float, seconds: float = 1.0, amplitude: float = 0.5) -> AudioSignal:
    t = np.arange(int(FS * seconds)) / FS
    return AudioSignal(amplitude * np.sin(2 * np.pi * freq * t), FS)


def speechlike(f0: float, seconds: float = 2.0, rng=None) -> AudioSignal:
    t = np.arange(int(FS * seconds)) / FS
    s = np.zeros_like(t)
    for h in range(1, 6):
        s += (0.3 / h) * np.sin(2 * np.pi * f0 * h * t)
    s *= 0.6 + 0.4 * np.sin(2 * np.pi * 4 * t)
    if rng is not None:
        s = s + 0.01 * rng.standard_normal(t.shape)
    return AudioSignal(s, FS)


class TestSignal:
    def test_framing(self):
        sig = tone(100, 1.0)
        assert sig.frame_length == 160
        assert sig.n_frames() == 100
        assert sig.frames().shape == (100, 160)

    def test_clips(self):
        sig = tone(100, 1.0)
        assert sig.frames_per_clip == 10
        assert sig.n_clips() == 10

    def test_too_short(self):
        with pytest.raises(SignalError):
            AudioSignal(np.zeros(10), FS).frames()

    def test_low_sample_rate_rejected(self):
        with pytest.raises(SignalError):
            AudioSignal(np.zeros(100), 500)

    def test_slice_seconds(self):
        sig = tone(100, 2.0)
        assert sig.slice_seconds(0.5, 1.0).duration == pytest.approx(0.5)

    def test_clip_statistics_keys(self):
        sig = tone(100, 1.0)
        stats = clip_statistics(sig, short_time_energy(sig))
        assert set(stats) == {"average", "maximum", "dynamic_range"}

    def test_windows(self):
        for name in ("rectangular", "hamming", "hanning", "blackman"):
            w = window_function(name, 160)
            assert w.shape == (160,)
            assert w.max() <= 1.0 + 1e-9
        with pytest.raises(SignalError):
            window_function("kaiser", 10)


class TestFilters:
    def test_bandpass_removes_out_of_band(self):
        mixed = AudioSignal(
            tone(200).samples + tone(3000).samples, FS
        )
        low = bandpass(mixed, 0, 882)
        spectrum = np.abs(np.fft.rfft(low.samples))
        freqs = np.fft.rfftfreq(low.samples.shape[0], 1 / FS)
        in_band = spectrum[(freqs > 150) & (freqs < 250)].max()
        out_band = spectrum[(freqs > 2800) & (freqs < 3200)].max()
        assert in_band > 100 * out_band

    def test_band_validation(self):
        with pytest.raises(SignalError):
            bandpass(tone(100), 500, 100)
        with pytest.raises(SignalError):
            bandpass(tone(100), 0, FS)  # beyond Nyquist


class TestFeatures:
    def test_ste_scales_with_amplitude(self):
        quiet = short_time_energy(tone(200, amplitude=0.1)).mean()
        loud = short_time_energy(tone(200, amplitude=0.5)).mean()
        assert loud > 20 * quiet

    def test_ste_zero_for_silence(self):
        silent = AudioSignal(np.zeros(FS), FS)
        assert short_time_energy(silent).max() == 0.0

    @pytest.mark.parametrize("f0", [90, 150, 260])
    def test_pitch_accuracy(self, f0, rng):
        sig = speechlike(f0, rng=rng)
        p = pitch_track(bandpass(sig, 0, 882))
        voiced = p[p > 0]
        assert np.median(voiced) == pytest.approx(f0, rel=0.12)

    def test_pitch_zero_for_silence(self):
        silent = AudioSignal(np.zeros(FS), FS)
        assert pitch_track(silent).max() == 0.0

    def test_mel_filterbank_shape_and_coverage(self):
        bank = mel_filterbank(24, 256, FS)
        assert bank.shape == (24, 129)
        assert bank.sum(axis=1).min() > 0

    def test_mfcc_shape(self):
        coeffs = mfcc(tone(300))
        assert coeffs.shape == (100, 12)

    def test_mfcc_tilt_sensitivity(self, rng):
        """Flatter harmonic spectra (excited voice) shift the MFCCs."""
        t = np.arange(FS) / FS
        steep = sum((1.0 / h) * np.sin(2 * np.pi * 150 * h * t) for h in range(1, 6))
        flat = sum(0.6 * np.sin(2 * np.pi * 150 * h * t) for h in range(1, 6))
        c_steep = mfcc(AudioSignal(0.2 * steep, FS)).mean(axis=0)
        c_flat = mfcc(AudioSignal(0.2 * flat, FS)).mean(axis=0)
        assert np.abs(c_steep - c_flat).max() > 0.5

    def test_pause_rate_detects_silence(self):
        samples = np.concatenate([tone(200, 0.5).samples, np.zeros(FS // 2)])
        rate = pause_rate(AudioSignal(samples, FS))
        assert rate[:4].mean() < 0.2
        assert rate[-4:].mean() > 0.8

    def test_zcr_higher_for_high_frequency(self):
        assert zero_crossing_rate(tone(2000)).mean() > zero_crossing_rate(tone(100)).mean()

    def test_entropy_higher_for_noise_than_silence(self, rng):
        noise = AudioSignal(rng.standard_normal(FS) * 0.3, FS)
        silence = AudioSignal(np.zeros(FS), FS)
        assert frame_entropy(noise).mean() > frame_entropy(silence).mean()


class TestEndpoint:
    def test_detects_speech_segment(self, rng):
        speech = speechlike(150, 2.0, rng).samples
        silence = 0.005 * rng.standard_normal(FS)
        sig = AudioSignal(np.concatenate([silence, speech, silence]), FS)
        result = detect_speech(sig)
        # clips 10..29 are speech
        assert result.is_speech[12:28].mean() > 0.8
        assert result.is_speech[:8].mean() < 0.2

    def test_segments_intervals(self, rng):
        speech = speechlike(150, 1.0, rng).samples
        sig = AudioSignal(np.concatenate([np.zeros(FS), speech]), FS)
        segments = detect_speech(sig).segments()
        assert segments
        assert segments[0][0] == pytest.approx(1.0, abs=0.3)

    def test_paper_thresholds_are_defaults(self):
        config = EndpointConfig()
        assert config.ste_threshold == pytest.approx(2.2e-3)
        assert config.mfcc_threshold == pytest.approx(1.3)


class TestExcitement:
    def test_stream_names(self, rng):
        feats = extract_excitement_features(speechlike(150, 2.0, rng))
        assert set(feats.streams) == {f"f{i}" for i in range(2, 11)}

    def test_values_in_unit_interval(self, rng):
        feats = extract_excitement_features(speechlike(220, 2.0, rng))
        for name, values in feats.streams.items():
            assert values.min() >= 0.0 and values.max() <= 1.0, name

    def test_pitch_feature_tracks_excitement(self, rng):
        low = extract_excitement_features(speechlike(140, 2.0, rng))
        high = extract_excitement_features(speechlike(260, 2.0, rng))
        assert high.streams["f6"].mean() > low.streams["f6"].mean()


class TestKeywords:
    def _lattice(self, words, model, seed=9, filler=6):
        rng = np.random.default_rng(seed)
        phones: list = ["a", "b"] * filler
        for word in words:
            phones += list(F1_KEYWORDS[word])
            phones += ["o", "e"] * filler
        return model.decode(phones, rng), phones

    def test_spots_planted_keywords(self):
        lattice, _ = self._lattice(["crash", "schumacher"], TV_NEWS_MODEL)
        words = {h.word for h in KeywordSpotter().spot(lattice)}
        assert {"crash", "schumacher"} <= words

    def test_tv_news_beats_clean_speech(self):
        """The paper's acoustic-model comparison: TV-news scores higher."""
        planted = ["crash", "overtake", "pitstop", "gravel"]
        lattice_tv, _ = self._lattice(planted, TV_NEWS_MODEL, seed=5)
        lattice_clean, _ = self._lattice(planted, CLEAN_SPEECH_MODEL, seed=5)
        spotter = KeywordSpotter()
        tv_found = {h.word for h in spotter.spot(lattice_tv)} & set(planted)
        clean_found = {h.word for h in spotter.spot(lattice_clean)} & set(planted)
        assert len(tv_found) >= len(clean_found)
        tv_scores = [h.normalized_score for h in spotter.spot(lattice_tv) if h.word in planted]
        clean_scores = [
            h.normalized_score for h in spotter.spot(lattice_clean) if h.word in planted
        ]
        if tv_scores and clean_scores:
            assert np.mean(tv_scores) > np.mean(clean_scores)

    def test_silence_gives_no_hits(self):
        rng = np.random.default_rng(0)
        lattice = TV_NEWS_MODEL.decode([None] * 60, rng)
        assert KeywordSpotter().spot(lattice) == []

    def test_hit_metadata(self):
        lattice, phones = self._lattice(["winner"], TV_NEWS_MODEL)
        hits = [h for h in KeywordSpotter().spot(lattice) if h.word == "winner"]
        assert hits
        hit = hits[0]
        assert hit.duration == pytest.approx(len(F1_KEYWORDS["winner"]) * 0.1)
        assert 0 < hit.normalized_score <= 1

    def test_keyword_stream_rasterization(self):
        lattice, _ = self._lattice(["crash"], TV_NEWS_MODEL)
        hits = KeywordSpotter().spot(lattice)
        stream = keyword_stream(hits, 50)
        assert stream.shape == (50,)
        assert stream.max() > 0

    def test_all_lexicon_phones_valid(self):
        for word, spelling in F1_KEYWORDS.items():
            assert all(p in PHONES for p in spelling), word


@settings(max_examples=20, deadline=None)
@given(st.integers(60, 400))
def test_property_ste_invariant_to_dc_free_sign_flip(freq):
    sig = tone(float(freq), 0.5)
    flipped = AudioSignal(-sig.samples, FS)
    assert np.allclose(short_time_energy(sig), short_time_energy(flipped))
