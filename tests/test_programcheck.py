"""Whole-program interprocedural analysis: call graph, summaries, CALLnnn.

Covers the callgraph structures (sites, fingerprints, SCC order), the
per-proc summary lattice and its bottom-up propagation, the four CALL
codes at every registration choke point (kernel, service, sharded fleet),
the summary memoization satellite, and the interpreter's recursion-depth
guard that CALL002 statically predicts.
"""

import tempfile
from pathlib import Path

import pytest

from repro.check.callgraph import CallGraph, collect_call_sites, fingerprint
from repro.check.programcheck import ProgramChecker, SummaryCache
from repro.errors import MilCheckError, MilRecursionError, ShardingCheckError
from repro.monet.kernel import MonetKernel
from repro.monet.mil import MIL_RECURSION_LIMIT, ProcDef, parse


def _defs(source):
    return {s.name: s for s in parse(source) if isinstance(s, ProcDef)}


def _env(kernel):
    interp = kernel.interpreter
    return dict(
        commands=interp._commands,
        signatures=interp._signatures,
        globals_names=list(interp._globals.variables),
        procedures=dict(interp._procs),
    )


@pytest.fixture()
def kernel():
    return MonetKernel(check="warn")


# ---------------------------------------------------------------------------
# call graph structure
# ---------------------------------------------------------------------------


class TestCallGraph:
    def test_call_sites_track_conditionality_and_branch(self):
        defs = _defs(
            """
            PROC p(BAT[str,flt] out, int n) : void := {
              helper(out);
              IF (n > 0) { maybe(out); }
              PARALLEL {
                left(out);
                right(out);
              }
            }
            """
        )
        sites = {s.callee: s for s in collect_call_sites(defs["p"])}
        assert not sites["helper"].conditional
        assert sites["maybe"].conditional
        assert sites["left"].branch == 0
        assert sites["right"].branch == 1
        assert sites["helper"].arg_names == ("out",)

    def test_fingerprint_ignores_layout_but_not_structure(self):
        a = _defs("PROC f(int n) : int := { RETURN n + 1; }")["f"]
        b = _defs("PROC f(int n) : int :=\n{\n  RETURN n + 1;\n}")["f"]
        c = _defs("PROC f(int n) : int := { RETURN n + 2; }")["f"]
        assert fingerprint(a) == fingerprint(b)
        assert fingerprint(a) != fingerprint(c)

    def test_sccs_come_out_callee_first(self):
        defs = _defs(
            """
            PROC leaf() : int := { RETURN 1; }
            PROC mid() : int := { RETURN leaf(); }
            PROC top() : int := { RETURN mid(); }
            """
        )
        order = CallGraph(defs).sccs()
        assert order.index(("leaf",)) < order.index(("mid",))
        assert order.index(("mid",)) < order.index(("top",))

    def test_mutual_recursion_is_one_recursive_scc(self):
        defs = _defs(
            """
            PROC ping(int n) : int := { IF (n > 0) { RETURN pong(n - 1); } RETURN 0; }
            PROC pong(int n) : int := { IF (n > 0) { RETURN ping(n - 1); } RETURN 0; }
            """
        )
        assert CallGraph(defs).recursive_sccs() == [("ping", "pong")]


# ---------------------------------------------------------------------------
# summaries
# ---------------------------------------------------------------------------


class TestSummaries:
    def test_effects_propagate_transitively(self, kernel):
        checker = ProgramChecker(**_env(kernel))
        checker.check_source(
            """
            PROC deep(BAT[str,flt] out) : void := {
              out.delete("x");
              persist("snap", out);
            }
            PROC mid(BAT[str,flt] b) : void := { deep(b); }
            PROC top(BAT[str,flt] a) : void := { mid(a); }
            """
        )
        top = checker.summary("top")
        assert top.commits
        assert top.param_writes == (0,)
        assert top.calls == ("mid",)
        assert not top.pure

    def test_cancelpoint_reachability_crosses_calls(self, kernel):
        checker = ProgramChecker(**_env(kernel))
        checker.check_source(
            """
            PROC breath() : void := { cancelpoint(); }
            PROC outer(int n) : int := {
              breath();
              IF (n > 0) { RETURN outer(n - 1); }
              RETURN 0;
            }
            """
        )
        assert checker.summary("outer").has_cancelpoint
        # and because the cycle is cancellable, no CALL002 fired
        report = checker.check_source(
            "PROC outer2(int n) : int := "
            "{ breath(); IF (n > 0) { RETURN outer2(n - 1); } RETURN 0; }"
        )
        assert "CALL002" not in [d.code for d in report]

    def test_cost_includes_callees(self, kernel):
        checker = ProgramChecker(**_env(kernel))
        checker.check_source(
            """
            PROC inner(BAT[void,dbl] x) : dbl := { RETURN x.sum(); }
            PROC outer(BAT[void,dbl] x) : dbl := { RETURN inner(x); }
            """
        )
        assert checker.summary("outer").cost > checker.summary("inner").cost * 0.99
        assert checker.summary("outer").cost >= checker.summary("inner").cost


# ---------------------------------------------------------------------------
# memoization (satellite)
# ---------------------------------------------------------------------------


class TestSummaryCache:
    def test_identical_redefinition_is_a_cache_hit(self, kernel):
        source = "PROC stable(BAT[void,dbl] x) : dbl := { RETURN x.sum(); }"
        kernel.run(source)
        cache = kernel.interpreter.program_cache
        misses_before = cache.misses
        hits_before = cache.hits
        kernel.run(source)
        assert cache.misses == misses_before
        assert cache.hits > hits_before

    def test_changed_source_recomputes_and_changes_fingerprint(self, kernel):
        kernel.run("PROC churn(BAT[void,dbl] x) : dbl := { RETURN x.sum(); }")
        cache = kernel.interpreter.program_cache
        fp_before = cache.entries["churn"].fingerprint
        misses_before = cache.misses
        kernel.run("PROC churn(BAT[void,dbl] x) : dbl := { RETURN x.max(); }")
        assert cache.entries["churn"].fingerprint != fp_before
        assert cache.misses > misses_before

    def test_explicit_invalidation_counts(self):
        cache = SummaryCache()
        cache.invalidate("absent")
        assert cache.invalidations == 0


# ---------------------------------------------------------------------------
# CALL codes at the kernel choke point
# ---------------------------------------------------------------------------


class TestCallCodes:
    def test_call002_error_blocks_registration_under_check_error(self):
        kernel = MonetKernel(check="error")
        with pytest.raises(MilCheckError) as err:
            kernel.run("PROC spin(int n) : int := { RETURN spin(n); }")
        assert "CALL002" in [d.code for d in err.value.diagnostics]

    def test_call002_warning_for_uncancellable_conditional_recursion(self, kernel):
        kernel.run(
            "PROC walk(int n) : int := { IF (n > 0) { RETURN walk(n - 1); } RETURN 0; }"
        )
        codes = [(d.code, d.severity.name) for d in kernel.diagnostics]
        assert ("CALL002", "WARNING") in codes
        assert ("CALL002", "ERROR") not in codes

    def test_call003_fires_only_on_the_breaking_redefinition(self, kernel):
        kernel.run("PROC tail(BAT[void,dbl] x) : dbl := { RETURN x.sum(); }")
        kernel.run(
            """
            PROC pipe(BAT[void,dbl] x) : dbl := {
              VAR a := x.select(0.0, 1.0);
              VAR b := tail(a);
              VAR c := a.max();
              RETURN c;
            }
            """
        )
        assert not [d for d in kernel.diagnostics if d.code == "CALL003"]
        kernel.run(
            'PROC tail(BAT[void,dbl] x) : dbl := { persist("t", x); RETURN x.sum(); }'
        )
        call3 = [d for d in kernel.diagnostics if d.code == "CALL003"]
        assert len(call3) == 1
        assert "pipe" in call3[0].message

    def test_call004_needs_the_callee_summary(self, kernel):
        kernel.run('PROC scrub(BAT[str,flt] out) : void := { out.delete("x"); }')
        kernel.run(
            """
            PROC fan(BAT[str,flt] out) : void := {
              PARALLEL {
                scrub(out);
                out.insert("k", 1.0);
              }
            }
            """
        )
        assert [d.code for d in kernel.diagnostics if d.code.startswith("CALL")] == [
            "CALL004"
        ]


# ---------------------------------------------------------------------------
# the other choke points
# ---------------------------------------------------------------------------


class TestChokePoints:
    def test_service_registration_rejects_call_errors(self):
        from repro.service import QueryService

        class Vdbms:
            def __init__(self):
                self.kernel = MonetKernel()

        service = QueryService(Vdbms())
        with pytest.raises(MilCheckError) as err:
            service.register_proc("PROC spin(int n) : int := { RETURN spin(n); }")
        assert "CALL002" in [d.code for d in err.value.diagnostics]
        assert service.register_proc("PROC fine(int n) : int := { RETURN n; }") == [
            "fine"
        ]

    def test_scatter_registration_rejects_call_errors(self):
        from repro.sharding import ShardedKernel
        from repro.sharding.fleet import ShardConfig

        with tempfile.TemporaryDirectory() as tmp:
            fleet = ShardedKernel(
                Path(tmp), shards=2, config=ShardConfig(fsync=False, check="error")
            )
            try:
                with pytest.raises(ShardingCheckError) as err:
                    fleet.run("PROC spin(int n) : int := { RETURN spin(n); }")
                assert "CALL002" in [d.code for d in err.value.diagnostics]
                fleet.run("PROC fine(int n) : int := { RETURN n; }")
            finally:
                fleet.close()


# ---------------------------------------------------------------------------
# the runtime guard CALL002 predicts (satellite)
# ---------------------------------------------------------------------------


class TestRecursionGuard:
    def test_deep_recursion_raises_typed_error_at_the_limit(self):
        kernel = MonetKernel(check="warn")  # CALL002 warns, still registers
        kernel.run(
            "PROC down(int n) : int := { IF (n > 0) { RETURN down(n - 1); } RETURN 0; }"
        )
        with pytest.raises(MilRecursionError) as err:
            kernel.call("down", [MIL_RECURSION_LIMIT + 10])
        assert err.value.proc == "down"
        assert err.value.depth == MIL_RECURSION_LIMIT + 1

    def test_recursion_below_the_limit_completes(self):
        kernel = MonetKernel(check="warn")
        kernel.run(
            "PROC down(int n) : int := { IF (n > 0) { RETURN down(n - 1); } RETURN 0; }"
        )
        assert kernel.call("down", [MIL_RECURSION_LIMIT - 4]) == 0

    def test_depth_resets_between_calls(self):
        kernel = MonetKernel(check="warn")
        kernel.run(
            "PROC down(int n) : int := { IF (n > 0) { RETURN down(n - 1); } RETURN 0; }"
        )
        for _ in range(3):
            assert kernel.call("down", [MIL_RECURSION_LIMIT // 2]) == 0
