"""HMMs: model validation, forward/backward, Viterbi, Baum-Welch, and the
parallel evaluation extension (Fig. 3/4)."""

import numpy as np
import pytest

from repro.errors import InferenceError, LearningError
from repro.hmm.algorithms import forward_backward, log_likelihood, sample, viterbi
from repro.hmm.model import DiscreteHmm
from repro.hmm.parallel import HmmExtension, HmmServer, build_parallel_eval_proc
from repro.hmm.train import baum_welch
from repro.monet.kernel import MonetKernel


def simple() -> DiscreteHmm:
    return DiscreteHmm(
        [0.6, 0.4],
        [[0.7, 0.3], [0.4, 0.6]],
        [[0.9, 0.1], [0.2, 0.8]],
        name="simple",
    )


class TestModel:
    def test_row_normalization_checked(self):
        with pytest.raises(InferenceError):
            DiscreteHmm([0.5, 0.5], [[0.9, 0.2], [0.5, 0.5]], [[1, 0], [0, 1]])

    def test_shapes_checked(self):
        with pytest.raises(InferenceError):
            DiscreteHmm([1.0], [[1.0]], [[0.5, 0.5], [0.5, 0.5]])

    def test_observation_range_checked(self):
        with pytest.raises(InferenceError):
            simple().check_observations([0, 5])

    def test_random_is_valid(self):
        m = DiscreteHmm.random(3, 4, rng=np.random.default_rng(0))
        assert m.n_states == 3 and m.n_symbols == 4


class TestForwardBackward:
    def test_likelihood_matches_brute_force(self):
        model = simple()
        obs = [0, 1, 0]
        # brute force over all state paths
        total = 0.0
        for s0 in range(2):
            for s1 in range(2):
                for s2 in range(2):
                    p = model.initial[s0] * model.emission[s0, obs[0]]
                    p *= model.transition[s0, s1] * model.emission[s1, obs[1]]
                    p *= model.transition[s1, s2] * model.emission[s2, obs[2]]
                    total += p
        assert log_likelihood(model, obs) == pytest.approx(np.log(total))

    def test_forward_backward_gamma_normalized(self):
        result = forward_backward(simple(), [0, 1, 1, 0, 0])
        assert np.allclose(result.gamma.sum(axis=1), 1.0)

    def test_forward_backward_ll_matches_filter(self):
        obs = [0, 1, 1, 0]
        assert forward_backward(simple(), obs).log_likelihood == pytest.approx(
            log_likelihood(simple(), obs)
        )

    def test_xi_sum_total(self):
        obs = [0, 1, 1, 0, 1]
        result = forward_backward(simple(), obs)
        # expected transitions total T-1
        assert result.xi_sum.sum() == pytest.approx(len(obs) - 1)


class TestViterbi:
    def test_path_length_and_validity(self):
        path, lp = viterbi(simple(), [0, 0, 1, 1])
        assert len(path) == 4
        assert all(s in (0, 1) for s in path)
        assert lp < 0

    def test_viterbi_finds_most_probable_path(self):
        model = simple()
        obs = [0, 1]
        best_manual = max(
            (
                (
                    np.log(model.initial[s0] * model.emission[s0, obs[0]])
                    + np.log(model.transition[s0, s1] * model.emission[s1, obs[1]]),
                    [s0, s1],
                )
                for s0 in range(2)
                for s1 in range(2)
            ),
            key=lambda x: x[0],
        )
        path, lp = viterbi(model, obs)
        assert path == best_manual[1]
        assert lp == pytest.approx(best_manual[0])

    def test_deterministic_emissions_recover_states(self):
        model = DiscreteHmm(
            [1.0, 0.0],
            [[0.5, 0.5], [0.5, 0.5]],
            [[1.0, 0.0], [0.0, 1.0]],
        )
        path, _ = viterbi(model, [0, 1, 1, 0])
        assert path == [0, 1, 1, 0]


class TestBaumWelch:
    def test_monotone_loglik(self, rng):
        true = simple()
        seqs = [sample(true, 60, rng)[1] for _ in range(8)]
        result = baum_welch(DiscreteHmm.random(2, 2, rng=rng), seqs, max_iterations=30)
        assert np.all(np.diff(result.log_likelihoods) >= -1e-7)

    def test_improves_fit(self, rng):
        true = simple()
        seqs = [sample(true, 80, rng)[1] for _ in range(6)]
        result = baum_welch(DiscreteHmm.random(2, 2, rng=rng), seqs, max_iterations=40)
        assert result.log_likelihoods[-1] > result.log_likelihoods[0] + 1.0

    def test_empty_rejected(self):
        with pytest.raises(LearningError):
            baum_welch(simple(), [])


class TestParallelExtension:
    def _deploy(self, ext):
        models = {}
        for i, name in enumerate(
            ["Service", "Forehand", "Smash", "Backhand", "VolleyB", "VolleyF"]
        ):
            model = DiscreteHmm.random(3, 4, rng=np.random.default_rng(100 + i))
            ext.deploy(name, model)
            models[name] = model
        return models

    def test_classify_picks_best_model(self, rng):
        kernel = MonetKernel()
        ext = HmmExtension(kernel, n_servers=6)
        models = self._deploy(ext)
        obs = sample(models["Smash"], 80, rng)[1]
        expected = max(models, key=lambda n: log_likelihood(models[n], obs))
        assert ext.classify(obs) == expected

    def test_all_servers_called(self, rng):
        kernel = MonetKernel()
        ext = HmmExtension(kernel, n_servers=6)
        models = self._deploy(ext)
        ext.classify(sample(models["Service"], 40, rng)[1])
        assert sum(s.calls for s in ext.servers) == 6

    def test_evaluate_single_model(self, rng):
        kernel = MonetKernel()
        ext = HmmExtension(kernel, n_servers=2)
        models = self._deploy(ext)
        obs = sample(models["Smash"], 30, rng)[1]
        assert ext.evaluate("Smash", obs) == pytest.approx(
            log_likelihood(models["Smash"], obs)
        )

    def test_classify_without_models(self):
        ext = HmmExtension(MonetKernel(), n_servers=2)
        with pytest.raises(InferenceError):
            ext.classify([0, 1])

    def test_train_deploys_model(self, rng):
        kernel = MonetKernel()
        ext = HmmExtension(kernel, n_servers=2)
        seqs = [sample(simple(), 40, rng)[1] for _ in range(4)]
        ext.train("learned", seqs, n_states=2, n_symbols=2, max_iterations=10)
        assert "learned" in ext.servers[0].model_names()

    def test_mil_proc_structure(self):
        source = build_parallel_eval_proc("hmmP", ["A", "B", "C"], 3)
        assert "threadcnt(4)" in source
        assert source.count("hmmOneCall") == 3
        assert "PARALLEL" in source

    def test_server_unknown_model(self):
        server = HmmServer(0)
        with pytest.raises(InferenceError):
            server.evaluate("ghost", [0, 1])
