"""Synthetic race substrate: timelines, annotations, audio, video."""

import numpy as np
import pytest

from repro.errors import SynthesisError
from repro.synth.annotations import GroundTruth, Interval, merge_intervals, raster
from repro.synth.audio_synth import synthesize_audio
from repro.synth.grandprix import BELGIAN_GP, GERMAN_GP, USA_GP
from repro.synth.race import RaceSpec, generate_timeline
from repro.synth.text_synth import draw_overlay
from repro.synth.video_synth import RaceVideoRenderer

SPEC = RaceSpec(
    name="unit",
    duration=200.0,
    n_passings=2,
    n_fly_outs=1,
    n_pit_stops=1,
    seed=4,
)


class TestIntervals:
    def test_empty_interval_rejected(self):
        with pytest.raises(SynthesisError):
            Interval(5, 5)

    def test_overlap_seconds(self):
        assert Interval(0, 4).overlap_seconds(Interval(2, 6)) == 2.0
        assert Interval(0, 1).overlap_seconds(Interval(2, 3)) == 0.0

    def test_merge_with_gap(self):
        merged = merge_intervals([Interval(0, 1), Interval(1.4, 2)], gap=0.5)
        assert len(merged) == 1
        merged = merge_intervals([Interval(0, 1), Interval(2, 3)], gap=0.5)
        assert len(merged) == 2

    def test_raster(self):
        r = raster([Interval(0.5, 1.0)], 20, 0.1)
        assert r[5] == 1.0 and r[4] == 0.0 and r[10] == 0.0
        assert r.sum() == pytest.approx(5.0)

    def test_ground_truth_kinds(self):
        truth = GroundTruth(duration=10.0)
        with pytest.raises(SynthesisError):
            truth.of_kind("nonsense")


class TestTimeline:
    def test_event_counts_match_spec(self):
        timeline = generate_timeline(SPEC)
        kinds = [e.kind for e in timeline.events]
        assert kinds.count("start") == 1
        assert kinds.count("passing") == SPEC.n_passings
        assert kinds.count("fly_out") == SPEC.n_fly_outs
        assert kinds.count("pit_stop") == SPEC.n_pit_stops

    def test_deterministic_given_seed(self):
        a = generate_timeline(SPEC)
        b = generate_timeline(SPEC)
        assert [e.time for e in a.events] == [e.time for e in b.events]

    def test_events_inside_race(self):
        timeline = generate_timeline(SPEC)
        for event in timeline.events:
            assert 0 <= event.time < SPEC.duration
            assert event.time + event.duration <= SPEC.duration

    def test_events_well_separated(self):
        timeline = generate_timeline(SPEC)
        times = sorted(e.time for e in timeline.events if e.kind != "start")
        gaps = np.diff(times)
        assert gaps.min() >= 17.9

    def test_replays_follow_events(self):
        timeline = generate_timeline(SPEC)
        for interval, event in timeline.replays:
            assert interval.start >= event.time + event.duration

    def test_ground_truth_highlights_cover_events(self):
        timeline = generate_timeline(SPEC)
        truth = timeline.ground_truth()
        for event in timeline.events:
            if event.kind in ("start", "passing", "fly_out"):
                assert any(
                    event.interval.overlaps(h) for h in truth.highlights
                ), event

    def test_usa_has_no_flyouts(self):
        truth = generate_timeline(USA_GP).ground_truth()
        assert truth.fly_outs == []

    def test_german_passings_visible(self):
        timeline = generate_timeline(GERMAN_GP)
        passings = [e for e in timeline.events if e.kind == "passing"]
        assert np.mean([e.visibility for e in passings]) > 0.7
        timeline_b = generate_timeline(BELGIAN_GP)
        passings_b = [e for e in timeline_b.events if e.kind == "passing"]
        assert np.mean([e.visibility for e in passings_b]) < 0.5

    def test_too_short_race_rejected(self):
        with pytest.raises(SynthesisError):
            RaceSpec(name="x", duration=60.0)

    def test_overlays_fit_frame(self):
        from repro.text.patterns import render_text

        timeline = generate_timeline(SPEC)
        for _, words in timeline.overlays:
            width = render_text(" ".join(words), scale=1, spacing=1).shape[1]
            assert width + 6 <= 192, words


class TestAudioSynth:
    def test_signal_shape_and_range(self):
        timeline = generate_timeline(SPEC)
        audio = synthesize_audio(timeline)
        assert audio.signal.duration == pytest.approx(SPEC.duration)
        assert np.abs(audio.signal.samples).max() <= 1.0

    def test_phone_slots_align(self):
        timeline = generate_timeline(SPEC)
        audio = synthesize_audio(timeline)
        assert len(audio.phone_slots) == int(SPEC.duration * 10)

    def test_keywords_planted_in_phone_stream(self):
        timeline = generate_timeline(SPEC)
        audio = synthesize_audio(timeline)
        from repro.audio.keywords import F1_KEYWORDS

        for time, word in timeline.keywords[:3]:
            slot = int(time / 0.1)
            phones = audio.phone_slots[slot : slot + len(F1_KEYWORDS.get(word, ()))]
            if word in F1_KEYWORDS and all(p is not None for p in phones):
                assert tuple(phones) == F1_KEYWORDS[word]

    def test_excitement_louder_than_neutral(self):
        timeline = generate_timeline(SPEC)
        audio = synthesize_audio(timeline)
        fs = audio.signal.sample_rate
        truth = timeline.ground_truth()
        r = raster(truth.excited_speech, int(SPEC.duration * 10))
        env = audio.signal.samples**2
        per_clip = env[: len(r) * fs // 10].reshape(len(r), -1).mean(axis=1)
        assert per_clip[r > 0].mean() > 1.5 * per_clip[r == 0].mean()


class TestVideoSynth:
    def test_frames_deterministic(self):
        timeline = generate_timeline(SPEC)
        renderer = RaceVideoRenderer(timeline)
        assert np.array_equal(renderer.frame(100), renderer.frame(100))

    def test_stream_replayable(self):
        timeline = generate_timeline(SPEC)
        stream = RaceVideoRenderer(timeline).stream()
        first = next(iter(stream))
        again = next(iter(stream))
        assert np.array_equal(first, again)

    def test_semaphore_present_before_start(self):
        from repro.video.semaphore import red_rectangle

        timeline = generate_timeline(SPEC)
        renderer = RaceVideoRenderer(timeline, noise=0)
        start = next(e for e in timeline.events if e.kind == "start")
        frame = renderer.frame(int((start.time - 1.0) * 10))
        assert red_rectangle(frame) is not None
        frame_after = renderer.frame(int((start.time + 2.0) * 10))
        assert red_rectangle(frame_after) is None

    def test_sand_during_flyout(self):
        from repro.video.flyout import sand_fraction

        timeline = generate_timeline(SPEC)
        renderer = RaceVideoRenderer(timeline, noise=0)
        fly = next(e for e in timeline.events if e.kind == "fly_out")
        mid = renderer.frame(int((fly.time + fly.duration / 2) * 10))
        before = renderer.frame(int((fly.time - 5.0) * 10))
        assert sand_fraction(mid) > sand_fraction(before) + 0.02

    def test_overlay_rendered(self):
        timeline = generate_timeline(SPEC)
        renderer = RaceVideoRenderer(timeline, noise=0)
        interval, words = timeline.overlays[0]
        frame = renderer.frame(int((interval.start + 1.0) * 10))
        strip = frame[int(144 * 0.8) :]
        assert (strip > 200).any()  # bright characters present

    def test_draw_overlay_too_wide_rejected(self):
        frame = np.zeros((72, 60, 3), dtype=np.uint8)
        with pytest.raises(SynthesisError):
            draw_overlay(frame, ["CLASSIFICATION", "CLASSIFICATION"])


class TestPresets:
    @pytest.mark.parametrize("spec", [GERMAN_GP, BELGIAN_GP, USA_GP])
    def test_presets_generate(self, spec):
        timeline = generate_timeline(spec)
        assert timeline.duration == spec.duration
        truth = timeline.ground_truth()
        assert truth.highlights
