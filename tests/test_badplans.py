"""Mutation corpus: every bad plan yields exactly its expected diagnostic.

Each artifact under ``tests/data/badplans/`` seeds exactly one defect; the
flowcheck/racecheck passes must report that defect's code and nothing else
(no false positives riding along, no misclassification). The ``program/``
subdirectory holds whole-program artifacts checked by programcheck alone
(``CALLnnn``), and ``equiv/`` holds Moa-expression/MIL-plan pairs run
through the translation validator (``EQnnn``); clean counterparts carry
``# expect: none`` (or ``"expect": "EQ001"`` — a certificate, not a
defect).
"""

import json
from pathlib import Path

import pytest

from repro.check.equivcheck import validate_translation
from repro.check.flowcheck import FlowChecker, check_feature_set, check_moa_flow
from repro.check.programcheck import ProgramChecker
from repro.check.racecheck import RaceChecker
from repro.moa.algebra import (
    Aggregate,
    Apply,
    Arith,
    Cmp,
    Const,
    Map,
    Select,
    SetOp,
    Var,
)

BADPLANS = Path(__file__).resolve().parent / "data" / "badplans"
MIL_PLANS = sorted(BADPLANS.glob("*.mil"))
JSON_PLANS = sorted(BADPLANS.glob("*.json"))
PROGRAM_PLANS = sorted((BADPLANS / "program").glob("*.mil"))
EQUIV_PLANS = sorted((BADPLANS / "equiv").glob("*.json"))


@pytest.fixture(scope="module")
def env():
    """The same checker environment the CLI builds: the full Cobra kernel."""
    from repro.cobra.vdbms import CobraVDBMS

    kernel = CobraVDBMS(check="off").kernel
    return dict(
        commands=kernel.command_names(),
        signatures=kernel.command_signatures(),
        globals_names=kernel.catalog_names(),
        procedures=kernel.interpreter.procedures,
    )


def expected_code(path: Path) -> str:
    for line in path.read_text().splitlines():
        if line.startswith("# expect:"):
            return line.split(":", 1)[1].strip()
    raise AssertionError(f"{path.name} has no '# expect:' header")


def decode_expr(obj):
    """Tiny JSON -> Moa expression decoder for the corpus artifacts."""
    ((key, value),) = obj.items()
    if key == "var":
        return Var(value)
    if key == "const":
        return Const(value)
    if key == "arith":
        op, left, right = value
        return Arith(op, decode_expr(left), decode_expr(right))
    if key == "map":
        return Map(
            value["var"], decode_expr(value["body"]), decode_expr(value["source"])
        )
    if key == "apply":
        return Apply(
            value["extension"],
            value["operator"],
            [decode_expr(arg) for arg in value["args"]],
        )
    if key == "cmp":
        op, left, right = value
        return Cmp(op, decode_expr(left), decode_expr(right))
    if key == "select":
        return Select(
            value["var"], decode_expr(value["pred"]), decode_expr(value["source"])
        )
    if key == "aggregate":
        return Aggregate(value["kind"], decode_expr(value["source"]))
    if key == "setop":
        op, left, right = value
        return SetOp(op, decode_expr(left), decode_expr(right))
    raise AssertionError(f"unknown expression node {key!r}")


def test_corpus_is_present():
    assert len(MIL_PLANS) >= 10
    assert len(JSON_PLANS) >= 3
    assert len(PROGRAM_PLANS) >= 6
    assert len(EQUIV_PLANS) >= 3


@pytest.mark.parametrize("path", MIL_PLANS, ids=lambda p: p.stem)
def test_mil_badplan_yields_exactly_its_code(path, env):
    expect = expected_code(path)
    source = path.read_text()
    report = FlowChecker(**env).check_source(source, name=path.name)
    report.extend(RaceChecker(**env).check_source(source, name=path.name))
    assert [d.code for d in report] == [expect], report.format()


@pytest.mark.parametrize("path", JSON_PLANS, ids=lambda p: p.stem)
def test_json_badplan_yields_exactly_its_code(path):
    data = json.loads(path.read_text())
    if data["kind"] == "moa":
        report = check_moa_flow(decode_expr(data["expr"]), source=path.name)
    else:
        report = check_feature_set(
            data["streams"], duration=data.get("duration"), source=path.name
        )
    assert [d.code for d in report] == [data["expect"]], report.format()


@pytest.mark.parametrize("path", PROGRAM_PLANS, ids=lambda p: p.stem)
def test_program_badplan_yields_exactly_its_code(path, env):
    expect = expected_code(path)
    report = ProgramChecker(**env).check_source(path.read_text(), name=path.name)
    expected = [] if expect == "none" else [expect]
    assert [d.code for d in report] == expected, report.format()


@pytest.mark.parametrize("path", EQUIV_PLANS, ids=lambda p: p.stem)
def test_equiv_badplan_yields_exactly_its_code(path):
    data = json.loads(path.read_text())
    certificate, report = validate_translation(
        decode_expr(data["expr"]),
        data["mil"],
        data["proc"],
        data["inputs"],
        source=path.name,
    )
    assert [d.code for d in report] == [data["expect"]], report.format()
    if data["expect"] == "EQ001":
        assert certificate is not None
        assert certificate.to_dict()["artifact"] == "repro.equivcert/1"
    else:
        assert certificate is None


def test_corpus_covers_every_static_code():
    codes = {expected_code(p) for p in MIL_PLANS}
    codes |= {json.loads(p.read_text())["expect"] for p in JSON_PLANS}
    codes |= {expected_code(p) for p in PROGRAM_PLANS}
    codes |= {json.loads(p.read_text())["expect"] for p in EQUIV_PLANS}
    assert {
        "FLOW001",
        "FLOW002",
        "FLOW003",
        "FLOW004",
        "FLOW005",
        "FLOW006",
        "RACE001",
        "RACE002",
        "RACE003",
        "RACE004",
        "CALL001",
        "CALL002",
        "CALL003",
        "CALL004",
        "EQ001",
        "EQ002",
        "EQ003",
    } <= codes


def test_call004_is_invisible_to_intraprocedural_racecheck(env):
    """The acceptance criterion: the CALL004 corpus plan is clean under
    every intraprocedural pass — only the whole-program pass catches it."""
    source = (BADPLANS / "program" / "call004_parallel_callee_write.mil").read_text()
    report = RaceChecker(**env).check_source(source, name="call004")
    assert [d.code for d in report] == [], report.format()
