"""Diagnostic model edge cases: modes, locations, ordering, suggestions."""

import random

import pytest

from repro.check.diagnostics import (
    CheckMode,
    Diagnostic,
    DiagnosticReport,
    Severity,
)
from repro.errors import DiagnosticError, MoaNameError
from repro.moa.extension import ExtensionRegistry, MoaExtension


# ---------------------------------------------------------------------------
# CheckMode
# ---------------------------------------------------------------------------


class TestCheckMode:
    def test_of_accepts_strings_and_instances(self):
        assert CheckMode.of("error") is CheckMode.ERROR
        assert CheckMode.of("sanitize") is CheckMode.SANITIZE
        assert CheckMode.of(CheckMode.WARN) is CheckMode.WARN

    def test_of_bad_input_lists_valid_modes(self):
        with pytest.raises(ValueError) as err:
            CheckMode.of("strcit")
        message = str(err.value)
        assert "strcit" in message
        for mode in ("error", "warn", "off", "sanitize"):
            assert mode in message

    def test_raises_and_checks_properties(self):
        assert CheckMode.ERROR.raises and CheckMode.SANITIZE.raises
        assert not CheckMode.WARN.raises and not CheckMode.OFF.raises
        assert CheckMode.WARN.checks and not CheckMode.OFF.checks


# ---------------------------------------------------------------------------
# locations
# ---------------------------------------------------------------------------


class TestLocation:
    def test_line_and_column(self):
        d = Diagnostic("X001", "m", source="plan.mil", line=5, col=3)
        assert d.location() == "plan.mil:5:3"
        assert str(d).startswith("plan.mil:5:3: error X001 ")

    def test_multi_line_span(self):
        d = Diagnostic("X001", "m", source="plan.mil", line=5, end_line=7)
        assert d.location() == "plan.mil:5-7"

    def test_column_takes_precedence_over_span(self):
        d = Diagnostic("X001", "m", source="s", line=5, col=2, end_line=7)
        assert d.location() == "s:5:2"

    def test_degenerate_span_collapses(self):
        d = Diagnostic("X001", "m", source="s", line=5, end_line=5)
        assert d.location() == "s:5"

    def test_missing_source_renders_placeholder(self):
        assert Diagnostic("X001", "m").location() == "<input>"

    def test_to_dict_omits_none_fields(self):
        d = Diagnostic("X001", "m", Severity.WARNING, source="s", line=2)
        assert d.to_dict() == {
            "code": "X001",
            "severity": "warning",
            "message": "m",
            "source": "s",
            "line": 2,
        }


# ---------------------------------------------------------------------------
# report ordering and truthiness
# ---------------------------------------------------------------------------


def _scrambled_report():
    diagnostics = [
        Diagnostic("B002", "later code", source="a.mil", line=3),
        Diagnostic("A001", "earlier code", source="a.mil", line=3),
        Diagnostic("A001", "later column", source="a.mil", line=3, col=9),
        Diagnostic("A001", "later line", source="a.mil", line=8),
        Diagnostic("A001", "later file", source="b.mil", line=1),
    ]
    shuffled = list(diagnostics)
    random.Random(7).shuffle(shuffled)
    return DiagnosticReport(shuffled)


class TestReport:
    def test_empty_report_is_falsy(self):
        report = DiagnosticReport()
        assert not report
        assert len(report) == 0
        assert report.format() == ""
        report.raise_if_errors("context")  # no-op without errors

    def test_sorted_is_deterministic_file_line_col_code(self):
        messages = [d.message for d in _scrambled_report().sorted()]
        assert messages == [
            "earlier code",
            "later code",
            "later column",
            "later line",
            "later file",
        ]

    def test_format_renders_one_sorted_line_each(self):
        lines = _scrambled_report().format().splitlines()
        assert len(lines) == 5
        assert lines[0].startswith("a.mil:3: error A001 ")
        assert lines[-1].startswith("b.mil:1: error A001 ")

    def test_raise_if_errors_carries_sorted_diagnostics(self):
        with pytest.raises(DiagnosticError) as err:
            _scrambled_report().raise_if_errors("ctx")
        messages = [d.message for d in err.value.diagnostics]
        assert messages == [
            "earlier code",
            "later code",
            "later column",
            "later line",
            "later file",
        ]
        assert "ctx: 5 static errors" in str(err.value)

    def test_warnings_do_not_raise(self):
        report = DiagnosticReport(
            [Diagnostic("W001", "just a warning", Severity.WARNING)]
        )
        report.raise_if_errors("ctx")
        assert report and not report.has_errors()


# ---------------------------------------------------------------------------
# MoaNameError suggestions
# ---------------------------------------------------------------------------


class _StubExtension(MoaExtension):
    def __init__(self, name, operators=()):
        self.name = name
        self._operators = {op: (lambda *a: None) for op in operators}

    def operators(self):
        return dict(self._operators)


class TestSuggestions:
    def registry(self):
        registry = ExtensionRegistry()
        registry.register(_StubExtension("video", ("features", "shots")))
        registry.register(_StubExtension("rules"))
        return registry

    def test_closest_extension_ranks_first(self):
        with pytest.raises(MoaNameError) as err:
            self.registry().get("vidoe")
        assert err.value.suggestions[0] == "video"
        assert "did you mean" in str(err.value)

    def test_closest_operator_ranks_first(self):
        with pytest.raises(MoaNameError) as err:
            self.registry().invoke("video", "shotz", [])
        assert err.value.suggestions[0] == "shots"

    def test_no_near_miss_means_no_hint(self):
        with pytest.raises(MoaNameError) as err:
            self.registry().get("zzzzzz")
        assert err.value.suggestions == []
        assert "did you mean" not in str(err.value)
