"""Online shard splitting: the five-phase migration protocol, crash-safe
recovery at every kill point, dual-read degraded gathers, fenced cutover,
bounded-staleness catch-up, and the SHARD005/SHARD006 static checks."""

import json

import pytest

from repro.check.diagnostics import Severity
from repro.check.shardcheck import check_fleet_config
from repro.errors import (
    FencedWriteError,
    MigrationError,
    MigrationLagError,
    RequestCancelled,
    ShardConfigError,
    ShardingCheckError,
    ShardingError,
    SimulatedCrash,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.resilience import CancellationToken, cancel_scope
from repro.sharding import (
    MIGRATION_KILL_POINTS,
    HashRing,
    ShardConfig,
    ShardCoverageReport,
    ShardedKernel,
)
from repro.sharding.chaos import (
    MIGRATION_KILL_SITES,
    migration_kill_sweep,
    split_under_load_scenario,
)
from repro.synth.annotations import Interval

from tests.test_sharding import make_document

#: On the two-shard ring shard-1 owns race0/race2/race3/race5 and shard-0
#: owns race1/race4; adding shard-2 remaps exactly race2.
VIDS = ["race0", "race1", "race2", "race3", "race4", "race5"]
PILOT = "race2"


def make_fleet(tmp_path, shards=2, faults=None, **overrides):
    overrides.setdefault("fsync", False)
    return ShardedKernel(
        tmp_path, shards=shards, config=ShardConfig(**overrides), faults=faults
    )


def populate(fleet, vids=VIDS):
    docs = {}
    for vid in vids:
        docs[vid] = make_document(vid)
        fleet.register_document(docs[vid], "f1")
    return docs


# ---------------------------------------------------------------------------
# the ring under growth
# ---------------------------------------------------------------------------


class TestRingExtension:
    def test_extension_moves_the_minimal_key_set(self):
        """Adding a shard steals only the keys its own vnode arcs cover;
        every other key keeps its owner."""
        two = HashRing(["shard-0", "shard-1"])
        three = two.extended("shard-2")
        keys = [f"race{i}" for i in range(50)]
        moved = [k for k in keys if two.owner(k) != three.owner(k)]
        assert moved  # the new shard owns something
        for key in moved:
            assert three.owner(key) == "shard-2"

    def test_extension_equals_a_fresh_ring(self):
        grown = HashRing(["shard-0", "shard-1"]).extended("shard-2")
        fresh = HashRing(["shard-0", "shard-1", "shard-2"])
        keys = [f"race{i}" for i in range(50)]
        assert [grown.owner(k) for k in keys] == [fresh.owner(k) for k in keys]
        assert grown.shards == fresh.shards

    def test_extension_rejects_duplicates(self):
        ring = HashRing(["shard-0"])
        with pytest.raises(ShardingError, match="already on the ring"):
            ring.extended("shard-0")


# ---------------------------------------------------------------------------
# the five-phase protocol
# ---------------------------------------------------------------------------


class TestMigrationProtocol:
    def test_full_protocol_moves_ownership(self, tmp_path):
        fleet = make_fleet(tmp_path)
        populate(fleet)
        remapped = fleet.add_shard("shard-2")
        assert remapped == [PILOT]
        assert fleet.shard_names() == ["shard-0", "shard-1", "shard-2"]

        migrations = fleet.migrations
        state = migrations.plan(PILOT)
        assert state.src == "shard-1" and state.dst == "shard-2"
        assert migrations.in_flight() == {PILOT: "planned"}
        migrations.copy(PILOT)
        # ownership does not flip at copy time: reads still hit the source
        assert fleet.placements()[PILOT] == "shard-1"
        migrations.cutover(PILOT)
        assert fleet.placements()[PILOT] == "shard-2"
        migrations.retire(PILOT)
        assert migrations.in_flight() == {}
        result = fleet.query("RETRIEVE fly_out")
        assert len(result.records) == len(VIDS)
        assert fleet.convergence_report() == []
        fleet.close()

    def test_phase_order_is_enforced(self, tmp_path):
        fleet = make_fleet(tmp_path)
        populate(fleet)
        fleet.add_shard("shard-2")
        migrations = fleet.migrations
        with pytest.raises(MigrationError, match="no migration in flight"):
            migrations.state(PILOT)
        migrations.plan(PILOT)
        with pytest.raises(MigrationError):
            migrations.cutover(PILOT)  # cannot cut over an uncopied plan
        with pytest.raises(MigrationError):
            migrations.retire(PILOT)
        with pytest.raises(MigrationError):
            migrations.plan(PILOT)  # already in flight
        fleet.close()

    def test_split_is_idempotent(self, tmp_path):
        fleet = make_fleet(tmp_path)
        populate(fleet)
        report = fleet.split("shard-2")
        assert report.added
        assert [m[0] for m in report.moves] == [PILOT]
        again = fleet.split("shard-2")
        assert not again.added and again.moves == ()
        assert fleet.convergence_report() == []
        fleet.close()

    def test_split_respects_cancellation(self, tmp_path):
        fleet = make_fleet(tmp_path)
        populate(fleet)
        token = CancellationToken(None)
        token.cancel()
        with cancel_scope(token):
            with pytest.raises(RequestCancelled):
                fleet.split("shard-2")
        fleet.close()

    def test_rebalance_respects_cancellation(self, tmp_path):
        fleet = make_fleet(tmp_path, shards=3)
        populate(fleet)
        fleet.mark_dead("shard-1")
        token = CancellationToken(None)
        token.cancel()
        with cancel_scope(token):
            with pytest.raises(RequestCancelled):
                fleet.rebalance()
        fleet.close()


# ---------------------------------------------------------------------------
# dual reads while a copy is in flight
# ---------------------------------------------------------------------------


class TestDualRead:
    def test_partitioned_source_is_answered_through_the_destination(
        self, tmp_path
    ):
        plan = FaultPlan(
            seed=9,
            name="cut-the-source",
            specs=(
                FaultSpec(
                    site="sharding.transport:shard-1",
                    kind="partition",
                    max_triggers=1,
                ),
            ),
        )
        fleet = make_fleet(tmp_path, faults=FaultInjector(plan))
        populate(fleet)
        fleet.add_shard("shard-2")
        fleet.migrations.plan(PILOT)
        fleet.migrations.copy(PILOT)

        result = fleet.query("RETRIEVE fly_out")
        coverage = result.coverage
        assert coverage.timed_out == ("shard-1",)
        assert coverage.migrating == 1
        assert coverage.dual_read == 1
        # shard-0's two documents plus the pilot through its half-built copy
        assert coverage.documents_covered == 3
        pilot_rows = [r for r in result.records if r["video_id"] == PILOT]
        assert len(pilot_rows) == 1
        fleet.close()

    def test_healthy_gather_reports_the_migration_but_no_dual_read(
        self, tmp_path
    ):
        fleet = make_fleet(tmp_path)
        populate(fleet)
        fleet.add_shard("shard-2")
        fleet.migrations.plan(PILOT)
        fleet.migrations.copy(PILOT)
        coverage = fleet.query("RETRIEVE fly_out").coverage
        assert coverage.complete
        assert coverage.migrating == 1 and coverage.dual_read == 0
        fleet.close()

    def test_dual_read_never_duplicates_rows(self, tmp_path):
        """Post-cutover the rows exist on both shards; the ownership
        filter must pick exactly one side."""
        fleet = make_fleet(tmp_path)
        populate(fleet)
        fleet.add_shard("shard-2")
        migrations = fleet.migrations
        migrations.plan(PILOT)
        migrations.copy(PILOT)
        migrations.cutover(PILOT)  # both sides now hold the pilot's rows
        result = fleet.query("RETRIEVE fly_out")
        assert len(result.records) == len(VIDS)
        assert [r for r in result.records if r["video_id"] == PILOT]
        fleet.close()


# ---------------------------------------------------------------------------
# bounded-staleness catch-up and the fenced cutover
# ---------------------------------------------------------------------------


class TestCatchUpAndFencing:
    def test_cutover_refused_above_the_lag_floor(self, tmp_path):
        fleet = make_fleet(tmp_path)
        docs = populate(fleet)
        fleet.add_shard("shard-2")
        migrations = fleet.migrations
        migrations.plan(PILOT)
        migrations.copy(PILOT)
        event = docs[PILOT].new_event(
            "passing", Interval(30.0, 36.0), 0.8, {}, "dbn"
        )
        assert fleet.store_event(PILOT, event) == "shard-1"
        assert migrations.lag(PILOT) == 1
        with pytest.raises(MigrationLagError) as exc:
            migrations.cutover(PILOT)
        assert exc.value.lag == 1 and exc.value.floor == 0
        shipped = migrations.catch_up(PILOT)
        assert shipped == 1 and migrations.lag(PILOT) == 0
        migrations.cutover(PILOT)
        migrations.retire(PILOT)
        assert fleet.convergence_report() == []
        fleet.close()

    def test_nonzero_floor_tolerates_bounded_staleness(self, tmp_path):
        fleet = make_fleet(tmp_path, catchup_lag_floor=1)
        docs = populate(fleet)
        fleet.add_shard("shard-2")
        migrations = fleet.migrations
        migrations.plan(PILOT)
        migrations.copy(PILOT)
        event = docs[PILOT].new_event(
            "passing", Interval(30.0, 36.0), 0.8, {}, "dbn"
        )
        fleet.store_event(PILOT, event)
        migrations.cutover(PILOT)  # lag 1 <= floor 1: allowed
        migrations.retire(PILOT)  # retire drains the tail before verifying
        assert fleet.convergence_report() == []
        fleet.close()

    def test_stale_intent_is_fenced_after_cutover(self, tmp_path):
        fleet = make_fleet(tmp_path)
        docs = populate(fleet)
        fleet.add_shard("shard-2")
        migrations = fleet.migrations
        migrations.plan(PILOT)
        migrations.copy(PILOT)
        stale = fleet.write_intent(PILOT)
        assert stale.owner == "shard-1"
        migrations.cutover(PILOT)
        event = docs[PILOT].new_event(
            "pit_stop", Interval(50.0, 58.0), 0.7, {}, "dbn"
        )
        with pytest.raises(FencedWriteError):
            stale.apply(event)
        fleet.close()

    def test_store_event_retries_once_under_a_fresh_intent(
        self, tmp_path, monkeypatch
    ):
        """The cutover race: an intent captured just before the epoch
        bump must fence, and the write lands on the new owner on the
        single retry."""
        fleet = make_fleet(tmp_path)
        docs = populate(fleet)
        fleet.add_shard("shard-2")
        migrations = fleet.migrations
        migrations.plan(PILOT)
        migrations.copy(PILOT)
        stale = fleet.write_intent(PILOT)
        migrations.cutover(PILOT)
        real = migrations.write_intent
        handed_out = []

        def racy_intent(video_id):
            if not handed_out:
                handed_out.append(video_id)
                return stale
            return real(video_id)

        monkeypatch.setattr(migrations, "write_intent", racy_intent)
        event = docs[PILOT].new_event(
            "pit_stop", Interval(50.0, 58.0), 0.7, {}, "dbn"
        )
        assert fleet.store_event(PILOT, event) == "shard-2"
        assert fleet.migration_fenced_retries == 1
        migrations.retire(PILOT)
        assert fleet.convergence_report() == []
        fleet.close()


# ---------------------------------------------------------------------------
# crash-safe recovery
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("reference")
        fleet = make_fleet(base)
        populate(fleet)
        fleet.split("shard-2")
        snapshot = {
            "placements": fleet.placements(),
            "records": json.dumps(
                fleet.query("RETRIEVE fly_out").records,
                sort_keys=True,
                default=repr,
            ),
        }
        assert fleet.convergence_report() == []
        fleet.close()
        return snapshot

    @pytest.mark.parametrize("site", MIGRATION_KILL_POINTS + (f"sharding.migrate:{PILOT}",))
    def test_kill_point_recovers_to_the_reference_state(
        self, tmp_path, site, reference
    ):
        plan = FaultPlan(
            seed=3,
            name=f"kill@{site}",
            specs=(FaultSpec(site=site, kind="kill", max_triggers=1),),
        )
        fleet = make_fleet(tmp_path, faults=FaultInjector(plan))
        docs = populate(fleet)
        with pytest.raises(SimulatedCrash):
            fleet.split("shard-2")
        fleet.close()

        recovered = make_fleet(tmp_path)
        # recovery swept every in-doubt migration forward or back
        assert recovered.migrations.in_flight() == {}
        for doc in docs.values():
            recovered.register_document(doc, "f1")
        recovered.split("shard-2")
        assert recovered.placements() == reference["placements"]
        records = json.dumps(
            recovered.query("RETRIEVE fly_out").records,
            sort_keys=True,
            default=repr,
        )
        assert records == reference["records"]
        assert recovered.convergence_report() == []
        recovered.close()

    def test_mid_migration_write_survives_a_cutover_crash(self, tmp_path):
        """The journaled pending tail: a write accepted during the copy
        phase must reach the destination through recovery."""
        plan = FaultPlan(
            seed=3,
            name="kill@cutover",
            specs=(
                FaultSpec(
                    site="migration:cutover", kind="kill", max_triggers=1
                ),
            ),
        )
        fleet = make_fleet(tmp_path, faults=FaultInjector(plan))
        docs = populate(fleet)
        fleet.add_shard("shard-2")
        migrations = fleet.migrations
        migrations.plan(PILOT)
        migrations.copy(PILOT)
        event = docs[PILOT].new_event(
            "passing", Interval(30.0, 36.0), 0.8, {}, "dbn"
        )
        fleet.store_event(PILOT, event)
        migrations.catch_up(PILOT)
        with pytest.raises(SimulatedCrash):
            migrations.cutover(PILOT)
        fleet.close()

        recovered = make_fleet(tmp_path)
        assert recovered.migrations.in_flight() == {}
        assert recovered.placements()[PILOT] == "shard-2"
        result = recovered.query("RETRIEVE passing")
        assert [r["video_id"] for r in result.records] == [PILOT]
        for doc in docs.values():
            recovered.register_document(doc, "f1")
        assert recovered.convergence_report() == []
        recovered.close()


# ---------------------------------------------------------------------------
# configuration validation and the static checks
# ---------------------------------------------------------------------------


class TestConfigValidation:
    @pytest.mark.parametrize("floor", [-0.1, 1.5])
    def test_min_coverage_outside_the_unit_interval(self, tmp_path, floor):
        with pytest.raises(ShardConfigError):
            make_fleet(tmp_path, min_coverage=floor)

    def test_negative_lag_floor(self, tmp_path):
        with pytest.raises(ShardConfigError):
            make_fleet(tmp_path, catchup_lag_floor=-1)

    def test_shard_config_error_is_a_value_error(self):
        assert issubclass(ShardConfigError, ValueError)

    def test_per_query_floor_is_validated(self, tmp_path):
        fleet = make_fleet(tmp_path)
        populate(fleet, vids=["race0"])
        with pytest.raises(ShardConfigError):
            fleet.query("RETRIEVE fly_out", min_coverage=2.0)
        fleet.close()


class TestMigrationChecks:
    def test_shard005_rejects_unaccounted_migration(self, tmp_path):
        report = check_fleet_config(
            ShardConfig(migration_accounting=False), ["shard-0", "shard-1"]
        )
        [diag] = list(report)
        assert diag.code == "SHARD005" and diag.severity == Severity.ERROR
        with pytest.raises(ShardingCheckError, match="SHARD005"):
            make_fleet(tmp_path, migration_accounting=False)

    def test_shard006_rejects_unfenced_cutover(self, tmp_path):
        report = check_fleet_config(
            ShardConfig(migration_fencing=False), ["shard-0", "shard-1"]
        )
        [diag] = list(report)
        assert diag.code == "SHARD006" and diag.severity == Severity.ERROR
        with pytest.raises(ShardingCheckError, match="SHARD006"):
            make_fleet(tmp_path, migration_fencing=False)


# ---------------------------------------------------------------------------
# the coverage report across the wire
# ---------------------------------------------------------------------------


class TestCoverageRoundTrip:
    def test_round_trip_preserves_the_migration_counters(self):
        report = ShardCoverageReport(
            plan="sequential",
            targeted=("shard-0", "shard-1"),
            answered=("shard-0",),
            hedged=(),
            shed=(),
            timed_out=("shard-1",),
            dead=(),
            documents_total=6,
            documents_covered=3,
            migrating=1,
            dual_read=1,
        )
        wire = json.loads(json.dumps(report.to_dict()))
        assert ShardCoverageReport.from_dict(wire) == report

    def test_from_dict_tolerates_pre_migration_payloads(self):
        """Reports written before the split subsystem existed have no
        migrating/dual_read keys; they deserialize as zero."""
        report = ShardCoverageReport(
            plan="sequential",
            targeted=("shard-0",),
            answered=("shard-0",),
            hedged=(),
            shed=(),
            timed_out=(),
            dead=(),
            documents_total=1,
            documents_covered=1,
        )
        payload = report.to_dict()
        del payload["migrating"], payload["dual_read"]
        assert ShardCoverageReport.from_dict(payload) == report

    def test_service_report_carries_the_gather_coverage(self, tmp_path):
        from repro.cobra.vdbms import CobraVDBMS
        from repro.service import QueryService

        fleet = make_fleet(tmp_path)
        populate(fleet, vids=["race0", "race1"])
        service = QueryService(CobraVDBMS(check="off"), fleet=fleet)
        service.submit_query("RETRIEVE fly_out")
        service.run_until_idle()
        report = service.shutdown()
        wire = json.loads(json.dumps(report.to_dict()))
        [query_record] = [
            r for r in wire["records"] if r["kind"] == "query"
        ]
        restored = ShardCoverageReport.from_dict(query_record["coverage"])
        assert restored.documents_total == 2
        assert restored.migrating == 0 and restored.dual_read == 0
        assert wire["sharding"]["shards"]


# ---------------------------------------------------------------------------
# the seeded scenario and kill sweep
# ---------------------------------------------------------------------------


class TestSplitChaos:
    def test_scenario_converges_and_is_deterministic(self, tmp_path):
        first = split_under_load_scenario(tmp_path / "a", fsync=False)
        assert first.ok, first.describe()
        assert first.dual_read_coverage["dual_read"] == 1
        assert first.dual_read_coverage["migrating"] == 1
        assert first.lag_refusal == {"lag": 1, "floor": 0}
        second = split_under_load_scenario(tmp_path / "b", fsync=False)
        assert first.to_dict() == second.to_dict()

    def test_kill_sweep_recovers_every_site(self, tmp_path):
        sweep = migration_kill_sweep(tmp_path, fsync=False)
        assert sweep.ok, sweep.describe()
        assert len(sweep.results) == len(MIGRATION_KILL_SITES)
