"""Moa→MIL translation validation: abstract semantics, EQnnn, certificates.

The validator must certify every built-in plan (including the Fig. 4
``parallelHmm``-path gate), catch a deliberately mutated rewrite (EQ002),
decline gracefully on constructs outside the abstract algebra (EQ003),
and gate compiled-execution eligibility on the certificate.
"""

import pytest

from repro.check.equivcheck import (
    EquivalenceCertificate,
    abstract_mil,
    abstract_moa,
    normalize,
    validate_translation,
)
from repro.cobra.preprocessor import eligible_for_compiled_execution
from repro.errors import MoaCheckError
from repro.moa.algebra import Aggregate, Cmp, Const, Join, Select, Var
from repro.moa.rewrite import MoaCompiler, builtin_moa_plans
from repro.monet.kernel import MonetKernel


@pytest.fixture()
def kernel():
    return MonetKernel(check="warn")


# ---------------------------------------------------------------------------
# the abstract semantics
# ---------------------------------------------------------------------------


class TestAbstraction:
    def test_moa_and_mil_sides_meet_in_the_same_term(self):
        expr = Select("e", Cmp(">", Var("e"), Const(0.6)), Var("excitement"))
        mil = (
            "PROC p(BAT[void,dbl] excitement) : any := {\n"
            '  VAR t0 := mselect(excitement, ">", 0.6);\n'
            "  RETURN t0;\n"
            "}\n"
        )
        assert abstract_moa(expr) == abstract_mil(mil, "p", ["excitement"])

    def test_adjacent_selections_commute_under_normalization(self):
        # moa applies (>0.2) then (<0.8); the plan emits them reversed —
        # multiset semantics says both keep exactly the same associations
        expr = Select(
            "e",
            Cmp("<", Var("e"), Const(0.8)),
            Select("e", Cmp(">", Var("e"), Const(0.2)), Var("x")),
        )
        mil = (
            "PROC p(BAT[void,dbl] x) : any := {\n"
            '  VAR t0 := mselect(x, "<", 0.8);\n'
            '  VAR t1 := mselect(t0, ">", 0.2);\n'
            "  RETURN t1;\n"
            "}\n"
        )
        assert normalize(abstract_moa(expr)) == normalize(
            abstract_mil(mil, "p", ["x"])
        )

    def test_map_does_not_commute_with_select(self):
        certificate, report = validate_translation(
            Select("e", Cmp(">", Var("e"), Const(0.5)), Var("x")),
            (
                "PROC p(BAT[void,dbl] x) : any := {\n"
                '  VAR t0 := mmap(x, "+", 0.0);\n'
                '  VAR t1 := mselect(t0, ">", 0.5);\n'
                "  RETURN t1;\n"
                "}\n"
            ),
            "p",
            ["x"],
        )
        assert certificate is None
        assert [d.code for d in report] == ["EQ002"]

    def test_int_and_float_literals_are_quotiented(self):
        expr = Select("e", Cmp(">", Var("e"), Const(1)), Var("x"))
        mil = (
            "PROC p(BAT[void,dbl] x) : any := {\n"
            '  VAR t0 := mselect(x, ">", 1.0);\n'
            "  RETURN t0;\n"
            "}\n"
        )
        certificate, report = validate_translation(expr, mil, "p", ["x"])
        assert [d.code for d in report] == ["EQ001"]
        assert certificate is not None


# ---------------------------------------------------------------------------
# the compiler integration
# ---------------------------------------------------------------------------


class TestCompilerValidation:
    def test_every_builtin_plan_is_certified(self, kernel):
        compiler = MoaCompiler(kernel, check="warn")
        plans = builtin_moa_plans()
        assert "excitementGate" in plans  # the Fig. 4 parallelHmm path
        for name, expr in plans.items():
            plan = compiler.compile(expr)
            assert plan.equivalence is not None, name
            assert plan.equivalence.to_dict()["artifact"] == "repro.equivcert/1"
            assert eligible_for_compiled_execution(plan), name

    def test_mutated_select_emission_trips_eq002(self, kernel):
        class MutatedCompiler(MoaCompiler):
            def _emit_select(self, tmp, src, op, value):
                return super()._emit_select(tmp, src, "<", value)

        compiler = MutatedCompiler(kernel, check="error")
        with pytest.raises(MoaCheckError) as err:
            compiler.compile(builtin_moa_plans()["excitementGate"])
        assert "EQ002" in [d.code for d in err.value.diagnostics]

    def test_mutation_under_check_warn_yields_uncertified_plan(self, kernel):
        class MutatedCompiler(MoaCompiler):
            def _emit_select(self, tmp, src, op, value):
                return super()._emit_select(tmp, src, "<", value)

        compiler = MutatedCompiler(kernel, check="warn")
        plan = compiler.compile(builtin_moa_plans()["excitementGate"])
        assert plan.equivalence is None
        assert not eligible_for_compiled_execution(plan)
        assert "EQ002" in [d.code for d in compiler.diagnostics]

    def test_check_off_plans_are_not_eligible(self, kernel):
        compiler = MoaCompiler(kernel, check="off")
        plan = compiler.compile(builtin_moa_plans()["excitementGate"])
        assert plan.equivalence is None
        assert not eligible_for_compiled_execution(plan)

    def test_certified_plan_still_computes_the_right_answer(self, kernel):
        from repro.monet.bat import BAT

        compiler = MoaCompiler(kernel, check="error")
        plan = compiler.compile(builtin_moa_plans()["excitementGate"])
        bat = BAT("void", "dbl")
        bat.insert_bulk([0, 1, 2, 3], [0.2, 0.7, 0.9, 0.5])
        result = compiler.execute(plan, excitement=bat)
        assert sorted(result.tails()) == [0.7, 0.9]


# ---------------------------------------------------------------------------
# EQ003 and certificates
# ---------------------------------------------------------------------------


class TestFallbackAndCertificates:
    def test_unsupported_moa_construct_is_advisory(self):
        join = Join(
            "a",
            "b",
            Cmp("=", Var("a"), Var("b")),
            Var("left"),
            Var("right"),
            Var("a"),
        )
        certificate, report = validate_translation(
            join, "PROC p() : any := { RETURN 0; }", "p"
        )
        assert certificate is None
        codes = [(d.code, d.severity.name) for d in report]
        assert codes == [("EQ003", "WARNING")]

    def test_unsupported_mil_construct_is_advisory(self):
        certificate, report = validate_translation(
            Aggregate("sum", Var("x")),
            "PROC p(BAT[void,dbl] x) : any := {\n  VAR t0 := x.sum();\n  RETURN t0;\n}\n",
            "p",
            ["x"],
        )
        assert certificate is None
        assert [d.code for d in report] == ["EQ003"]

    def test_certificate_round_trips_through_dict(self):
        certificate, _ = validate_translation(
            Aggregate("avg", Var("x")),
            'PROC p(BAT[void,dbl] x) : any := {\n  VAR t0 := maggr(x, "avg");\n  RETURN t0;\n}\n',
            "p",
            ["x"],
        )
        payload = certificate.to_dict()
        assert payload["artifact"] == "repro.equivcert/1"
        restored = EquivalenceCertificate.from_dict(payload)
        assert restored == certificate

    def test_from_dict_rejects_foreign_artifacts(self):
        with pytest.raises(ValueError):
            EquivalenceCertificate.from_dict({"artifact": "repro.fusionplan/1"})
