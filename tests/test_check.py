"""Static checkers: every diagnostic code fires on bad input, none on seed artifacts."""

from pathlib import Path

import numpy as np
import pytest

from repro.bayes.cpd import TabularCpd
from repro.bayes.network import BayesianNetwork
from repro.check import (
    Severity,
    check_cpd,
    check_mil_source,
    check_moa_expr,
    check_network,
    check_template,
)
from repro.check.__main__ import main as check_main
from repro.dbn.template import DbnTemplate
from repro.errors import (
    GraphStructureError,
    MilCheckError,
    MilSyntaxError,
    MoaCheckError,
    MoaError,
    MoaNameError,
    ModelCheckError,
)
from repro.moa.algebra import (
    Aggregate,
    Apply,
    Cmp,
    Const,
    Field,
    MakeTuple,
    Select,
    Var,
)
from repro.moa.extension import ExtensionRegistry, MoaExtension
from repro.monet.kernel import MonetKernel
from repro.monet.module import CommandSignature

REPO_ROOT = Path(__file__).resolve().parents[1]


# ---------------------------------------------------------------------------
# MIL checker
# ---------------------------------------------------------------------------

MIL_SIGNATURES = {
    "score": CommandSignature("score", ("int",), "flt"),
    "print": CommandSignature("print", ("any",), "any", varargs=True),
}


def mil_report(source):
    return check_mil_source(
        source, commands=set(MIL_SIGNATURES), signatures=MIL_SIGNATURES
    )


MIL_BAD_CASES = [
    ("MIL000", "PROC bad( := {}"),
    ("MIL001", "PROC p() := { RETURN missing; }"),
    ("MIL002", "PROC p() := { x := 1; }"),
    ("MIL003", "PROC p() := { VAR x := 1; VAR x := 2; print(x); }"),
    ("MIL004", "PROC p() := { scroe(1); }"),
    ("MIL005", "PROC p() := { score(1, 2); }"),
    ("MIL006", 'PROC p() := { score("a"); }'),
    ("MIL007", "PROC p() := { VAR b := new(void, int); print(b.revrese); }"),
    ("MIL008", "PROC p() := { VAR b := new(void, int); print(b.find(1, 2)); }"),
    ("MIL009", "PROC p() : int := { RETURN 1; score(2); }"),
    ("MIL010", "PROC p() : int := { score(1); }"),
    ("MIL011", "PROC p() := { VAR b := new(void, wrong); print(b); }"),
    ("MIL012", "PROC p(int x, int x) := { RETURN x; }"),
    ("MIL013", "PROC p() := { VAR unused := 1; }"),
    ("MIL014", 'PROC p() : int := { RETURN "hello"; }'),
]


class TestMilChecker:
    @pytest.mark.parametrize(
        "code,source", MIL_BAD_CASES, ids=[c for c, _ in MIL_BAD_CASES]
    )
    def test_code_fires_on_bad_input(self, code, source):
        assert code in mil_report(source).codes()

    def test_duplicate_procedure_is_mil012(self):
        source = "PROC p() := { print(1); }  PROC p() := { print(2); }"
        assert "MIL012" in mil_report(source).codes()

    def test_clean_procedure_has_no_findings(self):
        source = """
        PROC p(int x) : flt := {
          VAR s := score(x);
          RETURN s;
        }
        """
        assert len(mil_report(source)) == 0

    def test_forward_reference_between_procs_is_clean(self):
        source = """
        PROC caller(int x) : flt := { RETURN callee(x); }
        PROC callee(int x) : flt := { RETURN score(x); }
        """
        assert len(mil_report(source)) == 0

    def test_bat_type_propagates_through_method_chain(self):
        # find on a reversed [void,int] BAT takes an int key, not a str
        source = """
        PROC p() : oid := {
          VAR b := new(void, int);
          RETURN (b.reverse).find("nope");
        }
        """
        assert "MIL006" in mil_report(source).codes()

    def test_diagnostics_carry_source_and_line(self):
        report = mil_report("PROC p() := {\n  RETURN missing;\n}")
        (finding,) = report.errors
        assert finding.code == "MIL001"
        assert finding.line == 2
        assert str(finding).startswith("<mil>:2")

    def test_mil009_and_mil013_are_warnings(self):
        report = mil_report(
            "PROC p() : int := { VAR unused := 1; RETURN 1; score(2); }"
        )
        assert not report.has_errors()
        assert {d.code for d in report.warnings} == {"MIL009", "MIL013"}


class TestMilChokePoint:
    def test_kernel_rejects_bad_proc_by_default(self):
        kernel = MonetKernel()
        with pytest.raises(MilCheckError) as exc_info:
            kernel.run("PROC bad() := { RETURN nope; }")
        assert "MIL001" in str(exc_info.value)
        assert "bad" not in kernel.interpreter.procedures

    def test_warn_mode_collects_without_raising(self):
        kernel = MonetKernel(check="warn")
        kernel.run("PROC shaky() := { RETURN nope; }")
        assert "shaky" in kernel.interpreter.procedures
        assert "MIL001" in {d.code for d in kernel.diagnostics}

    def test_off_mode_skips_checking(self):
        kernel = MonetKernel(check="off")
        kernel.run("PROC shaky() := { RETURN nope; }")
        assert kernel.diagnostics == []

    def test_kernel_accepts_catalog_references(self):
        kernel = MonetKernel()
        kernel.run('persist("speeds", new(void, dbl));')
        kernel.run("PROC n() : int := { RETURN speeds.count; }")
        assert kernel.run("n();") == 0


MIL_SYNTAX_ERROR_SOURCES = [
    "x @ y",
    "PROC p( := {}",
    "VAR x := ;",
    "IF (1) {",
]


class TestMilSyntaxErrorLines:
    @pytest.mark.parametrize("source", MIL_SYNTAX_ERROR_SOURCES)
    def test_syntax_errors_carry_line(self, source):
        with pytest.raises(MilSyntaxError) as exc_info:
            MonetKernel(check="off").run(source)
        assert exc_info.value.line is not None
        assert "line" in str(exc_info.value)

    def test_parse_failure_reports_mil000_with_line(self):
        report = mil_report("PROC p() := {\nVAR x := ;\n}")
        (finding,) = report.errors
        assert finding.code == "MIL000"
        assert finding.line == 2


# ---------------------------------------------------------------------------
# Moa checker
# ---------------------------------------------------------------------------


class ToyExtension(MoaExtension):
    name = "toy"

    def operators(self):
        return {
            "double": lambda x: x * 2,
            "add": lambda a, b: a + b,
        }


@pytest.fixture()
def registry():
    reg = ExtensionRegistry()
    reg.register(ToyExtension())
    return reg


MOA_BAD_CASES = [
    ("MOA001", Var("nope")),
    ("MOA002", Apply("dnb", "infer", ())),
    ("MOA003", Apply("toy", "tripel", (Const(1),))),
    ("MOA004", Apply("toy", "add", (Const(1),))),
    ("MOA005", Field(Const(3), "speed")),
    ("MOA006", Cmp("~", Const(1), Const(2))),
    ("MOA007", MakeTuple((("a", Const(1)), ("a", Const(2))))),
    ("MOA008", Field(Const({"speed": 1.0}), "sped")),
    ("MOA009", Aggregate("sum", Const(3))),
]


class TestMoaChecker:
    @pytest.mark.parametrize(
        "code,expr", MOA_BAD_CASES, ids=[c for c, _ in MOA_BAD_CASES]
    )
    def test_code_fires_on_bad_expr(self, code, expr, registry):
        assert code in check_moa_expr(expr, extensions=registry).codes()

    def test_clean_expr_has_no_findings(self, registry):
        expr = Select(
            "t",
            Cmp(">", Field(Var("t"), "speed"), Const(100)),
            Var("laps"),
        )
        report = check_moa_expr(expr, extensions=registry, env=["laps"])
        assert len(report) == 0

    def test_free_vars_allowed_for_plan_inputs(self):
        report = check_moa_expr(Var("input_bat"), allow_free_vars=True)
        assert len(report) == 0

    def test_compiler_rejects_invalid_operator(self):
        compiler_kernel = MonetKernel()
        from repro.moa.rewrite import MoaCompiler

        compiler = MoaCompiler(compiler_kernel)
        bad = Select("x", Cmp("~", Var("x"), Const(1)), Var("src"))
        with pytest.raises(MoaCheckError) as exc_info:
            compiler.compile(bad)
        assert "MOA006" in str(exc_info.value)
        # MoaCheckError is still a MoaError, so existing callers catch it
        assert isinstance(exc_info.value, MoaError)


class TestExtensionRegistryNames:
    def test_unknown_extension_suggests(self, registry):
        with pytest.raises(MoaNameError) as exc_info:
            registry.get("ty")
        assert "toy" in exc_info.value.suggestions

    def test_unknown_operator_suggests(self, registry):
        with pytest.raises(MoaNameError) as exc_info:
            registry.invoke("toy", "addd", (1, 2))
        assert "add" in exc_info.value.suggestions
        assert "did you mean" in str(exc_info.value)


# ---------------------------------------------------------------------------
# Model checker
# ---------------------------------------------------------------------------


def _observed_pair_template():
    """H (hidden, binary) -> O (observed, binary), self-loop on H."""
    template = DbnTemplate()
    template.add_node("H", 2)
    template.add_node("O", 2, observed=True)
    template.add_intra_edge("H", "O")
    template.add_inter_edge("H", "H")
    return template


class TestModelChecker:
    def test_model001_non_stochastic_column(self):
        report = check_cpd("X", [0.5, 0.4])
        assert "MODEL001" in report.codes()

    def test_model001_negative_entry(self):
        report = check_cpd("X", [[1.2, 0.5], [-0.2, 0.5]])
        assert "MODEL001" in report.codes()

    def test_model002_zero_probability_state_is_warning(self):
        report = check_cpd("X", [1.0, 0.0])
        assert "MODEL002" in {d.code for d in report.warnings}
        assert not report.has_errors()

    def test_model004_cardinality_mismatch(self):
        report = check_cpd("X", [0.5, 0.5], cardinality=3)
        assert "MODEL004" in report.codes()

    def test_model003_network_node_without_cpd(self):
        net = BayesianNetwork()
        net.add_cpd(
            TabularCpd(
                "Wet", 2, [[0.9, 0.1], [0.1, 0.9]],
                parents=["Rain"], parent_cards=[2],
            )
        )
        assert "MODEL003" in check_network(net).codes()

    def test_model004_network_parent_cardinality_drift(self):
        net = BayesianNetwork()
        net.add_cpd(TabularCpd("Rain", 3, [0.2, 0.3, 0.5]))
        net.add_cpd(
            TabularCpd(
                "Wet", 2, [[0.9, 0.1], [0.1, 0.9]],
                parents=["Rain"], parent_cards=[2],
            )
        )
        assert "MODEL004" in check_network(net).codes()

    def test_valid_network_is_clean(self):
        net = BayesianNetwork()
        net.add_cpd(TabularCpd("Rain", 2, [0.8, 0.2]))
        net.add_cpd(
            TabularCpd(
                "Wet", 2, [[0.9, 0.1], [0.1, 0.9]],
                parents=["Rain"], parent_cards=[2],
            )
        )
        assert len(check_network(net)) == 0

    def test_model007_cyclic_structure(self):
        class _CyclicDag:
            def parents(self, node):
                return []

            def topological_order(self):
                raise GraphStructureError("cycle detected: a -> b -> a")

        class _CyclicNetwork:
            dag = _CyclicDag()

            def nodes(self):
                return []

            def cpd(self, node):  # pragma: no cover - nodes() is empty
                raise GraphStructureError("no cpd")

        assert "MODEL007" in check_network(_CyclicNetwork()).codes()

    def test_model003_template_missing_cpds(self):
        template = _observed_pair_template()
        assert "MODEL003" in check_template(template).codes()

    def test_model005_inter_edge_onto_evidence_node(self):
        template = _observed_pair_template()
        template.add_inter_edge("H", "O")
        template.randomize(np.random.default_rng(0))
        report = check_template(template)
        assert "MODEL005" in {d.code for d in report.warnings}

    def test_model006_unmapped_observed_node(self):
        template = _observed_pair_template()
        template.randomize(np.random.default_rng(0))
        report = check_template(template, node_to_feature={})
        assert "MODEL006" in {d.code for d in report.errors}

    def test_model006_unknown_feature_is_warning(self):
        template = _observed_pair_template()
        template.randomize(np.random.default_rng(0))
        report = check_template(template, node_to_feature={"O": "nosuch"})
        assert "MODEL006" in {d.code for d in report.warnings}
        assert not report.has_errors()

    def test_model006_mapping_hidden_node_is_warning(self):
        template = _observed_pair_template()
        template.randomize(np.random.default_rng(0))
        report = check_template(
            template, node_to_feature={"O": "f1", "H": "f2"}
        )
        assert "MODEL006" in {d.code for d in report.warnings}

    def test_parameterized_template_is_clean(self):
        template = _observed_pair_template()
        template.randomize(np.random.default_rng(0))
        report = check_template(template, node_to_feature={"O": "f1"})
        assert len(report) == 0


class TestModelChokePoint:
    def test_register_rejects_unparameterized_template(self):
        from repro.cobra.extensions import DbnExtension

        dbn = DbnExtension(MonetKernel())
        with pytest.raises(ModelCheckError) as exc_info:
            dbn.register("broken", _observed_pair_template())
        assert "MODEL003" in str(exc_info.value)

    def test_register_accepts_parameterized_template(self):
        from repro.cobra.extensions import DbnExtension

        dbn = DbnExtension(MonetKernel())
        template = _observed_pair_template()
        template.randomize(np.random.default_rng(0))
        dbn.register("ok", template)
        assert dbn.template("ok") is template


# ---------------------------------------------------------------------------
# Silence on seed artifacts
# ---------------------------------------------------------------------------


class TestSeedArtifactsAreClean:
    def test_vdbms_constructs_without_error_diagnostics(self):
        from repro.cobra.vdbms import CobraVDBMS

        vdbms = CobraVDBMS()
        errors = [
            d for d in vdbms.diagnostics if d.severity is Severity.ERROR
        ]
        assert errors == []

    def test_cli_clean_on_builtins(self, capsys):
        assert check_main([]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_cli_clean_on_example_procedures(self, capsys):
        examples = REPO_ROOT / "examples" / "procedures"
        assert check_main([str(examples)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_cli_missing_path_is_usage_error(self, capsys):
        assert check_main(["no/such/file.mil"]) == 2

    def test_fully_parameterized_dbn_is_clean(self):
        from repro.fusion.audio_networks import (
            AUDIO_NODE_TO_FEATURE,
            fully_parameterized_dbn,
        )

        report = check_template(
            fully_parameterized_dbn(seed=0),
            node_to_feature=AUDIO_NODE_TO_FEATURE,
        )
        assert not report.has_errors()
