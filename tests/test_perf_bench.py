"""Smoke test for the perf microbenchmark harness (benchmarks/perf)."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
HARNESS = REPO / "benchmarks" / "perf" / "harness.py"


def test_harness_writes_bench_document(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    result = subprocess.run(
        [
            sys.executable,
            str(HARNESS),
            "--rows",
            "300",
            "--repeats",
            "1",
            "--out",
            str(out),
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    document = json.loads(out.read_text())
    assert document["schema"] == "repro-bench-perf/1"
    assert document["executor"] == "interpreter"
    assert set(document["benchmarks"]) == {
        "select_chain",
        "join_aggregate",
        "dbn_inference",
        "end_to_end_query",
        "replicated_read_fanout",
        "sharded_scatter_gather",
        "migration_throughput",
        "query_latency_during_split",
        "check_whole_program",
        "equivcheck_certify",
    }
    for stats in document["benchmarks"].values():
        assert stats["mean_s"] > 0
        assert stats["min_s"] <= stats["mean_s"] <= stats["max_s"]
        assert stats["rows_per_s"] > 0
