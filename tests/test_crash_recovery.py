"""Kill-point chaos: SimulatedCrash injection, the sweep, durable VDBMS."""

import pytest

from repro.cobra.catalog import DomainKnowledge
from repro.cobra.model import RawVideo, VideoDocument, VideoObject
from repro.cobra.vdbms import CobraVDBMS, DrainedFailures
from repro.durability import DurableStore
from repro.durability.chaos import (
    ABSENT,
    CRASH_SITES,
    DURABLE,
    NEUTRAL,
    kill_point_sweep,
    run_crash_site,
)
from repro.errors import CobraError, SimulatedCrash
from repro.faults import FaultInjector, FaultPlan, FaultSpec, get_plan
from repro.monet.kernel import MonetKernel
from repro.resilience import CircuitBreaker
from repro.synth.annotations import Interval


def make_document(video_id="race1"):
    doc = VideoDocument(
        raw=RawVideo(video_id, "synthetic://x", 100.0, 10.0, 192, 144, 16000)
    )
    doc.add_object(VideoObject(f"{video_id}/d1", "driver", "HAKKINEN"))
    doc.new_event(
        "fly_out", Interval(10, 18), 0.9, {"driver": f"{video_id}/d1"}, "dbn"
    )
    doc.new_event("highlight", Interval(9, 20), 0.8, source="dbn")
    return doc


class TestKillFaultKind:
    def test_kill_raises_simulated_crash_and_is_logged(self):
        plan = FaultPlan(
            seed=1, specs=(FaultSpec(site="wal.commit:mid", kind="kill"),)
        )
        injector = FaultInjector(plan)
        with pytest.raises(SimulatedCrash) as excinfo:
            injector.on_call("wal.commit:mid")
        assert excinfo.value.site == "wal.commit:mid"
        assert len(injector.injections) == 1

    def test_simulated_crash_evades_generic_except_exception(self):
        # BaseException on purpose: resilient wrappers that swallow
        # Exception must not absorb a process kill
        assert not issubclass(SimulatedCrash, Exception)

    def test_crash_commit_named_plan_kills_a_durable_kernel(self, tmp_path):
        kernel = MonetKernel(store=DurableStore(tmp_path / "s", faults=get_plan("crash-commit")))
        from tests.test_durability import lap_bat

        with pytest.raises(SimulatedCrash):
            with kernel.transaction():
                kernel.persist("laps", lap_bat())
        kernel.close()
        state = DurableStore(tmp_path / "s").recover()
        assert state.catalog == {}  # the kill preceded the commit marker


class TestKillPointSweep:
    def test_every_classified_site_is_a_real_crash_point(self):
        assert len(CRASH_SITES) == 13
        assert set(CRASH_SITES.values()) == {DURABLE, ABSENT, NEUTRAL}

    def test_checkpoint_replaced_kill_survives_the_directory_entry(
        self, tmp_path
    ):
        # the kill lands between os.replace and the parent-directory fsync:
        # both the old and the new checkpoint state are acceptable, but the
        # store must recover to a committed catalog either way
        assert CRASH_SITES["checkpoint:replaced"] == NEUTRAL
        result = run_crash_site(tmp_path, "checkpoint:replaced", fsync=False)
        assert result.crashed
        assert result.ok, result.failures

    def test_single_site_run_reports_the_killed_step(self, tmp_path):
        result = run_crash_site(tmp_path, "wal.commit:mid", fsync=False)
        assert result.crashed
        assert result.ok, result.failures
        assert "txn" in result.crashed_step
        assert result.report.transactions_discarded == 1

    def test_sweep_recovers_last_committed_state_at_every_site(self, tmp_path):
        # the acceptance bar: for every WAL/checkpoint crash point, kill +
        # recover yields exactly the last committed catalog — never a
        # partial transaction, never a lost committed mutation
        summary = kill_point_sweep(tmp_path, fsync=False)
        assert len(summary.results) == len(CRASH_SITES)
        assert summary.ok, summary.describe()
        assert all(r.crashed for r in summary.results)
        # uncommitted work is discarded, not surfaced
        for result in summary.results:
            if result.classification == ABSENT and "txn" in (
                result.crashed_step or ""
            ):
                assert result.report.transactions_committed == 0


class TestDurableVdbms:
    def test_registered_metadata_survives_restart(self, tmp_path):
        db = CobraVDBMS(store=tmp_path / "s")
        db.register_domain(DomainKnowledge("f1"))
        db.register_document(make_document(), "f1")
        before = db.metadata.events("race1")
        assert len(before) == 2
        db.close()

        revived = CobraVDBMS(store=tmp_path / "s")
        assert revived.recovery is not None
        assert revived.recovery.bats_recovered >= 13  # the meta_* groups
        revived.register_domain(DomainKnowledge("f1"))
        # re-registering restores the Python-side handle; the recovered
        # BAT rows must not be duplicated
        revived.register_document(make_document(), "f1")
        after = revived.metadata.events("race1")
        assert [e["event_id"] for e in after] == [
            e["event_id"] for e in before
        ]
        flyout = next(e for e in after if e["kind"] == "fly_out")
        assert flyout["roles"] == {"driver": "race1/d1"}
        # a query over recovered metadata needs no re-extraction
        result = revived.query("RETRIEVE fly_out WHERE ROLE driver = HAKKINEN")
        assert len(result) == 1
        assert not result.report.ran_extraction
        revived.close()

    def test_checkpoint_through_the_facade(self, tmp_path):
        db = CobraVDBMS(store=tmp_path / "s")
        db.register_domain(DomainKnowledge("f1"))
        db.register_document(make_document(), "f1")
        assert db.checkpoint() == 1
        db.close()
        state = DurableStore(tmp_path / "s").recover()
        assert state.report.wal_records == 0
        assert state.catalog["meta_event_event_id"].count() == 2

    def test_checkpoint_without_store_raises(self):
        from repro.errors import MonetError

        with pytest.raises(MonetError):
            CobraVDBMS().checkpoint()


class TestBreakerOperations:
    def _tripped(self):
        breaker = CircuitBreaker(
            "audio_dbn", failure_threshold=2, recovery_timeout=1000
        )
        for _ in range(2):
            breaker.record_failure()
        return breaker

    def test_reset_rearms_an_open_breaker(self):
        from repro.errors import CircuitOpenError

        breaker = self._tripped()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        breaker.reset()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.allow()  # no longer raises

    def test_drain_failures_exposes_breaker_panel(self):
        db = CobraVDBMS()
        db._breakers["audio_dbn"] = self._tripped()
        drained = db.drain_failures()
        assert isinstance(drained, DrainedFailures)
        assert drained.breakers["audio_dbn"] == CircuitBreaker.OPEN
        assert drained.open_breakers == ["audio_dbn"]
        assert len(drained) == 0  # no failure reports pending
        db.reset_breaker("audio_dbn")
        assert db.breaker_states()["audio_dbn"] == CircuitBreaker.CLOSED

    def test_reset_unknown_breaker_raises(self):
        with pytest.raises(CobraError):
            CobraVDBMS().reset_breaker("ghost")
