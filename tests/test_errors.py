"""The exception hierarchy: every subsystem error is a ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.MonetError,
    errors.AtomTypeError,
    errors.BatError,
    errors.MilError,
    errors.MilSyntaxError,
    errors.MilNameError,
    errors.MilTypeError,
    errors.MoaError,
    errors.MoaTypeError,
    errors.MoaNameError,
    errors.CobraError,
    errors.QuerySyntaxError,
    errors.UnknownConceptError,
    errors.ExtractionError,
    errors.InferenceError,
    errors.GraphStructureError,
    errors.CpdError,
    errors.LearningError,
    errors.SignalError,
    errors.SynthesisError,
    errors.RuleError,
    errors.DiagnosticError,
    errors.MilCheckError,
    errors.MoaCheckError,
    errors.ModelCheckError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_all_derive_from_repro_error(error_type):
    assert issubclass(error_type, errors.ReproError)


def test_mil_syntax_error_carries_line():
    error = errors.MilSyntaxError("bad token", line=7)
    assert error.line == 7
    assert "line 7" in str(error)


def test_check_errors_sit_in_both_hierarchies():
    assert issubclass(errors.MilCheckError, errors.MilError)
    assert issubclass(errors.MoaCheckError, errors.MoaError)
    assert issubclass(errors.ModelCheckError, errors.InferenceError)


def test_moa_name_error_renders_suggestions():
    error = errors.MoaNameError("unknown operator 'infre'", ["infer"])
    assert error.suggestions == ["infer"]
    assert "did you mean" in str(error)
    assert "'infer'" in str(error)


def test_kernel_errors_catchable_at_boundary():
    from repro.monet.bat import BAT

    try:
        BAT("void", "int").insert("oops")
    except errors.ReproError as caught:
        assert isinstance(caught, errors.AtomTypeError)
    else:  # pragma: no cover
        raise AssertionError("expected a ReproError")
