"""Moa algebra: types, evaluation, extension dispatch, MIL rewriting."""

import pytest

from repro.errors import MoaError, MoaTypeError
from repro.moa.algebra import (
    Aggregate,
    Apply,
    Arith,
    BoolOp,
    Cmp,
    Const,
    Field,
    Join,
    MakeTuple,
    Map,
    Nest,
    Not,
    Select,
    Semijoin,
    SetOp,
    The,
    Unnest,
    Var,
    evaluate,
)
from repro.moa.extension import ExtensionRegistry, MoaExtension
from repro.moa.rewrite import MoaCompiler
from repro.moa.types import Atomic, ObjectOf, SetOf, TupleOf, typecheck
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel

CARS = [
    {"driver": "SCHUMACHER", "speed": 320.0, "team": "ferrari"},
    {"driver": "HAKKINEN", "speed": 310.0, "team": "mclaren"},
    {"driver": "BARRICHELLO", "speed": 290.0, "team": "ferrari"},
]


class TestTypes:
    def test_atomic_validates_registry(self):
        with pytest.raises(MoaTypeError):
            Atomic("not_a_type")

    def test_typecheck_atomic(self):
        typecheck(3, Atomic("int"))
        with pytest.raises(MoaTypeError):
            typecheck("x", Atomic("int"))

    def test_bool_is_not_int(self):
        with pytest.raises(MoaTypeError):
            typecheck(True, Atomic("int"))

    def test_set_of_tuple(self):
        t = SetOf(TupleOf({"speed": Atomic("dbl")}))
        typecheck([{"speed": 1.0}], t)
        with pytest.raises(MoaTypeError):
            typecheck([{"nope": 1.0}], t)

    def test_object_requires_oid(self):
        obj = ObjectOf("Car", TupleOf({"speed": Atomic("dbl")}))
        typecheck({"oid": 1, "speed": 2.0}, obj)
        with pytest.raises(MoaTypeError):
            typecheck({"speed": 2.0}, obj)

    def test_describe(self):
        t = SetOf(TupleOf({"a": Atomic("int")}))
        assert t.describe() == "SET<TUPLE<a: int>>"


class TestEvaluation:
    def test_select(self):
        expr = Select("c", Cmp(">", Field(Var("c"), "speed"), Const(300.0)), Var("cars"))
        out = evaluate(expr, {"cars": CARS})
        assert [c["driver"] for c in out] == ["SCHUMACHER", "HAKKINEN"]

    def test_map_maketuple(self):
        expr = Map(
            "c",
            MakeTuple.of(who=Field(Var("c"), "driver")),
            Var("cars"),
        )
        assert evaluate(expr, {"cars": CARS})[0] == {"who": "SCHUMACHER"}

    def test_join_on_team(self):
        teams = [{"team": "ferrari", "country": "it"}]
        expr = Join(
            "c",
            "t",
            Cmp("=", Field(Var("c"), "team"), Field(Var("t"), "team")),
            Var("cars"),
            Var("teams"),
            MakeTuple.of(
                driver=Field(Var("c"), "driver"),
                country=Field(Var("t"), "country"),
            ),
        )
        out = evaluate(expr, {"cars": CARS, "teams": teams})
        assert len(out) == 2 and all(r["country"] == "it" for r in out)

    def test_semijoin(self):
        fast = [{"team": "ferrari"}]
        expr = Semijoin(
            "c",
            "f",
            Cmp("=", Field(Var("c"), "team"), Field(Var("f"), "team")),
            Var("cars"),
            Var("fast"),
        )
        assert len(evaluate(expr, {"cars": CARS, "fast": fast})) == 2

    def test_nest_unnest_roundtrip(self):
        nested = evaluate(Nest(Var("cars"), ("team",), "members"), {"cars": CARS})
        assert {n["team"] for n in nested} == {"ferrari", "mclaren"}
        ferrari = next(n for n in nested if n["team"] == "ferrari")
        assert len(ferrari["members"]) == 2
        flat = evaluate(Unnest(Const(nested), "members"), {})
        assert len(flat) == 3

    def test_aggregates(self):
        speeds = Map("c", Field(Var("c"), "speed"), Var("cars"))
        assert evaluate(Aggregate("count", speeds), {"cars": CARS}) == 3
        assert evaluate(Aggregate("max", speeds), {"cars": CARS}) == 320.0
        assert evaluate(Aggregate("avg", speeds), {"cars": CARS}) == pytest.approx(
            306.666, abs=0.01
        )

    def test_empty_aggregate_raises(self):
        with pytest.raises(MoaError):
            evaluate(Aggregate("max", Const([])), {})

    def test_set_ops(self):
        a, b = Const([1, 2, 3]), Const([2, 3, 4])
        assert evaluate(SetOp("union", a, b), {}) == [1, 2, 3, 4]
        assert evaluate(SetOp("diff", a, b), {}) == [1]
        assert evaluate(SetOp("intersect", a, b), {}) == [2, 3]

    def test_the_singleton(self):
        assert evaluate(The(Const([42])), {}) == 42
        with pytest.raises(MoaError):
            evaluate(The(Const([1, 2])), {})

    def test_boolean_ops(self):
        expr = BoolOp("and", Const(True), Not(Const(False)))
        assert evaluate(expr, {}) is True

    def test_unbound_variable(self):
        with pytest.raises(MoaError):
            evaluate(Var("ghost"), {})

    def test_field_on_non_tuple(self):
        with pytest.raises(MoaTypeError):
            evaluate(Field(Const(3), "x"), {})


class TestExtensions:
    def test_apply_dispatch(self):
        class Doubler(MoaExtension):
            name = "doubler"

            def operators(self):
                return {"double": lambda x: x * 2}

        registry = ExtensionRegistry()
        registry.register(Doubler())
        expr = Apply("doubler", "double", (Const(21),))
        assert evaluate(expr, {}, registry) == 42

    def test_apply_without_registry(self):
        with pytest.raises(MoaError):
            evaluate(Apply("x", "y", ()), {})

    def test_unknown_operator(self):
        class Empty(MoaExtension):
            name = "empty"

            def operators(self):
                return {}

        registry = ExtensionRegistry()
        registry.register(Empty())
        with pytest.raises(MoaError):
            registry.invoke("empty", "ghost", [])

    def test_duplicate_extension(self):
        class E(MoaExtension):
            name = "e"

            def operators(self):
                return {}

        registry = ExtensionRegistry()
        registry.register(E())
        with pytest.raises(MoaError):
            registry.register(E())


class TestMilRewriting:
    def setup_method(self):
        self.kernel = MonetKernel()
        self.compiler = MoaCompiler(self.kernel)
        self.speeds = BAT("void", "dbl")
        self.speeds.insert_bulk(None, [0.1, 0.6, 0.9, 0.4, 0.7])

    def test_select_count_pipeline(self):
        expr = Aggregate(
            "count", Select("x", Cmp(">", Var("x"), Const(0.5)), Var("speeds"))
        )
        plan = self.compiler.compile(expr)
        assert "mselect" in plan.mil_source and "maggr" in plan.mil_source
        assert self.compiler.execute(plan, speeds=self.speeds) == 3

    def test_map_changes_values(self):
        expr = Aggregate(
            "max", Map("x", Arith("*", Var("x"), Const(10.0)), Var("speeds"))
        )
        assert self.compiler.run(expr, speeds=self.speeds) == pytest.approx(9.0)

    def test_setop_plan(self):
        other = BAT("void", "dbl")
        other.insert_bulk(None, [0.9, 0.9])
        expr = Aggregate(
            "count", SetOp("diff", Var("speeds"), Var("other"))
        )
        assert self.compiler.run(expr, speeds=self.speeds, other=other) == 3

    def test_uncompilable_falls_out(self):
        expr = Nest(Var("speeds"), ("x",), "g")
        with pytest.raises(MoaError):
            self.compiler.compile(expr)

    def test_missing_input(self):
        expr = Aggregate("count", Var("speeds"))
        plan = self.compiler.compile(expr)
        with pytest.raises(MoaError):
            self.compiler.execute(plan)

    def test_compiled_matches_evaluator(self):
        expr = Aggregate(
            "sum", Select("x", Cmp(">=", Var("x"), Const(0.4)), Var("speeds"))
        )
        compiled = self.compiler.run(expr, speeds=self.speeds)
        interpreted = evaluate(expr, {"speeds": self.speeds.tails()})
        assert compiled == pytest.approx(interpreted)
