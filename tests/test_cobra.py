"""Cobra VDBMS: model layers, metadata store, COQL, preprocessor, compound
events."""

import numpy as np
import pytest

from repro.cobra.catalog import DomainKnowledge, ExtractionMethod, KnowledgeCatalog
from repro.cobra.compound import Component, CompoundEventDef, TemporalConstraint
from repro.cobra.metadata import MetadataStore
from repro.cobra.model import FeatureTrack, RawVideo, VideoDocument, VideoObject
from repro.cobra.preprocessor import QueryPreprocessor
from repro.cobra.query import QueryExecutor, parse_coql
from repro.errors import (
    CobraError,
    QuerySyntaxError,
    UnknownConceptError,
)
from repro.monet.kernel import MonetKernel
from repro.synth.annotations import Interval


def make_document(video_id="race1") -> VideoDocument:
    doc = VideoDocument(
        raw=RawVideo(video_id, "synthetic://x", 100.0, 10.0, 192, 144, 16000)
    )
    doc.add_object(VideoObject(f"{video_id}/d0", "driver", "SCHUMACHER"))
    doc.add_object(VideoObject(f"{video_id}/d1", "driver", "HAKKINEN"))
    doc.new_event("fly_out", Interval(10, 18), 0.9, {"driver": f"{video_id}/d1"}, "dbn")
    doc.new_event("pit_stop", Interval(40, 48), 1.0, {"driver": f"{video_id}/d0"}, "text")
    doc.new_event("highlight", Interval(9, 20), 0.8, source="dbn")
    doc.new_event(
        "classification",
        Interval(30, 34),
        1.0,
        {"p1": f"{video_id}/d0", "p2": f"{video_id}/d1", "lap": "7"},
        "text",
    )
    return doc


@pytest.fixture()
def store():
    store = MetadataStore(MonetKernel())
    store.register_document(make_document())
    return store


class TestModel:
    def test_feature_track_lookup(self):
        track = FeatureTrack("f1", np.linspace(0, 1, 50))
        assert track.at_time(2.0) == pytest.approx(track.values[20])
        with pytest.raises(CobraError):
            track.at_time(100.0)

    def test_event_ids_unique(self):
        doc = make_document()
        assert len(set(doc.events)) == len(doc.events)

    def test_events_of_kind_sorted(self):
        doc = make_document()
        events = doc.events_of_kind("fly_out")
        assert len(events) == 1

    def test_duplicate_feature_rejected(self):
        doc = make_document()
        doc.add_feature(FeatureTrack("f1", np.zeros(5)))
        with pytest.raises(CobraError):
            doc.add_feature(FeatureTrack("f1", np.zeros(5)))

    def test_object_by_label(self):
        doc = make_document()
        assert doc.object_by_label("HAKKINEN").category == "driver"
        with pytest.raises(CobraError):
            doc.object_by_label("SENNA")


class TestMetadata:
    def test_events_filterable(self, store):
        assert len(store.events(kind="fly_out")) == 1
        assert len(store.events(video_id="race1")) == 4
        assert store.events(kind="fly_out")[0]["roles"] == {"driver": "race1/d1"}

    def test_min_confidence(self, store):
        assert len(store.events(kind="highlight", min_confidence=0.9)) == 0

    def test_objects_filterable(self, store):
        assert len(store.objects(category="driver")) == 2
        assert store.objects(label="SCHUMACHER")[0]["object_id"] == "race1/d0"

    def test_duplicate_video_rejected(self, store):
        with pytest.raises(CobraError):
            store.register_document(make_document())

    def test_store_event_unknown_video(self, store):
        doc = make_document("ghost")
        event = list(doc.events.values())[0]
        with pytest.raises(CobraError):
            store.store_event("ghost", event)

    def test_bat_backing(self, store):
        """Metadata really lives in kernel BATs."""
        kernel_bat = store._event_bats["kind"]
        assert "fly_out" in kernel_bat.tails()


class TestCoqlParsing:
    def test_basic(self):
        q = parse_coql("RETRIEVE fly_out")
        assert q.kind == "fly_out" and q.video is None and q.conditions == []

    def test_from_video(self):
        assert parse_coql("RETRIEVE x FROM race1").video == "race1"
        assert parse_coql("RETRIEVE x FROM ALL").video is None

    def test_role_condition(self):
        q = parse_coql("RETRIEVE pit_stop WHERE ROLE driver = BARRICHELLO")
        assert q.conditions[0].kind == "role"
        assert q.conditions[0].get("label") == "BARRICHELLO"

    def test_driver_sugar(self):
        q = parse_coql('RETRIEVE pit_stop WHERE DRIVER = "SCHUMACHER"')
        assert q.conditions[0].get("role") == "driver"

    def test_position_and_conjunction(self):
        q = parse_coql(
            "RETRIEVE classification WHERE POSITION SCHUMACHER = 1 "
            "AND POSITION HAKKINEN = 2"
        )
        assert len(q.conditions) == 2
        assert q.conditions[1].get("position") == 2

    def test_temporal_with_role(self):
        q = parse_coql(
            "RETRIEVE highlight WHERE INTERSECTS pit_stop WITH ROLE driver = RALF"
        )
        c = q.conditions[0]
        assert c.kind == "temporal"
        assert c.get("relation") == "intersects"
        assert c.get("label") == "RALF"

    def test_confidence(self):
        q = parse_coql("RETRIEVE highlight WHERE CONFIDENCE >= 0.75")
        assert q.conditions[0].get("minimum") == 0.75

    def test_syntax_errors(self):
        for bad in ("", "SELECT x", "RETRIEVE", "RETRIEVE x WHERE BOGUS = 1"):
            with pytest.raises(QuerySyntaxError):
                parse_coql(bad)


class TestExecution:
    def test_kind_filter(self, store):
        records = QueryExecutor(store).execute(parse_coql("RETRIEVE fly_out"))
        assert len(records) == 1

    def test_role_filter(self, store):
        records = QueryExecutor(store).execute(
            parse_coql("RETRIEVE fly_out WHERE ROLE driver = HAKKINEN")
        )
        assert len(records) == 1
        records = QueryExecutor(store).execute(
            parse_coql("RETRIEVE fly_out WHERE ROLE driver = SCHUMACHER")
        )
        assert records == []

    def test_position_query(self, store):
        records = QueryExecutor(store).execute(
            parse_coql("RETRIEVE classification WHERE POSITION SCHUMACHER = 1")
        )
        assert len(records) == 1

    def test_lap_query(self, store):
        records = QueryExecutor(store).execute(
            parse_coql("RETRIEVE classification WHERE LAP = 7")
        )
        assert len(records) == 1

    def test_temporal_join(self, store):
        records = QueryExecutor(store).execute(
            parse_coql("RETRIEVE highlight WHERE INTERSECTS fly_out")
        )
        assert len(records) == 1
        records = QueryExecutor(store).execute(
            parse_coql("RETRIEVE highlight WHERE INTERSECTS pit_stop")
        )
        assert records == []

    def test_unknown_concept(self, store):
        with pytest.raises(UnknownConceptError):
            QueryExecutor(store).execute(parse_coql("RETRIEVE unicorn"))


class TestPreprocessor:
    def _knowledge(self, calls):
        def extract(document):
            calls.append(document.raw.video_id)
            return [
                type(document).new_event(
                    document, "excited_speech", Interval(5, 9), 0.7, source="dbn"
                )
            ]

        return DomainKnowledge(
            "f1",
            methods=[
                ExtractionMethod(
                    "audio_dbn", ("excited_speech",), extract, quality=0.8
                )
            ],
        )

    def test_dynamic_extraction_invoked_once(self, store):
        calls = []
        pre = QueryPreprocessor(store, self._knowledge(calls))
        query = parse_coql("RETRIEVE excited_speech FROM race1")
        report = pre.prepare(query)
        assert report.ran_extraction
        assert calls == ["race1"]
        # metadata now present: second prepare does nothing
        report2 = pre.prepare(query)
        assert not report2.ran_extraction
        assert calls == ["race1"]

    def test_no_method_raises(self, store):
        pre = QueryPreprocessor(store, DomainKnowledge("empty"))
        with pytest.raises(UnknownConceptError):
            pre.prepare(parse_coql("RETRIEVE unicorn FROM race1"))

    def test_method_selection_by_quality(self, store):
        order = []

        def cheap(document):
            order.append("cheap")
            return []

        def good(document):
            order.append("good")
            return []

        knowledge = DomainKnowledge(
            "f1",
            methods=[
                ExtractionMethod("cheap", ("thing",), cheap, cost=1, quality=0.3),
                ExtractionMethod("good", ("thing",), good, cost=9, quality=0.9),
            ],
        )
        assert knowledge.methods_for("thing")[0].name == "good"

    def test_required_kinds_includes_temporal_joins(self, store):
        pre = QueryPreprocessor(store, DomainKnowledge("f1"))
        query = parse_coql("RETRIEVE highlight WHERE INTERSECTS fly_out")
        assert pre.required_kinds(query) == ["highlight", "fly_out"]


class TestCompound:
    def test_materialize_and_requery(self, store):
        definition = CompoundEventDef(
            "announced_flyout",
            [Component("f", "fly_out"), Component("h", "highlight")],
            [TemporalConstraint("f", "during", "h")],
        )
        events = definition.materialize(store, "race1")
        assert len(events) == 1
        records = QueryExecutor(store).execute(parse_coql("RETRIEVE announced_flyout"))
        assert len(records) == 1
        assert records[0]["interval"].start == pytest.approx(9.0)

    def test_role_constrained_component(self, store):
        definition = CompoundEventDef(
            "hakkinen_flyout",
            [Component("f", "fly_out", role="driver", role_label="HAKKINEN")],
        )
        assert len(definition.evaluate(store, "race1")) == 1
        other = CompoundEventDef(
            "schumi_flyout",
            [Component("f", "fly_out", role="driver", role_label="SCHUMACHER")],
        )
        assert other.evaluate(store, "race1") == []

    def test_duplicate_alias_rejected(self):
        with pytest.raises(CobraError):
            CompoundEventDef("x", [Component("a", "e"), Component("a", "e")])

    def test_unknown_alias_in_constraint(self):
        with pytest.raises(CobraError):
            CompoundEventDef(
                "x",
                [Component("a", "e")],
                [TemporalConstraint("a", "before", "ghost")],
            )


class TestCatalog:
    def test_domain_registry(self):
        catalog = KnowledgeCatalog()
        catalog.add_domain(DomainKnowledge("f1"))
        assert catalog.domains() == ["f1"]
        with pytest.raises(CobraError):
            catalog.add_domain(DomainKnowledge("f1"))
        with pytest.raises(CobraError):
            catalog.domain("tennis")
