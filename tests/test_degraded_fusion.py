"""Graceful multimodal degradation: fusion answers from surviving streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SignalError
from repro.faults import FaultInjector, get_plan
from repro.fusion.discretize import soft_evidence
from repro.fusion.features import (
    MODALITY_OF_FEATURE,
    VISUAL_FEATURES,
    FeatureSet,
)
from repro.fusion.pipeline import AvExperiment, RaceData
from repro.monet.kernel import MonetKernel
from repro.resilience import ResiliencePolicy, RetryPolicy

VISUAL_STREAMS = set(VISUAL_FEATURES) | {"passing", "dve"}
AUDIO_STREAMS = {f"f{i}" for i in range(2, 11)}
TEXT_STREAMS = {"f1"}


def degraded_copy(data: RaceData, remove: set[str], reason: str) -> RaceData:
    """A RaceData view of the same race with some streams lost."""
    features = data.features
    streams = {k: v for k, v in features.streams.items() if k not in remove}
    dropped = {k: reason for k in sorted(remove & set(features.streams))}
    return RaceData(
        data.race,
        FeatureSet(
            features.race_name, streams, features.keyword_hits, dropped=dropped
        ),
    )


@pytest.fixture(scope="module")
def av(mini_race) -> AvExperiment:
    """One trained AV network, tolerant of missing evidence at query time."""
    return AvExperiment(mini_race, seed=0, allow_missing=True)


@pytest.fixture(scope="module")
def clean_eval(av, mini_race):
    return av.evaluate(mini_race)


class TestStrictMode:
    def test_missing_stream_raises_without_allow_missing(self, av, mini_race):
        strict = AvExperiment.__new__(AvExperiment)
        strict.__dict__.update(av.__dict__)
        strict.allow_missing = False
        broken = degraded_copy(mini_race, VISUAL_STREAMS, "decoder died")
        with pytest.raises(SignalError, match="allow_missing"):
            strict.evaluate(broken)

    def test_error_names_the_dropped_reason(self, av, mini_race):
        strict = AvExperiment.__new__(AvExperiment)
        strict.__dict__.update(av.__dict__)
        strict.allow_missing = False
        broken = degraded_copy(mini_race, {"f12"}, "MPEG artifact storm")
        with pytest.raises(SignalError, match="MPEG artifact storm"):
            strict.evaluate(broken)


class TestDegradedEvaluation:
    def test_audio_only(self, av, mini_race):
        """All visual + text evidence gone: answers ride on f2-f10 alone."""
        broken = degraded_copy(
            mini_race, VISUAL_STREAMS | TEXT_STREAMS, "modality lost"
        )
        result = av.evaluate(broken)
        assert result.degraded
        # every lost evidence node is named, nothing silently vanishes
        assert set(result.masked_nodes) >= {"f11", "f12", "f17", "f1"}
        for posterior in result.posteriors.values():
            assert np.all(np.isfinite(posterior))
            assert np.all((posterior >= 0) & (posterior <= 1))
        # audio evidence alone still finds highlights above a floor
        assert result.highlight_scores.precision >= 0.5
        assert result.highlight_scores.recall >= 0.25

    def test_video_only(self, av, mini_race):
        """Audio track dead: keywords + excitement gone, visual survives."""
        broken = degraded_copy(
            mini_race, AUDIO_STREAMS | TEXT_STREAMS, "audio track dead"
        )
        result = av.evaluate(broken)
        assert result.degraded
        assert set(result.masked_nodes) >= {"f2", "f9", "f1"}
        for posterior in result.posteriors.values():
            assert np.all(np.isfinite(posterior))
        # visual evidence alone still finds highlights above a floor
        assert result.highlight_scores.precision >= 0.5
        assert result.highlight_scores.recall >= 0.25

    def test_text_missing_stays_close_to_clean(self, av, mini_race, clean_eval):
        """Losing only keywords degrades gently — detection floor holds."""
        broken = degraded_copy(mini_race, TEXT_STREAMS, "closed captions lost")
        result = av.evaluate(broken)
        assert result.degraded
        assert result.masked_nodes == ["f1"]
        floor = 0.25
        assert result.highlight_scores.recall >= max(
            clean_eval.highlight_scores.recall - floor, 0.0
        )
        assert result.highlight_scores.precision >= max(
            clean_eval.highlight_scores.precision - floor, 0.0
        )

    def test_degradations_are_enumerated(self, av, mini_race):
        broken = degraded_copy(mini_race, VISUAL_STREAMS, "renderer crash")
        result = av.evaluate(broken)
        notes = result.degradations()
        assert notes
        for name in sorted(VISUAL_STREAMS & set(mini_race.features.streams)):
            assert any(name in note for note in notes)

    def test_clean_input_reports_nothing(self, clean_eval):
        assert not clean_eval.degraded
        assert clean_eval.masked_nodes == []
        assert clean_eval.dropped_features == {}


class TestFeatureSetDegradation:
    def test_missing_modalities_named(self, mini_race):
        broken = degraded_copy(mini_race, VISUAL_STREAMS, "lost").features
        assert broken.missing_modalities() == ["visual"]
        assert broken.degraded

    def test_partial_loss_keeps_modality(self, mini_race):
        broken = degraded_copy(mini_race, {"f12", "f13"}, "lost").features
        assert broken.missing_modalities() == []  # other visual streams live

    def test_dropped_stream_access_explains(self, mini_race):
        broken = degraded_copy(mini_race, {"f12"}, "sensor gone").features
        with pytest.raises(SignalError, match="sensor gone"):
            broken.stream("f12")

    def test_modality_map_covers_all_streams(self, mini_race):
        for name in mini_race.features.streams:
            assert name in MODALITY_OF_FEATURE


class TestEvidenceMasking:
    def test_hard_evidence_masks_with_uninformative_soft(self, av, mini_race):
        broken = degraded_copy(mini_race, {"f12"}, "lost")
        evidence = av._evidence(broken)
        assert evidence.masked == ("f12",)
        likelihood = evidence.likelihoods("f12")
        np.testing.assert_array_equal(likelihood, np.ones_like(likelihood))

    def test_masking_survives_slicing(self, av, mini_race):
        broken = degraded_copy(mini_race, {"f12"}, "lost")
        evidence = av._evidence(broken)
        assert evidence.slice(0, 50).masked == ("f12",)
        assert all(s.masked == ("f12",) for s in evidence.segments(100))

    def test_soft_evidence_allow_missing(self, av, mini_race):
        from repro.fusion.av_network import av_node_to_feature

        broken = degraded_copy(mini_race, {"f1"}, "lost")
        evidence = soft_evidence(
            av.template,
            broken.features,
            av_node_to_feature(True),
            allow_missing=True,
        )
        assert evidence.masked == ("f1",)

    def test_all_ones_equals_absent_evidence(self, av, mini_race):
        """Masking a node must give the same posterior as true absence."""
        broken = degraded_copy(mini_race, {"f12"}, "lost")
        masked_posterior = av.posteriors(broken)["Highlight"][:200]
        assert np.all(np.isfinite(masked_posterior))


class TestAcceptanceScenario:
    """ISSUE 2 acceptance: modality-drop plan + 5% transient kernel faults."""

    def test_av_experiment_survives_modality_drop_plan(self, av):
        from repro.fusion.pipeline import prepare_race
        from tests.conftest import MINI_SPEC

        injector = FaultInjector(get_plan("modality-drop"))
        data = prepare_race(MINI_SPEC, faults=injector, on_error="degrade")
        # the whole visual modality is gone
        assert data.features.missing_modalities() == ["visual"]
        assert all(
            MODALITY_OF_FEATURE[name] == "visual"
            for name in data.features.dropped
        )
        result = av.evaluate(data)  # completes without raising
        assert result.degraded
        notes = result.degradations()
        for name in sorted(data.features.dropped):
            assert any(name in note for note in notes)
        # audio evidence still drives the answer
        assert np.all(np.isfinite(result.posteriors["Highlight"]))

    def test_kernel_absorbs_transient_faults_with_bounded_retries(self):
        injector = FaultInjector(get_plan("modality-drop"))
        slept: list[float] = []
        kernel = MonetKernel(
            faults=injector,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=3, sleep=slept.append)
            ),
        )
        kernel.register_command("step", lambda x: x * 2)
        for i in range(100):
            assert kernel.run(f"RETURN step({i});") == i * 2
        reports = kernel.drain_failures()
        assert reports, "5% of 100 calls should trigger"
        assert all(r.action == "retried" for r in reports)
        # backoff policy bounds the recovery work
        assert len(slept) == len(reports)
        assert all(delay <= 0.25 for delay in slept)
