"""BAT core semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.errors import AtomTypeError, BatError
from repro.monet.bat import BAT, new_bat


class TestConstruction:
    def test_new_bat_types(self):
        b = new_bat("oid", "dbl")
        assert b.head_type == "oid"
        assert b.tail_type == "dbl"
        assert b.count() == 0

    def test_unknown_atom_type_rejected(self):
        with pytest.raises(AtomTypeError):
            BAT("oid", "nonsense")

    def test_void_head_auto_assigns_dense_oids(self):
        b = BAT("void", "int")
        b.insert(10).insert(20).insert(30)
        assert b.heads() == [0, 1, 2]
        assert b.tails() == [10, 20, 30]

    def test_single_arg_insert_requires_void(self):
        b = BAT("oid", "int")
        with pytest.raises(BatError):
            b.insert(5)

    def test_insert_coerces_tail(self):
        b = BAT("void", "dbl")
        b.insert(1)
        assert isinstance(b.tails()[0], float)

    def test_insert_rejects_bad_value(self):
        b = BAT("void", "int")
        with pytest.raises(AtomTypeError):
            b.insert("not a number")

    def test_bool_not_an_int(self):
        b = BAT("void", "int")
        with pytest.raises(AtomTypeError):
            b.insert(True)

    def test_bulk_insert_alignment_check(self):
        b = BAT("oid", "int")
        with pytest.raises(BatError):
            b.insert_bulk([1, 2], [10])

    def test_bulk_insert_void(self):
        b = BAT("void", "dbl")
        b.insert_bulk(None, [0.1, 0.2, 0.3])
        assert b.count() == 3
        assert b.heads() == [0, 1, 2]


class TestLookup:
    def setup_method(self):
        self.b = BAT("str", "flt")
        for name, score in (("Service", 0.3), ("Smash", 0.9), ("Backhand", 0.1)):
            self.b.insert(name, score)

    def test_find_returns_first_tail(self):
        assert self.b.find("Smash") == pytest.approx(0.9)

    def test_find_missing_raises(self):
        with pytest.raises(BatError):
            self.b.find("Volley")

    def test_exist(self):
        assert self.b.exist("Service")
        assert not self.b.exist("Volley")

    def test_fetch_positional(self):
        assert self.b.fetch(1) == ("Smash", pytest.approx(0.9))

    def test_fetch_out_of_range(self):
        with pytest.raises(BatError):
            self.b.fetch(10)

    def test_reverse_then_find_maps_score_to_name(self):
        # the Fig. 4 idiom: (parEval.reverse).find(best)
        best = self.b.max()
        assert self.b.reverse().find(best) == "Smash"


class TestOperators:
    def test_reverse_swaps_columns(self):
        b = BAT("void", "str")
        b.insert("a").insert("b")
        r = b.reverse()
        assert r.heads() == ["a", "b"]
        assert r.tails() == [0, 1]

    def test_mirror(self):
        b = BAT("void", "str")
        b.insert("x")
        m = b.mirror()
        assert m.heads() == m.tails() == [0]

    def test_mark_renumbers_tails(self):
        b = BAT("void", "str")
        b.insert("x").insert("y")
        assert b.mark(100).tails() == [100, 101]

    def test_select_equality(self):
        b = BAT("void", "int")
        b.insert_bulk(None, [1, 2, 2, 3])
        assert b.select(2).heads() == [1, 2]

    def test_select_range_is_inclusive(self):
        b = BAT("void", "int")
        b.insert_bulk(None, [1, 2, 3, 4, 5])
        assert b.select(2, 4).tails() == [2, 3, 4]

    def test_filter_tail_predicate(self):
        b = BAT("void", "int")
        b.insert_bulk(None, [1, 2, 3, 4])
        assert b.filter_tail(lambda v: v % 2 == 0).tails() == [2, 4]

    def test_join(self):
        ab = BAT("str", "int")
        ab.insert("x", 1).insert("y", 2)
        bc = BAT("int", "str")
        bc.insert(1, "one").insert(2, "two").insert(1, "uno")
        joined = ab.join(bc)
        assert set(zip(joined.heads(), joined.tails())) == {
            ("x", "one"),
            ("x", "uno"),
            ("y", "two"),
        }

    def test_semijoin_keeps_matching_heads(self):
        left = BAT("int", "str")
        left.insert(1, "a").insert(2, "b")
        right = BAT("int", "str")
        right.insert(2, "whatever")
        assert left.semijoin(right).tails() == ["b"]

    def test_kdiff(self):
        left = BAT("int", "str")
        left.insert(1, "a").insert(2, "b")
        right = BAT("int", "str")
        right.insert(2, "x")
        assert left.kdiff(right).tails() == ["a"]

    def test_kunion_deduplicates_heads(self):
        left = BAT("int", "str")
        left.insert(1, "a")
        right = BAT("int", "str")
        right.insert(1, "conflict").insert(2, "b")
        union = left.kunion(right)
        assert sorted(union.heads()) == [1, 2]

    def test_slice(self):
        b = BAT("void", "int")
        b.insert_bulk(None, list(range(10)))
        assert b.slice(2, 5).tails() == [2, 3, 4]

    def test_unique(self):
        b = BAT("int", "int")
        b.insert(1, 1).insert(1, 1).insert(2, 1)
        assert b.unique().count() == 2

    def test_sort_by_tail(self):
        b = BAT("str", "int")
        b.insert("c", 3).insert("a", 1).insert("b", 2)
        assert b.sort().tails() == [1, 2, 3]
        assert b.sort(reverse=True).heads() == ["c", "b", "a"]

    def test_delete_and_replace(self):
        b = BAT("str", "int")
        b.insert("a", 1).insert("b", 2).insert("a", 3)
        b.delete("a")
        assert b.count() == 1
        b.replace("b", 20)
        assert b.find("b") == 20

    def test_replace_missing_head(self):
        b = BAT("str", "int")
        with pytest.raises(BatError):
            b.replace("nope", 1)


class TestAggregates:
    def setup_method(self):
        self.b = BAT("void", "dbl")
        self.b.insert_bulk(None, [1.0, 2.0, 3.0, 4.0])

    def test_max_min_sum_avg(self):
        assert self.b.max() == 4.0
        assert self.b.min() == 1.0
        assert self.b.sum() == 10.0
        assert self.b.avg() == 2.5

    def test_empty_aggregate_raises(self):
        empty = BAT("void", "dbl")
        with pytest.raises(BatError):
            empty.max()

    def test_histogram(self):
        b = BAT("void", "str")
        for v in ("x", "y", "x"):
            b.insert(v)
        h = dict(zip(b.histogram().heads(), b.histogram().tails()))
        assert h == {"x": 2, "y": 1}

    def test_tail_array_dtype(self):
        assert self.b.tail_array().dtype == np.float64


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
def test_property_select_range_equals_python_filter(values):
    b = BAT("void", "int")
    b.insert_bulk(None, values)
    lo, hi = -100, 100
    expected = [v for v in values if lo <= v <= hi]
    assert b.select(lo, hi).tails() == expected


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1, max_size=40
    )
)
def test_property_reverse_is_involution(values):
    b = BAT("void", "dbl")
    b.insert_bulk(None, values)
    rr = b.reverse().reverse()
    assert rr.heads() == b.heads()
    assert rr.tails() == b.tails()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 20), min_size=1, max_size=40))
def test_property_histogram_counts_sum_to_size(values):
    b = BAT("void", "int")
    b.insert_bulk(None, values)
    assert sum(b.histogram().tails()) == len(values)
