"""Text substrate: font, detection, refinement, segmentation, recognition,
overlay semantics, and the full pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.errors import SignalError
from repro.text.detection import TextDetector, TextDetectorConfig, shaded_region
from repro.text.overlay import parse_overlay
from repro.text.patterns import GLYPH_HEIGHT, GLYPH_WIDTH, GLYPHS, glyph, render_text
from repro.text.recognition import (
    DEFAULT_LEXICON,
    match_word,
    recognize_region,
    recognize_words,
)
from repro.text.refinement import MAGNIFICATION, binarize, magnify, min_intensity_filter
from repro.text.segmentation import group_words, segment_characters

H, W = 72, 192


def overlay_frames(text, scale=1, n=4, seed=0, shade=28, ink=232, noise=18):
    rng = np.random.default_rng(seed)
    bitmap = render_text(text, scale=scale, spacing=1)
    h, w = bitmap.shape
    region = np.full((h + 8, w + 8, 3), shade, dtype=np.uint8)
    region[4 : 4 + h, 4 : 4 + w][bitmap.astype(bool)] = ink
    out = []
    for _ in range(n):
        jitter = rng.integers(-noise, noise * 2, region.shape)
        out.append(np.clip(region.astype(np.int16) + jitter, 0, 255).astype(np.uint8))
    return out


class TestPatterns:
    def test_glyph_shapes(self):
        for char, bitmap in GLYPHS.items():
            assert bitmap.shape == (GLYPH_HEIGHT, GLYPH_WIDTH), char

    def test_glyphs_distinct(self):
        letters = [c for c in GLYPHS if c.isalnum()]
        seen = {}
        for c in letters:
            key = GLYPHS[c].tobytes()
            assert key not in seen, f"{c} duplicates {seen.get(key)}"
            seen[key] = c

    def test_render_scale(self):
        assert render_text("AB", scale=3).shape == (21, 33)

    def test_render_case_insensitive(self):
        assert np.array_equal(render_text("abc"), render_text("ABC"))

    def test_render_unknown_char(self):
        with pytest.raises(SignalError):
            render_text("A~B")

    def test_render_empty(self):
        with pytest.raises(SignalError):
            render_text("")

    def test_glyph_lookup(self):
        assert glyph("a").shape == (7, 5)


class TestDetection:
    def _frame_with_overlay(self, rng):
        f = np.full((H, W, 3), 120, dtype=np.uint8)
        bitmap = render_text("PIT STOP", scale=1)
        strip_top = int(H * 0.8)
        f[strip_top:, :] = 25
        h, w = bitmap.shape
        top = strip_top + 3
        f[top : top + h, 6 : 6 + w][bitmap.astype(bool)] = 235
        return np.clip(f.astype(np.int16) + rng.integers(-6, 7, f.shape), 0, 255).astype(np.uint8)

    def test_shaded_region_crop(self):
        f = np.zeros((100, 50, 3), dtype=np.uint8)
        assert shaded_region(f, 0.2).shape == (20, 50, 3)

    def test_frame_has_shade(self, rng):
        detector = TextDetector()
        assert detector.frame_has_shade(self._frame_with_overlay(rng))
        bright = np.full((H, W, 3), 150, dtype=np.uint8)
        assert not detector.frame_has_shade(bright)

    def test_segments_duration_criteria(self, rng):
        detector = TextDetector(TextDetectorConfig(min_duration_frames=5))
        plain = np.full((H, W, 3), 120, dtype=np.uint8)
        frames = [plain] * 5 + [self._frame_with_overlay(rng) for _ in range(8)] + [plain] * 5
        segments = detector.segments(frames)
        assert len(segments) == 1
        assert segments[0].start_frame == 5
        assert segments[0].n_frames == 8

    def test_short_run_skipped(self, rng):
        detector = TextDetector(TextDetectorConfig(min_duration_frames=5))
        plain = np.full((H, W, 3), 120, dtype=np.uint8)
        frames = [plain] * 5 + [self._frame_with_overlay(rng) for _ in range(2)] + [plain] * 5
        assert detector.segments(frames) == []

    def test_uniform_dark_strip_is_not_text(self):
        detector = TextDetector()
        f = np.full((H, W, 3), 120, dtype=np.uint8)
        f[int(H * 0.8) :, :] = 25  # shade without characters
        assert detector.segments([f] * 8) == []


class TestRefinement:
    def test_min_filter_suppresses_transients(self, rng):
        base = np.full((20, 30), 50.0)
        regions = []
        for _ in range(5):
            r = base.copy()
            r[rng.integers(0, 20), rng.integers(0, 30)] = 250.0  # sparkle
            regions.append(r)
        filtered = min_intensity_filter(regions)
        assert filtered.max() <= 50.0

    def test_min_filter_shape_check(self):
        with pytest.raises(SignalError):
            min_intensity_filter([np.zeros((2, 2)), np.zeros((3, 3))])

    def test_magnify_factor(self):
        assert magnify(np.ones((3, 4)), 4).shape == (12, 16)
        assert MAGNIFICATION == 4

    def test_binarize_rgb_and_gray(self):
        rgb = np.zeros((4, 4, 3))
        rgb[0, 0] = [255, 255, 255]
        b = binarize(rgb)
        assert b[0, 0] == 1 and b.sum() == 1
        gray = np.full((2, 2), 200.0)
        assert binarize(gray).all()


class TestSegmentation:
    def test_character_count(self):
        binary = magnify(render_text("LAP", scale=1), 4).astype(np.uint8)
        assert len(segment_characters(binary)) == 3

    def test_double_projection_heights(self):
        # "." sits low; its refined box must be shorter than a letter's
        binary = magnify(render_text("A.", scale=1), 4).astype(np.uint8)
        boxes = segment_characters(binary)
        assert len(boxes) == 2
        assert boxes[1].height < boxes[0].height

    def test_group_words_splits_on_spaces(self):
        binary = magnify(render_text("PIT STOP", scale=1), 4).astype(np.uint8)
        words = group_words(segment_characters(binary))
        assert [len(w) for w in words] == [3, 4]

    def test_empty_region(self):
        assert segment_characters(np.zeros((10, 10), dtype=np.uint8)) == []
        assert group_words([]) == []


class TestRecognition:
    def test_clean_word(self):
        binary = magnify(render_text("WINNER", scale=1), 4).astype(np.uint8)
        matches = recognize_words(binary)
        assert [m.word for m in matches] == ["WINNER"]
        assert matches[0].score > 0.95

    def test_length_category_restricts(self):
        bitmap = magnify(render_text("LAP", scale=1), 4).astype(np.uint8)
        match = match_word(bitmap, ("CLASSIFICATION", "LAP"), n_characters=3)
        assert match.word == "LAP"

    def test_below_threshold_rejected(self, rng):
        noise = (rng.random((28, 80)) > 0.5).astype(np.uint8)
        assert match_word(noise, DEFAULT_LEXICON, n_characters=4) is None

    def test_multidigit_number(self):
        binary = magnify(render_text("LAP 47", scale=1), 4).astype(np.uint8)
        words = [m.word for m in recognize_words(binary)]
        assert words == ["LAP", "47"]

    def test_recognize_region_full_pipeline(self):
        matches = recognize_region(overlay_frames("PIT STOP MONTOYA"))
        assert [m.word for m in matches] == ["PIT", "STOP", "MONTOYA"]

    def test_recognition_survives_noise(self):
        matches = recognize_region(overlay_frames("FINAL LAP", seed=5, noise=25))
        assert [m.word for m in matches] == ["FINAL", "LAP"]

    @pytest.mark.parametrize(
        "text", ["SCHUMACHER", "BARRICHELLO", "HAKKINEN", "COULTHARD", "MONTOYA"]
    )
    def test_driver_names(self, text):
        matches = recognize_region(overlay_frames(text))
        assert [m.word for m in matches] == [text]


class TestOverlaySemantics:
    def test_pit_stop(self):
        e = parse_overlay(["PIT", "STOP", "BARRICHELLO"])
        assert e.kind == "pit_stop" and e.drivers == ["BARRICHELLO"]

    def test_classification_with_lap(self):
        e = parse_overlay(["1", "SCHUMACHER", "2", "HAKKINEN", "LAP", "12"])
        assert e.kind == "classification"
        assert e.positions == {"SCHUMACHER": 1, "HAKKINEN": 2}
        assert e.lap == 12

    def test_winner(self):
        assert parse_overlay(["WINNER", "RALF"]).kind == "winner"

    def test_final_lap(self):
        assert parse_overlay(["FINAL", "LAP"]).kind == "final_lap"

    def test_lap_counter(self):
        e = parse_overlay(["LAP", "43"])
        assert e.kind == "lap" and e.lap == 43

    def test_driver_info(self):
        e = parse_overlay(["MONTOYA"])
        assert e.kind == "driver_info" and e.drivers == ["MONTOYA"]

    def test_unknown(self):
        assert parse_overlay(["FASTEST"]).kind == "unknown"


@settings(max_examples=25, deadline=None)
@given(
    st.text(
        alphabet=st.sampled_from("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"),
        min_size=1,
        max_size=8,
    )
)
def test_property_render_width_formula(text):
    bitmap = render_text(text, scale=1, spacing=1)
    expected_width = len(text) * GLYPH_WIDTH + (len(text) - 1)
    assert bitmap.shape == (GLYPH_HEIGHT, expected_width)
