"""Flowcheck: the type × interval × rate abstract interpretation."""

import json
import math
from pathlib import Path

import pytest

from repro.check.__main__ import main as check_main
from repro.check.flowcheck import (
    FlowChecker,
    Interval,
    check_feature_set,
    check_moa_flow,
)
from repro.errors import MilCheckError, MoaError
from repro.moa.algebra import Apply, Arith, Cmp, Const, Map, Select, Var
from repro.monet.kernel import MonetKernel
from repro.monet.module import CommandSignature

BADPLANS = Path(__file__).resolve().parent / "data" / "badplans"


# ---------------------------------------------------------------------------
# the interval lattice
# ---------------------------------------------------------------------------


class TestInterval:
    def test_hull_and_empty(self):
        empty = Interval(math.inf, -math.inf)
        assert empty.is_empty
        assert empty.hull(Interval(0.0, 1.0)) == Interval(0.0, 1.0)
        assert Interval(0.0, 0.5).hull(Interval(0.3, 2.0)) == Interval(0.0, 2.0)

    def test_escapes_requires_known_bounds(self):
        assert Interval(0.0, 2.0).escapes(0.0, 1.0)
        assert not Interval(0.0, 1.0).escapes(0.0, 1.0)
        # TOP and half-open intervals are over-approximations: silent
        assert not Interval().escapes(0.0, 1.0)
        assert not Interval(0.0, math.inf).escapes(0.0, 1.0)

    def test_within_treats_empty_as_vacuous(self):
        assert Interval(math.inf, -math.inf).within(0.0, 1.0)


# ---------------------------------------------------------------------------
# MIL flow analysis against a tiny signature table
# ---------------------------------------------------------------------------

SIGS = {
    "quant": CommandSignature(
        "quant",
        ("BAT[void,dbl]",),
        "BAT[void,int]",
        module="m",
        arg_ranges=((0.0, 1.0),),
    ),
    "score": CommandSignature(
        "score", ("BAT[void,int]",), "flt", module="m"
    ),
    "prob": CommandSignature(
        "prob", (), "dbl", module="m", returns_range=(0.0, 1.0)
    ),
    "mmap": CommandSignature("mmap", ("BAT", "str", "dbl"), "BAT", module="bulk"),
    "mselect": CommandSignature(
        "mselect", ("BAT", "str", "any"), "BAT", module="bulk"
    ),
}


def flow(source):
    return FlowChecker(commands=set(SIGS), signatures=SIGS).check_source(source)


class TestMilFlow:
    def test_feature_param_satisfies_contract(self):
        report = flow(
            """
            PROC p(BAT[void,dbl] f1) : int := {
              VAR q := quant(f1);
              RETURN q.count;
            }
            """
        )
        assert not report, report.format()

    def test_mmap_widening_escapes_contract(self):
        report = flow(
            """
            PROC p(BAT[void,dbl] f1) : int := {
              VAR g := mmap(f1, "*", 3.0);
              VAR q := quant(g);
              RETURN q.count;
            }
            """
        )
        assert [d.code for d in report] == ["FLOW005"]
        assert report.errors

    def test_mselect_narrowing_restores_contract(self):
        report = flow(
            """
            PROC p(BAT[void,dbl] f1) : int := {
              VAR g := mmap(f1, "*", 3.0);
              VAR s := mselect(g, "<=", 1.0);
              VAR q := quant(s);
              RETURN q.count;
            }
            """
        )
        assert not report, report.format()

    def test_select_method_narrows(self):
        report = flow(
            """
            PROC p(BAT[void,dbl] f1) : int := {
              VAR g := mmap(f1, "+", 1.0);
              VAR s := g.select(0.0, 1.0);
              VAR q := quant(s);
              RETURN q.count;
            }
            """
        )
        assert not report, report.format()

    def test_boundary_type_mismatch_is_flow004(self):
        report = flow(
            """
            PROC p(BAT[void,dbl] f1) : flt := {
              VAR s := score(f1);
              RETURN s;
            }
            """
        )
        assert [d.code for d in report] == ["FLOW004"]

    def test_returns_range_seeds_then_arith_escapes(self):
        report = flow(
            """
            PROC p() : int := {
              VAR x := prob() + 1.0;
              VAR b := new(void, dbl);
              b.insert(x);
              VAR q := quant(b);
              RETURN q.count;
            }
            """
        )
        assert [d.code for d in report] == ["FLOW005"]

    def test_maybe_assigned_is_a_warning(self):
        report = flow(
            """
            PROC p(int n) : int := {
              VAR x;
              IF (n > 0) { x := 1; }
              RETURN x;
            }
            """
        )
        assert [d.code for d in report] == ["FLOW001"]
        assert report.warnings and not report.errors

    def test_loop_carried_store_is_not_dead(self):
        report = flow(
            """
            PROC p(int n) : int := {
              VAR x := 0;
              WHILE (n > 0) {
                x := x + 1;
                n := n - 1;
              }
              RETURN x;
            }
            """
        )
        assert not report, report.format()

    def test_syntax_error_is_left_to_milcheck(self):
        assert not flow("PROC broken( := {}")


# ---------------------------------------------------------------------------
# Moa expression flow
# ---------------------------------------------------------------------------


class TestMoaFlow:
    def test_map_multiply_escapes_evidence_contract(self):
        expr = Apply(
            "dbn",
            "infer",
            [Map("x", Arith("*", Var("x"), Const(2.0)), Var("f1"))],
        )
        report = check_moa_flow(expr)
        assert [d.code for d in report] == ["FLOW005"]

    def test_select_keeps_element_range(self):
        expr = Apply(
            "dbn",
            "infer",
            [Select("x", Cmp(">", Var("x"), Const(0.5)), Var("f1"))],
        )
        assert not check_moa_flow(expr)

    def test_explicit_ranges_override_seeding(self):
        expr = Apply("hmm", "evaluate", [Var("raw")])
        report = check_moa_flow(expr, ranges={"raw": (0.0, 255.0)})
        assert [d.code for d in report] == ["FLOW005"]

    def test_non_evidence_extension_is_not_checked(self):
        expr = Apply(
            "videoproc",
            "features",
            [Map("x", Arith("*", Var("x"), Const(9.0)), Var("f1"))],
        )
        assert not check_moa_flow(expr)

    def test_compiler_collects_flow_findings(self):
        from repro.moa.rewrite import MoaCompiler

        compiler = MoaCompiler(MonetKernel(check="off"), check="warn")
        expr = Apply(
            "dbn",
            "infer",
            [Map("x", Arith("*", Var("x"), Const(2.0)), Var("f1"))],
        )
        # Apply is outside the MIL-compilable subset, but the precheck runs
        # (and collects) before the rewrite rejects the shape.
        with pytest.raises(MoaError):
            compiler.compile(expr)
        assert any(d.code == "FLOW005" for d in compiler.diagnostics)


# ---------------------------------------------------------------------------
# feature-set profile checks
# ---------------------------------------------------------------------------


class TestFeatureSet:
    def test_clean_streams_pass(self):
        streams = {"f1": [0.1] * 20, "f2": [0.9] * 20}
        assert not check_feature_set(streams, duration=2.0)

    def test_nan_is_flow005(self):
        report = check_feature_set({"f1": [0.1, math.nan, 0.2]})
        assert [d.code for d in report] == ["FLOW005"]

    def test_one_finding_per_stream(self):
        report = check_feature_set({"f1": [1.5, 2.5, 3.5]})
        assert [d.code for d in report] == ["FLOW005"]

    def test_length_disagreement_is_flow006(self):
        report = check_feature_set({"f1": [0.1] * 10, "f2": [0.1] * 12})
        assert [d.code for d in report] == ["FLOW006"]

    def test_duration_rate_mismatch_is_flow006(self):
        report = check_feature_set({"f1": [0.1] * 15}, duration=2.0)
        assert [d.code for d in report] == ["FLOW006"]


# ---------------------------------------------------------------------------
# the define_proc choke point
# ---------------------------------------------------------------------------


class TestChokePoints:
    def test_define_proc_rejects_flow_errors(self):
        kernel = MonetKernel(check="error")
        with pytest.raises(MilCheckError) as err:
            kernel.run("PROC bad() : int := { VAR x; RETURN x; }")
        assert any(d.code == "FLOW001" for d in err.value.diagnostics)

    def test_define_proc_rejects_race_errors(self):
        kernel = MonetKernel(check="error")
        with pytest.raises(MilCheckError) as err:
            kernel.run(
                """
                PROC bad(BAT[void,dbl] a) : int := {
                  PARALLEL {
                    persist("x", a);
                    persist("x", a);
                  }
                  RETURN 1;
                }
                """
            )
        assert any(d.code == "RACE001" for d in err.value.diagnostics)

    def test_warn_mode_collects_without_raising(self):
        kernel = MonetKernel(check="warn")
        kernel.run("PROC shaky() : int := { VAR x; RETURN x; }")
        assert any(
            d.code == "FLOW001" for d in kernel.interpreter.diagnostics
        )


# ---------------------------------------------------------------------------
# CLI formats
# ---------------------------------------------------------------------------


class TestCli:
    def test_json_output_round_trips(self, capsys):
        path = BADPLANS / "flow001_uninit.mil"
        code = check_main(["--format", "json", str(path)])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["tool"] == "repro.check"
        assert document["errors"] >= 1
        assert any(d["code"] == "FLOW001" for d in document["diagnostics"])

    def test_sarif_output_structure(self, capsys):
        path = BADPLANS / "race001_parallel_persist.mil"
        code = check_main(["--format", "sarif", str(path)])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.check"
        assert any(r["ruleId"] == "RACE001" for r in run["results"])
        location = run["results"][0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(".mil")

    def test_strict_promotes_warnings(self, capsys):
        path = BADPLANS / "flow002_dead_store.mil"
        assert check_main([str(path)]) == 0
        capsys.readouterr()
        assert check_main(["--strict", str(path)]) == 1

    def test_builtins_lint_clean_under_strict(self, capsys):
        assert check_main(["--strict"]) == 0
