"""Bayesian networks: factors, DAG, VE inference, MLE and EM learning."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.bayes.cpd import TabularCpd
from repro.bayes.factor import Factor
from repro.bayes.graph import Dag
from repro.bayes.inference import VariableElimination, min_fill_order
from repro.bayes.learn import ExpectationMaximization, mle
from repro.bayes.network import BayesianNetwork
from repro.errors import (
    CpdError,
    GraphStructureError,
    InferenceError,
    LearningError,
)


def sprinkler() -> BayesianNetwork:
    net = BayesianNetwork()
    net.add_cpd(TabularCpd("Rain", 2, [0.8, 0.2]))
    net.add_cpd(
        TabularCpd(
            "Sprinkler", 2, [[0.6, 0.99], [0.4, 0.01]], ["Rain"], [2]
        )
    )
    net.add_cpd(
        TabularCpd(
            "Wet",
            2,
            np.array([[[1.0, 0.2], [0.1, 0.01]], [[0.0, 0.8], [0.9, 0.99]]]),
            ["Sprinkler", "Rain"],
            [2, 2],
        )
    )
    net.validate()
    return net


class TestFactor:
    def test_multiply_union_scope(self):
        a = Factor(["X"], [2], [0.4, 0.6])
        b = Factor(["X", "Y"], [2, 2], [[0.1, 0.9], [0.5, 0.5]])
        p = a * b
        assert sorted(p.variables) == ["X", "Y"]
        assert p.values[1, 0] == pytest.approx(0.6 * 0.5)

    def test_multiply_disjoint(self):
        a = Factor(["X"], [2], [0.5, 0.5])
        b = Factor(["Y"], [3], [0.2, 0.3, 0.5])
        assert (a * b).values.shape == (2, 3)

    def test_cardinality_mismatch(self):
        a = Factor(["X"], [2], [1, 1])
        b = Factor(["X"], [3], [1, 1, 1])
        with pytest.raises(InferenceError):
            a * b

    def test_marginalize(self):
        f = Factor(["X", "Y"], [2, 2], [[1, 2], [3, 4]])
        m = f.marginalize(["Y"])
        assert m.values.tolist() == [3, 7]

    def test_marginalize_all_gives_scalar(self):
        f = Factor(["X"], [2], [1, 3])
        s = f.marginalize(["X"])
        assert s.is_scalar() and s.total() == 4

    def test_reduce(self):
        f = Factor(["X", "Y"], [2, 2], [[1, 2], [3, 4]])
        r = f.reduce({"Y": 1})
        assert r.variables == ["X"]
        assert r.values.tolist() == [2, 4]

    def test_reduce_out_of_range(self):
        f = Factor(["X"], [2], [1, 1])
        with pytest.raises(InferenceError):
            f.reduce({"X": 5})

    def test_weight_virtual_evidence(self):
        f = Factor(["X"], [2], [0.5, 0.5])
        w = f.weight("X", [1.0, 3.0]).normalize()
        assert w.values.tolist() == [0.25, 0.75]

    def test_normalize_zero_raises(self):
        with pytest.raises(InferenceError):
            Factor(["X"], [2], [0, 0]).normalize()

    def test_negative_rejected(self):
        with pytest.raises(InferenceError):
            Factor(["X"], [2], [-1, 2])

    def test_transpose(self):
        f = Factor(["A", "B"], [2, 3], np.arange(6).reshape(2, 3))
        t = f.transpose(["B", "A"])
        assert t.values.shape == (3, 2)
        assert t.values[2, 1] == f.values[1, 2]

    def test_duplicate_variables_rejected(self):
        with pytest.raises(InferenceError):
            Factor(["X", "X"], [2, 2], np.ones((2, 2)))

    def test_unit_is_identity(self):
        f = Factor(["X"], [2], [0.3, 0.7])
        assert (Factor.unit() * f).almost_equal(f)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(0.01, 10.0), min_size=4, max_size=4),
    st.lists(st.floats(0.01, 10.0), min_size=2, max_size=2),
)
def test_property_multiply_then_marginalize_commutes(xy_values, y_values):
    """sum_Y (f(X,Y) * g(Y)) == matrix product — distributivity."""
    f = Factor(["X", "Y"], [2, 2], np.array(xy_values).reshape(2, 2))
    g = Factor(["Y"], [2], y_values)
    left = (f * g).marginalize(["Y"])
    expected = f.values @ np.array(y_values)
    assert np.allclose(left.transpose(["X"]).values, expected)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(0.01, 5.0), min_size=8, max_size=8))
def test_property_reduce_commutes_with_marginalize_other_axis(values):
    f = Factor(["A", "B", "C"], [2, 2, 2], np.array(values).reshape(2, 2, 2))
    one = f.reduce({"A": 1}).marginalize(["B"])
    other = f.marginalize(["B"]).reduce({"A": 1})
    assert one.almost_equal(other)


class TestDag:
    def test_cycle_rejected(self):
        d = Dag()
        d.add_edge("a", "b")
        d.add_edge("b", "c")
        with pytest.raises(GraphStructureError):
            d.add_edge("c", "a")

    def test_self_loop_rejected(self):
        with pytest.raises(GraphStructureError):
            Dag().add_edge("a", "a")

    def test_topological_order(self):
        d = Dag()
        d.add_edge("a", "b")
        d.add_edge("b", "c")
        d.add_edge("a", "c")
        order = d.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_ancestors_descendants(self):
        d = Dag()
        d.add_edge("a", "b")
        d.add_edge("b", "c")
        assert d.ancestors("c") == {"a", "b"}
        assert d.descendants("a") == {"b", "c"}

    def test_roots_leaves(self):
        d = Dag()
        d.add_edge("a", "b")
        assert d.roots() == ["a"]
        assert d.leaves() == ["b"]

    def test_subgraph(self):
        d = Dag()
        d.add_edge("a", "b")
        d.add_edge("b", "c")
        s = d.subgraph(["a", "b"])
        assert s.edges() == [("a", "b")]

    def test_idempotent_edges(self):
        d = Dag()
        d.add_edge("a", "b")
        d.add_edge("a", "b")
        assert d.edges() == [("a", "b")]


class TestCpd:
    def test_columns_must_normalize(self):
        with pytest.raises(CpdError):
            TabularCpd("X", 2, [[0.5, 0.5], [0.6, 0.5]], ["P"], [2])

    def test_probability_lookup(self):
        cpd = TabularCpd("X", 2, [[0.9, 0.2], [0.1, 0.8]], ["P"], [2])
        assert cpd.probability(1, {"P": 1}) == pytest.approx(0.8)

    def test_probability_missing_parent(self):
        cpd = TabularCpd("X", 2, [[0.9, 0.2], [0.1, 0.8]], ["P"], [2])
        with pytest.raises(CpdError):
            cpd.probability(0, {})

    def test_random_is_normalized(self):
        cpd = TabularCpd.random("X", 3, ["P"], [4], rng=np.random.default_rng(0))
        assert np.allclose(cpd.table.sum(axis=0), 1.0)

    def test_to_factor_rename(self):
        cpd = TabularCpd("X", 2, [[0.9, 0.2], [0.1, 0.8]], ["P"], [2])
        f = cpd.to_factor({"X": "X@1", "P": "P@0"})
        assert f.variables == ["X@1", "P@0"]


class TestInference:
    def test_known_posterior(self):
        ve = VariableElimination(sprinkler())
        post = ve.query("Rain", {"Wet": 1})
        assert post.values[0] == pytest.approx(0.6423, abs=1e-3)

    def test_joint_query(self):
        ve = VariableElimination(sprinkler())
        joint = ve.query(["Rain", "Sprinkler"], {"Wet": 1})
        assert joint.values.shape == (2, 2)
        assert joint.total() == pytest.approx(1.0)

    def test_no_evidence_matches_prior(self):
        ve = VariableElimination(sprinkler())
        assert ve.query("Rain").values[1] == pytest.approx(0.2)

    def test_evidence_probability(self):
        ve = VariableElimination(sprinkler())
        assert ve.evidence_probability({"Wet": 1}) == pytest.approx(0.44838)

    def test_virtual_evidence_one_hot_equals_hard(self):
        ve = VariableElimination(sprinkler())
        hard = ve.query("Rain", {"Wet": 1})
        soft = ve.query("Rain", virtual_evidence={"Wet": [0.0, 1.0]})
        assert soft.almost_equal(hard, atol=1e-9)

    def test_query_var_in_evidence_rejected(self):
        ve = VariableElimination(sprinkler())
        with pytest.raises(InferenceError):
            ve.query("Wet", {"Wet": 1})

    def test_evidence_on_unknown_node(self):
        ve = VariableElimination(sprinkler())
        with pytest.raises(InferenceError):
            ve.query("Rain", {"Ghost": 0})

    def test_map_state(self):
        ve = VariableElimination(sprinkler())
        assert ve.map_state("Rain", {"Wet": 1}) == 0

    def test_min_fill_covers_all(self):
        order = min_fill_order([["a", "b"], ["b", "c"]], ["a", "b", "c"])
        assert sorted(order) == ["a", "b", "c"]

    def test_ve_matches_brute_force_joint(self):
        net = sprinkler()
        ve = VariableElimination(net)
        joint = net.joint()
        brute = joint.reduce({"Wet": 1}).keep(["Sprinkler"]).normalize()
        fast = ve.query("Sprinkler", {"Wet": 1})
        assert fast.almost_equal(brute, atol=1e-12)


class TestLearning:
    def test_mle_recovers_parameters(self, rng):
        net = sprinkler()
        data = net.sample(4000, rng)
        fit = mle(net, data)
        assert fit.cpd("Rain").table[1] == pytest.approx(0.2, abs=0.03)

    def test_mle_empty_rejected(self):
        with pytest.raises(LearningError):
            mle(sprinkler(), [])

    def test_mle_incomplete_rejected(self):
        with pytest.raises(LearningError):
            mle(sprinkler(), [{"Rain": 0}])

    def test_mle_pseudocount_smooths(self):
        net = sprinkler()
        data = [{"Rain": 0, "Sprinkler": 0, "Wet": 0}] * 3
        fit = mle(net, data, pseudo_count=1.0)
        assert fit.cpd("Rain").table[1] > 0

    def test_em_loglik_monotone(self, rng):
        net = sprinkler()
        data = net.sample(250, rng)
        hidden = [{k: v for k, v in r.items() if k != "Sprinkler"} for r in data]
        start = net.copy()
        start.replace_cpd(
            TabularCpd.random("Sprinkler", 2, ["Rain"], [2], rng=rng)
        )
        # pure ML EM (no Dirichlet smoothing) is provably monotone in the
        # data log-likelihood; the smoothed variant is monotone only in the
        # MAP objective.
        result = ExpectationMaximization(
            start, max_iterations=15, pseudo_count=0.0
        ).fit(hidden)
        diffs = np.diff(result.log_likelihoods)
        assert np.all(diffs >= -1e-8)

    def test_em_fully_observed_agrees_with_mle(self, rng):
        net = sprinkler()
        data = net.sample(400, rng)
        em = ExpectationMaximization(net.copy(), max_iterations=3, pseudo_count=0.0)
        em_fit = em.fit(data).network
        mle_fit = mle(net, data)
        assert np.allclose(
            em_fit.cpd("Wet").table, mle_fit.cpd("Wet").table, atol=1e-9
        )

    def test_em_empty_rejected(self):
        with pytest.raises(LearningError):
            ExpectationMaximization(sprinkler()).fit([])


class TestNetworkStructure:
    def test_duplicate_cpd_rejected(self):
        net = BayesianNetwork()
        net.add_cpd(TabularCpd("X", 2, [0.5, 0.5]))
        with pytest.raises(GraphStructureError):
            net.add_cpd(TabularCpd("X", 2, [0.5, 0.5]))

    def test_validate_missing_cpd(self):
        net = BayesianNetwork()
        net.add_cpd(TabularCpd("X", 2, [[0.5, 0.5], [0.5, 0.5]], ["P"], [2]))
        with pytest.raises(GraphStructureError):
            net.validate()

    def test_replace_cpd_structure_locked(self):
        net = sprinkler()
        with pytest.raises(GraphStructureError):
            net.replace_cpd(TabularCpd("Wet", 2, [0.5, 0.5]))

    def test_log_likelihood_complete(self):
        net = sprinkler()
        ll = net.log_likelihood([{"Rain": 0, "Sprinkler": 0, "Wet": 0}])
        assert ll == pytest.approx(np.log(0.8 * 0.6 * 1.0))

    def test_sample_respects_evidence_clamp(self, rng):
        net = sprinkler()
        samples = net.sample(50, rng, evidence={"Rain": 1})
        assert all(s["Rain"] == 1 for s in samples)
