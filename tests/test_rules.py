"""Rule engine + Allen interval algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import RuleError
from repro.rules.engine import Fact, Pattern, Rule, RuleEngine, Var
from repro.rules.temporal import ALLEN_RELATIONS, INVERSES, allen_relation, holds
from repro.synth.annotations import Interval


class TestAllen:
    CASES = [
        (Interval(0, 1), Interval(2, 3), "before"),
        (Interval(2, 3), Interval(0, 1), "after"),
        (Interval(0, 2), Interval(2, 3), "meets"),
        (Interval(2, 3), Interval(0, 2), "met_by"),
        (Interval(0, 3), Interval(2, 5), "overlaps"),
        (Interval(2, 5), Interval(0, 3), "overlapped_by"),
        (Interval(0, 2), Interval(0, 5), "starts"),
        (Interval(0, 5), Interval(0, 2), "started_by"),
        (Interval(1, 3), Interval(0, 5), "during"),
        (Interval(0, 5), Interval(1, 3), "contains"),
        (Interval(3, 5), Interval(0, 5), "finishes"),
        (Interval(0, 5), Interval(3, 5), "finished_by"),
        (Interval(1, 4), Interval(1, 4), "equals"),
    ]

    @pytest.mark.parametrize("a,b,expected", CASES)
    def test_all_thirteen_relations(self, a, b, expected):
        assert allen_relation(a, b) == expected

    def test_inverse_table_consistent(self):
        for a, b, expected in self.CASES:
            assert allen_relation(b, a) == INVERSES[expected]

    def test_tolerance(self):
        a = Interval(0, 2.0)
        b = Interval(2.05, 4.0)
        assert allen_relation(a, b, tolerance=0.1) == "meets"
        assert allen_relation(a, b, tolerance=0.0) == "before"

    def test_holds_disjunctions(self):
        a, b = Interval(1, 3), Interval(2, 6)
        assert holds("intersects", a, b)
        assert holds("within", Interval(3, 4), b)
        assert not holds("within", Interval(1, 7), b)

    def test_holds_unknown_relation(self):
        with pytest.raises(RuleError):
            holds("near", Interval(0, 1), Interval(1, 2))


@settings(max_examples=60, deadline=None)
@given(
    st.tuples(st.floats(0, 100), st.floats(0.1, 10)),
    st.tuples(st.floats(0, 100), st.floats(0.1, 10)),
)
def test_property_exactly_one_allen_relation(a_spec, b_spec):
    a = Interval(a_spec[0], a_spec[0] + a_spec[1])
    b = Interval(b_spec[0], b_spec[0] + b_spec[1])
    relation = allen_relation(a, b)
    assert relation in ALLEN_RELATIONS
    # the inverse relation must hold in the other direction
    assert allen_relation(b, a) == INVERSES[relation]


class TestEngine:
    def test_fact_identity(self):
        assert Fact.of("e", a=1) == Fact.of("e", a=1)
        assert Fact.of("e", a=1) != Fact.of("e", a=2)

    def test_pattern_binding_and_unification(self):
        p1 = Pattern.of("pair", left=Var("x"))
        p2 = Pattern.of("pair", right=Var("x"))
        bindings = p1.match(Fact.of("pair", left=1, right=2), {})
        assert bindings == {"x": 1}
        assert p2.match(Fact.of("pair", left=0, right=1), bindings) == {"x": 1}
        assert p2.match(Fact.of("pair", left=0, right=9), bindings) is None

    def test_predicate_constraint(self):
        p = Pattern.of("n", value=lambda v: v > 3)
        assert p.match(Fact.of("n", value=5), {}) is not None
        assert p.match(Fact.of("n", value=1), {}) is None

    def test_forward_chaining_derives(self):
        engine = RuleEngine()
        engine.add_fact(Fact.of("event", kind="fly_out", start=10.0, end=16.0))
        engine.add_fact(Fact.of("event", kind="excited", start=11.0, end=14.0))
        engine.add_rule(
            Rule(
                name="announced_flyout",
                patterns=[
                    Pattern.of("event", kind="fly_out", start=Var("s1"), end=Var("e1")),
                    Pattern.of("event", kind="excited", start=Var("s2"), end=Var("e2")),
                ],
                guard=lambda b: holds(
                    "intersects",
                    Interval(b["s1"], b["e1"]),
                    Interval(b["s2"], b["e2"]),
                ),
                action=lambda b: [
                    Fact.of("event", kind="announced_flyout", start=b["s1"], end=b["e1"])
                ],
            )
        )
        derived = engine.run()
        assert derived == 1
        assert engine.facts("event")[-1].get("kind") == "announced_flyout"

    def test_fixpoint_terminates_on_duplicates(self):
        engine = RuleEngine()
        engine.add_fact(Fact.of("seed", v=1))
        engine.add_rule(
            Rule(
                "idempotent",
                [Pattern.of("seed", v=Var("v"))],
                action=lambda b: [Fact.of("derived", v=b["v"])],
            )
        )
        assert engine.run() == 1
        assert engine.run() == 0  # nothing new on the second run

    def test_transitive_closure(self):
        engine = RuleEngine()
        for a, b in (("a", "b"), ("b", "c"), ("c", "d")):
            engine.add_fact(Fact.of("edge", src=a, dst=b))
        engine.add_rule(
            Rule(
                "transitivity",
                [
                    Pattern.of("edge", src=Var("x"), dst=Var("y")),
                    Pattern.of("edge", src=Var("y"), dst=Var("z")),
                ],
                action=lambda b: [Fact.of("edge", src=b["x"], dst=b["z"])],
            )
        )
        engine.run()
        pairs = {(f.get("src"), f.get("dst")) for f in engine.facts("edge")}
        assert ("a", "d") in pairs

    def test_runaway_rule_detected(self):
        engine = RuleEngine(max_iterations=5)
        engine.add_fact(Fact.of("n", v=0))
        engine.add_rule(
            Rule(
                "grow",
                [Pattern.of("n", v=Var("v"))],
                action=lambda b: [Fact.of("n", v=b["v"] + 1)],
            )
        )
        with pytest.raises(RuleError):
            engine.run()

    def test_rule_without_patterns_rejected(self):
        with pytest.raises(RuleError):
            RuleEngine().add_rule(Rule("bad", [], action=lambda b: []))

    def test_distinct_facts_per_pattern(self):
        """A two-pattern rule must not match the same fact twice."""
        engine = RuleEngine()
        engine.add_fact(Fact.of("x", v=1))
        hits = []
        engine.add_rule(
            Rule(
                "pairs",
                [Pattern.of("x", v=Var("a")), Pattern.of("x", v=Var("b"))],
                action=lambda b: hits.append(b) or [],
            )
        )
        engine.run()
        assert hits == []
