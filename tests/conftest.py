"""Shared fixtures.

The expensive artifacts (a synthetic race with extracted features, a
trained retrieval system) are session-scoped: every integration test
shares one 180 s race.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fusion.pipeline import RaceData, prepare_race
from repro.synth.race import RaceSpec


MINI_SPEC = RaceSpec(
    name="testrace",
    duration=180.0,
    n_passings=2,
    n_fly_outs=1,
    n_pit_stops=1,
    passing_visibility=0.9,
    excitement_reaction=0.8,
    seed=77,
)


@pytest.fixture(scope="session")
def mini_race() -> RaceData:
    """One fully synthesized + feature-extracted race for the session."""
    return prepare_race(MINI_SPEC)


@pytest.fixture(scope="session")
def f1_system(mini_race):
    """A trained FormulaOneSystem over the mini race."""
    from repro.retrieval.system import FormulaOneSystem

    return FormulaOneSystem(mini_race, seed=3)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
