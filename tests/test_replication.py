"""Replicated kernel group: WAL shipping, staleness-bounded routing, epoch
fencing, failover, the REPL static pass, and the seeded chaos scenario."""

import json

import pytest

from repro.check.replcheck import check_group_config, parse_read_policy
from repro.durability import DurableStore
from repro.errors import (
    FencedWriteError,
    ReplicationCheckError,
    ReplicationError,
    StalenessBoundError,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel
from repro.replication import (
    GroupConfig,
    KernelGroup,
    Replica,
    ReplicaPosition,
    ReplicationLink,
)
from repro.replication.chaos import (
    KILL_SWEEP_SITES,
    partition_failover_scenario,
    replication_kill_sweep,
)
from tests.test_durability import lap_bat


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


PROC_SOURCE = """
PROC bestLap(BAT[void,dbl] laps) : dbl := {
    RETURN laps.min;
}
"""


def driver_bat():
    return BAT.from_columns(
        "void", "str", [0, 1], ["hakkinen", "schumacher"], next_oid=2
    )


def make_primary(tmp_path, faults=None, check="off"):
    store = DurableStore(tmp_path / "primary", faults=faults, fsync=False)
    return MonetKernel(threads=1, check=check, store=store)


def make_group(tmp_path, primary=None, clock=None, config=None, faults=None):
    primary = primary or make_primary(tmp_path)
    return KernelGroup(
        primary,
        tmp_path,
        replicas=("replica-0", "replica-1"),
        config=config or GroupConfig(fsync=False),
        clock=clock or FakeClock(),
        faults=faults,
    )


# ---------------------------------------------------------------------------
# read-policy grammar + REPL static pass
# ---------------------------------------------------------------------------


class TestReadPolicy:
    def test_grammar(self):
        assert parse_read_policy("primary") == ("primary", None)
        assert parse_read_policy("any") == ("any", None)
        assert parse_read_policy("bounded(250)") == ("bounded", 250.0)
        assert parse_read_policy("bounded( 12.5 ms )") == ("bounded", 12.5)

    @pytest.mark.parametrize(
        "bad", ["bounded()", "bounded(-5)", "replica", "", "bounded(x)"]
    )
    def test_malformed_policy_raises(self, bad):
        with pytest.raises(ReplicationError):
            parse_read_policy(bad)


class TestReplCheck:
    def test_clean_config_has_no_findings(self):
        report = check_group_config(
            GroupConfig(read_policy="bounded(100)"), ["replica-0"]
        )
        assert report.sorted() == []

    def test_repl001_write_routed_to_replica(self):
        report = check_group_config(
            GroupConfig(write_routing="replica-0"), ["replica-0"]
        )
        codes = [d.code for d in report.sorted()]
        assert codes == ["REPL001"]
        assert report.has_errors()

    def test_repl002_unfenced_epoch_transition(self):
        report = check_group_config(GroupConfig(fencing=False), ["replica-0"])
        assert [d.code for d in report.sorted()] == ["REPL002"]
        assert report.has_errors()

    def test_repl003_warns_per_slow_replica_errors_when_unsatisfiable(self):
        config = GroupConfig(
            read_policy="bounded(50)",
            registered_lag_ms={"replica-0": 80.0, "replica-1": 10.0},
        )
        report = check_group_config(config, ["replica-0", "replica-1"])
        findings = report.sorted()
        assert [d.code for d in findings] == ["REPL003"]
        assert not report.has_errors()  # one slow replica: warning only

        hopeless = GroupConfig(
            read_policy="bounded(50)",
            registered_lag_ms={"replica-0": 80.0, "replica-1": 90.0},
        )
        report = check_group_config(hopeless, ["replica-0", "replica-1"])
        assert [d.code for d in report.sorted()] == [
            "REPL003",
            "REPL003",
            "REPL003",
        ]
        assert report.has_errors()

    def test_group_construction_enforces_the_pass(self, tmp_path):
        with pytest.raises(ReplicationCheckError):
            make_group(tmp_path, config=GroupConfig(fencing=False, fsync=False))

    def test_check_warn_records_diagnostics_without_raising(self, tmp_path):
        group = make_group(
            tmp_path,
            config=GroupConfig(fencing=False, check="warn", fsync=False),
        )
        assert [d.code for d in group.diagnostics] == ["REPL002"]
        group.close()

    def test_check_off_skips_the_pass(self, tmp_path):
        group = make_group(
            tmp_path,
            config=GroupConfig(fencing=False, check="off", fsync=False),
        )
        assert group.diagnostics == []
        group.close()


# ---------------------------------------------------------------------------
# the shipping link
# ---------------------------------------------------------------------------


class TestReplicationLink:
    def test_fresh_position_forces_catchup(self, tmp_path):
        primary = make_primary(tmp_path)
        primary.persist("laps", lap_bat())
        link = ReplicationLink(primary.store.path)
        shipment = link.fetch(ReplicaPosition(), epoch=1)
        assert shipment.catchup
        assert len(shipment.records) == 1
        assert shipment.position == ReplicaPosition(1, 0, 1)
        assert shipment.remaining == 0
        primary.close()

    def test_incremental_tail_after_established_position(self, tmp_path):
        primary = make_primary(tmp_path)
        primary.persist("laps", lap_bat())
        link = ReplicationLink(primary.store.path)
        first = link.fetch(ReplicaPosition(), epoch=1)
        primary.persist("drivers", driver_bat())
        second = link.fetch(first.position, epoch=1)
        assert not second.catchup and second.snapshot is None
        assert [r["name"] for r in second.records] == ["drivers"]
        primary.close()

    def test_lag_withholds_the_newest_records(self, tmp_path):
        primary = make_primary(tmp_path)
        for i in range(3):
            primary.persist(f"b{i}", lap_bat())
        link = ReplicationLink(primary.store.path)
        shipment = link.fetch(ReplicaPosition(), epoch=1, withhold=2)
        assert [r["name"] for r in shipment.records] == ["b0"]
        assert shipment.remaining == 2
        # the withheld records arrive once the lag clears
        rest = link.fetch(shipment.position, epoch=1)
        assert [r["name"] for r in rest.records] == ["b1", "b2"]
        assert rest.remaining == 0
        primary.close()

    def test_primary_checkpoint_invalidates_the_position(self, tmp_path):
        primary = make_primary(tmp_path)
        primary.persist("laps", lap_bat())
        link = ReplicationLink(primary.store.path)
        position = link.fetch(ReplicaPosition(), epoch=1).position
        primary.checkpoint()
        primary.persist("drivers", driver_bat())
        shipment = link.fetch(position, epoch=1)
        assert shipment.catchup
        assert "laps" in shipment.snapshot.catalog
        assert [r["name"] for r in shipment.records] == ["drivers"]
        primary.close()

    def test_epoch_mismatch_invalidates_the_position(self, tmp_path):
        primary = make_primary(tmp_path)
        primary.persist("laps", lap_bat())
        link = ReplicationLink(primary.store.path)
        position = link.fetch(ReplicaPosition(), epoch=1).position
        assert link.fetch(position, epoch=2).catchup
        primary.close()

    def test_checkpoint_with_no_subsequent_records_ships_snapshot_only(
        self, tmp_path
    ):
        primary = make_primary(tmp_path)
        primary.persist("laps", lap_bat())
        primary.checkpoint()
        link = ReplicationLink(primary.store.path)
        shipment = link.fetch(ReplicaPosition(), epoch=1)
        assert shipment.catchup and shipment.records == []
        assert "laps" in shipment.snapshot.catalog
        primary.close()

    def test_backlog_counts_unconsumed_and_off_lineage_state(self, tmp_path):
        primary = make_primary(tmp_path)
        primary.persist("laps", lap_bat())
        link = ReplicationLink(primary.store.path)
        # off-lineage: the full snapshot + tail must re-ship
        assert link.backlog(ReplicaPosition(), epoch=1) == 1
        position = link.fetch(ReplicaPosition(), epoch=1).position
        assert link.backlog(position, epoch=1) == 0
        primary.persist("drivers", driver_bat())
        assert link.backlog(position, epoch=1) == 1
        primary.close()


# ---------------------------------------------------------------------------
# pump + apply semantics
# ---------------------------------------------------------------------------


class TestPumpAndApply:
    def test_pump_converges_catalog_and_procs(self, tmp_path):
        primary = make_primary(tmp_path)
        group = make_group(tmp_path, primary=primary)
        primary.persist("laps", lap_bat())
        primary.run(PROC_SOURCE)
        with primary.transaction():
            primary.persist("drivers", driver_bat())
            primary.persist("pits", lap_bat())
        group.pump()
        assert group.convergence_report() == []
        for name in group.replica_names():
            replica = group.replica(name)
            assert replica.lag_records == 0
            assert "bestLap" in replica.kernel.procedures()
            assert replica.commits_applied == 1
        group.close()

    def test_uncommitted_batch_stays_pending_across_pumps(self, tmp_path):
        # a lag fault withholds the commit marker: the replica must buffer
        # the batch (crash-recovery semantics), not apply half a txn
        plan = FaultPlan(
            seed=3,
            specs=(
                FaultSpec(
                    site="replication.link:replica-0",
                    kind="lag",
                    factor=1,
                    max_triggers=1,
                ),
            ),
        )
        primary = make_primary(tmp_path)
        group = make_group(tmp_path, primary=primary, faults=FaultInjector(plan))
        with primary.transaction():
            primary.persist("laps", lap_bat())
            primary.persist("drivers", driver_bat())
        group.pump()
        lagging = group.replica("replica-0")
        assert lagging.has_pending and lagging.lag_records == 1
        assert "laps" not in lagging.kernel.catalog_names()
        # replica-1 was not lagged and applied the whole transaction
        assert group.replica("replica-1").lag_records == 0
        group.pump()  # the spec is exhausted; the marker ships
        assert not lagging.has_pending and lagging.lag_records == 0
        assert group.convergence_report() == []
        group.close()

    def test_partition_fault_severs_the_link_for_a_round(self, tmp_path):
        plan = FaultPlan(
            seed=4,
            specs=(
                FaultSpec(
                    site="replication.link:replica-1",
                    kind="partition",
                    max_triggers=1,
                ),
            ),
        )
        primary = make_primary(tmp_path)
        group = make_group(tmp_path, primary=primary, faults=FaultInjector(plan))
        primary.persist("laps", lap_bat())
        group.pump()
        assert group.replica("replica-0").lag_records == 0
        assert group.replica("replica-1").lag_records == 1
        group.pump()  # heals: the spec hit its trigger cap
        assert group.replica("replica-1").lag_records == 0
        assert group.convergence_report() == []
        group.close()

    def test_admin_partition_and_heal_reseed_via_catchup(self, tmp_path):
        primary = make_primary(tmp_path)
        group = make_group(tmp_path, primary=primary)
        primary.persist("laps", lap_bat())
        group.pump()
        group.partition("replica-1")
        primary.checkpoint()  # truncates the WAL the replica was tailing
        primary.persist("drivers", driver_bat())
        group.pump()
        assert group.replica("replica-1").lag_records > 0
        group.heal("replica-1")
        group.pump()
        replica = group.replica("replica-1")
        assert replica.lag_records == 0
        assert replica.snapshots_installed == 2  # initial seed + re-seed
        assert group.convergence_report() == []
        group.close()

    def test_drop_ships_and_snapshot_install_removes_stale_names(
        self, tmp_path
    ):
        primary = make_primary(tmp_path)
        group = make_group(tmp_path, primary=primary)
        primary.persist("laps", lap_bat())
        primary.persist("ghost", lap_bat())
        group.pump()
        primary.drop("ghost")
        primary.checkpoint()
        primary.persist("drivers", driver_bat())
        group.pump()  # catch-up round: full snapshot install
        for name in group.replica_names():
            assert set(group.replica(name).kernel.catalog_names()) == {
                "laps",
                "drivers",
            }
        group.close()


# ---------------------------------------------------------------------------
# staleness + read routing
# ---------------------------------------------------------------------------


class TestReadRouting:
    def _group(self, tmp_path, policy="primary"):
        clock = FakeClock()
        primary = make_primary(tmp_path)
        group = make_group(
            tmp_path,
            primary=primary,
            clock=clock,
            config=GroupConfig(read_policy=policy, fsync=False),
        )
        primary.persist("laps", lap_bat())
        group.pump()
        return group, clock

    def test_caught_up_replica_has_zero_staleness(self, tmp_path):
        group, clock = self._group(tmp_path)
        clock.now += 100.0  # no lag: quiet time is not staleness
        assert group.replica("replica-0").staleness_ms(clock.now) == 0.0
        group.close()

    def test_lagging_replica_staleness_grows_from_caught_up_point(
        self, tmp_path
    ):
        group, clock = self._group(tmp_path)
        group.replica("replica-0").mark_lag(clock.now, 2)
        clock.now += 0.3
        assert group.replica("replica-0").staleness_ms(clock.now) == (
            pytest.approx(300.0)
        )
        group.close()

    def test_primary_policy_always_routes_to_primary(self, tmp_path):
        group, _ = self._group(tmp_path, policy="primary")
        routed = group.route_read()
        assert routed.is_primary and routed.node == "primary"
        assert routed.kernel is group.primary
        group.close()

    def test_any_routes_to_least_lagged_replica(self, tmp_path):
        group, clock = self._group(tmp_path, policy="any")
        group.replica("replica-0").mark_lag(clock.now, 5)
        routed = group.route_read()
        assert not routed.is_primary and routed.node == "replica-1"
        assert dict(group.status().reads) == {"replica-1": 1}
        group.close()

    def test_any_falls_back_to_primary_when_replicas_unreachable(
        self, tmp_path
    ):
        group, _ = self._group(tmp_path, policy="any")
        group.partition("replica-0")
        group.partition("replica-1")
        assert group.route_read().is_primary
        group.close()

    def test_bounded_prefers_fresh_replica_else_primary(self, tmp_path):
        group, clock = self._group(tmp_path, policy="bounded(250)")
        assert not group.route_read().is_primary  # lag 0: within any bound
        for name in group.replica_names():
            group.replica(name).mark_lag(clock.now, 3)
        clock.now += 1.0  # 1000ms staleness, over the 250ms bound
        assert group.route_read().is_primary
        group.close()

    def test_bounded_with_dead_primary_and_stale_replicas_raises(
        self, tmp_path
    ):
        group, clock = self._group(tmp_path, policy="bounded(250)")
        for name in group.replica_names():
            group.replica(name).mark_lag(clock.now, 3)
        clock.now += 1.0
        group.report_primary_failure()
        with pytest.raises(StalenessBoundError):
            group.route_read()
        group.close()

    def test_primary_policy_with_dead_primary_raises(self, tmp_path):
        group, _ = self._group(tmp_path, policy="primary")
        group.report_primary_failure()
        with pytest.raises(ReplicationError):
            group.route_read()
        group.close()

    def test_per_read_policy_override(self, tmp_path):
        group, _ = self._group(tmp_path, policy="primary")
        assert not group.route_read(policy="any").is_primary
        assert group.route_read(policy="primary").is_primary
        group.close()


# ---------------------------------------------------------------------------
# fencing + failover
# ---------------------------------------------------------------------------


class TestFencingAndFailover:
    def _converged_group(self, tmp_path, **config_kw):
        clock = FakeClock()
        primary = make_primary(tmp_path)
        group = make_group(
            tmp_path,
            primary=primary,
            clock=clock,
            config=GroupConfig(fsync=False, **config_kw),
        )
        primary.persist("laps", lap_bat())
        primary.run(PROC_SOURCE)
        group.pump()
        return group, clock

    def test_probe_failures_open_breaker_then_promote(self, tmp_path):
        group, _ = self._converged_group(tmp_path, failure_threshold=2)
        old_lease = group.lease()
        group.report_primary_failure()
        assert not group.probe()
        assert group.epoch == 1  # one failure: breaker still closed
        assert not group.probe()
        # breaker open -> auto failover; least-lagged wins, name breaks ties
        assert group.epoch == 2
        assert group.primary_name == "replica-0"
        assert group.replica_names() == ["replica-1"]
        event = group.failovers[0]
        assert (event.deposed, event.promoted) == ("primary", "replica-0")
        # the deposed primary's late write fences
        with pytest.raises(FencedWriteError) as err:
            old_lease.write(lambda k: k.persist("ghost", lap_bat()))
        assert err.value.lease_epoch == 1 and err.value.group_epoch == 2
        assert group.fenced_writes == 1
        # the new lease writes into the new lineage and the survivor
        # re-seeds from it (its old position is off-epoch)
        group.lease().write(lambda k: k.persist("drivers", driver_bat()))
        group.pump()
        survivor = group.replica("replica-1")
        assert survivor.snapshots_installed == 2
        assert "bestLap" in group.primary.procedures()
        assert group.convergence_report() == []
        assert group.status().primary_healthy
        group.close()

    def test_probe_site_fault_drives_failover_without_a_dead_kernel(
        self, tmp_path
    ):
        plan = FaultPlan(
            seed=9,
            specs=(
                FaultSpec(
                    site="replication.probe:primary",
                    kind="fail",
                    max_triggers=2,
                ),
            ),
        )
        primary = make_primary(tmp_path)
        group = make_group(
            tmp_path,
            primary=primary,
            faults=FaultInjector(plan),
            config=GroupConfig(fsync=False, failure_threshold=2),
        )
        primary.persist("laps", lap_bat())
        group.pump()
        assert not group.probe()
        assert not group.probe()
        assert group.epoch == 2
        group.close()

    def test_healthy_probe_keeps_the_breaker_closed(self, tmp_path):
        group, _ = self._converged_group(tmp_path)
        assert group.probe() and group.probe()
        assert group.epoch == 1 and group.failovers == []
        group.close()

    def test_partitioned_replica_is_not_promoted(self, tmp_path):
        group, _ = self._converged_group(tmp_path)
        group.partition("replica-0")
        group.report_primary_failure()
        assert group.failover() == "replica-1"
        group.close()

    def test_failover_with_no_reachable_replica_raises(self, tmp_path):
        group, _ = self._converged_group(tmp_path)
        group.partition("replica-0")
        group.partition("replica-1")
        group.report_primary_failure()
        with pytest.raises(ReplicationError):
            group.failover()

    def test_fencing_off_is_flagged_but_admits_the_late_write(self, tmp_path):
        # REPL002 exists precisely because this path is a split brain
        group, _ = self._converged_group(tmp_path, fencing=False, check="warn")
        stale = group.lease()
        group.report_primary_failure()
        group.failover()
        stale.write(lambda k: k.persist("ghost", lap_bat()))
        assert group.fenced_writes == 0
        assert "ghost" in group.primary.catalog_names()
        group.close()

    def test_promoted_replica_refuses_further_shipments(self, tmp_path):
        group, _ = self._converged_group(tmp_path)
        replica = group.replica("replica-0")
        group.report_primary_failure()
        group.failover()
        with pytest.raises(ReplicationError):
            replica.apply_shipment(
                ReplicationLink(group.primary.store.path).fetch(
                    ReplicaPosition(), epoch=2
                )
            )
        with pytest.raises(ReplicationError):
            replica.promote()
        group.close()

    def test_promote_refuses_a_non_empty_store_directory(self, tmp_path):
        occupied = DurableStore(tmp_path / "taken", fsync=False)
        occupied.open()
        occupied.log_persist("laps", lap_bat())
        occupied.close()
        replica = Replica("taken", tmp_path / "taken")
        with pytest.raises(ReplicationError):
            replica.promote(fsync=False)

    def test_promotion_discards_the_pending_uncommitted_batch(self, tmp_path):
        primary = make_primary(tmp_path)
        group = make_group(tmp_path, primary=primary)
        primary.persist("laps", lap_bat())
        group.pump()
        # ship a begin + body but withhold the commit marker, then fail over
        plan = FaultPlan(
            seed=5,
            specs=(
                FaultSpec(
                    site="replication.link:*", kind="lag", factor=1,
                    max_triggers=4,
                ),
            ),
        )
        group.faults = FaultInjector(plan)
        with primary.transaction():
            primary.persist("half", lap_bat())
        group.pump()
        assert group.replica("replica-0").has_pending
        group.report_primary_failure()
        group.failover()  # the drain pump is also lagged: marker never ships
        assert "half" not in group.primary.catalog_names()
        assert "laps" in group.primary.catalog_names()
        group.close()


class TestPromotionRace:
    def test_reads_race_a_promotion_without_untyped_errors(self, tmp_path):
        """Readers hammer ``route_read`` while another thread deposes the
        primary and promotes a replica. Every read must either land on a
        node of the known topology or fail with a *typed* error — no
        torn routing, no AttributeError from a half-swapped primary."""
        import threading

        clock = FakeClock()
        primary = make_primary(tmp_path)
        group = make_group(
            tmp_path,
            primary=primary,
            clock=clock,
            config=GroupConfig(fsync=False),
        )
        primary.persist("laps", lap_bat())
        group.pump()

        nodes: list[str] = []
        surprises: list[BaseException] = []
        barrier = threading.Barrier(2)

        def reader():
            barrier.wait()
            for _ in range(300):
                try:
                    routed = group.route_read(policy="bounded(60000)")
                    nodes.append(routed.node)
                except (StalenessBoundError, ReplicationError):
                    pass  # a read mid-swap may find nobody attestable
                except BaseException as exc:  # noqa: BLE001
                    surprises.append(exc)

        def promoter():
            barrier.wait()
            group.report_primary_failure()
            group.failover()

        threads = [
            threading.Thread(target=reader),
            threading.Thread(target=promoter),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not surprises, surprises
        known = {"primary", "replica-0", "replica-1"}
        assert nodes and set(nodes) <= known
        # the swap completed: epoch bumped, and post-swap reads land on
        # the new topology (the deposed primary is out of the group)
        assert group.epoch == 2
        assert group.primary_name == "replica-0"
        after = [group.route_read(policy="any").node for _ in range(5)]
        assert set(after) <= {"replica-0", "replica-1"}
        group.close()


# ---------------------------------------------------------------------------
# status
# ---------------------------------------------------------------------------


class TestGroupStatus:
    def test_status_snapshot_and_describe(self, tmp_path):
        clock = FakeClock()
        primary = make_primary(tmp_path)
        group = make_group(tmp_path, primary=primary, clock=clock)
        primary.persist("laps", lap_bat())
        group.pump()
        group.route_read()
        status = group.status()
        assert status.epoch == 1 and status.primary == "primary"
        assert [r.name for r in status.replicas] == ["replica-0", "replica-1"]
        assert all(r.lag_records == 0 for r in status.replicas)
        assert status.reads == (("primary", 1),)
        text = status.describe()
        assert "kernel group: epoch 1" in text and "replica-1" in text
        # two snapshots of the same quiescent group compare equal even
        # though wall-clock staleness readings may differ
        assert status == group.status()
        group.close()


# ---------------------------------------------------------------------------
# the seeded chaos scenario
# ---------------------------------------------------------------------------


class TestChaosScenario:
    def test_scenario_converges_and_is_deterministic(self, tmp_path):
        first = partition_failover_scenario(tmp_path / "a", fsync=False)
        assert first.ok, first.describe()
        assert first.crashed and first.fence_held
        assert first.epoch == 2 and first.promoted == "replica-0"
        assert not first.fatal_txn_present  # wal.commit:mid is pre-marker
        second = partition_failover_scenario(tmp_path / "b", fsync=False)
        assert first.to_dict() == second.to_dict()

    def test_durable_kill_site_keeps_the_fatal_transaction(self, tmp_path):
        report = partition_failover_scenario(
            tmp_path, kill_site="wal.commit:synced", fsync=False
        )
        assert report.ok, report.describe()
        assert report.fatal_txn_expected and report.fatal_txn_present

    def test_kill_sweep_covers_every_commit_path_site(self, tmp_path):
        summary = replication_kill_sweep(tmp_path, fsync=False)
        assert summary.ok, summary.describe()
        assert [r.kill_site for r in summary.results] == list(KILL_SWEEP_SITES)
        assert all(r.crashed and r.fence_held for r in summary.results)
        assert json.dumps(summary.to_dict())  # CI artifact is serializable


class TestCli:
    def test_cli_reports_convergence_and_exits_zero(self, tmp_path, capsys):
        from repro.replication.__main__ import main

        out = tmp_path / "REPL_convergence.json"
        code = main(
            ["--dir", str(tmp_path / "scratch"), "--out", str(out), "--no-fsync"]
        )
        assert code == 0
        assert "replication chaos: CONVERGED" in capsys.readouterr().out
        document = json.loads(out.read_text())
        assert document["format"] == "repro-replication-chaos/1"
        assert document["ok"] and document["deterministic"]
        assert len(document["sweep"]["results"]) == len(KILL_SWEEP_SITES)


# ---------------------------------------------------------------------------
# service integration
# ---------------------------------------------------------------------------


class TestServiceIntegration:
    def _stack(self, tmp_path):
        from repro.cobra.catalog import DomainKnowledge
        from repro.cobra.vdbms import CobraVDBMS
        from tests.test_cobra import make_document

        db = CobraVDBMS(
            check="off", store=DurableStore(tmp_path / "primary", fsync=False)
        )
        db.register_domain(DomainKnowledge("f1"))
        db.register_document(make_document(), "f1")
        group = KernelGroup(
            db.kernel,
            tmp_path,
            replicas=("replica-0", "replica-1"),
            config=GroupConfig(read_policy="any", fsync=False),
            clock=FakeClock(),
        )
        group.pump()
        return db, group

    def test_queries_fan_out_to_replicas_and_report_carries_status(
        self, tmp_path
    ):
        from repro.service import QueryService

        db, group = self._stack(tmp_path)
        service = QueryService(db, group=group)
        ticket = service.submit_query("RETRIEVE fly_out FROM race1")
        report = service.run_until_idle()
        record = report.records[0]
        assert record.status == "completed"
        assert record.detail == "read@replica-0"  # least-lagged, name-tied
        result = ticket.result()
        assert len(result) == 1 and result[0]["kind"] == "fly_out"
        # the replica served the same answer the primary would have
        assert [e["event_id"] for e in result] == [
            e["event_id"]
            for e in db.query("RETRIEVE fly_out FROM race1").records
        ]
        assert report.replication is not None
        assert report.replication.epoch == 1
        assert ("replica-0", 1) in report.replication.reads
        assert "kernel group: epoch 1" in report.describe()
        group.close()

    def test_without_a_group_the_report_has_no_replication_block(self):
        from repro.service import QueryService
        from tests.test_service import FakeVdbms

        report = QueryService(FakeVdbms()).run_until_idle()
        assert report.replication is None
