"""Durability: WAL codec, checkpoints, recovery edge cases, durable kernel."""

import math

import numpy as np
import pytest

from repro.check import check_catalog
from repro.durability import (
    Checkpoint,
    DurableStore,
    WriteAheadLog,
    read_checkpoint,
    read_records,
    write_checkpoint,
)
from repro.durability.__main__ import main as durability_main
from repro.durability.wal import (
    MAGIC,
    bat_from_payload,
    bat_to_payload,
    decode_value,
    encode_record,
    encode_value,
)
from repro.errors import MonetError, RecoveryError
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel


def lap_bat(name=None):
    return BAT.from_columns(
        "void", "dbl", [0, 1, 2], [78.1, 77.9, 78.4], next_oid=3, name=name
    )


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------


class TestCodec:
    def test_primitives_stay_json_native(self):
        for value in (None, True, 3, 2.5, "monza"):
            assert encode_value(value) == value
            assert decode_value(encode_value(value)) == value

    def test_numpy_scalars_become_items(self):
        assert encode_value(np.float64(1.5)) == 1.5
        assert encode_value(np.int64(7)) == 7

    def test_opaque_values_roundtrip_via_pickle(self):
        value = {"nested": [1, 2, {"deep": "state"}]}
        encoded = encode_value(value)
        assert "__pickle__" in encoded
        assert decode_value(encoded) == value

    def test_nan_tail_roundtrips(self):
        bat = BAT.from_columns("void", "dbl", [0, 1], [1.0, math.nan], next_oid=2)
        back = bat_from_payload(bat_to_payload(bat))
        assert back.equals(bat)

    def test_bat_payload_roundtrip(self):
        bat = lap_bat()
        back = bat_from_payload(bat_to_payload(bat), name="laps")
        assert back.equals(bat)
        assert back.name == "laps"
        assert np.array_equal(back.tail_array(), bat.tail_array())


# ---------------------------------------------------------------------------
# WAL scanning + tail damage
# ---------------------------------------------------------------------------


class TestWalScan:
    def _write(self, path, records):
        wal = WriteAheadLog(path, fsync=False)
        wal.open()
        for record in records:
            wal.append(record)
        wal.close()
        return path

    def test_missing_and_empty_files_scan_clean(self, tmp_path):
        scan = read_records(tmp_path / "absent.log")
        assert scan.records == [] and scan.corruption is None
        empty = tmp_path / "empty.log"
        empty.write_bytes(b"")
        assert read_records(empty).records == []

    def test_torn_final_record_is_detected_and_bounded(self, tmp_path):
        path = self._write(
            tmp_path / "wal.log",
            [{"op": "drop", "name": "a"}, {"op": "drop", "name": "b"}],
        )
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # tear the last record
        scan = read_records(path)
        assert [r["name"] for r in scan.records] == ["a"]
        assert "torn" in scan.corruption
        assert scan.torn_bytes > 0

    def test_zero_length_tail_after_torn_write(self, tmp_path):
        # the torn write flushed a length header but zero payload bytes —
        # the smallest tail the replication stream can encounter
        path = self._write(
            tmp_path / "wal.log",
            [{"op": "drop", "name": "a"}, {"op": "drop", "name": "b"}],
        )
        intact = path.read_bytes()
        path.write_bytes(intact + (10).to_bytes(4, "big"))
        scan = read_records(path)
        assert [r["name"] for r in scan.records] == ["a", "b"]
        assert "torn" in scan.corruption
        assert scan.torn_bytes == 4
        assert scan.valid_length == len(intact)
        # truncated back to the valid boundary, the tail is zero-length
        # and the scan is clean again
        path.write_bytes(intact)
        rescan = read_records(path)
        assert rescan.corruption is None
        assert rescan.valid_length == rescan.file_length

    def test_corrupt_checksum_mid_log_discards_the_tail(self, tmp_path):
        path = self._write(
            tmp_path / "wal.log",
            [{"op": "drop", "name": n} for n in ("a", "b", "c")],
        )
        data = bytearray(path.read_bytes())
        first = len(MAGIC) + len(encode_record({"op": "drop", "name": "a"}))
        data[first + 10] ^= 0xFF  # flip a byte inside record "b"
        path.write_bytes(bytes(data))
        scan = read_records(path)
        # record "c" is intact on disk but untrustworthy past the damage
        assert [r["name"] for r in scan.records] == ["a"]
        assert "checksum mismatch" in scan.corruption


# ---------------------------------------------------------------------------
# checkpoints
# ---------------------------------------------------------------------------


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        checkpoint = Checkpoint(seqno=4, catalog={"laps": lap_bat("laps")})
        write_checkpoint(tmp_path, checkpoint, fsync=False)
        back = read_checkpoint(tmp_path)
        assert back.seqno == 4
        assert back.catalog["laps"].equals(checkpoint.catalog["laps"])

    def test_missing_checkpoint_is_none(self, tmp_path):
        assert read_checkpoint(tmp_path) is None

    def test_damaged_checkpoint_raises(self, tmp_path):
        write_checkpoint(tmp_path, Checkpoint(seqno=1), fsync=False)
        target = tmp_path / "checkpoint"
        target.write_text(target.read_text().replace('"seqno": 1', '"seqno": 2'))
        with pytest.raises(RecoveryError, match="CRC"):
            read_checkpoint(tmp_path)


# ---------------------------------------------------------------------------
# recovery edge cases
# ---------------------------------------------------------------------------


class TestRecovery:
    def test_empty_store_recovers_to_nothing(self, tmp_path):
        state = DurableStore(tmp_path / "s", fsync=False).recover()
        assert state.catalog == {} and state.next_txn == 1
        assert state.report.clean

    def test_empty_wal_replays_to_nothing(self, tmp_path):
        # an opened-then-closed store leaves a magic-only WAL: zero
        # records, zero corruption, clean recovery
        store = DurableStore(tmp_path / "s", fsync=False)
        store.open()
        store.close()
        assert store.wal_path.read_bytes() == MAGIC
        scan = read_records(store.wal_path)
        assert scan.records == [] and scan.corruption is None
        state = DurableStore(tmp_path / "s", fsync=False).recover()
        assert state.catalog == {} and state.report.clean
        assert state.report.wal_records == 0

    def test_checkpoint_with_no_subsequent_records_starts_an_empty_wal(
        self, tmp_path
    ):
        store = DurableStore(tmp_path / "s", fsync=False)
        store.open()
        store.log_persist("laps", lap_bat())
        store.checkpoint({"laps": lap_bat("laps")})
        store.close()
        # the WAL was truncated to magic-only; everything lives in the
        # checkpoint (the catch-up shape replication ships as a snapshot)
        assert store.wal_path.read_bytes() == MAGIC
        state = DurableStore(tmp_path / "s", fsync=False).recover()
        assert state.report.wal_records == 0
        assert state.report.checkpoint_seqno == 1
        assert state.catalog["laps"].equals(lap_bat())

    def test_wal_only_recovery(self, tmp_path):
        store = DurableStore(tmp_path / "s", fsync=False)
        store.open()
        store.log_persist("laps", lap_bat())
        store.close()
        state = DurableStore(tmp_path / "s", fsync=False).recover()
        assert state.catalog["laps"].equals(lap_bat())
        assert state.report.checkpoint_seqno == 0

    def test_checkpoint_only_recovery(self, tmp_path):
        store = DurableStore(tmp_path / "s", fsync=False)
        store.open()
        store.log_persist("laps", lap_bat())
        store.checkpoint({"laps": lap_bat("laps")})
        store.close()
        state = DurableStore(tmp_path / "s", fsync=False).recover()
        assert state.report.wal_records == 0
        assert state.catalog["laps"].equals(lap_bat())

    def test_committed_transaction_replays(self, tmp_path):
        store = DurableStore(tmp_path / "s", fsync=False)
        store.open()
        txn = store.commit(
            [("persist", "laps", lap_bat()), ("drop", "ghost")]
        )
        store.close()
        state = DurableStore(tmp_path / "s", fsync=False).recover()
        assert txn == 1
        assert state.report.transactions_committed == 1
        assert state.catalog["laps"].equals(lap_bat())
        assert state.next_txn == 2

    def test_uncommitted_transaction_is_discarded(self, tmp_path):
        store = DurableStore(tmp_path / "s", fsync=False)
        store.open()
        store._wal.append({"op": "begin", "txn": 9})
        store._wal.append(
            {"op": "persist", "name": "laps", "bat": bat_to_payload(lap_bat())}
        )
        store.close()  # no commit marker: the "process" died mid-commit
        state = DurableStore(tmp_path / "s", fsync=False).recover()
        assert state.catalog == {}
        assert state.report.transactions_discarded == 1
        assert state.next_txn == 10  # txn ids never reused after recovery

    def test_duplicate_replay_is_idempotent(self, tmp_path):
        # checkpoint renamed but WAL not yet truncated: every WAL record is
        # already folded into the checkpoint and must replay harmlessly
        store = DurableStore(tmp_path / "s", fsync=False)
        store.open()
        store.log_persist("laps", lap_bat())
        store.log_persist("ghost", lap_bat())
        store.log_drop("ghost")
        write_checkpoint(
            store.path,
            Checkpoint(seqno=1, catalog={"laps": lap_bat("laps")}),
            fsync=False,
        )
        store.close()  # killed before the WAL truncation
        for _ in range(2):  # recovery itself must also be re-runnable
            state = DurableStore(tmp_path / "s", fsync=False).recover()
            assert sorted(state.catalog) == ["laps"]
            assert state.catalog["laps"].equals(lap_bat())

    def test_torn_tail_is_truncated_on_recovery(self, tmp_path):
        store = DurableStore(tmp_path / "s", fsync=False)
        store.open()
        store.log_persist("laps", lap_bat())
        store.log_drop("other")
        store.close()
        wal = store.wal_path
        wal.write_bytes(wal.read_bytes()[:-4])
        state = DurableStore(tmp_path / "s", fsync=False).recover()
        assert state.report.truncated_bytes > 0
        assert sorted(state.catalog) == ["laps"]
        # physical truncation happened: a rescan sees no corruption
        assert read_records(wal).corruption is None

    def test_dry_run_leaves_the_torn_tail_in_place(self, tmp_path):
        store = DurableStore(tmp_path / "s", fsync=False)
        store.open()
        store.log_persist("laps", lap_bat())
        store.close()
        wal = store.wal_path
        damaged = wal.read_bytes()[:-4]
        wal.write_bytes(damaged)
        DurableStore(tmp_path / "s", fsync=False).recover(dry_run=True)
        assert wal.read_bytes() == damaged

    def test_recovery_report_metrics(self, tmp_path):
        store = DurableStore(tmp_path / "s", fsync=False)
        store.open()
        store.log_persist("laps", lap_bat())
        store.commit([("persist", "times", lap_bat())])
        store.close()
        report = DurableStore(tmp_path / "s", fsync=False).recover().report
        assert report.wal_records == 4  # persist + begin/persist/commit
        assert report.records_replayed == 2
        assert report.bats_recovered == 2
        assert report.duration_seconds > 0
        assert "recovery of" in report.describe()

    def test_recovered_catalog_runs_invariants(self, tmp_path):
        report = check_catalog({"laps": lap_bat("laps")})
        assert not list(report)
        broken = lap_bat("bad")
        broken._tail.append(99.0)  # misaligned columns
        findings = check_catalog({"bad": broken})
        assert any(d.code == "CAT002" for d in findings)

    def test_group_alignment_invariant(self, tmp_path):
        a = BAT.from_columns("void", "str", [0], ["e1"], next_oid=1)
        b = BAT.from_columns("void", "str", [], [], next_oid=0)
        findings = check_catalog(
            {"meta_event_event_id": a, "meta_event_kind": b}
        )
        assert any(d.code == "CAT005" for d in findings)


# ---------------------------------------------------------------------------
# the durable kernel
# ---------------------------------------------------------------------------


class TestDurableKernel:
    def test_persist_drop_and_proc_survive_restart(self, tmp_path):
        kernel = MonetKernel(store=tmp_path / "s")
        kernel.persist("laps", lap_bat())
        kernel.persist("doomed", lap_bat())
        kernel.drop("doomed")
        kernel.run("PROC best(BAT[void,dbl] l) : dbl := { RETURN l.min; }")
        kernel.close()

        revived = MonetKernel(store=tmp_path / "s")
        assert revived.catalog_names() == ["laps"]
        assert revived.bat("laps").equals(lap_bat())
        assert "best" in revived.procedures()
        assert revived.call("best", [revived.bat("laps")]) == pytest.approx(77.9)
        revived.close()

    def test_transaction_is_the_commit_boundary(self, tmp_path):
        kernel = MonetKernel(store=tmp_path / "s")
        with kernel.transaction():
            kernel.persist("a", lap_bat())
            kernel.persist("b", lap_bat())
        with pytest.raises(MonetError):
            with kernel.transaction():
                kernel.persist("c", lap_bat())
                raise MonetError("boom")
        kernel.close()
        revived = MonetKernel(store=tmp_path / "s")
        assert revived.catalog_names() == ["a", "b"]  # "c" rolled back
        assert revived.recovery.aborts_seen == 1
        revived.close()

    def test_checkpoint_truncates_and_recovers(self, tmp_path):
        kernel = MonetKernel(store=tmp_path / "s")
        kernel.persist("laps", lap_bat())
        seqno = kernel.checkpoint()
        assert seqno == 1
        assert kernel.store.records_since_checkpoint == 0
        kernel.persist("after", lap_bat())
        kernel.close()
        revived = MonetKernel(store=tmp_path / "s")
        assert revived.catalog_names() == ["after", "laps"]
        assert revived.recovery.checkpoint_seqno == 1
        revived.close()

    def test_auto_checkpoint_fires_between_commits(self, tmp_path):
        store = DurableStore(tmp_path / "s", fsync=False, auto_checkpoint=3)
        kernel = MonetKernel(store=store)
        for i in range(4):
            kernel.persist(f"b{i}", lap_bat())
        assert store.records_since_checkpoint < 3
        assert read_checkpoint(store.path) is not None
        kernel.close()

    def test_modules_are_remembered_not_reloaded(self, tmp_path):
        from repro.cobra.extensions import DbnModule

        kernel = MonetKernel(store=tmp_path / "s")
        kernel.load_module(DbnModule())
        kernel.close()
        revived = MonetKernel(store=tmp_path / "s")
        assert revived.expected_modules == ["dbn"]
        assert revived.module_names() == []  # caller must re-load
        revived.close()

    def test_nested_transactions_are_savepoints(self, tmp_path):
        kernel = MonetKernel(store=tmp_path / "s")
        with kernel.transaction():
            kernel.persist("outer", lap_bat())
            with pytest.raises(MonetError):
                with kernel.transaction():
                    kernel.persist("inner", lap_bat())
                    raise MonetError("inner fails")
            assert "outer" in kernel.catalog_names()
            assert "inner" not in kernel.catalog_names()
        kernel.close()
        revived = MonetKernel(store=tmp_path / "s")
        assert revived.catalog_names() == ["outer"]
        revived.close()

    def test_cross_thread_transaction_rejected(self):
        import threading

        kernel = MonetKernel()
        errors = []

        def intruder():
            try:
                with kernel.transaction():
                    pass
            except MonetError as exc:
                errors.append(exc)

        with kernel.transaction():
            thread = threading.Thread(target=intruder)
            thread.start()
            thread.join()
        assert len(errors) == 1

    def test_snapshot_is_aliasing_free(self):
        # regression: snapshot()/copy() used to share tail storage for
        # object-atom values, so post-snapshot mutation leaked into the
        # "snapshot" and rollback silently restored the mutated state
        kernel = MonetKernel()
        bat = BAT("void", "any")
        bat.insert({"mutable": [1, 2]})
        kernel.persist("state", bat)
        saved = kernel.snapshot()
        bat.tails()[0]["mutable"].append(3)
        assert saved["state"].tails()[0]["mutable"] == [1, 2]
        kernel.restore(saved)
        assert kernel.bat("state").tails()[0]["mutable"] == [1, 2]

    def test_bat_copy_deep_copies_object_tails(self):
        bat = BAT("void", "any")
        payload = {"k": [1]}
        bat.insert(payload)
        clone = bat.copy()
        payload["k"].append(2)
        assert clone.tails()[0] == {"k": [1]}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def _seed_store(self, tmp_path):
        kernel = MonetKernel(store=tmp_path / "s")
        kernel.persist("laps", lap_bat())
        with kernel.transaction():
            kernel.persist("times", lap_bat())
        kernel.close()
        return str(tmp_path / "s")

    def test_inspect(self, tmp_path, capsys):
        store = self._seed_store(tmp_path)
        assert durability_main(["inspect", store]) == 0
        out = capsys.readouterr().out
        assert "persist 'laps'" in out and "commit txn" in out

    def test_verify_ok_and_corrupt(self, tmp_path, capsys):
        store = self._seed_store(tmp_path)
        assert durability_main(["verify", store]) == 0
        out = capsys.readouterr().out
        assert "recoverable" in out
        assert "catalog invariants (CAT001-CAT006): checked" in out
        wal = tmp_path / "s" / "wal.log"
        wal.write_bytes(wal.read_bytes()[:-2])
        assert durability_main(["verify", store]) == 0  # torn tail recoverable
        assert "truncated" in capsys.readouterr().out

    def test_verify_reports_catalog_invariant_violations(self, tmp_path, capsys):
        # two BATs of one aligned group with diverging counts rebuild fine
        # record by record, but violate the CAT005 catalog invariant
        store = DurableStore(tmp_path / "s", fsync=False)
        store.open()
        store.log_persist(
            "meta_event_event_id",
            BAT.from_columns("void", "str", [0], ["e1"], next_oid=1),
        )
        store.log_persist(
            "meta_event_kind",
            BAT.from_columns("void", "str", [], [], next_oid=0),
        )
        store.close()
        assert durability_main(["verify", str(tmp_path / "s")]) == 1
        out = capsys.readouterr().out
        assert "catalog invariants VIOLATED" in out
        assert "CAT005" in out

    def test_compact(self, tmp_path, capsys):
        store = self._seed_store(tmp_path)
        assert durability_main(["compact", store]) == 0
        assert "compacted into checkpoint" in capsys.readouterr().out
        state = DurableStore(store).recover()
        assert state.report.wal_records == 0
        assert sorted(state.catalog) == ["laps", "times"]
