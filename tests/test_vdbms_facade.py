"""CobraVDBMS facade: extensions wiring, domains, DBN extension + module."""

import numpy as np
import pytest

from repro.cobra.extensions import DbnExtension, DbnModule, RuleExtension
from repro.cobra.model import RawVideo, VideoDocument
from repro.cobra.vdbms import CobraVDBMS
from repro.dbn.evidence import EvidenceSequence
from repro.dbn.simulate import sample_sequence
from repro.dbn.template import DbnTemplate
from repro.errors import CobraError
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel
from repro.rules.engine import Fact, Pattern, Rule


def single_evidence_template(seed=0) -> DbnTemplate:
    t = DbnTemplate()
    t.add_node("H", 2)
    t.add_node("F", 2, observed=True)
    t.add_intra_edge("H", "F")
    t.add_inter_edge("H", "H")
    t.randomize(np.random.default_rng(seed))
    return t


class TestFacade:
    def test_four_extensions_registered(self):
        db = CobraVDBMS()
        assert set(db.extensions.names()) == {"videoproc", "hmm", "dbn", "rules"}

    def test_kernel_has_extension_modules(self):
        db = CobraVDBMS()
        assert db.kernel.has_command("hmmOneCall")
        assert db.kernel.has_command("dbnInfer")
        assert "dbnInferP" in db.kernel.procedures()

    def test_register_document_needs_domain(self):
        db = CobraVDBMS()
        doc = VideoDocument(
            raw=RawVideo("v1", "synthetic://x", 10.0, 10.0, 192, 144, 16000)
        )
        with pytest.raises(CobraError):
            db.register_document(doc, "nonexistent")

    def test_query_without_videos(self):
        db = CobraVDBMS()
        with pytest.raises(CobraError):
            db.query("RETRIEVE highlight")


class TestDbnExtension:
    def test_register_and_infer(self, rng):
        kernel = MonetKernel()
        ext = DbnExtension(kernel)
        template = single_evidence_template()
        ext.register("demo", template)
        _, evidence = sample_sequence(template, 30, rng)
        posterior = ext.infer("demo", evidence, "H")
        assert posterior.shape == (30,)
        assert np.all((posterior >= 0) & (posterior <= 1))

    def test_loglik_operator(self, rng):
        kernel = MonetKernel()
        ext = DbnExtension(kernel)
        template = single_evidence_template()
        ext.register("demo", template)
        _, evidence = sample_sequence(template, 20, rng)
        assert ext.log_likelihood("demo", evidence) < 0

    def test_train_reregisters(self, rng):
        kernel = MonetKernel()
        ext = DbnExtension(kernel)
        ext.register("demo", single_evidence_template())
        segments = [
            sample_sequence(single_evidence_template(seed=9), 20, rng)[1]
            for _ in range(3)
        ]
        learned = ext.train("demo", segments, max_iterations=3)
        assert ext.template("demo") is learned

    def test_unknown_model(self):
        ext = DbnExtension(MonetKernel())
        with pytest.raises(CobraError):
            ext.template("ghost")

    def test_mil_level_inference_matches_python(self, rng):
        """The Fig. 5 path: MIL PROC -> module command -> engine."""
        kernel = MonetKernel()
        ext = DbnExtension(kernel)
        template = single_evidence_template()
        ext.register("demo", template)
        _, evidence = sample_sequence(template, 15, rng)
        values = evidence.hard_values("F")

        obs = BAT("void", "int")
        obs.insert_bulk(None, [int(v) for v in values])
        result = kernel.call("dbnInferP", ["demo", "H", obs])
        python_posterior = ext.infer(
            "demo", EvidenceSequence(template, hard={"F": values}), "H"
        )
        assert np.allclose(result.tail_array(), python_posterior, atol=1e-12)

    def test_dbn_infer_rejects_multi_evidence(self):
        module = DbnModule()
        t = DbnTemplate()
        t.add_node("H", 2)
        t.add_node("F", 2, observed=True)
        t.add_node("G", 2, observed=True)
        t.add_intra_edge("H", "F")
        t.add_intra_edge("H", "G")
        t.add_inter_edge("H", "H")
        t.randomize(np.random.default_rng(0))
        module.register_model("multi", t)
        obs = BAT("void", "int")
        obs.insert(0)
        with pytest.raises(CobraError):
            module.dbnInfer("multi", "H", obs)


class TestRuleExtension:
    def test_run_applies_registered_rules(self):
        ext = RuleExtension()
        ext.add_rule(
            Rule(
                "mark",
                [Pattern.of("raw", v=1)],
                action=lambda b: [Fact.of("marked")],
            )
        )
        facts = ext.run([Fact.of("raw", v=1), Fact.of("raw", v=2)])
        assert Fact.of("marked") in facts

    def test_run_isolated_between_calls(self):
        ext = RuleExtension()
        ext.add_rule(
            Rule(
                "mark",
                [Pattern.of("raw", v=1)],
                action=lambda b: [Fact.of("marked")],
            )
        )
        first = ext.run([Fact.of("raw", v=1)])
        second = ext.run([Fact.of("raw", v=2)])
        assert Fact.of("marked") in first
        assert Fact.of("marked") not in second
