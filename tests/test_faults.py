"""Chaos suite: fault injection, resilience primitives, fault-tolerant
execution across all three architecture levels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    ExtractionError,
    InjectedPermanentError,
    InjectedTransientError,
    PermanentError,
    ReproError,
    TransientError,
    TransientExtractionError,
    annotate,
    is_transient,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    get_plan,
    install_global,
    plan_names,
    resolve_injector,
)
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    FailureReport,
    ResiliencePolicy,
    RetryPolicy,
)


@pytest.fixture(autouse=True)
def _no_global_plan(monkeypatch):
    """Keep each test's injector explicit: clear env plan + global install."""
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    install_global(None)
    yield
    install_global(None)


def no_sleep(_seconds: float) -> None:
    pass


class TestErrorTaxonomy:
    def test_transient_permanent_split(self):
        assert issubclass(TransientError, ReproError)
        assert issubclass(PermanentError, ReproError)
        assert is_transient(InjectedTransientError("x"))
        assert not is_transient(InjectedPermanentError("x"))
        assert is_transient(TransientExtractionError("x"))
        assert issubclass(TransientExtractionError, ExtractionError)

    def test_annotate_records_notes(self):
        error = ValueError("base")
        annotate(error, "extra context")
        assert "extra context" in getattr(error, "context_notes", [])


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ReproError):
            FaultSpec(site="x", kind="explode")
        with pytest.raises(ReproError):
            FaultSpec(site="x", rate=1.5)
        with pytest.raises(ReproError):
            FaultSpec(site="", kind="fail")

    def test_trigger_decision_is_deterministic(self):
        plan = FaultPlan(seed=42, specs=(FaultSpec(site="s", rate=0.3),))
        first = [plan.triggers(0, "s", i) for i in range(50)]
        second = [plan.triggers(0, "s", i) for i in range(50)]
        assert first == second
        assert any(first) and not all(first)

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, specs=(FaultSpec(site="s", rate=0.5),))
        b = FaultPlan(seed=2, specs=(FaultSpec(site="s", rate=0.5),))
        assert [a.triggers(0, "s", i) for i in range(64)] != [
            b.triggers(0, "s", i) for i in range(64)
        ]

    def test_named_plans_resolve(self):
        for name in plan_names():
            assert get_plan(name).specs
        with pytest.raises(ReproError):
            get_plan("definitely-not-a-plan")


class TestFaultInjector:
    def test_disabled_injector_is_inert(self):
        injector = FaultInjector.disabled()
        assert not injector.enabled
        injector.on_call("anything")
        assert not injector.should_drop("anything")
        values = np.ones(10)
        assert injector.corrupt_array("anything", values) is values
        assert injector.injections == []

    def test_fail_transient_and_permanent(self):
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(site="t", kind="fail", transient=True),
                FaultSpec(site="p", kind="fail", transient=False),
            ),
        )
        injector = FaultInjector(plan)
        with pytest.raises(InjectedTransientError):
            injector.on_call("t")
        with pytest.raises(InjectedPermanentError):
            injector.on_call("p")
        assert [i.kind for i in injector.injections] == ["fail", "fail"]

    def test_delay_uses_injected_sleep(self):
        slept = []
        plan = FaultPlan(
            seed=0, specs=(FaultSpec(site="d", kind="delay", delay=0.25),)
        )
        injector = FaultInjector(plan, sleep=slept.append)
        injector.on_call("d")
        assert slept == [0.25]

    def test_site_globbing(self):
        plan = FaultPlan(
            seed=0, specs=(FaultSpec(site="kernel.command:*", kind="fail"),)
        )
        injector = FaultInjector(plan)
        with pytest.raises(InjectedTransientError):
            injector.on_call("kernel.command:hmmP")
        injector.on_call("extractor:flyout")  # no match, no fault

    def test_max_triggers(self):
        plan = FaultPlan(
            seed=0,
            specs=(FaultSpec(site="s", kind="drop", rate=1.0, max_triggers=2),),
        )
        injector = FaultInjector(plan)
        results = [injector.should_drop("s") for _ in range(5)]
        assert results == [True, True, False, False, False]

    def test_corrupt_array_deterministic_and_bounded(self):
        plan = FaultPlan(
            seed=9, specs=(FaultSpec(site="a", kind="corrupt", severity=0.3),)
        )
        values = np.linspace(0.2, 0.9, 200)
        one = FaultInjector(plan).corrupt_array("a", values)
        two = FaultInjector(plan).corrupt_array("a", values)
        assert one is not values
        assert one.shape == values.shape
        np.testing.assert_array_equal(one, two)
        assert not np.array_equal(one, values)

    def test_corrupt_text_deterministic(self):
        plan = FaultPlan(
            seed=3, specs=(FaultSpec(site="t", kind="corrupt", severity=0.5),)
        )
        one = FaultInjector(plan).corrupt_text("t", "SCHUMACHER")
        two = FaultInjector(plan).corrupt_text("t", "SCHUMACHER")
        assert one == two
        assert len(one) == len("SCHUMACHER")
        assert one != "SCHUMACHER"

    def test_frame_loss_mask_spares_first_frame(self):
        plan = FaultPlan(
            seed=4, specs=(FaultSpec(site="v", kind="corrupt", severity=0.2),)
        )
        mask = FaultInjector(plan).frame_loss_mask("v", 100)
        assert mask is not None
        assert not mask[0]
        assert 0 < int(mask.sum()) <= 20

    def test_counts_summary(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec(site="s", kind="drop"),))
        injector = FaultInjector(plan)
        injector.should_drop("s")
        injector.should_drop("s")
        assert injector.counts() == {"drop@s": 2}


class TestGlobalInjector:
    def test_env_var_enables_global_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "kernel-transient")
        injector = resolve_injector(None)
        assert injector.enabled
        assert injector.plan is not None and injector.plan.name == "kernel-transient"

    def test_no_env_no_injection(self):
        assert not resolve_injector(None).enabled

    def test_explicit_install_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "kernel-transient")
        mine = FaultInjector(FaultPlan(seed=5, specs=(FaultSpec(site="x"),)))
        install_global(mine)
        assert resolve_injector(None) is mine

    def test_resolve_accepts_plan(self):
        plan = FaultPlan(seed=1, specs=(FaultSpec(site="x"),))
        injector = resolve_injector(plan)
        assert injector.enabled and injector.plan is plan


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired
        assert deadline.remaining() == float("inf")
        deadline.check("anywhere")

    def test_expiry_with_fake_clock(self):
        now = [0.0]
        deadline = Deadline(1.0, clock=lambda: now[0])
        assert deadline.remaining() == pytest.approx(1.0)
        now[0] = 2.0
        assert deadline.expired
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check("kernel.command:hmmP")
        assert info.value.site == "kernel.command:hmmP"


class TestRetryPolicy:
    def test_backoff_sequence_and_bounded_attempts(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.01, multiplier=2.0, sleep=slept.append
        )
        calls = []

        def always_transient():
            calls.append(1)
            raise InjectedTransientError("nope")

        with pytest.raises(InjectedTransientError):
            policy.call(always_transient)
        assert len(calls) == 4
        assert slept == [0.01, 0.02, 0.04]

    def test_succeeds_after_transient_glitch(self):
        policy = RetryPolicy(max_attempts=3, sleep=no_sleep)
        state = {"failures": 2}

        def flaky():
            if state["failures"]:
                state["failures"] -= 1
                raise InjectedTransientError("glitch")
            return "ok"

        retries = []
        assert policy.call(flaky, on_retry=lambda n, e: retries.append(n)) == "ok"
        assert retries == [1, 2]

    def test_permanent_not_retried(self):
        policy = RetryPolicy(max_attempts=5, sleep=no_sleep)
        calls = []

        def permanent():
            calls.append(1)
            raise InjectedPermanentError("broken")

        with pytest.raises(InjectedPermanentError):
            policy.call(permanent)
        assert len(calls) == 1

    def test_circuit_open_not_retried(self):
        policy = RetryPolicy(max_attempts=5, sleep=no_sleep)
        calls = []

        def open_circuit():
            calls.append(1)
            raise CircuitOpenError("open")

        with pytest.raises(CircuitOpenError):
            policy.call(open_circuit)
        assert len(calls) == 1

    def test_deadline_bounds_retry_loop(self):
        now = [0.0]

        def clock():
            now[0] += 0.4
            return now[0]

        policy = RetryPolicy(max_attempts=10, base_delay=0.01, sleep=no_sleep)
        deadline = Deadline(1.0, clock=clock)
        with pytest.raises((DeadlineExceeded, InjectedTransientError)):
            policy.call(
                lambda: (_ for _ in ()).throw(InjectedTransientError("x")),
                deadline=deadline,
            )
        assert now[0] < 5.0  # gave up long before 10 attempts' worth of clock


class TestCircuitBreaker:
    def make(self, now):
        return CircuitBreaker(
            name="extractor:test",
            failure_threshold=3,
            recovery_timeout=10.0,
            clock=lambda: now[0],
        )

    def test_opens_after_threshold(self):
        now = [0.0]
        breaker = self.make(now)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError) as info:
            breaker.allow()
        assert info.value.retry_after == pytest.approx(10.0)

    def test_half_open_then_close_on_success(self):
        now = [0.0]
        breaker = self.make(now)
        for _ in range(3):
            breaker.record_failure()
        now[0] = 11.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.allow()  # trial call admitted
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_reopens_on_failure(self):
        now = [0.0]
        breaker = self.make(now)
        for _ in range(3):
            breaker.record_failure()
        now[0] = 11.0
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_call_wrapper(self):
        now = [0.0]
        breaker = self.make(now)
        assert breaker.call(lambda: 5) == 5
        with pytest.raises(ValueError):
            breaker.call(lambda: (_ for _ in ()).throw(ValueError("x")))


def retry_fast(**kwargs) -> RetryPolicy:
    return RetryPolicy(sleep=no_sleep, **kwargs)


class TestKernelFaultTolerance:
    def test_transient_command_fault_retried(self):
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(
                    site="kernel.command:wobble",
                    kind="fail",
                    transient=True,
                    max_triggers=1,
                ),
            ),
        )
        kernel = MonetKernel(
            faults=FaultInjector(plan),
            resilience=ResiliencePolicy(retry=retry_fast()),
        )
        kernel.register_command("wobble", lambda: 42)
        assert kernel.run("RETURN wobble();") == 42
        reports = kernel.drain_failures()
        assert [r.action for r in reports] == ["retried"]
        assert reports[0].site == "kernel.command:wobble"
        assert reports[0].transient

    def test_permanent_command_fault_raises(self):
        plan = FaultPlan(
            seed=0,
            specs=(FaultSpec(site="kernel.command:*", kind="fail", transient=False),),
        )
        kernel = MonetKernel(
            faults=FaultInjector(plan),
            resilience=ResiliencePolicy(retry=retry_fast()),
        )
        kernel.register_command("doomed", lambda: 1)
        with pytest.raises(InjectedPermanentError):
            kernel.run("RETURN doomed();")

    def test_five_percent_transient_faults_all_recovered(self):
        """The acceptance rate: 5% transient kernel faults, zero escapes."""
        kernel = MonetKernel(
            faults=get_plan("kernel-transient"),
            resilience=ResiliencePolicy(retry=retry_fast()),
        )
        kernel.register_command("work", lambda x: x + 1)
        for i in range(200):
            assert kernel.run(f"RETURN work({i});") == i + 1
        reports = kernel.drain_failures()
        assert reports, "a 5% plan should have triggered over 200 calls"
        assert all(r.action == "retried" for r in reports)
        # backoff bounds retries: never more than max_attempts - 1 per call
        assert max(r.attempts for r in reports) <= 2

    def test_deadline_expires_mid_parallel(self):
        now = [0.0]

        def clock():
            now[0] += 0.3
            return now[0]

        kernel = MonetKernel()
        kernel.register_command("slowstep", lambda: None)
        kernel.run(
            """
            PROC grind() : int := {
              VAR n := threadcnt(3);
              PARALLEL {
                slowstep(); slowstep(); slowstep(); slowstep();
                slowstep(); slowstep(); slowstep(); slowstep();
              }
              RETURN 1;
            }
            """
        )
        with pytest.raises(DeadlineExceeded):
            kernel.call("grind", deadline=Deadline(1.0, clock=clock))

    def test_per_call_timeout(self, monkeypatch):
        kernel = MonetKernel(
            resilience=ResiliencePolicy(retry=retry_fast(), call_timeout=1.0)
        )
        kernel.register_command("slow", lambda: "done")
        ticks = [0.0, 5.0]
        monkeypatch.setattr(
            "time.monotonic", lambda: ticks.pop(0) if ticks else 100.0
        )
        with pytest.raises(DeadlineExceeded):
            kernel.run("RETURN slow();")

    def test_transactional_rollback_is_byte_identical(self):
        kernel = MonetKernel()
        scores = BAT("str", "dbl")
        scores.insert_bulk(["a", "b", "c"], [0.1, 0.2, 0.3])
        kernel.persist("scores", scores)

        def poison():
            raise InjectedPermanentError("disk died")

        kernel.register_command("poison", poison)
        before_heads, before_tails = scores.heads(), scores.tails()
        with pytest.raises(InjectedPermanentError):
            kernel.run(
                """
                scores.insert("d", 0.4);
                scores.insert("e", 0.5);
                poison();
                """,
                transactional=True,
            )
        live = kernel.bat("scores")
        assert live is scores  # references survive the rollback
        assert live.heads() == before_heads
        assert live.tails() == before_tails
        reports = kernel.drain_failures()
        assert any(r.action == "rolled-back" for r in reports)

    def test_rollback_drops_bats_created_after_snapshot(self):
        kernel = MonetKernel()
        kernel.register_command("fail_now", lambda: (_ for _ in ()).throw(
            InjectedPermanentError("x")
        ))
        with pytest.raises(InjectedPermanentError):
            kernel.run(
                """
                VAR fresh := new(str, int);
                fresh.insert("k", 1);
                VAR kept := persist("fresh", fresh);
                fail_now();
                """,
                transactional=True,
            )
        assert "fresh" not in kernel.catalog_names()

    def test_query_budget_from_policy(self):
        kernel = MonetKernel(
            resilience=ResiliencePolicy(retry=retry_fast(), query_budget=-0.0)
        )
        kernel.register_command("noop", lambda: 1)
        # zero budget expires on the first statement tick
        with pytest.raises(DeadlineExceeded):
            kernel.run("noop(); noop();")


class TestMoaInvokeHook:
    def test_invoke_site_faulted(self):
        from repro.moa.extension import ExtensionRegistry, MoaExtension

        class Ext(MoaExtension):
            name = "demo"

            def operators(self):
                return {"op": lambda x: x * 2}

        plan = FaultPlan(
            seed=0, specs=(FaultSpec(site="moa.invoke:demo.op", kind="fail"),)
        )
        registry = ExtensionRegistry(faults=FaultInjector(plan))
        registry.register(Ext())
        with pytest.raises(InjectedTransientError):
            registry.invoke("demo", "op", [3])

    def test_invoke_clean_without_plan(self):
        from repro.moa.extension import ExtensionRegistry, MoaExtension

        class Ext(MoaExtension):
            name = "demo"

            def operators(self):
                return {"op": lambda x: x * 2}

        registry = ExtensionRegistry()
        registry.register(Ext())
        assert registry.invoke("demo", "op", [3]) == 6


class TestPreprocessorResilience:
    def make_db(self, extract, *, on_error="raise", quality=0.9):
        from repro.cobra.catalog import DomainKnowledge, ExtractionMethod
        from repro.cobra.model import RawVideo, VideoDocument
        from repro.cobra.vdbms import CobraVDBMS

        knowledge = DomainKnowledge(domain="f1")
        knowledge.methods.append(
            ExtractionMethod(
                name="flaky_detector",
                produces=("fly_out",),
                extract=extract,
                cost=1.0,
                quality=quality,
            )
        )
        db = CobraVDBMS(
            resilience=ResiliencePolicy(retry=retry_fast(), on_error=on_error)
        )
        db.register_domain(knowledge)
        raw = RawVideo("race1", "synthetic://x", 60.0, 10.0, 192, 144, 16000)
        db.register_document(VideoDocument(raw=raw), "f1")
        return db

    @staticmethod
    def event(event_id="e1"):
        from repro.cobra.model import VideoEvent
        from repro.synth.annotations import Interval

        return VideoEvent(
            event_id=event_id,
            kind="fly_out",
            interval=Interval(5.0, 9.0),
        )

    def test_transient_extractor_retried_to_success(self):
        state = {"failures": 1}

        def extract(document):
            if state["failures"]:
                state["failures"] -= 1
                raise InjectedTransientError("decoder hiccup")
            return [self.event()]

        db = self.make_db(extract)
        result = db.query("RETRIEVE fly_out")
        assert len(result) == 1
        assert not result.degraded
        assert any(f.action == "retried" for f in result.failures)

    def test_permanent_failure_raises_in_strict_mode(self):
        def extract(document):
            raise RuntimeError("model file corrupt")

        db = self.make_db(extract)
        with pytest.raises(ExtractionError):
            db.query("RETRIEVE fly_out")

    def test_degrade_mode_answers_without_failed_kind(self):
        def extract(document):
            raise RuntimeError("model file corrupt")

        db = self.make_db(extract, on_error="degrade")
        result = db.query("RETRIEVE fly_out")
        assert len(result) == 0
        assert result.degraded
        assert result.report.dropped[0][0] == "fly_out"
        assert any("fly_out" in note for note in result.degradations())

    def test_breaker_opens_and_persists_across_queries(self):
        calls = []

        def extract(document):
            calls.append(1)
            raise InjectedTransientError("always down")

        db = self.make_db(extract, on_error="degrade")
        for _ in range(3):
            db.query("RETRIEVE fly_out")
        breaker = db._breakers["flaky_detector"]
        assert breaker.state == CircuitBreaker.OPEN
        attempts_before = len(calls)
        result = db.query("RETRIEVE fly_out")  # circuit open: fails fast
        assert len(calls) == attempts_before
        assert any(f.error == "CircuitOpenError" for f in result.failures)

    def test_failed_extraction_rolls_back_event_store(self):
        def extract(document):
            half = [self.event("good")]
            # the events are fine; storage will be poisoned instead
            return half

        db = self.make_db(extract)
        # poison store_event for the first call only
        original = db.metadata.store_event
        state = {"poisoned": True}

        def poisoned_store(video_id, event):
            if state["poisoned"]:
                state["poisoned"] = False
                raise InjectedPermanentError("BAT write failed")
            return original(video_id, event)

        db.metadata.store_event = poisoned_store
        with pytest.raises(InjectedPermanentError):
            db.query("RETRIEVE fly_out")
        # neither the BAT store nor the in-memory document kept the event
        assert not db.metadata.has_events("race1", "fly_out")
        assert "good" not in db.document("race1").events
        # second run succeeds cleanly and stores it
        result = db.query("RETRIEVE fly_out")
        assert len(result) == 1


class TestFaultsCli:
    def test_list_runs(self, capsys):
        from repro.faults.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in plan_names():
            assert name in out

    def test_requires_plan(self):
        from repro.faults.__main__ import main

        with pytest.raises(SystemExit):
            main([])
