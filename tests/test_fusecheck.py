"""Effect inference, fusion regions, and the FusionPlan artifact."""

import pytest

from repro.check.diagnostics import Severity
from repro.check.flowcheck import FlowChecker
from repro.check.fusecheck import FuseChecker, FusionPlan
from repro.monet.kernel import MonetKernel
from repro.monet.mil import parse


@pytest.fixture(scope="module")
def env():
    from repro.cobra.vdbms import CobraVDBMS

    kernel = CobraVDBMS(check="off").kernel
    return dict(
        commands=kernel.command_names(),
        signatures=kernel.command_signatures(),
        globals_names=kernel.catalog_names(),
        procedures=kernel.interpreter.procedures,
    )


def analyze(source: str, env: dict):
    definition = parse(source)[0]
    return FuseChecker(**env).analyze_with_report(definition, source="<test>")


# ---------------------------------------------------------------------------
# effect inference
# ---------------------------------------------------------------------------


class TestEffects:
    def test_pure_bat_method(self, env):
        stmt = parse(
            "PROC p(BAT[void,dbl] f) : any := { VAR a := f.select(0.1, 0.9); }"
        )[0].body[0]
        effects = FuseChecker(**env).infer_effects(stmt)
        assert effects.pure
        assert effects.bat_compute
        assert effects.reads == ("f",)
        assert effects.writes == ("a",)

    def test_append_is_pure_but_recorded(self, env):
        stmt = parse(
            'PROC p(BAT[str,dbl] b) : any := { b.insert("x", 0.5); }'
        )[0].body[0]
        effects = FuseChecker(**env).infer_effects(stmt)
        assert effects.pure
        assert effects.appends == ("b",)

    def test_catalog_command_commits(self, env):
        stmt = parse(
            'PROC p(BAT[void,dbl] f) : any := { persist("f", f); }'
        )[0].body[0]
        effects = FuseChecker(**env).infer_effects(stmt)
        assert effects.commits
        assert not effects.pure

    def test_impure_scheduler_command(self, env):
        stmt = parse("PROC p() : any := { VAR n := threadcnt(3); }")[0].body[0]
        effects = FuseChecker(**env).infer_effects(stmt)
        assert not effects.pure
        assert "threadcnt" in effects.impure

    def test_unknown_call_conservatively_impure(self, env):
        stmt = parse("PROC p() : any := { VAR x := mystery(1); }")[0].body[0]
        assert not FuseChecker(**env).infer_effects(stmt).pure

    def test_new_allocates_without_reading_type_atoms(self, env):
        stmt = parse("PROC p() : any := { VAR out := new(void, dbl); }")[0].body[0]
        effects = FuseChecker(**env).infer_effects(stmt)
        assert effects.allocates
        assert effects.reads == ()


# ---------------------------------------------------------------------------
# region partitioning
# ---------------------------------------------------------------------------

STRAIGHT_LINE = """
PROC straight(BAT[void,dbl] f) : any := {
  VAR a := mselect(f, ">", 0.2);
  VAR b := mmap(a, "*", 2.0);
  RETURN b;
}
"""

SPLIT_BY_BARRIER = """
PROC split(BAT[void,dbl] f) : any := {
  VAR a := mselect(f, ">", 0.2);
  VAR n := threadcnt(2);
  VAR b := mmap(a, "*", 2.0);
  RETURN b;
}
"""

PARALLEL_CONFLICT = """
PROC conflict(BAT[void,dbl] shared) : any := {
  PARALLEL {
    shared.replace(0, 0.1);
    VAR t := mselect(shared, ">", 0.5);
  }
  RETURN shared;
}
"""


class TestRegions:
    def test_straight_line_is_one_certified_region(self, env):
        plan, report = analyze(STRAIGHT_LINE, env)
        assert len(plan) == 1
        region = plan.regions[0]
        assert region.certified
        assert region.statements == 3
        assert region.inputs == ("f",)
        assert set(region.outputs) == {"a", "b"}
        diagnostics = list(report)
        assert [d.code for d in diagnostics] == ["FUSE001"]
        assert diagnostics[0].severity == Severity.INFO

    def test_single_barrier_between_regions_is_fuse002(self, env):
        plan, report = analyze(SPLIT_BY_BARRIER, env)
        assert len(plan.certified) == 2
        codes = [d.code for d in report]
        assert "FUSE002" in codes
        fuse002 = next(d for d in report if d.code == "FUSE002")
        assert "threadcnt" in fuse002.message

    def test_cross_branch_conflict_denies_certification(self, env):
        plan, report = analyze(PARALLEL_CONFLICT, env)
        assert plan.certified == ()
        assert len(plan) == 2
        codes = [d.code for d in report]
        assert codes.count("FUSE003") == 2
        assert all("shared" in d.message for d in report)

    def test_parallel_appends_commute(self, env):
        """Fig. 4 shape: concurrent inserts stay certified."""
        source = """
PROC fanout(BAT[void,int] obs) : str := {
  VAR acc := new(str, flt);
  PARALLEL {
    acc.insert("m0", hmmOneCall(0, "m0", obs));
    acc.insert("m1", hmmOneCall(1, "m1", obs));
  }
  RETURN acc.max;
}
"""
        plan, _ = analyze(source, env)
        branch_regions = [r for r in plan.regions if "parallel" in r.path]
        assert len(branch_regions) == 2
        assert all(r.certified for r in branch_regions)


# ---------------------------------------------------------------------------
# the artifact: attachment and serialization
# ---------------------------------------------------------------------------


class TestArtifact:
    def test_seed_parallel_hmm_has_nontrivial_plan(self):
        """Acceptance: the Fig. 4 proc yields >= 2 certified regions."""
        from repro.cobra.vdbms import CobraVDBMS
        from repro.hmm.parallel import build_parallel_eval_proc

        vdbms = CobraVDBMS(check="warn")
        source = build_parallel_eval_proc(
            "hmmP", [f"model{i}" for i in range(6)], n_servers=6
        )
        vdbms.kernel.run(source)
        plan = vdbms.kernel.interpreter.procedures["hmmP"].fusion_plan
        assert isinstance(plan, FusionPlan)
        assert len(plan.certified) >= 2
        # the epilogue (max + reverse.find) fuses into one multi-stmt region
        assert any(
            r.statements >= 2 for r in plan.certified if r.path == "body"
        )

    def test_seed_dbn_infer_proc_has_plan(self):
        from repro.cobra.vdbms import CobraVDBMS

        proc = CobraVDBMS().kernel.interpreter.procedures["dbnInferP"]
        assert proc.fusion_plan is not None
        assert len(proc.fusion_plan.certified) >= 1

    def test_check_off_skips_plan(self):
        kernel = MonetKernel(check="off")
        kernel.run("PROC noop(int n) : int := { RETURN n; }")
        assert kernel.interpreter.procedures["noop"].fusion_plan is None

    def test_round_trip(self, env):
        plan, _ = analyze(SPLIT_BY_BARRIER, env)
        data = plan.to_dict()
        assert data["artifact"] == "repro.fusionplan/1"
        restored = FusionPlan.from_dict(data)
        assert restored == plan


# ---------------------------------------------------------------------------
# FLOW002 interaction: fused temporaries are not dead stores
# ---------------------------------------------------------------------------

FUSED_OVERWRITE = """
PROC fused(BAT[void,dbl] f) : any := {
  VAR out := new(void, dbl);
  out := mselect(f, ">", 0.5);
  RETURN out;
}
"""

UNFUSED_OVERWRITE = """
PROC unfused(BAT[void,dbl] f) : any := {
  VAR out := new(void, dbl);
  VAR n := threadcnt(2);
  out := mselect(f, ">", 0.5);
  RETURN out;
}
"""


class TestFlow002Suppression:
    def test_bat_overwrite_inside_fused_region_not_dead(self, env):
        report = FlowChecker(**env).check_source(FUSED_OVERWRITE, name="<t>")
        assert "FLOW002" not in [d.code for d in report]

    def test_same_overwrite_across_barrier_still_dead(self, env):
        report = FlowChecker(**env).check_source(UNFUSED_OVERWRITE, name="<t>")
        assert "FLOW002" in [d.code for d in report]

    def test_scalar_dead_store_still_fires(self, env):
        source = """
PROC scalar(int n) : int := {
  VAR x := 1;
  x := 2;
  RETURN x;
}
"""
        report = FlowChecker(**env).check_source(source, name="<t>")
        assert "FLOW002" in [d.code for d in report]
