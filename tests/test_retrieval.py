"""Retrieval front-end: English query templates + the assembled system
(session-scoped trained FormulaOneSystem)."""

import pytest

from repro.errors import QuerySyntaxError
from repro.retrieval.parser import english_to_coql


class TestEnglishQueries:
    def test_paper_examples_translate(self):
        cases = {
            "Retrieve the video sequences showing the car of Michael Schumacher":
                "driver_mention",
            "Retrieve the video sequences with Michael Schumacher leading the race":
                "classification",
            "Retrieve the video sequences showing Barrichello in the pit stop":
                "pit_stop",
            "Retrieve the sequences with the race leader crossing the finish line":
                "winner",
            "Retrieve all fly outs": "fly_out",
            "Retrieve all highlights showing the car of Michael Schumacher":
                "highlight",
            "Retrieve all fly outs of Mika Hakkinen in this season": "fly_out",
            "Retrieve all highlights at the pit line involving Juan Pablo Montoya":
                "highlight",
        }
        for english, kind in cases.items():
            coql = english_to_coql(english)
            assert coql.startswith(f"RETRIEVE {kind}"), (english, coql)

    def test_two_position_query(self):
        coql = english_to_coql(
            "Retrieve the video sequences where Michael Schumacher is first, "
            "and Mika Hakkinen is second"
        )
        assert "POSITION SCHUMACHER = 1" in coql
        assert "POSITION HAKKINEN = 2" in coql

    def test_unmappable_query(self):
        with pytest.raises(QuerySyntaxError):
            english_to_coql("What is the meaning of life")

    def test_driver_required_where_needed(self):
        with pytest.raises(QuerySyntaxError):
            english_to_coql("Retrieve sequences showing X in the pit stop")


class TestSystem:
    def test_text_metadata_queryable(self, f1_system):
        result = f1_system.query("RETRIEVE pit_stop")
        assert len(result) >= 1
        assert all(r["source"] == "text" for r in result.records)

    def test_classification_positions(self, f1_system, mini_race):
        # the race's own overlay schedule tells us the true leader
        overlays = mini_race.truth.overlays
        classification = next(w for _, w in overlays if w[0] == "1")
        leader = classification[1]
        result = f1_system.query(
            f"RETRIEVE classification WHERE POSITION {leader} = 1"
        )
        assert len(result) >= 1

    def test_dynamic_extraction_on_first_query(self, f1_system):
        result = f1_system.query("RETRIEVE excited_speech")
        # either just extracted now or already there from an earlier test
        assert len(result) >= 1

    def test_highlights_found_and_cached(self, f1_system):
        first = f1_system.query("RETRIEVE highlight")
        assert len(first) >= 1
        second = f1_system.query("RETRIEVE highlight")
        assert not second.report.ran_extraction
        assert len(second) == len(first)

    def test_highlight_recall_against_truth(self, f1_system, mini_race):
        from repro.fusion.evaluate import segment_precision_recall

        result = f1_system.query("RETRIEVE highlight")
        pr = segment_precision_recall(
            result.intervals(), mini_race.truth.highlights
        )
        assert pr.recall > 0.3

    def test_confidence_filter(self, f1_system):
        all_highlights = f1_system.query("RETRIEVE highlight")
        confident = f1_system.query("RETRIEVE highlight WHERE CONFIDENCE >= 0.99")
        assert len(confident) <= len(all_highlights)

    def test_english_front_end(self, f1_system):
        result = f1_system.ask("Retrieve all fly outs")
        assert result.query.kind == "fly_out"

    def test_combined_dbn_text_query(self, f1_system):
        """The paper's flagship: fuse DBN events with recognized text."""
        result = f1_system.query(
            "RETRIEVE highlight WHERE INTERSECTS driver_mention"
        )
        # may legitimately be empty if no overlay coincides with a highlight,
        # but the query must run both extraction paths without error
        assert result.report.required_kinds == ["highlight", "driver_mention"]

    def test_compound_event_definition(self, f1_system):
        from repro.cobra import Component, CompoundEventDef, TemporalConstraint

        f1_system.db.define_compound_event(
            CompoundEventDef(
                "test_compound",
                [Component("h", "highlight"), Component("e", "excited_speech")],
                [TemporalConstraint("h", "intersects", "e")],
            )
        )
        count = f1_system.db.materialize_compound_event(
            "test_compound", "testrace"
        )
        assert count >= 0  # materialization runs; count depends on the race
