"""DBNs: templates, unrolling, compiled inference vs exact VE, BK
clustering, EM learning, sampling."""

import numpy as np
import pytest

from repro.bayes.inference import VariableElimination
from repro.dbn.compiled import CompiledDbn, project_onto_clusters
from repro.dbn.evidence import EvidenceSequence
from repro.dbn.learn import dbn_em
from repro.dbn.simulate import sample_sequence
from repro.dbn.template import DbnTemplate, at_slice, prev
from repro.dbn.unroll import unroll
from repro.errors import CpdError, GraphStructureError, InferenceError, LearningError


def two_chain(seed: int = 42) -> DbnTemplate:
    """X -> Y (intra), self loops, evidence F <- Y, G <- X."""
    t = DbnTemplate()
    t.add_node("X", 2)
    t.add_node("Y", 2)
    t.add_node("F", 2, observed=True)
    t.add_node("G", 3, observed=True)
    t.add_intra_edge("X", "Y")
    t.add_intra_edge("Y", "F")
    t.add_intra_edge("X", "G")
    t.add_inter_edge("X", "X")
    t.add_inter_edge("Y", "Y")
    t.randomize(np.random.default_rng(seed))
    t.validate()
    return t


def coupled(seed: int = 3) -> DbnTemplate:
    """Fig 7b shape: evidence nodes are parents of the hidden query node."""
    t = DbnTemplate()
    t.add_node("EA", 2)
    t.add_node("f1", 2, observed=True)
    t.add_node("f2", 3, observed=True)
    t.add_intra_edge("f1", "EA")
    t.add_intra_edge("f2", "EA")
    t.add_inter_edge("EA", "EA")
    t.randomize(np.random.default_rng(seed))
    t.validate()
    return t


class TestTemplate:
    def test_parent_order_convention(self):
        t = two_chain()
        assert t.transition_parents("X") == [prev("X")]
        assert t.transition_parents("Y") == ["X", prev("Y")]

    def test_tied_cpd_requires_no_inter_parents(self):
        t = DbnTemplate()
        t.add_node("A", 2)
        t.add_inter_edge("A", "A")
        with pytest.raises(CpdError):
            t.set_tied_cpd("A", [0.5, 0.5])

    def test_duplicate_node(self):
        t = DbnTemplate()
        t.add_node("A", 2)
        with pytest.raises(GraphStructureError):
            t.add_node("A", 2)

    def test_cardinality_minimum(self):
        t = DbnTemplate()
        with pytest.raises(GraphStructureError):
            t.add_node("A", 1)

    def test_missing_cpd_detected(self):
        t = DbnTemplate()
        t.add_node("A", 2)
        with pytest.raises(CpdError):
            t.validate()

    def test_copy_is_deep(self):
        t = two_chain()
        c = t.copy()
        c.set_initial_cpd("X", [0.9, 0.1])
        assert not np.allclose(
            t.initial_cpd("X").table, c.initial_cpd("X").table
        )

    def test_at_slice_naming(self):
        assert at_slice("EA", 3) == "EA@3"


class TestUnroll:
    def test_unrolled_node_count(self):
        net = unroll(two_chain(), 4)
        assert len(net.nodes()) == 4 * 4

    def test_slice0_uses_initial_cpd(self):
        t = two_chain()
        net = unroll(t, 3)
        assert np.allclose(net.cpd("X@0").table, t.initial_cpd("X").table)
        assert np.allclose(net.cpd("X@2").table, t.transition_cpd("X").table)

    def test_bad_length(self):
        with pytest.raises(GraphStructureError):
            unroll(two_chain(), 0)


class TestEvidence:
    def test_all_observed_required(self):
        t = two_chain()
        with pytest.raises(InferenceError):
            EvidenceSequence(t, hard={"F": [0, 1]})

    def test_length_agreement(self):
        t = two_chain()
        with pytest.raises(InferenceError):
            EvidenceSequence(t, hard={"F": [0, 1], "G": [0]})

    def test_out_of_range_state(self):
        t = two_chain()
        with pytest.raises(InferenceError):
            EvidenceSequence(t, hard={"F": [5], "G": [0]})

    def test_soft_shape_check(self):
        t = two_chain()
        with pytest.raises(InferenceError):
            EvidenceSequence(
                t, hard={"F": [0]}, soft={"G": np.ones((1, 2))}
            )  # G has cardinality 3

    def test_likelihoods_one_hot_for_hard(self):
        t = two_chain()
        ev = EvidenceSequence(t, hard={"F": [1, 0], "G": [2, 0]})
        lik = ev.likelihoods("G")
        assert lik.shape == (2, 3)
        assert lik[0].tolist() == [0, 0, 1]

    def test_segments(self):
        t = two_chain()
        ev = EvidenceSequence(t, hard={"F": [0] * 10, "G": [0] * 10})
        assert len(ev.segments(3)) == 3
        assert all(len(s) == 3 for s in ev.segments(3))


class TestCompiledAgainstExact:
    """The compiled interface engine must equal unrolled VE exactly."""

    @pytest.mark.parametrize("template_factory", [two_chain, coupled])
    def test_filter_equals_ve(self, template_factory, rng):
        t = template_factory()
        _, ev = sample_sequence(t, 6, rng)
        engine = CompiledDbn(t)
        net = unroll(t, 6)
        vee = VariableElimination(net)
        hard = {
            f"{n}@{k}": int(ev.hard_values(n)[k])
            for n in t.observed_nodes()
            for k in range(6)
        }
        node = t.hidden_nodes()[0]
        ours = engine.posterior_series(ev, node)[5]
        exact = vee.query(f"{node}@5", hard).values
        assert np.allclose(ours, exact, atol=1e-9)

    @pytest.mark.parametrize("template_factory", [two_chain, coupled])
    def test_smooth_equals_ve(self, template_factory, rng):
        t = template_factory()
        _, ev = sample_sequence(t, 5, rng)
        engine = CompiledDbn(t)
        vee = VariableElimination(unroll(t, 5))
        hard = {
            f"{n}@{k}": int(ev.hard_values(n)[k])
            for n in t.observed_nodes()
            for k in range(5)
        }
        node = t.hidden_nodes()[0]
        sm = engine.smooth(ev)
        ours = engine.marginal(sm.gamma, node)[2]
        exact = vee.query(f"{node}@2", hard).values
        assert np.allclose(ours, exact, atol=1e-9)

    def test_log_likelihood_equals_ve(self, rng):
        t = two_chain()
        _, ev = sample_sequence(t, 5, rng)
        engine = CompiledDbn(t)
        vee = VariableElimination(unroll(t, 5))
        hard = {
            f"{n}@{k}": int(ev.hard_values(n)[k])
            for n in t.observed_nodes()
            for k in range(5)
        }
        assert engine.log_likelihood(ev) == pytest.approx(
            vee.log_evidence(hard), abs=1e-9
        )

    def test_soft_one_hot_equals_hard(self, rng):
        t = coupled()
        _, ev = sample_sequence(t, 8, rng)
        soft = {
            n: np.eye(t.cardinality(n))[ev.hard_values(n)]
            for n in t.observed_nodes()
        }
        ev_soft = EvidenceSequence(t, soft=soft)
        engine = CompiledDbn(t)
        assert np.allclose(
            engine.posterior_series(ev, "EA"),
            engine.posterior_series(ev_soft, "EA"),
            atol=1e-12,
        )

    def test_static_posterior_ignores_time(self, rng):
        t = two_chain()
        _, ev = sample_sequence(t, 6, rng)
        engine = CompiledDbn(t)
        series = engine.static_posterior_series(ev, "X")
        # repeat one evidence step: identical static posterior
        f = ev.hard_values("F")
        g = ev.hard_values("G")
        ev2 = EvidenceSequence(t, hard={"F": [f[0], f[0]], "G": [g[0], g[0]]})
        series2 = engine.static_posterior_series(ev2, "X")
        assert np.allclose(series2[0], series2[1])
        assert np.allclose(series[0], series2[0])


class TestBoyenKoller:
    def test_single_cluster_is_exact(self, rng):
        t = two_chain()
        _, ev = sample_sequence(t, 10, rng)
        engine = CompiledDbn(t)
        exact = engine.filter(ev).gamma
        one = engine.filter(ev, clusters=[["X", "Y"]]).gamma
        assert np.allclose(exact, one, atol=1e-12)

    def test_projection_normalizes(self):
        belief = np.array([0.1, 0.2, 0.3, 0.4])
        projected = project_onto_clusters(belief, ["A", "B"], [2, 2], [["A"], ["B"]])
        assert projected.sum() == pytest.approx(1.0)

    def test_projection_preserves_marginals(self):
        belief = np.array([0.1, 0.2, 0.3, 0.4])
        projected = project_onto_clusters(belief, ["A", "B"], [2, 2], [["A"], ["B"]])
        original = belief.reshape(2, 2)
        new = projected.reshape(2, 2)
        assert np.allclose(original.sum(axis=1), new.sum(axis=1))
        assert np.allclose(original.sum(axis=0), new.sum(axis=0))

    def test_projection_requires_partition(self):
        with pytest.raises(InferenceError):
            project_onto_clusters(np.ones(4), ["A", "B"], [2, 2], [["A"]])

    def test_clustered_filtering_close_but_not_exact(self, rng):
        t = two_chain(seed=1)
        _, ev = sample_sequence(t, 30, rng)
        engine = CompiledDbn(t)
        exact = engine.marginal(engine.filter(ev).gamma, "X")
        approx = engine.marginal(
            engine.filter(ev, clusters=[["X"], ["Y"]]).gamma, "X"
        )
        error = np.abs(exact - approx).max()
        assert error < 0.35  # bounded approximation error
        assert np.allclose(
            engine.filter(ev, clusters=[["X"], ["Y"]]).gamma.sum(axis=1), 1.0
        )


class TestDbnEm:
    def test_loglik_monotone(self, rng):
        t = two_chain()
        segments = [sample_sequence(t, 20, rng)[1] for _ in range(5)]
        start = two_chain(seed=999)
        result = dbn_em(start, segments, max_iterations=8)
        diffs = np.diff(result.log_likelihoods)
        assert np.all(diffs >= -1e-7)

    def test_improves_over_random_start(self, rng):
        t = two_chain()
        segments = [sample_sequence(t, 25, rng)[1] for _ in range(6)]
        start = two_chain(seed=1234)
        result = dbn_em(start, segments, max_iterations=10)
        assert result.final_log_likelihood > result.log_likelihoods[0]

    def test_requires_hard_evidence(self, rng):
        t = two_chain()
        _, ev = sample_sequence(t, 5, rng)
        soft = {
            n: np.eye(t.cardinality(n))[ev.hard_values(n)]
            for n in t.observed_nodes()
        }
        with pytest.raises(LearningError):
            dbn_em(t, [EvidenceSequence(t, soft=soft)])

    def test_empty_sequences_rejected(self):
        with pytest.raises(LearningError):
            dbn_em(two_chain(), [])

    def test_fully_observed_counting_path(self, rng):
        """With no hidden nodes EM is exact counting."""
        t = DbnTemplate()
        t.add_node("A", 2, observed=True)
        t.add_node("B", 2, observed=True)
        t.add_intra_edge("A", "B")
        t.add_inter_edge("A", "A")
        t.randomize(np.random.default_rng(5))
        states, ev = sample_sequence(t, 400, rng)
        result = dbn_em(t.copy(), [ev], max_iterations=5, pseudo_count=0.0)
        # check the A self-transition against empirical frequencies
        a = states["A"]
        emp = np.mean(a[1:][a[:-1] == 1])
        learned = result.template.transition_cpd("A").table[1, 1]
        assert learned == pytest.approx(emp, abs=0.02)
        assert result.converged

    def test_em_with_coupling_evidence(self, rng):
        t = coupled()
        segments = [sample_sequence(t, 15, rng)[1] for _ in range(4)]
        start = coupled(seed=77)
        result = dbn_em(start, segments, max_iterations=6)
        diffs = np.diff(result.log_likelihoods)
        assert np.all(diffs >= -1e-7)


class TestSampling:
    def test_shapes_and_kinds(self, rng):
        t = two_chain()
        states, ev = sample_sequence(t, 12, rng)
        assert set(states) == {"X", "Y", "F", "G"}
        assert all(v.shape == (12,) for v in states.values())
        assert len(ev) == 12

    def test_deterministic_given_seed(self):
        t = two_chain()
        s1, _ = sample_sequence(t, 10, np.random.default_rng(9))
        s2, _ = sample_sequence(t, 10, np.random.default_rng(9))
        assert all(np.array_equal(s1[k], s2[k]) for k in s1)

    def test_sample_statistics_match_model(self):
        """Long-run frequency of a root node's self-transition."""
        t = DbnTemplate()
        t.add_node("X", 2)
        t.add_node("F", 2, observed=True)
        t.add_intra_edge("X", "F")
        t.add_inter_edge("X", "X")
        t.set_initial_cpd("X", [0.5, 0.5])
        t.set_transition_cpd("X", [[0.9, 0.3], [0.1, 0.7]])
        t.set_tied_cpd("F", [[0.8, 0.1], [0.2, 0.9]])
        states, _ = sample_sequence(t, 5000, np.random.default_rng(0))
        x = states["X"]
        stay = np.mean(x[1:][x[:-1] == 1] == 1)
        assert stay == pytest.approx(0.7, abs=0.05)
