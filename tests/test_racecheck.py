"""Racecheck (static) and the runtime sanitizer (dynamic) — same defects."""

import threading
from pathlib import Path

import pytest

from repro.check.racecheck import RaceChecker, check_race_source
from repro.errors import MilCheckError, SanitizerError
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel
from repro.monet.mil import parse
from repro.monet.module import MonetModule, command

REPO_ROOT = Path(__file__).resolve().parents[1]

TWO_BRANCH_PERSIST = """
PROC bad(BAT[void,dbl] a) : int := {
  PARALLEL {
    persist("scores", a);
    persist("scores", a);
  }
  RETURN 1;
}
"""


def feature_bat(values=(0.1, 0.2, 0.3)):
    bat = BAT("void", "dbl")
    bat.insert_bulk(None, list(values))
    return bat


def define_unchecked(kernel, source):
    """Register a PROC bypassing the static passes (sanitizer-only path)."""
    (definition,) = parse(source)
    return kernel.interpreter.define_proc(definition, check="off")


# ---------------------------------------------------------------------------
# static analysis
# ---------------------------------------------------------------------------


class TestRaceChecker:
    def test_fig4_parallel_hmm_idiom_is_clean(self):
        source = (REPO_ROOT / "examples/procedures/parallel_hmm.mil").read_text()
        assert not check_race_source(source)

    def test_append_append_is_exempt(self):
        report = check_race_source(
            """
            PROC p(BAT[str,flt] acc) : int := {
              PARALLEL {
                acc.insert("a", 0.1);
                acc.insert("b", 0.2);
              }
              RETURN acc.count;
            }
            """
        )
        assert not report, report.format()

    def test_write_write_on_one_bat(self):
        report = check_race_source(
            """
            PROC p(BAT[void,dbl] b) : int := {
              PARALLEL {
                b.replace(0, 0.1);
                b.delete(1);
              }
              RETURN 1;
            }
            """
        )
        assert [d.code for d in report] == ["RACE001"]

    def test_branch_local_bats_do_not_conflict(self):
        report = check_race_source(
            """
            PROC p() : int := {
              PARALLEL {
                IF (true) { VAR u := new(void, dbl); u.replace(0, 0.1); }
                IF (true) { VAR v := new(void, dbl); v.replace(0, 0.2); }
              }
              RETURN 1;
            }
            """
        )
        assert not report, report.format()

    def test_single_branch_parallel_is_clean(self):
        report = check_race_source(
            """
            PROC p(BAT[void,dbl] b) : int := {
              PARALLEL {
                b.replace(0, 0.1);
              }
              RETURN 1;
            }
            """
        )
        assert not report, report.format()

    def test_two_branch_persist_is_race001(self):
        report = check_race_source(TWO_BRANCH_PERSIST)
        assert [d.code for d in report] == ["RACE001"]

    def test_race004_suppressed_when_race001_fires(self):
        # the conflicting persists must yield one finding, not three
        report = check_race_source(TWO_BRANCH_PERSIST)
        assert "RACE004" not in report.codes()

    def test_constructor_mirrors_other_checkers(self):
        checker = RaceChecker(
            commands={"persist"}, signatures={}, globals_names=["g"], procedures={}
        )
        assert not checker.check_source("PROC p() : int := { RETURN 1; }")


# ---------------------------------------------------------------------------
# the runtime sanitizer
# ---------------------------------------------------------------------------


class RangeModule(MonetModule):
    name = "rng"

    @command(args=("dbl",), returns="dbl", arg_ranges=((0.0, 1.0),))
    def clamp(self, value: float) -> float:
        return value

    @command(args=("dbl",), returns="dbl", returns_range=(0.0, 1.0))
    def leak(self, value: float) -> float:
        return value + 1.0


class TestSanitizer:
    def test_off_by_default(self):
        assert MonetKernel().sanitizer is None

    def test_sanitize_mode_still_rejects_statically(self):
        kernel = MonetKernel(check="sanitize")
        with pytest.raises(MilCheckError) as err:
            kernel.run(TWO_BRANCH_PERSIST)
        assert any(d.code == "RACE001" for d in err.value.diagnostics)

    def test_catalog_race_caught_dynamically(self):
        kernel = MonetKernel(threads=3, check="sanitize")
        define_unchecked(kernel, TWO_BRANCH_PERSIST)
        with pytest.raises(SanitizerError):
            kernel.call("bad", [feature_bat()])
        assert any(d.code == "RACE001" for d in kernel.sanitizer.findings)

    def test_distinct_catalog_names_run_clean(self):
        kernel = MonetKernel(threads=3, check="sanitize")
        define_unchecked(
            kernel,
            """
            PROC ok(BAT[void,dbl] a) : int := {
              PARALLEL {
                persist("left", a);
                persist("right", a);
              }
              RETURN 1;
            }
            """,
        )
        assert kernel.call("ok", [feature_bat()]) == 1
        assert not kernel.sanitizer.findings
        assert kernel.bat("left").owner_tag is not None

    def test_txn_mutation_from_foreign_thread_is_race005(self):
        kernel = MonetKernel(check="sanitize")
        caught: list[SanitizerError] = []

        def worker():
            try:
                kernel.persist("stolen", feature_bat())
            except SanitizerError as exc:
                caught.append(exc)

        with kernel.transaction():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert caught
        assert any(d.code == "RACE005" for d in kernel.sanitizer.findings)
        assert "stolen" not in kernel.catalog_names()

    def test_arg_range_contract_enforced_dynamically(self):
        kernel = MonetKernel(check="sanitize")
        kernel.load_module(RangeModule())
        kernel.run("PROC p(dbl v) : dbl := { RETURN clamp(v); }")
        assert kernel.call("p", [0.5]) == 0.5
        # statically silent (a scalar parameter has no known interval);
        # the sanitizer catches the residue at runtime
        with pytest.raises(SanitizerError):
            kernel.call("p", [1.5])
        assert any(d.code == "FLOW005" for d in kernel.sanitizer.findings)

    def test_returns_range_contract_enforced_dynamically(self):
        kernel = MonetKernel(check="sanitize")
        kernel.load_module(RangeModule())
        kernel.run("PROC q(dbl v) : dbl := { RETURN leak(v); }")
        with pytest.raises(SanitizerError):
            kernel.call("q", [0.5])

    def test_unarmed_kernel_does_not_enforce(self):
        kernel = MonetKernel(check="error")
        kernel.load_module(RangeModule())
        kernel.run("PROC p(dbl v) : dbl := { RETURN clamp(v); }")
        assert kernel.call("p", [1.5]) == 1.5
