"""Atom types and the registry."""

import numpy as np
import pytest

from repro.errors import AtomTypeError
from repro.monet.atoms import ATOMS, Atom, atom


class TestBuiltins:
    def test_all_builtin_names(self):
        for name in ("oid", "void", "int", "flt", "dbl", "str", "bit", "chr", "any"):
            assert name in ATOMS

    def test_lookup_unknown(self):
        with pytest.raises(AtomTypeError):
            atom("decimal")

    def test_oid_non_negative(self):
        with pytest.raises(AtomTypeError):
            atom("oid").coerce(-1)
        assert atom("oid").coerce(5) == 5

    def test_int_coercion(self):
        assert atom("int").coerce("12") == 12
        assert atom("int").coerce(3.0) == 3
        with pytest.raises(AtomTypeError):
            atom("int").coerce("abc")

    def test_bool_not_an_int(self):
        with pytest.raises(AtomTypeError):
            atom("int").coerce(True)

    def test_bit(self):
        assert atom("bit").coerce(True) is True
        assert atom("bit").coerce(0) is False
        with pytest.raises(AtomTypeError):
            atom("bit").coerce(2)

    def test_chr_single_character(self):
        assert atom("chr").coerce("x") == "x"
        with pytest.raises(AtomTypeError):
            atom("chr").coerce("xy")

    def test_str_accepts_bytes(self):
        assert atom("str").coerce(b"abc") == "abc"
        with pytest.raises(AtomTypeError):
            atom("str").coerce(42)

    def test_dbl_coercion(self):
        assert atom("dbl").coerce("2.5") == 2.5
        assert np.isnan(atom("dbl").null)

    def test_any_passthrough(self):
        marker = object()
        assert atom("any").coerce(marker) is marker


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(AtomTypeError):
            ATOMS.register(Atom("int", np.dtype(np.int64), int, 0))

    def test_names_sorted(self):
        names = ATOMS.names()
        assert names == sorted(names)
