"""Fusion layer: network structures, discretization, evaluation metrics,
and the integrated pipelines (session-scoped mini race)."""

import numpy as np
import pytest

from repro.dbn.compiled import CompiledDbn
from repro.errors import GraphStructureError
from repro.fusion.audio_networks import (
    AUDIO_EVIDENCE,
    add_temporal_edges,
    audio_structure,
    fully_parameterized_dbn,
)
from repro.fusion.av_network import av_dbn, av_node_to_feature
from repro.fusion.discretize import DiscretizationConfig, hard_evidence, soft_evidence
from repro.fusion.evaluate import (
    PrecisionRecall,
    accumulate,
    classify_segments,
    extract_segments,
    segment_precision_recall,
)
from repro.fusion.features import ALL_FEATURE_NAMES
from repro.fusion.pipeline import AudioExperiment, AvExperiment
from repro.fusion.train import annotation_tracks, positive_initialization, transfer_parameters
from repro.synth.annotations import Interval


class TestAudioStructures:
    def test_structure_a_hidden_nodes(self):
        t = audio_structure("a")
        assert set(t.hidden_nodes()) == {"EA", "KW", "EN", "PI", "MF"}
        assert set(t.observed_nodes()) == set(AUDIO_EVIDENCE)

    def test_structure_b_direct(self):
        t = audio_structure("b")
        assert t.hidden_nodes() == ["EA"]
        assert set(t.intra_parents("EA")) == set(AUDIO_EVIDENCE)

    def test_structure_c_input_output(self):
        t = audio_structure("c")
        assert "KW" in t.intra_parents("EA")
        assert "f1" in t.intra_parents("KW")

    def test_unknown_structure(self):
        with pytest.raises(GraphStructureError):
            audio_structure("z")

    def test_temporal_v1_edges(self):
        t = audio_structure("a")
        add_temporal_edges(t, "v1")
        assert ("EA", "EA") in t.inter_edges()
        assert ("EA", "EN") in t.inter_edges()
        assert ("EN", "EA") in t.inter_edges()
        assert ("EN", "EN") in t.inter_edges()

    def test_temporal_v2_only_into_query(self):
        t = audio_structure("a")
        add_temporal_edges(t, "v2")
        for parent, child in t.inter_edges():
            assert child == "EA"

    def test_temporal_v3_no_query_fanout(self):
        t = audio_structure("a")
        add_temporal_edges(t, "v3")
        assert ("EA", "EN") not in t.inter_edges()
        assert ("EN", "EN") in t.inter_edges()
        assert ("EN", "EA") in t.inter_edges()

    def test_fully_parameterized_validates_and_compiles(self):
        t = fully_parameterized_dbn(seed=0)
        engine = CompiledDbn(t)
        assert engine.n_states == 2**5


class TestAvNetwork:
    def test_with_passing(self):
        t = av_dbn(include_passing=True)
        assert "Passing" in t.hidden_nodes()
        assert "f13" in t.nodes()
        assert set(t.intra_parents("f17")) == {"Start", "Passing"}

    def test_without_passing(self):
        t = av_dbn(include_passing=False)
        assert "Passing" not in t.nodes()
        assert "f13" not in t.nodes()
        assert t.intra_parents("f17") == ["Start"]
        mapping = av_node_to_feature(False)
        assert "f13" not in mapping

    def test_highlight_is_root(self):
        t = av_dbn()
        assert t.intra_parents("Highlight") == []
        assert "Highlight" in t.intra_parents("Start")

    def test_replay_evidence_under_highlight(self):
        t = av_dbn()
        assert t.intra_parents("f12") == ["Highlight"]

    def test_observed_hidden_marks(self):
        t = av_dbn(observed_hidden=("Highlight",))
        assert t.is_observed("Highlight")
        assert not t.is_observed("Start")


class TestDiscretization:
    def test_adaptive_cut_follows_distribution(self):
        config = DiscretizationConfig()
        low = np.full(100, 0.1)
        assert config.cut("f6", low) > 0.05
        spread = np.concatenate([np.zeros(90), np.ones(10)])
        cut = config.cut("f6", spread)
        assert 0.1 < cut < 0.5

    def test_fixed_thresholds(self):
        config = DiscretizationConfig()
        assert config.threshold("f12") == 0.5
        assert config.threshold("f14") == pytest.approx(0.4)

    def test_threshold_raises_for_adaptive(self):
        from repro.errors import SignalError

        with pytest.raises(SignalError):
            DiscretizationConfig().threshold("f6")

    def test_override_wins(self):
        config = DiscretizationConfig(thresholds={"f6": 0.77})
        assert config.cut("f6", np.zeros(5)) == 0.77


class TestEvaluation:
    def test_extract_segments_threshold_and_duration(self):
        posterior = np.zeros(300)
        posterior[50:120] = 0.9   # 7 s -> kept
        posterior[200:220] = 0.9  # 2 s -> dropped at min 6 s
        segments = extract_segments(posterior)
        assert len(segments) == 1
        assert segments[0].start == pytest.approx(5.0)

    def test_extract_segments_merges_dips(self):
        posterior = np.zeros(300)
        posterior[50:90] = 0.9
        posterior[95:140] = 0.9  # 0.5 s dip -> merged
        segments = extract_segments(posterior, merge_gap=2.0)
        assert len(segments) == 1

    def test_accumulate_smooths(self):
        spiky = np.zeros(100)
        spiky[::10] = 1.0
        smooth = accumulate(spiky, window_seconds=1.0)
        assert smooth.max() < 0.5
        assert smooth.var() < spiky.var()

    def test_precision_recall_properties(self):
        pr = PrecisionRecall(3, 1, 2)
        assert pr.precision == 0.75
        assert pr.recall == 0.6
        assert pr.as_percents() == (75.0, 60.0)
        assert PrecisionRecall(0, 0, 0).precision == 0.0

    def test_segment_matching(self):
        truth = [Interval(10, 20), Interval(50, 60)]
        detected = [Interval(12, 18), Interval(30, 40)]
        pr = segment_precision_recall(detected, truth)
        assert pr.true_positives == 1
        assert pr.false_positives == 1
        assert pr.false_negatives == 1

    def test_tiny_overlap_does_not_match(self):
        truth = [Interval(10, 20)]
        detected = [Interval(19.9, 30)]
        pr = segment_precision_recall(detected, truth, min_overlap_seconds=1.0)
        assert pr.true_positives == 0

    def test_classify_segments_baseline_correction(self):
        # Start has a HIGH raw posterior everywhere (0.6 flat); FlyOut is
        # usually low but clearly elevated inside the segment. Baseline
        # correction must pick FlyOut, raw argmax would pick Start.
        n = 400
        start = np.full(n, 0.6)
        fly = np.full(n, 0.1)
        fly[100:160] = 0.55
        labels = classify_segments(
            [Interval(10.0, 16.0)], {"Start": start, "FlyOut": fly}
        )
        assert labels["FlyOut"] and not labels["Start"]

    def test_classify_long_segment_multi_label(self):
        n = 400
        start = np.zeros(n)
        start[100:150] = 1.0
        fly = np.zeros(n)
        fly[250:300] = 1.0
        segments = [Interval(10.0, 30.0)]  # 20 s covers both events
        labels = classify_segments(segments, {"Start": start, "FlyOut": fly})
        assert labels["Start"] and labels["FlyOut"]


class TestTrainHelpers:
    def test_positive_initialization_monotone(self):
        t = audio_structure("a")
        add_temporal_edges(t, "v1")
        positive_initialization(t, np.random.default_rng(0), jitter=0.0)
        table = t.transition_cpd("EN").table  # EN | EA, EN[t-1], EA[t-1]
        assert table[1, 1, 1, 1] > table[1, 0, 0, 0]

    def test_self_parent_weighted(self):
        t = audio_structure("a")
        add_temporal_edges(t, "v1")
        positive_initialization(t, np.random.default_rng(0), jitter=0.0)
        table = t.transition_cpd("EN").table
        # EN[t-1]=1 alone beats EA[t-1]=1 alone (3x weight)
        assert table[1, 0, 1, 0] > table[1, 0, 0, 1]

    def test_transfer_parameters_roundtrip(self):
        source = fully_parameterized_dbn(ea_observed=True, seed=5)
        target = audio_structure("a")
        add_temporal_edges(target, "v1")
        transfer_parameters(source, target)
        assert np.allclose(
            source.transition_cpd("EA").table, target.transition_cpd("EA").table
        )

    def test_transfer_mismatch_rejected(self):
        from repro.errors import LearningError

        source = audio_structure("a")
        target = audio_structure("b")
        with pytest.raises(LearningError):
            transfer_parameters(source, target)

    def test_annotation_tracks_shapes(self, mini_race):
        tracks = annotation_tracks(mini_race.truth, 100)
        assert set(tracks) == {"EA", "Highlight", "Start", "FlyOut", "Passing"}
        assert all(v.shape == (100,) for v in tracks.values())


class TestIntegratedPipelines:
    """Slow(ish) tests sharing the session mini race."""

    def test_feature_set_complete(self, mini_race):
        assert set(ALL_FEATURE_NAMES) <= set(mini_race.features.streams)
        n = mini_race.features.n_steps
        assert n == pytest.approx(1800, abs=5)
        for name in ALL_FEATURE_NAMES:
            values = mini_race.features.stream(name)
            assert values.min() >= 0.0 and values.max() <= 1.0, name

    def test_hard_and_soft_evidence_build(self, mini_race):
        t = fully_parameterized_dbn(seed=0)
        from repro.fusion.audio_networks import AUDIO_NODE_TO_FEATURE

        hard = hard_evidence(t, mini_race.features, AUDIO_NODE_TO_FEATURE)
        soft = soft_evidence(t, mini_race.features, AUDIO_NODE_TO_FEATURE)
        assert len(hard) == len(soft) == mini_race.features.n_steps

    def test_audio_dbn_beats_bn_recall(self, mini_race):
        bn = AudioExperiment(mini_race, structure="a", temporal=None, seed=1)
        dbn = AudioExperiment(mini_race, structure="a", temporal="v1", seed=1)
        bn_eval = bn.evaluate(mini_race)
        dbn_eval = dbn.evaluate(mini_race)
        assert dbn_eval.scores.recall >= bn_eval.scores.recall
        assert dbn_eval.scores.f1 >= bn_eval.scores.f1

    def test_dbn_posterior_smoother_than_bn(self, mini_race):
        """The Fig. 9 contrast: DBN output is smoother."""
        bn = AudioExperiment(mini_race, structure="a", temporal=None, seed=1)
        dbn = AudioExperiment(mini_race, structure="a", temporal="v1", seed=1)
        bn_raw = bn._engine.static_posterior_series(
            hard_evidence(
                bn.template,
                mini_race.features,
                {f: f for f in AUDIO_EVIDENCE},
            ),
            "EA",
        )[:, 1]
        dbn_post = dbn.posterior(mini_race)
        assert np.abs(np.diff(dbn_post)).mean() < np.abs(np.diff(bn_raw)).mean()

    def test_av_dbn_finds_highlights(self, mini_race):
        experiment = AvExperiment(mini_race, include_passing=True, seed=2)
        evaluation = experiment.evaluate(mini_race)
        assert evaluation.highlight_scores.recall > 0.4
        assert evaluation.highlight_scores.precision > 0.5

    def test_av_beats_audio_on_highlight_recall(self, mini_race):
        audio = AudioExperiment(mini_race, structure="a", temporal="v1", seed=1)
        av = AvExperiment(mini_race, include_passing=True, seed=2)
        audio_segments = extract_segments(
            audio.posterior(mini_race), min_duration=2.6, merge_gap=0.5
        )
        audio_pr = segment_precision_recall(
            audio_segments, mini_race.truth.highlights
        )
        av_pr = av.evaluate(mini_race).highlight_scores
        assert av_pr.recall > audio_pr.recall
