"""Deadline propagation and cooperative cancellation across the stack.

Covers the service-layer token machinery end to end: the
:class:`CancellationToken` / :class:`TimeoutExpired` taxonomy, the
ambient ``cancel_scope`` / ``cancel_checkpoint`` plumbing (including its
propagation into ``ParallelExecutor`` worker threads), the MIL
statement-level checkpoint ("a cancelled query stops within one MIL
statement"), mid-inference DBN cancellation, and the half-open
single-probe circuit-breaker fix.
"""

import numpy as np
import pytest

from repro.dbn.compiled import CompiledDbn
from repro.dbn.evidence import EvidenceSequence
from repro.dbn.template import DbnTemplate
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    OverloadError,
    PermanentError,
    RequestCancelled,
    TimeoutExpired,
    TransientError,
)
from repro.monet.kernel import MonetKernel
from repro.monet.parallel import ParallelExecutor
from repro.resilience import (
    CancellationToken,
    CircuitBreaker,
    Deadline,
    FailureReport,
    RetryPolicy,
    cancel_checkpoint,
    cancel_scope,
    current_token,
)


class FakeClock:
    """A monotonic clock tests advance by hand."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class CountdownToken(CancellationToken):
    """Cancels itself at the N-th checkpoint — deterministic mid-loop stop."""

    def __init__(self, trips: int):
        super().__init__(None)
        self._trips = trips

    def check(self, site: str = "") -> None:
        self._trips -= 1
        if self._trips <= 0:
            self.cancel("countdown reached zero")
        super().check(site)


def two_chain(seed: int = 42) -> DbnTemplate:
    t = DbnTemplate()
    t.add_node("X", 2)
    t.add_node("Y", 2)
    t.add_node("F", 2, observed=True)
    t.add_node("G", 3, observed=True)
    t.add_intra_edge("X", "Y")
    t.add_intra_edge("Y", "F")
    t.add_intra_edge("X", "G")
    t.add_inter_edge("X", "X")
    t.add_inter_edge("Y", "Y")
    t.randomize(np.random.default_rng(seed))
    t.validate()
    return t


class TestCancellationToken:
    def test_unbounded_uncancelled_check_is_noop(self):
        token = CancellationToken(None)
        token.check("anywhere")
        assert not token.cancelled

    def test_cancel_raises_request_cancelled_with_site_and_reason(self):
        token = CancellationToken(None)
        token.cancel("client closed the connection")
        with pytest.raises(RequestCancelled) as err:
            token.check("mil.statement")
        assert err.value.site == "mil.statement"
        assert "client closed the connection" in str(err.value)

    def test_cancel_is_idempotent(self):
        token = CancellationToken(None)
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled
        with pytest.raises(RequestCancelled):
            token.check()

    def test_deadline_expiry_raises_timeout_expired_with_overshoot(self):
        clock = FakeClock()
        token = CancellationToken(1.0, clock=clock)
        token.check("early")  # within budget
        clock.now = 2.5
        with pytest.raises(TimeoutExpired) as err:
            token.check("dbn.filter")
        assert err.value.site == "dbn.filter"
        assert err.value.overshoot == pytest.approx(1.5)

    def test_cancellation_outranks_deadline(self):
        clock = FakeClock()
        token = CancellationToken(1.0, clock=clock)
        clock.now = 5.0
        token.cancel("stopped before anyone noticed the deadline")
        with pytest.raises(RequestCancelled):
            token.check()


class TestErrorTaxonomy:
    def test_timeout_expired_is_transient_and_deadline_exceeded(self):
        assert issubclass(TimeoutExpired, TransientError)
        assert issubclass(TimeoutExpired, DeadlineExceeded)
        exc = TimeoutExpired("budget spent", site="kernel.command:sort", overshoot=0.2)
        assert isinstance(exc, TransientError)
        assert exc.site == "kernel.command:sort"

    def test_request_cancelled_is_neither_transient_nor_permanent(self):
        assert not issubclass(RequestCancelled, TransientError)
        assert not issubclass(RequestCancelled, PermanentError)

    def test_failure_report_classifies_timeout_as_transient(self):
        report = FailureReport.from_exception(
            "svc", TimeoutExpired("spent", site="s"), action="gave-up"
        )
        assert report.transient
        cancelled = FailureReport.from_exception(
            "svc", RequestCancelled("stopped"), action="cancelled"
        )
        assert not cancelled.transient

    def test_retry_policy_gives_up_immediately_on_timeout(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        attempts = []

        def spender():
            attempts.append(1)
            raise TimeoutExpired("budget spent", site="x")

        with pytest.raises(TimeoutExpired):
            policy.call(spender, site="test")
        assert len(attempts) == 1

    def test_retry_policy_gives_up_immediately_on_overload(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        attempts = []

        def saturated():
            attempts.append(1)
            raise OverloadError("queue full", reason="queue-full")

        with pytest.raises(OverloadError):
            policy.call(saturated, site="test")
        assert len(attempts) == 1

    def test_retry_policy_still_retries_plain_transients(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 2:
                raise TransientError("blip")
            return "ok"

        assert policy.call(flaky, site="test") == "ok"
        assert len(attempts) == 2


class TestAmbientScope:
    def test_no_token_outside_any_scope(self):
        assert current_token() is None
        cancel_checkpoint("hot.loop")  # must be a no-op, not an error

    def test_scope_installs_and_restores(self):
        token = CancellationToken(None)
        assert current_token() is None
        with cancel_scope(token):
            assert current_token() is token
            inner = CancellationToken(None)
            with cancel_scope(inner):
                assert current_token() is inner
            assert current_token() is token
        assert current_token() is None

    def test_checkpoint_raises_inside_cancelled_scope(self):
        token = CancellationToken(None)
        token.cancel("stop")
        with cancel_scope(token):
            with pytest.raises(RequestCancelled) as err:
                cancel_checkpoint("moa.map")
        assert err.value.site == "moa.map"

    def test_parallel_executor_propagates_token_into_workers(self):
        token = CancellationToken(None)
        executor = ParallelExecutor(threads=2)
        with cancel_scope(token):
            seen = executor.run([lambda: current_token() is token] * 4)
        assert seen == [True] * 4

    def test_parallel_branches_observe_cancellation(self):
        token = CancellationToken(None)
        token.cancel("stop the fan-out")
        executor = ParallelExecutor(threads=2)

        def probe():
            try:
                cancel_checkpoint("branch")
                return "ran"
            except RequestCancelled:
                return "stopped"

        with cancel_scope(token):
            outcomes = executor.run([probe] * 3)
        assert outcomes == ["stopped"] * 3


class TestMilCancellation:
    def test_cancelled_run_stops_within_one_statement(self):
        """After the cancel lands, not a single further MIL statement runs."""
        kernel = MonetKernel()
        ticks = []
        token = CancellationToken(None)
        kernel.register_command("tick", lambda: ticks.append(1) or len(ticks))
        kernel.register_command("trip", lambda: token.cancel("mid-run") or 0)
        source = """
        VAR a := tick();
        VAR b := trip();
        VAR c := tick();
        VAR d := tick();
        RETURN d;
        """
        with cancel_scope(token):
            with pytest.raises(RequestCancelled) as err:
                kernel.run(source)
        assert ticks == [1], "statements after the cancel must not execute"
        assert err.value.site == "mil.statement"

    def test_cancelpoint_builtin_is_noop_outside_scope(self):
        kernel = MonetKernel()
        assert kernel.run("RETURN cancelpoint();") == 0

    def test_cancelpoint_observes_cancelled_token(self):
        kernel = MonetKernel()
        token = CancellationToken(None)
        token.cancel("stop")
        with cancel_scope(token):
            with pytest.raises(RequestCancelled):
                kernel.run("RETURN cancelpoint();")

    def test_deadline_on_call_uses_timeout_expired(self):
        clock = FakeClock()
        kernel = MonetKernel()
        kernel.register_command("step", lambda: 0)
        deadline = Deadline(1.0, clock=clock)
        clock.now = 3.0
        with pytest.raises(TimeoutExpired) as err:
            kernel.run("RETURN step();", deadline=deadline)
        assert err.value.overshoot == pytest.approx(2.0)


class TestDbnCancellation:
    def test_cancellation_mid_filter(self):
        """The forward pass stops at the per-step checkpoint, not at the end."""
        template = two_chain()
        steps = 30
        evidence = EvidenceSequence(
            template, hard={"F": [0] * steps, "G": [0] * steps}
        )
        dbn = CompiledDbn(template)
        token = CountdownToken(trips=10)
        with cancel_scope(token):
            with pytest.raises(RequestCancelled) as err:
                dbn.filter(evidence)
        assert err.value.site == "dbn.filter"

    def test_deadline_mid_filter(self):
        """An expiring budget surfaces as TimeoutExpired from inside the loop."""
        template = two_chain()
        steps = 30
        evidence = EvidenceSequence(
            template, hard={"F": [0] * steps, "G": [0] * steps}
        )
        dbn = CompiledDbn(template)
        clock = FakeClock()

        def ticking():
            clock.now += 1.0
            return clock.now

        token = CancellationToken(10.0, clock=ticking)
        with cancel_scope(token):
            with pytest.raises(TimeoutExpired) as err:
                dbn.filter(evidence)
        assert err.value.site == "dbn.filter"

    def test_uncancelled_scope_leaves_inference_untouched(self):
        template = two_chain()
        evidence = EvidenceSequence(template, hard={"F": [0, 1, 0], "G": [0, 1, 2]})
        dbn = CompiledDbn(template)
        baseline = dbn.filter(evidence)
        with cancel_scope(CancellationToken(None)):
            scoped = dbn.filter(evidence)
        np.testing.assert_allclose(baseline.gamma, scoped.gamma)
        assert baseline.log_likelihood == pytest.approx(scoped.log_likelihood)


class TestHalfOpenProbe:
    """The circuit breaker admits exactly one half-open probe at a time."""

    def _tripped_breaker(self, clock):
        breaker = CircuitBreaker(
            "probe-test", failure_threshold=1, recovery_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        return breaker

    def test_concurrent_half_open_callers_fail_fast(self):
        clock = FakeClock()
        breaker = self._tripped_breaker(clock)
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # still open
        clock.now += 6.0
        breaker.allow()  # first caller takes the probe slot
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # second caller must not also probe

    def test_release_probe_frees_the_slot_without_a_verdict(self):
        clock = FakeClock()
        breaker = self._tripped_breaker(clock)
        clock.now += 6.0
        breaker.allow()
        breaker.release_probe()  # probe was cancelled mid-flight
        breaker.allow()  # the slot is available again
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_probe_success_closes_the_circuit(self):
        clock = FakeClock()
        breaker = self._tripped_breaker(clock)
        clock.now += 6.0
        breaker.allow()
        breaker.record_success()
        breaker.allow()
        breaker.allow()  # closed: unlimited callers again

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self._tripped_breaker(clock)
        clock.now += 6.0
        breaker.allow()
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.allow()
