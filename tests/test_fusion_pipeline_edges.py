"""Edge cases of the fusion pipeline and feature assembly."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.fusion.audio_networks import AUDIO_NODE_TO_FEATURE, audio_structure
from repro.fusion.discretize import DiscretizationConfig, hard_evidence, soft_evidence
from repro.fusion.evaluate import extract_segments
from repro.fusion.features import FeatureSet


def synthetic_feature_set(n=200, seed=0) -> FeatureSet:
    rng = np.random.default_rng(seed)
    streams = {f"f{i}": rng.random(n) for i in range(1, 18)}
    streams["passing"] = rng.random(n)
    return FeatureSet("synthetic", streams)


class TestFeatureSet:
    def test_matrix_order(self):
        features = synthetic_feature_set()
        matrix = features.matrix(("f1", "f2"))
        assert matrix.shape == (200, 2)
        assert np.array_equal(matrix[:, 0], features.stream("f1"))

    def test_unknown_stream(self):
        with pytest.raises(SignalError):
            synthetic_feature_set().stream("f99")


class TestEvidenceBuilders:
    def test_hard_evidence_all_observed_covered(self):
        template = audio_structure("a")
        features = synthetic_feature_set()
        evidence = hard_evidence(template, features, AUDIO_NODE_TO_FEATURE)
        for node in template.observed_nodes():
            assert evidence.hard_values(node).shape == (200,)

    def test_missing_mapping_rejected(self):
        template = audio_structure("a")
        features = synthetic_feature_set()
        with pytest.raises(SignalError):
            hard_evidence(template, features, {"f1": "f1"})  # f2.. unmapped

    def test_extra_hard_truncates_to_shortest(self):
        template = audio_structure("a", ea_observed=True)
        features = synthetic_feature_set()
        evidence = hard_evidence(
            template,
            features,
            AUDIO_NODE_TO_FEATURE,
            extra_hard={"EA": np.zeros(150, dtype=np.int64)},
        )
        assert len(evidence) == 150

    def test_soft_evidence_likelihood_shape(self):
        template = audio_structure("b")
        features = synthetic_feature_set()
        evidence = soft_evidence(template, features, AUDIO_NODE_TO_FEATURE)
        lik = evidence.likelihoods("f1")
        assert lik.shape == (200, 2)
        assert np.allclose(lik.sum(axis=1), 1.0)

    def test_soft_evidence_gamma_sharpens(self):
        template = audio_structure("b")
        features = synthetic_feature_set()
        soft_linear = soft_evidence(
            template, features, AUDIO_NODE_TO_FEATURE,
            DiscretizationConfig(gamma=1.0),
        )
        soft_sharp = soft_evidence(
            template, features, AUDIO_NODE_TO_FEATURE,
            DiscretizationConfig(gamma=3.0),
        )
        linear = soft_linear.likelihoods("f3")
        sharp = soft_sharp.likelihoods("f3")
        # sharpening pushes likelihoods toward the extremes
        assert np.abs(sharp - 0.5).mean() >= np.abs(linear - 0.5).mean()


class TestSegmentExtraction:
    def test_empty_posterior_gives_no_segments(self):
        assert extract_segments(np.zeros(100)) == []

    def test_everything_above_threshold_is_one_segment(self):
        segments = extract_segments(np.ones(100), min_duration=1.0)
        assert len(segments) == 1
        assert segments[0].duration == pytest.approx(10.0)

    def test_segment_at_sequence_end_closed(self):
        posterior = np.zeros(100)
        posterior[30:] = 0.9
        segments = extract_segments(posterior, min_duration=1.0)
        assert segments[-1].end == pytest.approx(10.0)

    def test_label_propagates(self):
        posterior = np.zeros(200)
        posterior[0:80] = 1.0
        (segment,) = extract_segments(posterior, label="highlight")
        assert segment.label == "highlight"

    def test_non_1d_rejected(self):
        from repro.errors import InferenceError

        with pytest.raises(InferenceError):
            extract_segments(np.zeros((10, 2)))
