"""Cost analysis: the PERF lint family, cost estimates, and plan choice.

The perf mutation corpus under ``tests/data/badplans/perf/`` mirrors the
flow/race corpus: every ``perfNNN_*.mil`` artifact seeds exactly one perf
defect and must yield exactly its expected code across *all five* static
passes (no false positives riding along); every ``cleanNNN_*.mil`` is the
minimal fixed plan and must stay silent.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.check.costcheck import (
    DEFAULT_CARD,
    CostChecker,
    check_moa_cost,
    estimate_extraction_cost,
    estimate_moa_cost,
    estimate_model_cost,
)
from repro.check.diagnostics import Severity
from repro.check.flowcheck import FlowChecker
from repro.check.fusecheck import FuseChecker
from repro.check.milcheck import MilChecker
from repro.check.racecheck import RaceChecker
from repro.cobra.catalog import DomainKnowledge, ExtractionMethod
from repro.cobra.metadata import MetadataStore
from repro.cobra.model import FeatureTrack, RawVideo, VideoDocument
from repro.cobra.preprocessor import QueryPreprocessor
from repro.cobra.query import parse_coql
from repro.moa.algebra import Cmp, Const, Join, Select, Var
from repro.monet.kernel import MonetKernel
from repro.monet.mil import parse
from repro.monet.operators import BatStats
from repro.synth.annotations import Interval

PERF_CORPUS = Path(__file__).resolve().parent / "data" / "badplans" / "perf"
PERF_PLANS = sorted(PERF_CORPUS.glob("perf*.mil"))
CLEAN_PLANS = sorted(PERF_CORPUS.glob("clean*.mil"))

ALL_PASSES = (MilChecker, FlowChecker, RaceChecker, CostChecker, FuseChecker)


@pytest.fixture(scope="module")
def env():
    """The same checker environment the CLI builds: the full Cobra kernel."""
    from repro.cobra.vdbms import CobraVDBMS

    kernel = CobraVDBMS(check="off").kernel
    return dict(
        commands=kernel.command_names(),
        signatures=kernel.command_signatures(),
        globals_names=kernel.catalog_names(),
        procedures=kernel.interpreter.procedures,
    )


def expected_code(path: Path) -> str:
    for line in path.read_text().splitlines():
        if line.startswith("# expect:"):
            return line.split(":", 1)[1].strip()
    raise AssertionError(f"{path.name} has no '# expect:' header")


def all_pass_codes(source: str, name: str, env: dict) -> list[str]:
    """Non-advisory-info codes from all five passes, in pass order."""
    codes = []
    for checker_cls in ALL_PASSES:
        for d in checker_cls(**env).check_source(source, name=name):
            if d.severity != Severity.INFO:
                codes.append(d.code)
    return codes


# ---------------------------------------------------------------------------
# corpus exactness
# ---------------------------------------------------------------------------


def test_perf_corpus_is_present():
    assert len(PERF_PLANS) >= 6
    assert len(CLEAN_PLANS) >= 6


def test_perf_corpus_covers_every_code():
    codes = {expected_code(p) for p in PERF_PLANS}
    assert {
        "PERF001",
        "PERF002",
        "PERF003",
        "PERF004",
        "PERF005",
        "PERF006",
    } <= codes


@pytest.mark.parametrize("path", PERF_PLANS, ids=lambda p: p.stem)
def test_perf_badplan_yields_exactly_its_code(path, env):
    assert all_pass_codes(path.read_text(), path.name, env) == [
        expected_code(path)
    ]


@pytest.mark.parametrize("path", CLEAN_PLANS, ids=lambda p: p.stem)
def test_clean_plan_stays_silent(path, env):
    assert all_pass_codes(path.read_text(), path.name, env) == []


@pytest.mark.parametrize("path", PERF_PLANS + CLEAN_PLANS, ids=lambda p: p.stem)
def test_corpus_diagnostics_deterministic(path, env):
    """Two independent runs produce identical ordered diagnostics."""

    def run():
        out = []
        for checker_cls in ALL_PASSES:
            for d in checker_cls(**env).check_source(
                path.read_text(), name=path.name
            ):
                out.append((d.code, d.severity.name, d.line, d.message))
        return out

    assert run() == run()


# ---------------------------------------------------------------------------
# CLI: advisory strict semantics + SARIF
# ---------------------------------------------------------------------------


def test_strict_does_not_fail_on_advisory_perf(capsys):
    """PERF/FUSE are hints: --strict over the perf corpus still exits 0."""
    from repro.check.__main__ import main

    assert main(["--strict", str(PERF_CORPUS)]) == 0
    out = capsys.readouterr().out
    assert "PERF" in out  # the hints are still reported


def test_sarif_covers_perf_codes(capsys):
    from repro.check.__main__ import main

    assert main(["--format", "sarif", str(PERF_CORPUS)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    rules = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {f"PERF00{i}" for i in range(1, 7)} <= rules
    for result in run["results"]:
        assert result["level"] in ("note", "warning", "error")
        assert result["locations"][0]["physicalLocation"]["artifactLocation"][
            "uri"
        ]


# ---------------------------------------------------------------------------
# cost estimation
# ---------------------------------------------------------------------------

SCAN_PROC = """
PROC scan(BAT[void,dbl] f) : any := {
  VAR a := f.select(0.2, 0.9);
  RETURN a;
}
"""


def test_estimate_proc_scales_with_cardinality(env):
    definition = parse(SCAN_PROC)[0]
    checker = CostChecker(**env)
    default_cost = checker.estimate_proc(definition)
    small_cost = checker.estimate_proc(
        definition,
        stats={"f": BatStats(rows=10, keyed_head=True, sorted_tail=False)},
    )
    assert default_cost == pytest.approx(DEFAULT_CARD)
    assert small_cost == pytest.approx(10.0)
    assert small_cost < default_cost


def test_measured_sorted_stats_trigger_perf005(env):
    """Runtime BatStats feed the access-path facts: a sorted input scans."""
    definition = parse(SCAN_PROC)[0]
    report = CostChecker(**env).check_proc(
        definition,
        stats={"f": BatStats(rows=500, keyed_head=True, sorted_tail=True)},
    )
    assert [d.code for d in report] == ["PERF005"]


def test_while_multiplies_and_parallel_takes_longest_branch(env):
    looped = parse(
        """
PROC looped(BAT[void,dbl] f) : any := {
  VAR i := 0;
  WHILE (i < 4) {
    VAR v := maggr(f, "sum");
    i := i + v;
  }
  RETURN i;
}
"""
    )[0]
    checker = CostChecker(**env)
    # one maggr scan (1 + rows) per assumed trip
    assert checker.estimate_proc(looped) > 8 * DEFAULT_CARD


# ---------------------------------------------------------------------------
# Moa-level cost model
# ---------------------------------------------------------------------------


def _select(source):
    return Select("x", Cmp(">", Var("x"), Const(0.5)), source)


def test_moa_nested_select_flags_perf002():
    report = check_moa_cost(_select(_select(Var("f"))))
    assert [d.code for d in report] == ["PERF002"]
    assert [d.code for d in check_moa_cost(_select(Var("f")))] == []


def test_moa_join_flags_perf001():
    join = Join(
        "a",
        "b",
        Cmp("=", Var("a"), Var("b")),
        Var("f"),
        Var("g"),
        Var("a"),
    )
    assert [d.code for d in check_moa_cost(join)] == ["PERF001"]
    # restricting one side first removes the quadratic blow-up
    restricted = Join(
        "a",
        "b",
        Cmp("=", Var("a"), Var("b")),
        _select(Var("f")),
        Var("g"),
        Var("a"),
    )
    assert [d.code for d in check_moa_cost(restricted)] == []


def test_moa_cost_orders_plans():
    """The cheaper logical plan gets the lower estimate."""
    narrow_first = _select(_select(Var("f")))
    assert estimate_moa_cost(_select(Var("f"))) < estimate_moa_cost(
        narrow_first
    )


def test_compiled_plan_carries_cost_and_fusion_plan():
    from repro.moa.rewrite import MoaCompiler

    compiler = MoaCompiler(MonetKernel())
    plan = compiler.compile(_select(Var("f")))
    assert plan.estimated_cost == pytest.approx(DEFAULT_CARD)
    assert plan.fusion_plan is not None
    assert plan.fusion_plan.proc == plan.proc_name
    assert len(plan.fusion_plan.certified) >= 1

    unchecked = MoaCompiler(MonetKernel(check="off"), check="off")
    off_plan = unchecked.compile(_select(Var("f")))
    assert off_plan.estimated_cost is None
    assert off_plan.fusion_plan is None


# ---------------------------------------------------------------------------
# preprocessor plan choice
# ---------------------------------------------------------------------------


def _doc_with_tracks() -> VideoDocument:
    doc = VideoDocument(
        raw=RawVideo("race1", "synthetic://x", 100.0, 10.0, 192, 144, 16000)
    )
    doc.add_feature(FeatureTrack("long_track", np.zeros(5000)))
    doc.add_feature(FeatureTrack("short_track", np.zeros(50)))
    return doc


def test_preprocessor_picks_cheaper_estimated_plan():
    """Cost-model choice beats the catalog's static (quality, cost) order.

    Both methods sit in the same quality band; the statically 'cheaper'
    one (declared unit cost 1.0) reads a 5000-sample track, the declared
    cost 2.0 one reads 50 samples — the estimated plan cost picks the
    latter.
    """
    calls = []

    def extract_named(name):
        def extract(document):
            calls.append(name)
            return [
                document.new_event("thing", Interval(5, 9), 0.7, source="dbn")
            ]

        return extract

    long_scan = ExtractionMethod(
        "long_scan",
        ("thing",),
        extract_named("long_scan"),
        requires_features=("long_track",),
        cost=1.0,
        quality=0.8,
    )
    short_scan = ExtractionMethod(
        "short_scan",
        ("thing",),
        extract_named("short_scan"),
        requires_features=("short_track",),
        cost=2.0,
        quality=0.8,
    )
    knowledge = DomainKnowledge("f1", methods=[long_scan, short_scan])
    # the static catalog order prefers the lower declared unit cost...
    assert knowledge.methods_for("thing")[0].name == "long_scan"
    doc = _doc_with_tracks()
    # ...but the document-aware estimate inverts it
    assert estimate_extraction_cost(short_scan, doc) < estimate_extraction_cost(
        long_scan, doc
    )
    store = MetadataStore(MonetKernel())
    store.register_document(doc)
    report = QueryPreprocessor(store, knowledge).prepare(
        parse_coql("RETRIEVE thing FROM race1")
    )
    assert report.extracted == [("thing", "short_scan")]
    assert calls == ["short_scan"]


def test_preprocessor_quality_band_still_wins():
    """A clearly better method is never traded away for cheapness."""

    def extract(document):
        return [document.new_event("thing", Interval(5, 9), 0.7, source="dbn")]

    cheap_bad = ExtractionMethod(
        "cheap_bad",
        ("thing",),
        extract,
        requires_features=("short_track",),
        cost=0.1,
        quality=0.3,
    )
    slow_good = ExtractionMethod(
        "slow_good",
        ("thing",),
        extract,
        requires_features=("long_track",),
        cost=5.0,
        quality=0.9,
    )
    knowledge = DomainKnowledge("f1", methods=[cheap_bad, slow_good])
    store = MetadataStore(MonetKernel())
    store.register_document(_doc_with_tracks())
    report = QueryPreprocessor(store, knowledge).prepare(
        parse_coql("RETRIEVE thing FROM race1")
    )
    assert report.extracted == [("thing", "slow_good")]


def test_extraction_cost_estimate_shape():
    doc = _doc_with_tracks()
    method = ExtractionMethod(
        "m", ("thing",), lambda d: [], requires_features=("short_track",), cost=3.0
    )
    assert estimate_extraction_cost(method, doc) == pytest.approx(1.0 + 3.0 * 50)
    # no prerequisites: a raw-media pass over every track
    raw = ExtractionMethod("raw", ("thing",), lambda d: [], cost=1.0)
    assert estimate_extraction_cost(raw, doc) == pytest.approx(1.0 + 5050)


# ---------------------------------------------------------------------------
# DBN model cost
# ---------------------------------------------------------------------------


def test_model_cost_squares_hidden_state_space():
    from repro.dbn.template import DbnTemplate

    template = DbnTemplate()
    template.add_node("H", 3)
    template.add_node("G", 2)
    template.add_node("O", 2, observed=True)
    assert estimate_model_cost(template) == pytest.approx(36.0)
    assert estimate_model_cost(object()) == 1.0


def test_dbn_extension_records_model_cost():
    from repro.cobra.extensions import DbnExtension
    from repro.dbn.template import DbnTemplate
    from repro.errors import CobraError

    kernel = MonetKernel()
    ext = DbnExtension(kernel, check="off")
    template = DbnTemplate()
    template.add_node("H", 2)
    template.add_node("O", 2, observed=True)
    template.add_intra_edge("H", "O")
    template.randomize(np.random.default_rng(0))
    ext.register("small", template)
    assert ext.model_cost("small") == pytest.approx(4.0)
    with pytest.raises(CobraError):
        ext.model_cost("missing")
