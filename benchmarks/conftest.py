"""Shared benchmark fixtures.

The three synthetic Grands Prix and the trained networks are built once per
session; each table/figure bench consumes them. Building everything takes
a few minutes (three 600 s races through the full extraction chain) — the
price of regenerating every table from raw media.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.fusion.pipeline import AudioExperiment, AvExperiment, RaceData, prepare_race
from repro.synth.grandprix import BELGIAN_GP, GERMAN_GP, USA_GP

RESULTS_PATH = pathlib.Path(__file__).parent / "results.json"


def record_result(key: str, value) -> None:
    """Accumulate measured numbers into benchmarks/results.json."""
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[key] = value
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True))


@pytest.fixture(scope="session")
def german() -> RaceData:
    return prepare_race(GERMAN_GP)


@pytest.fixture(scope="session")
def belgian() -> RaceData:
    return prepare_race(BELGIAN_GP)


@pytest.fixture(scope="session")
def usa() -> RaceData:
    return prepare_race(USA_GP)


@pytest.fixture(scope="session")
def audio_dbn(german) -> AudioExperiment:
    """The fully parameterized audio DBN trained on the German GP."""
    return AudioExperiment(german, structure="a", temporal="v1", seed=1)


@pytest.fixture(scope="session")
def av_with_passing(german) -> AvExperiment:
    return AvExperiment(german, include_passing=True, seed=2)


@pytest.fixture(scope="session")
def av_without_passing(german) -> AvExperiment:
    return AvExperiment(german, include_passing=False, seed=2)
