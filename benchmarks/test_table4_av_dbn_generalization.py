"""Table 4 — AV DBN generalization; the passing sub-network's failure.

Paper: on the Belgian GP *with* the passing sub-network, highlights drop to
44/53 and passing to 28/31 ("the network ... worked fine in the case of the
German GP, but failed with the other two races ... different camera work").
Without the passing sub-network: Belgian recovers, USA reaches 73/76 — and
the USA GP has 0/0 fly-outs because "there were no fly-outs in the USA
Grand Prix".

Expected shape: (a) German-trained passing transfers badly — passing scores
collapse on Belgian; (b) dropping the sub-network does not hurt (usually
helps) highlight detection on the other races; (c) USA fly-out row is 0/0
by absence of the event.
"""

from conftest import record_result


def test_table4_generalization(av_with_passing, av_without_passing, belgian, usa, benchmark):
    rows = {}
    with_passing = av_with_passing.evaluate(belgian)
    rows["belgian+passing"] = {
        "highlights": with_passing.highlight_scores.as_percents(),
        **{k.lower(): v.as_percents() for k, v in with_passing.event_scores.items()},
    }
    for data in (belgian, usa):
        evaluation = av_without_passing.evaluate(data)
        rows[f"{data.name}-nopassing"] = {
            "highlights": evaluation.highlight_scores.as_percents(),
            **{k.lower(): v.as_percents() for k, v in evaluation.event_scores.items()},
        }

    print("\nTable 4 (AV DBN generalization): precision / recall")
    for config, table in rows.items():
        print(f"  {config}:")
        for name, (precision, recall) in table.items():
            print(f"    {name:10s} {precision:5.1f}/{recall:5.1f}")
    print(
        "  paper: belgian WITH passing highlights 44/53, passing 28/31;\n"
        "         belgian start 100/67, fly-out 100/36;\n"
        "         usa (no passing net) highlights 73/76, fly-out 0/0"
    )
    record_result("table4", rows)

    # (a) the passing detector must NOT transfer to belgian camera work:
    passing = rows["belgian+passing"].get("passing", (0.0, 0.0))
    assert passing[1] <= 60.0, "passing recall should collapse off-german"
    # (b) removing the sub-network must not hurt belgian highlights
    assert (
        rows["belgian-nopassing"]["highlights"][1]
        >= rows["belgian+passing"]["highlights"][1] - 10.0
    )
    # (c) USA: no fly-outs exist, so 0/0
    assert rows["usa-nopassing"].get("flyout", (0.0, 0.0)) == (0.0, 0.0)

    benchmark(av_without_passing.posteriors, usa)
