"""Fig. 9 — BN output is spiky, DBN output is smooth.

Paper: "the output values [of the BN] cannot be directly employed to
distinguish the presence and time boundaries of the excited speech ...
the results obtained from a dynamic Bayesian network are much smoother,
and we did not have to process the output. We just employed a threshold."

Reproduced as series statistics over the same 300 s window: mean absolute
step (spikiness), threshold-crossing count at 0.5, and separability (mean
posterior inside minus outside the annotated excitement).
"""

from conftest import record_result
import numpy as np

from repro.fusion.audio_networks import AUDIO_NODE_TO_FEATURE
from repro.fusion.discretize import hard_evidence
from repro.fusion.pipeline import AudioExperiment
from repro.synth.annotations import raster


def _crossings(series: np.ndarray, threshold: float = 0.5) -> int:
    above = series >= threshold
    return int(np.abs(np.diff(above.astype(int))).sum())


def test_fig9_traces(german, audio_dbn, benchmark):
    window = slice(0, 3000)  # the paper plots a 300 s file

    bn = AudioExperiment(german, structure="a", temporal=None, seed=1)
    evidence = hard_evidence(bn.template, german.features, AUDIO_NODE_TO_FEATURE)
    bn_raw = bn._engine.static_posterior_series(evidence, "EA")[window, 1]
    dbn_series = audio_dbn.posterior(german)[window]

    truth = raster(german.truth.excited_speech, 3000)

    stats = {}
    for label, series in (("BN", bn_raw), ("DBN", dbn_series)):
        inside = series[truth > 0]
        outside = series[truth == 0]
        stats[label] = {
            "mean_abs_step": float(np.abs(np.diff(series)).mean()),
            "crossings_at_0.5": _crossings(series),
            "separability": float(inside.mean() - outside.mean()),
        }

    print("\nFig 9 series statistics (300 s window):")
    for label, row in stats.items():
        print(
            f"  {label:4s} spikiness {row['mean_abs_step']:.4f}  "
            f"crossings {row['crossings_at_0.5']:4d}  "
            f"separability {row['separability']:.3f}"
        )
    record_result("fig9", stats)

    # the DBN trace is smoother and no less separable
    assert stats["DBN"]["mean_abs_step"] < stats["BN"]["mean_abs_step"]
    assert stats["DBN"]["crossings_at_0.5"] <= stats["BN"]["crossings_at_0.5"] * 1.5
    assert stats["DBN"]["separability"] > 0.2

    benchmark(lambda: audio_dbn.posterior(german)[window])
