"""§5.4 — superimposed-text detection and recognition accuracy.

The paper reports no percentage for OCR, but the retrieval section depends
on recognized classifications, pit stops, winner and lap overlays; the
bench measures how many scheduled overlays the full pipeline recovers with
correctly parsed semantics.
"""

from conftest import record_result

from repro.text.pipeline import extract_overlays

_KIND_OF_FIRST_WORD = {
    "1": "classification",
    "PIT": "pit_stop",
    "WINNER": "winner",
    "FINAL": "final_lap",
    "LAP": "lap",
}


def test_overlay_recognition_accuracy(german, benchmark):
    recognized = extract_overlays(german.race.video)

    truth = german.truth.overlays
    matched = 0
    for interval, words in truth:
        expected_kind = _KIND_OF_FIRST_WORD[words[0]]
        hit = any(
            abs(o.start_time - interval.start) < 2.0 and o.event.kind == expected_kind
            for o in recognized
        )
        matched += hit
    recall = matched / len(truth)

    spurious = len(recognized) - matched
    print(
        f"\nText recognition: {matched}/{len(truth)} overlays recovered "
        f"({recall:.1%}), {max(spurious, 0)} spurious"
    )
    record_result(
        "text_recognition",
        {"recall": round(recall, 3), "recognized": len(recognized), "truth": len(truth)},
    )
    assert recall >= 0.85

    # benchmark one detection+recognition pass over a 60 s slice
    import itertools

    from repro.video.frames import FrameStream

    renderer_frames = list(itertools.islice(iter(german.race.video), 600))
    clip = FrameStream.from_frames(renderer_frames, german.race.video.fps)
    benchmark(extract_overlays, clip)
