"""§6 headline — audio-only finds ~50 % of interesting segments; the
integrated audio-visual DBN finds ~80 %.

"The audio DBN was able only to detect 50% of all interesting segments in
the race, while the integrated audio-visual DBN was able to correct the
results and detect about 80% of interesting segments in the race."
"""

from conftest import record_result

from repro.fusion.evaluate import extract_segments, segment_precision_recall


def test_av_fusion_improves_highlight_recall(german, audio_dbn, av_with_passing, benchmark):
    audio_segments = extract_segments(
        audio_dbn.posterior(german), min_duration=2.6, merge_gap=0.5
    )
    audio_pr = segment_precision_recall(audio_segments, german.truth.highlights)

    av_pr = av_with_passing.evaluate(german).highlight_scores

    print(
        f"\nInteresting-segment recall: audio-only {audio_pr.recall:.1%} "
        f"(paper ~50%), audio-visual {av_pr.recall:.1%} (paper ~80%)"
    )
    record_result(
        "headline",
        {
            "audio_only_recall": round(audio_pr.recall, 3),
            "av_recall": round(av_pr.recall, 3),
        },
    )

    # the announcer misses events; visual evidence recovers them
    assert av_pr.recall > audio_pr.recall + 0.15
    assert audio_pr.recall < 0.65
    assert av_pr.recall > 0.55

    benchmark(av_with_passing.posteriors, german)
