"""Table 3 — the audio-visual DBN on the German GP.

Paper: highlights 84/86, start 83/100, fly-out 64/78, passing 79/50
(precision/recall, threshold 0.5, min duration 6 s, 5 s re-classification
for segments over 15 s).

Expected shape: strong highlight detection; start found reliably; fly-out
and passing weaker than highlights (they depend on "very general and less
powerful video cues").
"""

from conftest import record_result


def test_table3_av_german(av_with_passing, german, benchmark):
    evaluation = av_with_passing.evaluate(german)
    rows = {"highlights": evaluation.highlight_scores.as_percents()}
    for node, scores in evaluation.event_scores.items():
        rows[node.lower()] = scores.as_percents()

    print("\nTable 3 (AV DBN, german GP): precision / recall")
    paper = {
        "highlights": (84, 86),
        "start": (83, 100),
        "flyout": (64, 78),
        "passing": (79, 50),
    }
    for name, (precision, recall) in rows.items():
        reference = paper.get(name, ("-", "-"))
        print(
            f"  {name:10s} measured {precision:5.1f}/{recall:5.1f}   "
            f"paper {reference[0]}/{reference[1]}"
        )
    record_result("table3", rows)

    # shapes
    highlight_p, highlight_r = rows["highlights"]
    assert highlight_r >= 60.0, "AV highlight recall should be high on german"
    assert highlight_p >= 60.0
    if "start" in rows:
        assert rows["start"][1] >= 50.0, "start is the easiest event"

    benchmark(av_with_passing.posteriors, german)
