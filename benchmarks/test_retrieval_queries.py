"""§5.6 — the retrieval query capabilities.

Runs the paper's example queries end to end: text metadata from OCR, DBN
events pulled in dynamically by the query preprocessor, compound events,
and the combined DBN+text joins.
"""

from conftest import record_result
import pytest

from repro.cobra.compound import Component, CompoundEventDef, TemporalConstraint
from repro.fusion.evaluate import segment_precision_recall
from repro.retrieval.system import FormulaOneSystem


@pytest.fixture(scope="module")
def system(german):
    return FormulaOneSystem(german, include_passing=False, seed=2)


def test_paper_example_queries(system, german, benchmark):
    results = {}

    fly_outs = system.ask("Retrieve all fly outs")
    results["fly_outs"] = len(fly_outs)

    highlights = system.ask("Retrieve all highlights")
    results["highlights"] = len(highlights)
    pr = segment_precision_recall(highlights.intervals(), german.truth.highlights)
    results["highlight_recall"] = round(pr.recall, 3)

    pit_truth = german.truth.pit_stops
    pits = system.query("RETRIEVE pit_stop")
    results["pit_stops"] = len(pits)
    pit_pr = segment_precision_recall(pits.intervals(), pit_truth)
    results["pit_stop_recall"] = round(pit_pr.recall, 3)

    winner = system.ask(
        "Retrieve the sequences with the race leader crossing the finish line"
    )
    results["winner_overlays"] = len(winner)

    combined = system.query(
        "RETRIEVE highlight WHERE INTERSECTS excited_speech"
    )
    results["announced_highlights"] = len(combined)

    print("\nRetrieval query results (german GP):")
    for name, value in results.items():
        print(f"  {name}: {value}")
    record_result("retrieval", results)

    assert results["fly_outs"] >= 1
    assert results["highlights"] >= 5
    assert results["highlight_recall"] > 0.4
    assert results["pit_stops"] >= 1
    assert results["pit_stop_recall"] > 0.5
    assert results["winner_overlays"] >= 1

    benchmark(system.query, "RETRIEVE highlight")


def test_compound_event_speedup_path(system, benchmark):
    system.db.define_compound_event(
        CompoundEventDef(
            "bench_compound",
            [Component("h", "highlight"), Component("e", "excited_speech")],
            [TemporalConstraint("h", "intersects", "e")],
        )
    )
    count = system.db.materialize_compound_event("bench_compound", "german")
    print(f"\nCompound 'announced highlight' events materialized: {count}")
    assert count >= 1
    again = system.query("RETRIEVE bench_compound")
    assert len(again) == count
    # retrieval of the materialized compound is metadata-only (the speedup)
    benchmark(system.query, "RETRIEVE bench_compound")
