"""§5.3 — shot detection accuracy.

Paper: "A simple histogram based algorithm is modified in the sense that we
calculate the histogram difference among several consecutive frames. This
algorithm resulted in the accuracy of over 90%."
"""

from conftest import record_result

from repro.video.shots import ShotDetector


def test_shot_detection_over_90_percent(german, benchmark):
    detector = ShotDetector()
    detected = detector.cuts(german.race.video)
    truth = german.truth.shot_cuts
    fps = german.race.video.fps

    tolerance = 3  # frames
    truth_frames = [int(t * fps) for t in truth]
    matched = sum(
        1
        for t in truth_frames
        if any(abs(t - d) <= tolerance for d in detected)
    )
    recall = matched / len(truth_frames)

    # The broadcast feed contains abrupt transitions beyond the scheduled
    # hard cuts: DVE wipe boundaries, replay tone switches, chyron on/off.
    # Those ARE content transitions, so a detection there is not a false
    # alarm — precision is measured against the union.
    transition_times = list(truth)
    for interval in german.truth.replays:
        transition_times += [interval.start - 0.8, interval.start, interval.end, interval.end + 0.8]
    for interval, _ in german.truth.overlays:
        transition_times += [interval.start, interval.end]
    transition_frames = [int(t * fps) for t in transition_times]
    explained = sum(
        1
        for d in detected
        if any(abs(t - d) <= tolerance for t in transition_frames)
    )
    precision = explained / len(detected) if detected else 0.0

    print(
        f"\nShot detection: recall {recall:.2%}, precision (vs all true "
        f"transitions) {precision:.2%} (paper: accuracy > 90%)"
    )
    record_result(
        "shot_detection",
        {"recall": round(recall, 3), "precision": round(precision, 3)},
    )
    assert recall > 0.9
    assert precision > 0.9

    benchmark(detector.cuts, german.race.video)
