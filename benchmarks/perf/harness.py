"""Perf microbenchmark harness: the interpreter's baseline trajectory.

ROADMAP item 1 (compiled/fused MIL execution) needs a measured baseline
before any speedup can be claimed. This harness times the four layers a
fused compiler would accelerate —

* ``select_chain`` — two chained ``mselect`` scans plus an aggregate (the
  exact shape PERF002 flags and the PR 7 fusion compiler will collapse);
* ``join_aggregate`` — a semijoin feeding an aggregate;
* ``dbn_inference`` — filtered posterior of the two-node H→O DBN over a
  symbol stream;
* ``end_to_end_query`` — a full COQL round through :class:`CobraVDBMS`
  (parse → preprocess → execute) against a synthetic document;
* ``replicated_read_fanout`` — aggregate reads routed across a replicated
  kernel group (one primary + two WAL-shipped replicas) under a mix of
  ``primary`` / ``any`` / ``bounded(ms)`` read policies;
* ``sharded_scatter_gather`` — COQL gathers across a three-shard
  consistent-hash fleet, mixing fan-out scatters (every shard answers,
  results merged with a coverage report) with shard-local routed queries;
* ``migration_throughput`` — a third shard joins a live two-shard fleet
  and the remapped documents run the full five-phase online migration
  (plan → copy → catch-up → fenced cutover → verified retire); rows/s is
  event rows physically moved, journaling and verification included;
* ``query_latency_during_split`` — the same gather mix with a migration
  held open in its copy phase, so every query pays the in-flight
  ownership merge and dual-read coverage accounting;
* ``check_whole_program`` — cold + memoized whole-program analysis
  (call-graph summaries, SCC propagation, program-level regions) over a
  layered synthetic call graph, the overhead every registration pays;
* ``equivcheck_certify`` — Moa→MIL translation validation of every
  built-in plan: compile, symbolically execute both sides, normalize,
  certify

— and writes per-benchmark mean/min/max seconds plus derived rows/s into a
``BENCH_perf.json`` document (schema ``repro-bench-perf/1``). CI uploads
the file on every run so the perf trajectory is a recorded series, not a
claim.

Usage::

    PYTHONPATH=src python benchmarks/perf/harness.py \
        --rows 10000 --repeats 3 --out BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

SCHEMA = "repro-bench-perf/1"

SELECT_CHAIN_PROC = """
PROC benchSelectChain(BAT[void,dbl] f) : any := {
  VAR a := mselect(f, ">", 0.25);
  VAR b := mselect(a, "<", 0.75);
  VAR c := maggr(b, "count");
  RETURN c;
}
"""

JOIN_AGGREGATE_PROC = """
PROC benchJoinAggregate(BAT[void,dbl] a, BAT[void,dbl] b) : any := {
  VAR j := a.semijoin(b);
  VAR s := maggr(j, "sum");
  RETURN s;
}
"""


def _feature_bat(rows: int, seed: int):
    from repro.monet.bat import BAT

    rng = np.random.default_rng(seed)
    bat = BAT("void", "dbl")
    bat.insert_bulk(None, [float(v) for v in rng.random(rows)])
    return bat


def _time(fn, repeats: int) -> list[float]:
    durations = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        durations.append(time.perf_counter() - start)
    return durations


def _summary(durations: list[float], rows: int) -> dict:
    mean = sum(durations) / len(durations)
    return {
        "mean_s": mean,
        "min_s": min(durations),
        "max_s": max(durations),
        "rows_per_s": rows / mean if mean > 0 else None,
        "repeats": len(durations),
    }


# ---------------------------------------------------------------------------
# benchmarks
# ---------------------------------------------------------------------------


def bench_select_chain(rows: int, repeats: int) -> dict:
    from repro.moa.rewrite import BulkModule
    from repro.monet.kernel import MonetKernel

    kernel = MonetKernel(check="off")
    kernel.load_module(BulkModule())
    kernel.run(SELECT_CHAIN_PROC)
    bat = _feature_bat(rows, seed=1)
    return _summary(
        _time(lambda: kernel.call("benchSelectChain", [bat]), repeats), rows
    )


def bench_join_aggregate(rows: int, repeats: int) -> dict:
    from repro.moa.rewrite import BulkModule
    from repro.monet.kernel import MonetKernel

    kernel = MonetKernel(check="off")
    kernel.load_module(BulkModule())
    kernel.run(JOIN_AGGREGATE_PROC)
    left = _feature_bat(rows, seed=2)
    right = _feature_bat(rows, seed=3)
    return _summary(
        _time(lambda: kernel.call("benchJoinAggregate", [left, right]), repeats),
        rows,
    )


def bench_dbn_inference(rows: int, repeats: int) -> dict:
    from repro.dbn.compiled import CompiledDbn
    from repro.dbn.evidence import EvidenceSequence
    from repro.dbn.template import DbnTemplate

    template = DbnTemplate()
    template.add_node("H", 2)
    template.add_node("O", 2, observed=True)
    template.add_intra_edge("H", "O")
    template.add_inter_edge("H", "H")
    template.randomize(np.random.default_rng(0))
    engine = CompiledDbn(template)
    steps = max(rows // 10, 10)
    observations = np.random.default_rng(4).integers(0, 2, size=steps)
    evidence = EvidenceSequence(template, hard={"O": observations})
    return _summary(
        _time(lambda: engine.posterior_series(evidence, "H"), repeats), steps
    )


def bench_end_to_end_query(rows: int, repeats: int) -> dict:
    from repro.cobra.catalog import DomainKnowledge
    from repro.cobra.model import FeatureTrack, RawVideo, VideoDocument
    from repro.cobra.vdbms import CobraVDBMS
    from repro.synth.annotations import Interval

    db = CobraVDBMS(check="off")
    db.register_domain(DomainKnowledge("bench"))
    doc = VideoDocument(
        raw=RawVideo("bench1", "synthetic://bench", 100.0, 10.0, 192, 144, 16000)
    )
    doc.add_feature(
        FeatureTrack(
            "excitement", np.random.default_rng(5).random(max(rows, 10))
        )
    )
    for index in range(20):
        doc.new_event(
            "fly_out", Interval(index * 4, index * 4 + 3), 0.9, source="dbn"
        )
    db.register_document(doc, "bench")
    return _summary(
        _time(lambda: db.query("RETRIEVE fly_out FROM bench1"), repeats), 20
    )


def bench_replicated_read_fanout(rows: int, repeats: int) -> dict:
    import tempfile

    from repro.monet.kernel import MonetKernel
    from repro.replication import GroupConfig, KernelGroup

    reads_per_repeat = 30
    policies = ("primary", "any", "bounded(250)")
    with tempfile.TemporaryDirectory(prefix="repro-bench-repl-") as scratch:
        base = Path(scratch)
        # fsync off: this measures routing + replica-read overhead, not
        # disk latency
        from repro.durability.store import DurableStore

        primary = MonetKernel(
            threads=1,
            check="off",
            store=DurableStore(base / "primary", fsync=False),
        )
        primary.persist("bench_f", _feature_bat(rows, seed=6))
        group = KernelGroup(
            primary,
            base,
            replicas=("replica-0", "replica-1"),
            config=GroupConfig(read_policy="any", fsync=False),
        )
        group.pump()

        def fanout() -> None:
            for index in range(reads_per_repeat):
                routed = group.route_read(policy=policies[index % len(policies)])
                routed.kernel.bat("bench_f").tail_array().sum()

        summary = _summary(
            _time(fanout, repeats), rows * reads_per_repeat
        )
        group.close()
        return summary


def bench_sharded_scatter_gather(rows: int, repeats: int) -> dict:
    import tempfile

    from repro.cobra.model import RawVideo, VideoDocument, VideoObject
    from repro.sharding import ShardConfig, ShardedKernel
    from repro.synth.annotations import Interval

    n_documents = 6
    queries_per_repeat = 10
    events_per_doc = max(1, rows // n_documents)
    with tempfile.TemporaryDirectory(prefix="repro-bench-shard-") as scratch:
        # fsync off: this measures scatter/gather + merge overhead, not
        # disk latency
        fleet = ShardedKernel(
            Path(scratch),
            shards=3,
            config=ShardConfig(fsync=False),
        )
        for index in range(n_documents):
            video_id = f"bench{index}"
            doc = VideoDocument(
                raw=RawVideo(
                    video_id,
                    "synthetic://bench",
                    float(events_per_doc + 2),
                    10.0,
                    192,
                    144,
                    16000,
                )
            )
            doc.add_object(VideoObject(f"{video_id}/d1", "driver", "DRIVER"))
            for step in range(events_per_doc):
                doc.new_event(
                    "fly_out",
                    Interval(step, step + 1),
                    0.9,
                    {"driver": f"{video_id}/d1"},
                    "dbn",
                )
            fleet.register_document(doc, "bench")

        def gather() -> None:
            for index in range(queries_per_repeat):
                if index % 2 == 0:
                    fleet.query("RETRIEVE fly_out")
                else:
                    fleet.query(f"RETRIEVE fly_out FROM bench{index % n_documents}")

        summary = _summary(
            _time(gather, repeats), rows * queries_per_repeat
        )
        fleet.close()
        return summary


def _split_corpus(base: Path, n_documents: int, events_per_doc: int):
    from repro.cobra.model import RawVideo, VideoDocument, VideoObject
    from repro.sharding import ShardConfig, ShardedKernel
    from repro.synth.annotations import Interval

    fleet = ShardedKernel(base, shards=2, config=ShardConfig(fsync=False))
    for index in range(n_documents):
        video_id = f"bench{index}"
        doc = VideoDocument(
            raw=RawVideo(
                video_id,
                "synthetic://bench",
                float(events_per_doc + 2),
                10.0,
                192,
                144,
                16000,
            )
        )
        doc.add_object(VideoObject(f"{video_id}/d1", "driver", "DRIVER"))
        for step in range(events_per_doc):
            doc.new_event(
                "fly_out",
                Interval(step, step + 1),
                0.9,
                {"driver": f"{video_id}/d1"},
                "dbn",
            )
        fleet.register_document(doc, "bench")
    return fleet


def bench_migration_throughput(rows: int, repeats: int) -> dict:
    """Online split cost: a third shard joins a live two-shard fleet and
    the remapped documents run the full five-phase migration protocol
    (plan, bulk copy, catch-up, fenced cutover, verified retire).

    The corpus build is per-repeat setup and untimed; only
    ``fleet.split`` is measured. The rows figure is the event rows the
    split physically moved, so rows/s is migration copy throughput
    including journaling and the byte-for-byte retire verification.
    """
    import tempfile

    n_documents = 10
    events_per_doc = max(1, rows // 100)
    durations = []
    moved_rows = 0
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(prefix="repro-bench-mig-") as scratch:
            fleet = _split_corpus(Path(scratch), n_documents, events_per_doc)
            start = time.perf_counter()
            report = fleet.split("shard-2")
            durations.append(time.perf_counter() - start)
            moved_rows = len(report.moves) * events_per_doc
            fleet.close()
    return _summary(durations, moved_rows)


def bench_query_latency_during_split(rows: int, repeats: int) -> dict:
    """Gather latency while a migration is held open in its copy phase:
    every query pays the in-flight-ownership merge (the dual-read
    bookkeeping and the migrating/dual_read coverage accounting) on top
    of the plain scatter-gather cost of ``sharded_scatter_gather``.
    """
    import tempfile

    n_documents = 10
    queries_per_repeat = 10
    events_per_doc = max(1, rows // 100)
    with tempfile.TemporaryDirectory(prefix="repro-bench-split-") as scratch:
        fleet = _split_corpus(Path(scratch), n_documents, events_per_doc)
        remapped = fleet.add_shard("shard-2")
        pilot = remapped[0]
        fleet.migrations.plan(pilot)
        fleet.migrations.copy(pilot)  # held open: reads stay dual-routed

        def gather() -> None:
            for index in range(queries_per_repeat):
                if index % 2 == 0:
                    fleet.query("RETRIEVE fly_out")
                else:
                    fleet.query(
                        f"RETRIEVE fly_out FROM bench{index % n_documents}"
                    )

        summary = _summary(
            _time(gather, repeats), rows * queries_per_repeat
        )
        fleet.migrations.resume(pilot)  # finish cleanly
        fleet.close()
        return summary


def bench_check_whole_program(rows: int, repeats: int) -> dict:
    """Whole-program analysis cost over a synthetic call-graph of PROCs.

    Builds a layered program (``rows / 500`` procedures, each calling the
    previous layer) and measures a full ProgramChecker pass — summary
    computation, SCC propagation, and program-level region partitioning —
    followed by a fully-memoized re-run, so the measured number is the
    cold cost the registration choke points pay and the cache makes
    repeatable registrations cheap.
    """
    from repro.check.programcheck import ProgramChecker
    from repro.monet.kernel import MonetKernel

    n_procs = max(4, min(64, rows // 500))
    lines = ["PROC layer0(BAT[void,dbl] x) : dbl := { RETURN x.sum(); }"]
    for index in range(1, n_procs):
        lines.append(
            f"PROC layer{index}(BAT[void,dbl] x) : dbl := {{\n"
            f"  VAR a := x.select(0.0, 1.0);\n"
            f"  RETURN layer{index - 1}(a);\n"
            f"}}"
        )
    source = "\n".join(lines)
    kernel = MonetKernel(check="off")
    interp = kernel.interpreter
    env = dict(
        commands=interp._commands,
        signatures=interp._signatures,
        globals_names=list(interp._globals.variables),
        procedures=dict(interp._procs),
    )

    def check() -> None:
        checker = ProgramChecker(**env)
        checker.check_source(source, name="<bench>")
        checker.check_source(source, name="<bench>")  # memoized re-run

    return _summary(_time(check, repeats), n_procs)


def bench_equivcheck_certify(rows: int, repeats: int) -> dict:
    """Translation-validation cost: compile + certify every built-in plan.

    Measures the full ``MoaCompiler.compile`` path with checking on —
    precheck, emission, symbolic execution of both sides, normalization,
    certificate construction — for each plan in ``builtin_moa_plans()``.
    The certificate is asserted present so the benchmark cannot silently
    measure an uncertified path.
    """
    from repro.moa.rewrite import MoaCompiler, builtin_moa_plans
    from repro.monet.kernel import MonetKernel

    kernel = MonetKernel(check="off")
    plans = builtin_moa_plans()

    def certify() -> None:
        compiler = MoaCompiler(kernel, check="warn")
        for name, expr in plans.items():
            plan = compiler.compile(expr)
            assert plan.equivalence is not None, name

    return _summary(_time(certify, repeats), len(plans))


BENCHMARKS = {
    "select_chain": bench_select_chain,
    "join_aggregate": bench_join_aggregate,
    "dbn_inference": bench_dbn_inference,
    "end_to_end_query": bench_end_to_end_query,
    "replicated_read_fanout": bench_replicated_read_fanout,
    "sharded_scatter_gather": bench_sharded_scatter_gather,
    "migration_throughput": bench_migration_throughput,
    "query_latency_during_split": bench_query_latency_during_split,
    "check_whole_program": bench_check_whole_program,
    "equivcheck_certify": bench_equivcheck_certify,
}


def run(rows: int, repeats: int) -> dict:
    results = {}
    for name, bench in BENCHMARKS.items():
        results[name] = bench(rows, repeats)
        mean = results[name]["mean_s"]
        print(f"{name:20s} mean {mean * 1e3:9.2f} ms over {repeats} run(s)")
    return {
        "schema": SCHEMA,
        "executor": "interpreter",
        "rows": rows,
        "repeats": repeats,
        "benchmarks": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=10_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=Path("BENCH_perf.json"))
    args = parser.parse_args(argv)
    document = run(args.rows, args.repeats)
    args.out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
