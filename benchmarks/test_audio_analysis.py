"""§5.2 — endpoint detection and the acoustic-model comparison.

Paper: speech endpoint detection via STE + first-3-MFCC thresholds; for
keyword spotting, "Two different acoustic models have been tried ... One
was trained for clean speech, and the other was aimed at word recognition
in TV news. The latter showed better results."
"""

from conftest import record_result
import numpy as np

from repro.audio.endpoint import detect_speech
from repro.audio.keywords import (
    CLEAN_SPEECH_MODEL,
    TV_NEWS_MODEL,
    KeywordSpotter,
)
from repro.synth.annotations import raster


def test_endpoint_detection_finds_speech(german, benchmark):
    result = detect_speech(german.race.signal)
    n = min(len(result.is_speech), int(german.race.duration * 10))
    speech_truth = raster(german.race.audio.speech_intervals, n)
    detected = result.is_speech[:n]
    recall = float(detected[speech_truth > 0].mean())
    rejection = float(1.0 - detected[speech_truth == 0].mean())
    print(f"\nEndpoint detection: speech recall {recall:.2%}, non-speech rejection {rejection:.2%}")
    record_result("endpoint", {"recall": round(recall, 3), "rejection": round(rejection, 3)})
    assert recall > 0.7

    benchmark(detect_speech, german.race.signal.slice_seconds(0, 60))


def test_tv_news_model_beats_clean_speech(german, benchmark):
    spotter = KeywordSpotter()
    planted = {word for _, word in german.race.timeline.keywords}

    found = {}
    scores = {}
    for model in (TV_NEWS_MODEL, CLEAN_SPEECH_MODEL):
        rng = np.random.default_rng(17 + german.race.spec.seed)
        lattice = model.decode(german.race.audio.phone_slots, rng)
        hits = spotter.spot(lattice)
        hit_words = {h.word for h in hits}
        found[model.name] = len(hit_words & planted)
        relevant = [h.normalized_score for h in hits if h.word in planted]
        scores[model.name] = float(np.mean(relevant)) if relevant else 0.0

    print(
        f"\nKeyword spotting: tv-news found {found['tv-news']}/{len(planted)} "
        f"(mean score {scores['tv-news']:.2f}), clean-speech found "
        f"{found['clean-speech']}/{len(planted)} (mean score {scores['clean-speech']:.2f})"
    )
    record_result("keyword_models", {"found": found, "scores": scores})
    assert found["tv-news"] >= found["clean-speech"]

    rng = np.random.default_rng(99)
    lattice = TV_NEWS_MODEL.decode(german.race.audio.phone_slots[:600], rng)
    benchmark(spotter.spot, lattice)
