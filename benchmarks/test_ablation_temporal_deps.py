"""§5.5 ablation — temporal-dependency variants.

Paper: variant 1 (Fig. 8's full wiring) "significantly outperforms the
second and slightly the third structure".

Expected shape: v1 and v3 (which keep per-node self edges) at least match
v2 (which funnels everything through the query node and loses the
intermediates' own temporal persistence).
"""

from conftest import record_result

from repro.fusion.pipeline import AudioExperiment


def test_ablation_temporal_variants(german, benchmark):
    rows = {}
    for variant in ("v1", "v2", "v3"):
        experiment = AudioExperiment(
            german, structure="a", temporal=variant, seed=1
        )
        rows[variant] = experiment.evaluate(german).scores.as_percents()

    print("\nTemporal-dependency ablation (german GP): precision / recall")
    for variant, (precision, recall) in rows.items():
        print(f"  {variant}: {precision:5.1f}/{recall:5.1f}")
    record_result("ablation_temporal", rows)

    def f1(row):
        p, r = row
        return 0.0 if p + r == 0 else 2 * p * r / (p + r)

    # All three variants must stay in one competitive band. (The paper saw
    # v1 slightly ahead; on the cleaner synthetic evidence the sparser
    # wirings close the gap — see EXPERIMENTS.md for the deviation note.)
    best = max(f1(row) for row in rows.values())
    assert f1(rows["v1"]) >= best - 15.0
    assert f1(rows["v3"]) >= best - 15.0
    assert all(row[0] >= 60.0 for row in rows.values())

    experiment = AudioExperiment(german, structure="a", temporal="v2", seed=1)
    benchmark(experiment.posterior, german)
