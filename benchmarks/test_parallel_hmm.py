"""Fig. 3/4 — parallel evaluation of six HMMs through MIL.

Paper: "By distributing the HMM evaluation, we speed up the query
processing of the very costly inference operation." Six models are
evaluated in parallel under ``threadcnt(7)`` and the best one wins.

Python threads share the GIL, so the wall-clock speed-up of pure-numpy
evaluation is modest; the bench verifies the MECHANISM (all six models
evaluated through the parallel MIL PROC, correct argmax) and measures the
end-to-end classification cost.
"""

from conftest import record_result
import numpy as np
import pytest

from repro.hmm.algorithms import log_likelihood, sample
from repro.hmm.model import DiscreteHmm
from repro.hmm.parallel import HmmExtension
from repro.monet.kernel import MonetKernel

MODEL_NAMES = ["Service", "Forehand", "Smash", "Backhand", "VolleyB", "VolleyF"]


@pytest.fixture(scope="module")
def extension():
    kernel = MonetKernel()
    ext = HmmExtension(kernel, n_servers=6)
    for index, name in enumerate(MODEL_NAMES):
        ext.deploy(
            name,
            DiscreteHmm.random(5, 8, rng=np.random.default_rng(300 + index), name=name),
        )
    return ext


def test_parallel_classification_correct(extension, benchmark):
    rng = np.random.default_rng(42)
    observations = sample(
        extension.servers[0]._models["Smash"], 4000, rng
    )[1]

    expected = max(
        MODEL_NAMES,
        key=lambda n: log_likelihood(extension.servers[0]._models[n], observations),
    )
    result = benchmark(extension.classify, observations)
    assert result == expected

    calls = sum(server.calls for server in extension.servers)
    assert calls >= len(MODEL_NAMES)
    record_result("parallel_hmm", {"winner": result, "server_calls": calls})


def test_serial_vs_parallel_same_answer(extension, benchmark):
    rng = np.random.default_rng(7)
    observations = sample(extension.servers[0]._models["Backhand"], 2000, rng)[1]
    serial_best = max(
        MODEL_NAMES, key=lambda n: extension.evaluate(n, observations)
    )
    assert extension.classify(observations) == serial_best
    # serial evaluation cost for comparison with the parallel bench above
    benchmark(
        lambda: [extension.evaluate(n, observations) for n in MODEL_NAMES]
    )
