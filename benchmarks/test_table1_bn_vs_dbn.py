"""Table 1 — BN structures vs the fully parameterized DBN.

Paper (German GP, excited-speech detection):

    ================================  =========  ======
    network                           precision  recall
    ================================  =========  ======
    "fully parameterized" BN (7a)        60 %      67 %
    BN, direct evidence (7b)             54 %      62 %
    input/output BN (7c)                 50 %      76 %
    "fully parameterized" DBN (7a+8)     85 %      81 %
    ================================  =========  ======

Expected shape: the three BNs land in the same band; the DBN clearly beats
all of them (the synthetic races are cleaner than broadcast TV, so our
precisions saturate higher than the paper's — the BN/DBN *gap* is the
reproduced phenomenon).
"""

from conftest import record_result

from repro.fusion.pipeline import AudioExperiment

CONFIGS = [
    ("BN-7a", "a", None),
    ("BN-7b", "b", None),
    ("BN-7c", "c", None),
    ("DBN-7a+8", "a", "v1"),
]


def test_table1_bn_vs_dbn(german, benchmark):
    rows = {}
    experiments = {}
    for label, structure, temporal in CONFIGS:
        experiment = AudioExperiment(
            german, structure=structure, temporal=temporal, seed=1
        )
        evaluation = experiment.evaluate(german)
        rows[label] = evaluation.scores.as_percents()
        experiments[label] = experiment

    print("\nTable 1 (german GP, excited speech): precision / recall")
    paper = {"BN-7a": (60, 67), "BN-7b": (54, 62), "BN-7c": (50, 76), "DBN-7a+8": (85, 81)}
    for label, (precision, recall) in rows.items():
        p_paper, r_paper = paper[label]
        print(
            f"  {label:10s} measured {precision:5.1f}/{recall:5.1f}   "
            f"paper {p_paper}/{r_paper}"
        )
    record_result("table1", rows)

    dbn_f1 = _f1(rows["DBN-7a+8"])
    bn_f1s = [_f1(rows[k]) for k in ("BN-7a", "BN-7b", "BN-7c")]
    # shape: the DBN dominates every BN structure
    assert dbn_f1 >= max(bn_f1s)
    # shape: DBN recall beats the best BN recall (the paper's headline gap)
    assert rows["DBN-7a+8"][1] >= max(rows[k][1] for k in ("BN-7a", "BN-7b", "BN-7c"))

    # benchmark the DBN inference pass (the operation Table 1 re-runs)
    benchmark(experiments["DBN-7a+8"].posterior, german)


def _f1(row):
    precision, recall = row
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)
