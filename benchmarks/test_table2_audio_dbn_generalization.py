"""Table 2 — audio DBN generalization to unseen races.

Paper: the fully parameterized DBN trained on the German GP scores
precision/recall 77/79 % on the Belgian GP and 76/81 % on the USA GP.

Expected shape: both races stay in a healthy band (no collapse), i.e. the
audio excitement model transfers across races.
"""

from conftest import record_result


def test_table2_generalization(audio_dbn, belgian, usa, benchmark):
    rows = {}
    for data in (belgian, usa):
        evaluation = audio_dbn.evaluate(data)
        rows[data.name] = evaluation.scores.as_percents()

    print("\nTable 2 (audio DBN trained on german): precision / recall")
    paper = {"belgian": (77, 79), "usa": (76, 81)}
    for name, (precision, recall) in rows.items():
        print(
            f"  {name:8s} measured {precision:5.1f}/{recall:5.1f}   "
            f"paper {paper[name][0]}/{paper[name][1]}"
        )
    record_result("table2", rows)

    for name, (precision, recall) in rows.items():
        assert precision >= 50.0, f"{name} precision collapsed"
        assert recall >= 50.0, f"{name} recall collapsed"

    benchmark(audio_dbn.posterior, belgian)
