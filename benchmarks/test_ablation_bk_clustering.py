"""§5.5 ablation — Boyen-Koller clustering.

Paper: "we separate non-observable nodes from the other part of the
network ... the clustering technique did not bring significant changes of
the recall parameter, but resulted in a larger number of misclassified
sequences."

Reproduced: filtering with the exact single-cluster belief vs the factored
(per-node clusters) Boyen-Koller projection. Recall stays put; the
projected posterior deviates from the exact one (the "misclassifications").
"""

from conftest import record_result
import numpy as np

from repro.fusion.audio_networks import AUDIO_NODE_TO_FEATURE
from repro.fusion.discretize import hard_evidence


def test_ablation_bk_clustering(german, audio_dbn, benchmark):
    exact_eval = audio_dbn.evaluate(german)
    clusters = [[node] for node in audio_dbn.template.hidden_nodes()]
    clustered_eval = audio_dbn.evaluate(german, clusters=clusters)

    exact_series = audio_dbn.posterior(german)
    clustered_series = audio_dbn.posterior(german, clusters=clusters)
    deviation = float(np.abs(exact_series - clustered_series).mean())
    disagreements = int(((exact_series >= 0.5) != (clustered_series >= 0.5)).sum())

    rows = {
        "exact": exact_eval.scores.as_percents(),
        "bk_per_node": clustered_eval.scores.as_percents(),
        "mean_posterior_deviation": deviation,
        "threshold_disagreements": disagreements,
    }
    print("\nBoyen-Koller clustering ablation (german GP):")
    print(f"  exact      {rows['exact'][0]:5.1f}/{rows['exact'][1]:5.1f}")
    print(f"  per-node   {rows['bk_per_node'][0]:5.1f}/{rows['bk_per_node'][1]:5.1f}")
    print(f"  posterior deviation {deviation:.4f}, step disagreements {disagreements}")
    record_result("ablation_bk", rows)

    # recall does not change significantly...
    assert abs(rows["exact"][1] - rows["bk_per_node"][1]) <= 25.0
    # ...but the approximation is real (some sequences classified differently)
    assert deviation > 0.0

    evidence = hard_evidence(
        audio_dbn.template, german.features, AUDIO_NODE_TO_FEATURE
    )
    benchmark(audio_dbn._engine.filter, evidence, clusters)
