"""Shared diagnostic model for the static checkers.

All three analyzers (:mod:`repro.check.milcheck`, :mod:`repro.check.moacheck`,
:mod:`repro.check.modelcheck`) report findings as :class:`Diagnostic` values:
a severity, a stable code (``MIL001``, ``MOA003``, ``MODEL002``, ...), an
optional source/line location, and a human-readable message. A
:class:`DiagnosticReport` aggregates them and raises the matching
:class:`repro.errors.DiagnosticError` subclass when errors are present.
"""

from __future__ import annotations

from dataclasses import dataclass
import enum
from typing import Iterable, Iterator

from repro.errors import DiagnosticError

__all__ = ["Severity", "Diagnostic", "DiagnosticReport", "CheckMode"]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


class CheckMode(str, enum.Enum):
    """Strictness of a checker wired into a registration choke point.

    * ``ERROR`` — raise a :class:`repro.errors.DiagnosticError` subclass when
      any error-severity diagnostic fires (warnings are collected silently);
    * ``WARN`` — collect every diagnostic but never raise;
    * ``OFF`` — skip checking entirely;
    * ``SANITIZE`` — like ``ERROR``, and additionally arm the runtime
      sanitizer (:mod:`repro.check.sanitize`) so the same invariants are
      enforced dynamically while plans execute.
    """

    ERROR = "error"
    WARN = "warn"
    OFF = "off"
    SANITIZE = "sanitize"

    @property
    def raises(self) -> bool:
        """Whether error-severity findings should raise at choke points."""
        return self in (CheckMode.ERROR, CheckMode.SANITIZE)

    @property
    def checks(self) -> bool:
        """Whether static analysis should run at all."""
        return self is not CheckMode.OFF

    @staticmethod
    def of(value: "CheckMode | str") -> "CheckMode":
        if isinstance(value, CheckMode):
            return value
        try:
            return CheckMode(value)
        except ValueError:
            valid = ", ".join(m.value for m in CheckMode)
            raise ValueError(
                f"unknown check mode {value!r}; expected one of {valid}"
            ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes:
        code: stable diagnostic code (``MIL001``, ``MOA002``, ``MODEL003``).
        message: human-readable description of the finding.
        severity: :class:`Severity` of the finding.
        source: logical origin — a PROC name, file path, or model name.
        line: 1-based source line when the finding maps to MIL text.
        col: 1-based column within ``line``, when known.
        end_line: last line of a multi-line span, when the finding covers
            more than one line.
    """

    code: str
    message: str
    severity: Severity = Severity.ERROR
    source: str | None = None
    line: int | None = None
    col: int | None = None
    end_line: int | None = None

    def location(self) -> str:
        """The gcc-style location prefix: ``source:line[:col]`` / a span."""
        location = self.source or "<input>"
        if self.line is not None:
            location = f"{location}:{self.line}"
            if self.col is not None:
                location = f"{location}:{self.col}"
            elif self.end_line is not None and self.end_line != self.line:
                location = f"{location}-{self.end_line}"
        return location

    def sort_key(self) -> tuple:
        """Deterministic (file, line, col, code) ordering key."""
        return (
            self.source or "",
            self.line if self.line is not None else 0,
            self.col if self.col is not None else 0,
            self.code,
            self.message,
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (``None`` fields omitted)."""
        out: dict = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
        for key in ("source", "line", "col", "end_line"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    def __str__(self) -> str:
        return f"{self.location()}: {self.severity} {self.code} {self.message}"


class DiagnosticReport:
    """An ordered collection of diagnostics with severity queries."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self.diagnostics: list[Diagnostic] = list(diagnostics)

    # ------------------------------------------------------------------
    def add(
        self,
        code: str,
        message: str,
        severity: Severity = Severity.ERROR,
        source: str | None = None,
        line: int | None = None,
        col: int | None = None,
        end_line: int | None = None,
    ) -> Diagnostic:
        diagnostic = Diagnostic(code, message, severity, source, line, col, end_line)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def has_errors(self) -> bool:
        return bool(self.errors)

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    # ------------------------------------------------------------------
    def sorted(self) -> list[Diagnostic]:
        """Diagnostics ordered deterministically by (file, line, col, code)."""
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def format(self) -> str:
        """One gcc-style line per diagnostic, deterministically ordered."""
        return "\n".join(str(d) for d in self.sorted())

    def to_dicts(self) -> list[dict]:
        """JSON-serializable diagnostic list, deterministically ordered."""
        return [d.to_dict() for d in self.sorted()]

    def raise_if_errors(
        self,
        context: str,
        error_class: type[DiagnosticError] = DiagnosticError,
    ) -> None:
        """Raise ``error_class`` carrying the error diagnostics, if any."""
        errors = sorted(self.errors, key=Diagnostic.sort_key)
        if errors:
            count = len(errors)
            noun = "error" if count == 1 else "errors"
            raise error_class(f"{context}: {count} static {noun}", errors)
