"""Static analysis of kernel-group (replication) configurations.

Run at :class:`repro.replication.KernelGroup` construction — the same
choke-point pattern as :mod:`repro.check.servicecheck`: misconfigurations
that would silently corrupt or diverge a replicated group are rejected
before any record ships.

Diagnostics:

* ``REPL001`` (error) — write routing targets a replica. Replicas are
  read-only WAL appliers; a write accepted off-primary forks the lineage
  and can never converge.
* ``REPL002`` (error) — epoch fencing disabled. Without fencing, a deposed
  primary's late writes are accepted after failover (the classic
  split-brain transition).
* ``REPL003`` — the ``bounded(ms)`` staleness bound versus each replica's
  registered steady-state link lag: a warning per replica whose registered
  lag exceeds the bound (bounded reads will never route to it), an error
  when *every* replica exceeds it (the bound is unsatisfiable and bounded
  reads degenerate to primary-only).

This module also owns :func:`parse_read_policy`, the tiny config language
the router and the checker must agree on.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterable

from repro.check.diagnostics import DiagnosticReport, Severity
from repro.errors import ReplicationError

if TYPE_CHECKING:  # structural only; no runtime import of replication
    from repro.replication.group import GroupConfig

__all__ = ["check_group_config", "parse_read_policy"]

_SOURCE = "kernel-group"
_BOUNDED = re.compile(r"bounded\(\s*(\d+(?:\.\d+)?)\s*(?:ms)?\s*\)")


def parse_read_policy(policy: str) -> tuple[str, float | None]:
    """Parse a read policy into ``(mode, bound_ms)``.

    ``"primary"`` and ``"any"`` carry no bound; ``"bounded(250)"`` (an
    optional ``ms`` suffix is accepted) yields ``("bounded", 250.0)``.
    Malformed policies raise :class:`repro.errors.ReplicationError`.
    """
    text = policy.strip()
    if text == "primary":
        return ("primary", None)
    if text == "any":
        return ("any", None)
    match = _BOUNDED.fullmatch(text)
    if match:
        return ("bounded", float(match.group(1)))
    raise ReplicationError(
        f"unknown read policy {policy!r}; expected 'primary', 'any', "
        f"or 'bounded(<ms>)'"
    )


def check_group_config(
    config: "GroupConfig", replicas: Iterable[str]
) -> DiagnosticReport:
    """REPL001-REPL003 over one group configuration and its replica set."""
    report = DiagnosticReport()
    names = sorted(replicas)
    mode, bound = parse_read_policy(config.read_policy)

    if config.write_routing != "primary":
        report.add(
            "REPL001",
            f"write routing targets {config.write_routing!r}: replicas are "
            f"read-only WAL appliers, so a write routed off-primary forks "
            f"the lineage and the group can never converge",
            Severity.ERROR,
            source=_SOURCE,
        )

    if not config.fencing:
        report.add(
            "REPL002",
            "epoch fencing is disabled: after a failover the deposed "
            "primary's late writes would be accepted into the new epoch "
            "(unfenced epoch transition / split-brain)",
            Severity.ERROR,
            source=_SOURCE,
        )

    if mode == "bounded" and bound is not None:
        registered = dict(config.registered_lag_ms)
        over = [
            name for name in names if registered.get(name, 0.0) > bound
        ]
        for name in over:
            report.add(
                "REPL003",
                f"replica {name!r} has registered link lag "
                f"{registered[name]:g}ms, over the {bound:g}ms staleness "
                f"bound; bounded reads will never route to it",
                Severity.WARNING,
                source=_SOURCE,
            )
        if names and len(over) == len(names):
            report.add(
                "REPL003",
                f"staleness bound {bound:g}ms is unsatisfiable: every "
                f"replica's registered link lag exceeds it, so bounded "
                f"reads degenerate to primary-only and the replicas serve "
                f"nothing",
                Severity.ERROR,
                source=_SOURCE,
            )
    return report
