"""Cross-level dataflow analysis — abstract interpretation of query plans.

Where :mod:`repro.check.milcheck` verifies each statement in isolation,
``flowcheck`` interprets whole MIL procedures (and Moa expression trees)
abstractly: every value carries a point in the lattice

    **type × interval × rate**

* *type* — the :class:`repro.check.milcheck.BatT` / atom-name inference
  reused from the MIL checker;
* *interval* — a ``[lo, hi]`` over-approximation of the numeric values a
  scalar (or every tail value of a BAT) can take.  ``BAT[void,dbl]``
  procedure parameters are feature streams by the fusion-layer contract and
  seed at ``[0, 1]``; literals seed exact points; arithmetic, ``mmap``,
  ``mselect`` and the BAT aggregation methods have transfer functions.
* *rate* — sampling-rate metadata in Hz.  Feature-stream parameters seed at
  the paper's 10 Hz; bulk operators that keep one value per step preserve
  it, filtering operators drop it.

Commands may declare value contracts (``arg_ranges`` / ``returns_range`` on
:class:`repro.monet.module.CommandSignature`); the analysis proves or
refutes them before the plan runs.  An interval that provably escapes a
contract is an error; an unknown interval is silently accepted (the runtime
sanitizer, :mod:`repro.check.sanitize`, covers that residue dynamically).

Diagnostic codes:

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
FLOW001   error     use of a variable that is definitely unassigned
FLOW001   warning   use of a variable assigned on only some paths
FLOW002   warning   dead store — value overwritten before any read
FLOW003   warning   BAT-typed variable is never read
FLOW004   error     exact column-type mismatch at an extension boundary
FLOW005   error     value range provably escapes a declared contract
FLOW006   error     sampling-rate violation in a feature set
========  ========  =====================================================

``FLOW002`` is suppressed inside ``PARALLEL`` blocks and ``WHILE`` bodies:
concurrent branches and loop-carried stores are not dead even when a later
store textually follows.  It is also suppressed for BAT-typed stores whose
store and overwrite both sit inside one certified fusion region
(:mod:`repro.check.fusecheck`): the fused pipeline consumes the temporary
internally, so the "dead" store never materializes — flagging it would
push users to unfuse correct plans.  ``FLOW004`` only fires when both the declared and
the inferred BAT column types are fully known — unlike the permissive
widening of MIL006, it demands the exact atom at module boundaries.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping, Sequence

from repro.check.diagnostics import DiagnosticReport, Severity
from repro.check.fusecheck import FuseChecker
from repro.check.milcheck import BatT, MilType, _head_as_value, _named_type
from repro.errors import MilSyntaxError
from repro.moa.algebra import (
    Aggregate,
    Apply,
    Arith,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Field,
    Join,
    MakeTuple,
    Map,
    Nest,
    Not,
    Select,
    Semijoin,
    SetOp,
    The,
    Unnest,
    Var,
)
from repro.monet.mil import (
    Assign,
    BinOp,
    Call,
    ExprStmt,
    If,
    Literal,
    MethodCall,
    MilProcedure,
    Name,
    Parallel,
    ProcDef,
    Return,
    UnaryOp,
    VarDecl,
    While,
    parse,
)
from repro.monet.module import CommandSignature

__all__ = [
    "Interval",
    "FlowChecker",
    "check_flow_source",
    "check_feature_set",
    "check_moa_flow",
    "FEATURE_RANGE",
    "FEATURE_RATE",
]

#: The fusion-layer contract every feature stream must satisfy (§5).
FEATURE_RANGE = (0.0, 1.0)
FEATURE_RATE = 10.0

_EPS = 1e-9

#: Extensions whose ``Apply`` arguments are evidence streams and therefore
#: must satisfy the feature contract.
_EVIDENCE_EXTENSIONS = ("dbn", "hmm")

#: Free Moa variables matching this pattern are feature streams.
_FEATURE_VAR = re.compile(r"^f\d+$")


# ---------------------------------------------------------------------------
# the interval half of the lattice
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A closed numeric interval; ``lo > hi`` encodes the empty interval."""

    lo: float = -math.inf
    hi: float = math.inf

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    @property
    def known(self) -> bool:
        """Both bounds finite and non-empty — safe to compare to contracts."""
        return (
            not self.is_empty
            and math.isfinite(self.lo)
            and math.isfinite(self.hi)
        )

    def hull(self, other: "Interval") -> "Interval":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def within(self, lo: float, hi: float) -> bool:
        return self.is_empty or (self.lo >= lo - _EPS and self.hi <= hi + _EPS)

    def escapes(self, lo: float, hi: float) -> bool:
        """Provably holds a value outside ``[lo, hi]``."""
        return self.known and not self.within(lo, hi)

    def __str__(self) -> str:
        if self.is_empty:
            return "[]"
        return f"[{self.lo:g}, {self.hi:g}]"


TOP = Interval()
EMPTY = Interval(math.inf, -math.inf)


def _point(value: float) -> Interval:
    return Interval(float(value), float(value))


def _arith_interval(op: str, a: Interval, b: Interval) -> Interval:
    """Interval arithmetic for ``+ - * /``; anything uncertain widens to TOP."""
    if a.is_empty or b.is_empty:
        return EMPTY
    if not (a.known and b.known):
        return TOP
    if op == "/" and b.lo <= 0.0 <= b.hi:
        return TOP  # possible division by zero; no finite bound
    ops = {
        "+": lambda x, y: x + y,
        "-": lambda x, y: x - y,
        "*": lambda x, y: x * y,
        "/": lambda x, y: x / y,
    }
    fn = ops.get(op)
    if fn is None:
        return TOP
    combos = [fn(a.lo, b.lo), fn(a.lo, b.hi), fn(a.hi, b.lo), fn(a.hi, b.hi)]
    if any(math.isnan(c) for c in combos):
        return TOP
    return Interval(min(combos), max(combos))


def _narrow(interval: Interval, op: str, bound: Interval) -> Interval:
    """Narrow ``interval`` through a selection predicate ``value op bound``."""
    if not bound.known:
        return interval
    if op in (">=", ">"):
        return Interval(max(interval.lo, bound.lo), interval.hi)
    if op in ("<=", "<"):
        return Interval(interval.lo, min(interval.hi, bound.hi))
    if op == "=":
        return bound
    return interval


# ---------------------------------------------------------------------------
# abstract values and variable state
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _FlowVal:
    """One lattice point: inferred type × value interval × sampling rate."""

    type: MilType = "any"
    interval: Interval = TOP
    rate: float | None = None


_ANY = _FlowVal()


@dataclass
class _VarState:
    val: _FlowVal
    #: "yes" (assigned on every path), "maybe", or "no".
    assigned: str = "yes"
    #: Line of the latest store that has not been read yet (FLOW002).
    pending_store: int | None = None

    def copy(self) -> "_VarState":
        return _VarState(self.val, self.assigned, self.pending_store)


@dataclass
class _DeclRecord:
    """Per-declaration bookkeeping for FLOW003 (flat, branch-insensitive)."""

    ident: str
    line: int | None
    is_bat: bool
    is_param: bool = False


def _merge_assigned(a: str, b: str) -> str:
    if a == b:
        return a
    return "maybe"


def _merge_val(a: _FlowVal, b: _FlowVal) -> _FlowVal:
    return _FlowVal(
        a.type if a.type == b.type else "any",
        a.interval.hull(b.interval),
        a.rate if a.rate == b.rate else None,
    )


def _merge_env(
    base: dict[str, _VarState], branches: list[dict[str, _VarState]]
) -> dict[str, _VarState]:
    """Join branch environments over the keys of ``base``."""
    merged: dict[str, _VarState] = {}
    for ident in base:
        states = [env[ident] for env in branches if ident in env]
        if not states:
            merged[ident] = base[ident].copy()
            continue
        out = states[0].copy()
        for state in states[1:]:
            out.val = _merge_val(out.val, state.val)
            out.assigned = _merge_assigned(out.assigned, state.assigned)
            if out.pending_store != state.pending_store:
                out.pending_store = None
        merged[ident] = out
    return merged


# ---------------------------------------------------------------------------
# MIL flow analysis
# ---------------------------------------------------------------------------


class FlowChecker:
    """Abstract interpreter over MIL procedures and Moa expression trees.

    Constructor arguments mirror :class:`repro.check.milcheck.MilChecker`
    so the two passes run against the same kernel environment.
    """

    def __init__(
        self,
        commands: Mapping[str, Any] | Iterable[str] | None = None,
        signatures: Mapping[str, CommandSignature] | None = None,
        globals_names: Iterable[str] = (),
        procedures: Mapping[str, Any] | None = None,
    ):
        self._commands = set(commands or ())
        self._signatures = dict(signatures or {})
        self._globals = set(globals_names)
        self._procs: dict[str, ProcDef] = {}
        for name, proc in (procedures or {}).items():
            self._procs[name] = (
                proc.definition if isinstance(proc, MilProcedure) else proc
            )

    # -- entry points ----------------------------------------------------
    def check_source(self, source: str, name: str = "<mil>") -> DiagnosticReport:
        """Parse and flow-check a MIL program (syntax errors are MIL000's)."""
        try:
            statements = parse(source)
        except MilSyntaxError:
            return DiagnosticReport()  # milcheck owns the MIL000 report
        return self.check_program(statements, name=name)

    def check_program(
        self, statements: list[Any], name: str = "<mil>"
    ) -> DiagnosticReport:
        report = DiagnosticReport()
        known = dict(self._procs)
        known.update(
            {s.name: s for s in statements if isinstance(s, ProcDef)}
        )
        toplevel = [s for s in statements if not isinstance(s, ProcDef)]
        for statement in statements:
            if isinstance(statement, ProcDef):
                self._check_proc(statement, known, name, report)
        if toplevel:
            self._check_body(toplevel, [], known, name, report)
        return report

    def check_proc(
        self, definition: ProcDef | MilProcedure, source: str | None = None
    ) -> DiagnosticReport:
        if isinstance(definition, MilProcedure):
            definition = definition.definition
        known = dict(self._procs)
        known.setdefault(definition.name, definition)
        report = DiagnosticReport()
        self._check_proc(definition, known, source or definition.name, report)
        return report

    # -- procedure walk --------------------------------------------------
    def _check_proc(
        self,
        definition: ProcDef,
        known: Mapping[str, ProcDef],
        source: str,
        report: DiagnosticReport,
    ) -> None:
        self._check_body(definition.body, definition.params, known, source, report)

    def _seed_param(self, type_name: str | None) -> _FlowVal:
        inferred = _named_type(type_name)
        if isinstance(inferred, BatT) and inferred.head == "void":
            # A [void,*] parameter is a time-series by the fusion contract.
            interval = Interval(*FEATURE_RANGE) if inferred.tail == "dbl" else TOP
            return _FlowVal(inferred, interval, FEATURE_RATE)
        return _FlowVal(inferred)

    def _check_body(
        self,
        body: list[Any],
        params: Sequence[Any],
        known: Mapping[str, ProcDef],
        source: str,
        report: DiagnosticReport,
    ) -> None:
        env: dict[str, _VarState] = {}
        decls: list[_DeclRecord] = []
        reads: set[str] = set()
        for param in params:
            env[param.ident] = _VarState(self._seed_param(param.type_name))
        ctx = _Ctx(known, source, report, decls, reads, self._fused_spans(body))
        self._walk_block(body, env, ctx)
        self._flush_pending(env, ctx, suppressed=False)
        for record in decls:
            if record.is_bat and not record.is_param and record.ident not in reads:
                report.add(
                    "FLOW003",
                    f"BAT variable {record.ident!r} is never read",
                    Severity.WARNING,
                    source=source,
                    line=record.line,
                )

    def _fused_spans(self, body: list[Any]) -> tuple[tuple[int, int], ...]:
        """Certified fusion-region spans of ``body`` (FLOW002 gate)."""
        return FuseChecker(
            commands=self._commands,
            signatures=self._signatures,
            globals_names=self._globals,
            procedures=self._procs,
        ).certified_spans(body)

    def _flush_pending(
        self, env: dict[str, _VarState], ctx: "_Ctx", suppressed: bool
    ) -> None:
        """End-of-scope: stores still pending were never read.

        FLOW002 proper needs an *overwrite*, so a final unread store is only
        folded into FLOW003 (never-read BATs); scalars fall silent here.
        """
        for state in env.values():
            state.pending_store = None

    # -- statement walk --------------------------------------------------
    def _walk_block(
        self,
        statements: list[Any],
        env: dict[str, _VarState],
        ctx: "_Ctx",
        in_parallel: bool = False,
        in_loop: bool = False,
    ) -> None:
        for statement in statements:
            self._walk_statement(statement, env, ctx, in_parallel, in_loop)

    def _walk_statement(
        self,
        statement: Any,
        env: dict[str, _VarState],
        ctx: "_Ctx",
        in_parallel: bool,
        in_loop: bool,
    ) -> None:
        match statement:
            case ProcDef():
                self._check_proc(statement, ctx.known, ctx.source, ctx.report)
            case VarDecl(ident=ident, value=value, line=line):
                if value is None:
                    env[ident] = _VarState(_ANY, assigned="no")
                    ctx.decls.append(_DeclRecord(ident, line, is_bat=False))
                    return
                val = self._eval(value, env, ctx)
                env[ident] = _VarState(
                    val,
                    pending_store=None if (in_parallel or in_loop) else line,
                )
                ctx.decls.append(
                    _DeclRecord(ident, line, is_bat=isinstance(val.type, BatT))
                )
            case Assign(ident=ident, value=value, line=line):
                val = self._eval(value, env, ctx)
                state = env.get(ident)
                if state is None:
                    # assignment to a global/undeclared name — milcheck's
                    # MIL002 territory; just track it from here on.
                    env[ident] = _VarState(val)
                    return
                if (
                    state.pending_store is not None
                    and not in_parallel
                    and not in_loop
                    and not (
                        isinstance(state.val.type, BatT)
                        and ctx.in_fused_span(state.pending_store, line)
                    )
                ):
                    ctx.report.add(
                        "FLOW002",
                        f"dead store to {ident!r}: value is overwritten at "
                        f"line {line} before any read",
                        Severity.WARNING,
                        source=ctx.source,
                        line=state.pending_store,
                        end_line=line,
                    )
                state.val = val
                state.assigned = "yes"
                state.pending_store = (
                    None if (in_parallel or in_loop) else line
                )
            case ExprStmt(expr=expr):
                self._eval(expr, env, ctx)
            case Return(expr=expr):
                if expr is not None:
                    self._eval(expr, env, ctx)
            case If(cond=cond, then=then, orelse=orelse):
                self._eval(cond, env, ctx)
                then_env = {k: v.copy() for k, v in env.items()}
                else_env = {k: v.copy() for k, v in env.items()}
                self._walk_block(then, then_env, ctx, in_parallel, in_loop)
                self._walk_block(orelse, else_env, ctx, in_parallel, in_loop)
                env.update(_merge_env(env, [then_env, else_env]))
            case While(cond=cond, body=body):
                self._eval(cond, env, ctx)
                loop_env = {k: v.copy() for k, v in env.items()}
                self._walk_block(body, loop_env, ctx, in_parallel, in_loop=True)
                env.update(_merge_env(env, [loop_env, env]))
            case Parallel(body=body):
                # every branch executes; order across branches is undefined,
                # so FLOW002 pending-store tracking is disabled inside.
                self._walk_block(body, env, ctx, in_parallel=True, in_loop=in_loop)
                for state in env.values():
                    state.pending_store = None
            case _:
                pass

    # -- expression evaluation -------------------------------------------
    def _read(self, ident: str, line: int | None, env, ctx: "_Ctx") -> _FlowVal:
        ctx.reads.add(ident)
        state = env.get(ident)
        if state is None:
            return _ANY  # global, command reference, or milcheck-MIL001
        state.pending_store = None
        if state.assigned == "no":
            ctx.report.add(
                "FLOW001",
                f"variable {ident!r} is used before it is assigned",
                Severity.ERROR,
                source=ctx.source,
                line=line,
            )
            state.assigned = "yes"  # report once per variable
        elif state.assigned == "maybe":
            ctx.report.add(
                "FLOW001",
                f"variable {ident!r} may be unassigned on some paths",
                Severity.WARNING,
                source=ctx.source,
                line=line,
            )
            state.assigned = "yes"
        return state.val

    def _eval(self, node: Any, env: dict[str, _VarState], ctx: "_Ctx") -> _FlowVal:
        match node:
            case Literal(value=value):
                if isinstance(value, bool):
                    return _FlowVal("bit", _point(1.0 if value else 0.0))
                if isinstance(value, int):
                    return _FlowVal("int", _point(value))
                if isinstance(value, float):
                    return _FlowVal("dbl", _point(value))
                if isinstance(value, str):
                    return _FlowVal("str")
                return _ANY
            case Name(ident=ident, line=line):
                return self._read(ident, line, env, ctx)
            case Call():
                return self._eval_call(node, env, ctx)
            case MethodCall():
                return self._eval_method(node, env, ctx)
            case BinOp(op=op, left=left, right=right):
                left_val = self._eval(left, env, ctx)
                right_val = self._eval(right, env, ctx)
                if op in ("AND", "OR", "=", "!=", "<", ">", "<=", ">="):
                    return _FlowVal("bit", Interval(0.0, 1.0))
                interval = _arith_interval(op, left_val.interval, right_val.interval)
                result_type = "dbl"
                if left_val.type == "int" and right_val.type == "int" and op != "/":
                    result_type = "int"
                return _FlowVal(result_type, interval)
            case UnaryOp(op=op, operand=operand):
                val = self._eval(operand, env, ctx)
                if op == "NOT":
                    return _FlowVal("bit", Interval(0.0, 1.0))
                interval = _arith_interval("-", _point(0.0), val.interval)
                return _FlowVal(val.type, interval, val.rate)
            case _:
                return _ANY

    # -- calls -----------------------------------------------------------
    def _eval_call(self, node: Call, env, ctx: "_Ctx") -> _FlowVal:
        if node.func == "new":
            names = [a.ident for a in node.args if isinstance(a, Name)]
            if len(names) == 2:
                return _FlowVal(BatT(names[0], names[1]), EMPTY)
            return _FlowVal(BatT(), EMPTY)
        arg_vals = [self._eval(a, env, ctx) for a in node.args]
        if node.func in ctx.known:
            definition = ctx.known[node.func]
            return _FlowVal(_named_type(definition.return_type))
        if node.func in env:
            return self._read(node.func, node.line, env, ctx)
        handler = _BULK_TRANSFER.get(node.func)
        if handler is not None:
            return handler(self, node, arg_vals, ctx)
        signature = self._signatures.get(node.func)
        if signature is not None:
            return self._eval_signature_call(node, signature, arg_vals, ctx)
        return _ANY

    def _eval_signature_call(
        self,
        node: Call,
        signature: CommandSignature,
        arg_vals: list[_FlowVal],
        ctx: "_Ctx",
    ) -> _FlowVal:
        for index, actual in enumerate(arg_vals):
            self._check_boundary_type(node, signature, index, actual, ctx)
            contract = signature.arg_range(index)
            if contract is not None and actual.interval.escapes(*contract):
                lo, hi = contract
                ctx.report.add(
                    "FLOW005",
                    f"{signature.describe()} argument {index + 1} has inferred "
                    f"range {actual.interval}, escaping the declared contract "
                    f"[{lo:g}, {hi:g}]",
                    Severity.ERROR,
                    source=ctx.source,
                    line=node.line,
                )
        result_type = _named_type(signature.returns)
        interval = (
            Interval(*signature.returns_range)
            if signature.returns_range is not None
            else TOP
        )
        rate = None
        if isinstance(result_type, BatT):
            rates = {v.rate for v in arg_vals if v.rate is not None}
            if len(rates) == 1:
                rate = rates.pop()
        return _FlowVal(result_type, interval, rate)

    def _check_boundary_type(
        self,
        node: Call,
        signature: CommandSignature,
        index: int,
        actual: _FlowVal,
        ctx: "_Ctx",
    ) -> None:
        """FLOW004: exact BAT column typing at extension-module boundaries."""
        if signature.module is None or not signature.args:
            return
        slot = min(index, len(signature.args) - 1)
        if signature.varargs is False and index >= len(signature.args):
            return
        expected = _named_type(signature.args[slot])
        if not isinstance(expected, BatT) or not isinstance(actual.type, BatT):
            return
        columns = (expected.head, expected.tail, actual.type.head, actual.type.tail)
        if any(c in ("?", "any") for c in columns):
            return

        def norm(column: str) -> str:
            return _head_as_value(column)

        if norm(expected.head) != norm(actual.type.head) or norm(
            expected.tail
        ) != norm(actual.type.tail):
            ctx.report.add(
                "FLOW004",
                f"{signature.describe()} argument {index + 1} crosses the "
                f"{signature.module!r} extension boundary as {actual.type}, "
                f"but the command requires exactly "
                f"BAT[{expected.head},{expected.tail}]",
                Severity.ERROR,
                source=ctx.source,
                line=node.line,
            )

    # -- BAT methods -----------------------------------------------------
    def _eval_method(self, node: MethodCall, env, ctx: "_Ctx") -> _FlowVal:
        receiver = self._eval(node.target, env, ctx)
        arg_vals = [self._eval(a, env, ctx) for a in node.args]
        if not isinstance(receiver.type, BatT):
            return _ANY
        bat = receiver.type
        method = node.method
        if method in ("insert", "insert_bulk"):
            inserted = arg_vals[-1] if arg_vals else _ANY
            widened = replace(
                receiver, interval=receiver.interval.hull(inserted.interval)
            )
            # appends mutate the receiver in place: widen the variable too
            if isinstance(node.target, Name) and node.target.ident in env:
                env[node.target.ident].val = widened
            return widened
        if method == "select":
            interval = receiver.interval
            if len(arg_vals) == 2:
                low, high = arg_vals[0].interval, arg_vals[1].interval
                interval = _narrow(_narrow(interval, ">=", low), "<=", high)
            elif len(arg_vals) == 1:
                interval = _narrow(interval, "=", arg_vals[0].interval)
            return _FlowVal(
                BatT(_head_as_value(bat.head), bat.tail), interval, None
            )
        if method in ("max", "min", "avg", "find", "fetch"):
            result_type = "dbl" if method == "avg" else (
                _head_as_value(bat.tail) if bat.tail != "?" else "any"
            )
            return _FlowVal(result_type, receiver.interval)
        if method == "sum":
            return _FlowVal(_head_as_value(bat.tail), TOP)
        if method == "count":
            return _FlowVal("int", Interval(0.0, math.inf))
        if method in ("copy", "sort", "unique", "semijoin", "kdiff", "filter_tail"):
            rate = receiver.rate if method == "copy" else None
            return _FlowVal(bat, receiver.interval, rate)
        if method == "kunion":
            other = arg_vals[0] if arg_vals else _ANY
            return _FlowVal(bat, receiver.interval.hull(other.interval))
        if method == "slice":
            return _FlowVal(bat, receiver.interval, None)
        if method in ("delete", "replace"):
            return receiver
        if method == "reverse":
            return _FlowVal(
                BatT(_head_as_value(bat.tail), _head_as_value(bat.head))
            )
        if method == "mirror":
            head = _head_as_value(bat.head)
            return _FlowVal(BatT(head, head))
        if method == "mark":
            return _FlowVal(BatT(_head_as_value(bat.head), "oid"))
        if method == "join":
            other = arg_vals[0] if arg_vals else _ANY
            if isinstance(other.type, BatT):
                return _FlowVal(
                    BatT(_head_as_value(bat.head), _head_as_value(other.type.tail)),
                    other.interval,
                )
            return _FlowVal(BatT(_head_as_value(bat.head), "?"))
        if method == "histogram":
            return _FlowVal(
                BatT(_head_as_value(bat.tail), "int"), Interval(0.0, math.inf)
            )
        if method == "exist":
            return _FlowVal("bit", Interval(0.0, 1.0))
        return _ANY


@dataclass
class _Ctx:
    """Per-walk context threaded through the analysis."""

    known: Mapping[str, ProcDef]
    source: str
    report: DiagnosticReport
    decls: list[_DeclRecord]
    reads: set[str]
    #: Certified fusion-region line spans (FLOW002 suppression).
    fused_spans: tuple[tuple[int, int], ...] = ()

    def in_fused_span(self, store: int | None, overwrite: int | None) -> bool:
        """Both lines inside one certified fusion region."""
        if store is None or overwrite is None:
            return False
        return any(
            start <= store and overwrite <= end
            for start, end in self.fused_spans
        )


# ---------------------------------------------------------------------------
# transfer functions for the Moa bulk-operator commands
# ---------------------------------------------------------------------------


def _literal_str(node: Any) -> str | None:
    if isinstance(node, Literal) and isinstance(node.value, str):
        return node.value
    return None


def _transfer_mmap(
    checker: FlowChecker, node: Call, args: list[_FlowVal], ctx: _Ctx
) -> _FlowVal:
    source_val = args[0] if args else _ANY
    op = _literal_str(node.args[1]) if len(node.args) > 1 else None
    operand = args[2].interval if len(args) > 2 else TOP
    interval = (
        _arith_interval(op, source_val.interval, operand) if op else TOP
    )
    head = source_val.type.head if isinstance(source_val.type, BatT) else "?"
    return _FlowVal(BatT(head, "dbl"), interval, source_val.rate)


def _transfer_mselect(
    checker: FlowChecker, node: Call, args: list[_FlowVal], ctx: _Ctx
) -> _FlowVal:
    source_val = args[0] if args else _ANY
    op = _literal_str(node.args[1]) if len(node.args) > 1 else None
    bound = args[2].interval if len(args) > 2 else TOP
    interval = (
        _narrow(source_val.interval, op, bound) if op else source_val.interval
    )
    if isinstance(source_val.type, BatT):
        bat = BatT(_head_as_value(source_val.type.head), source_val.type.tail)
    else:
        bat = BatT()
    return _FlowVal(bat, interval, None)  # selection breaks the uniform rate


def _transfer_maggr(
    checker: FlowChecker, node: Call, args: list[_FlowVal], ctx: _Ctx
) -> _FlowVal:
    source_val = args[0] if args else _ANY
    kind = _literal_str(node.args[1]) if len(node.args) > 1 else None
    if kind in ("max", "min", "avg"):
        return _FlowVal("dbl", source_val.interval)
    if kind == "count":
        return _FlowVal("int", Interval(0.0, math.inf))
    return _FlowVal("dbl", TOP)


def _transfer_msetop(
    checker: FlowChecker, node: Call, args: list[_FlowVal], ctx: _Ctx
) -> _FlowVal:
    left = args[1] if len(args) > 1 else _ANY
    right = args[2] if len(args) > 2 else _ANY
    bat = left.type if isinstance(left.type, BatT) else BatT()
    rate = left.rate if left.rate == right.rate else None
    return _FlowVal(bat, left.interval.hull(right.interval), rate)


_BULK_TRANSFER = {
    "mmap": _transfer_mmap,
    "mselect": _transfer_mselect,
    "maggr": _transfer_maggr,
    "msetop": _transfer_msetop,
}


# ---------------------------------------------------------------------------
# Moa expression flow analysis
# ---------------------------------------------------------------------------


def check_moa_flow(
    expr: Expr,
    source: str = "<moa>",
    ranges: Mapping[str, tuple[float, float]] | None = None,
) -> DiagnosticReport:
    """Propagate value ranges through a Moa expression tree.

    Free ``Var``s named like feature streams (``f1``, ``f2``, ...) — or any
    listed in ``ranges`` — seed the interval lattice; ``Apply`` nodes of the
    DBN/HMM extensions are evidence boundaries where the feature contract
    ``[0, 1]`` must provably hold (FLOW005 when refuted).
    """
    report = DiagnosticReport()
    seeds = dict(ranges or {})

    def seed(name: str) -> Interval:
        if name in seeds:
            return Interval(*seeds[name])
        if _FEATURE_VAR.match(name):
            return Interval(*FEATURE_RANGE)
        return TOP

    def walk(node: Expr, env: dict[str, Interval]) -> Interval:
        match node:
            case Const(value=value):
                if isinstance(value, bool):
                    return _point(1.0 if value else 0.0)
                if isinstance(value, (int, float)):
                    return _point(float(value))
                return TOP
            case Var(name=name):
                return env.get(name, seed(name))
            case Field(source=inner):
                walk(inner, env)
                return TOP
            case MakeTuple(fields=fields):
                for _, sub in fields:
                    walk(sub, env)
                return TOP
            case Cmp(left=left, right=right) | BoolOp(left=left, right=right):
                walk(left, env)
                walk(right, env)
                return Interval(0.0, 1.0)
            case Not(operand=operand):
                walk(operand, env)
                return Interval(0.0, 1.0)
            case Arith(op=op, left=left, right=right):
                return _arith_interval(op, walk(left, env), walk(right, env))
            case Map(var=var, body=body, source=inner):
                element = walk(inner, env)
                return walk(body, {**env, var: element})
            case Select(var=var, pred=pred, source=inner):
                element = walk(inner, env)
                walk(pred, {**env, var: element})
                return element
            case Join(
                left_var=lv, right_var=rv, pred=pred,
                left=left, right=right, result=result,
            ):
                left_el = walk(left, env)
                right_el = walk(right, env)
                bound = {**env, lv: left_el, rv: right_el}
                walk(pred, bound)
                return walk(result, bound)
            case Semijoin(
                left_var=lv, right_var=rv, pred=pred, left=left, right=right
            ):
                left_el = walk(left, env)
                right_el = walk(right, env)
                walk(pred, {**env, lv: left_el, rv: right_el})
                return left_el
            case Nest(source=inner) | Unnest(source=inner) | The(source=inner):
                return walk(inner, env)
            case Aggregate(kind=kind, source=inner):
                element = walk(inner, env)
                if kind in ("max", "min", "avg"):
                    return element
                if kind == "count":
                    return Interval(0.0, math.inf)
                return TOP
            case SetOp(left=left, right=right):
                return walk(left, env).hull(walk(right, env))
            case Apply(extension=extension, operator=operator, args=args):
                intervals = [walk(a, env) for a in args]
                if extension in _EVIDENCE_EXTENSIONS:
                    for index, interval in enumerate(intervals):
                        if interval.escapes(*FEATURE_RANGE):
                            lo, hi = FEATURE_RANGE
                            report.add(
                                "FLOW005",
                                f"{extension}.{operator} evidence argument "
                                f"{index + 1} has inferred range {interval}, "
                                f"escaping the feature contract "
                                f"[{lo:g}, {hi:g}]",
                                Severity.ERROR,
                                source=source,
                            )
                return TOP
            case _:
                return TOP

    walk(expr, {})
    return report


# ---------------------------------------------------------------------------
# fusion-layer feature-profile checks
# ---------------------------------------------------------------------------


def check_feature_set(
    streams: Mapping[str, Sequence[float]],
    duration: float | None = None,
    rate: float = FEATURE_RATE,
    source: str = "<features>",
) -> DiagnosticReport:
    """Verify extracted feature streams against the fusion contract.

    Every stream must hold finite values inside :data:`FEATURE_RANGE`
    (FLOW005) and all streams must agree on one length; when ``duration``
    is given, that length must equal ``int(duration * rate)`` — the 10 Hz
    sampling contract (FLOW006).
    """
    report = DiagnosticReport()
    lengths: dict[str, int] = {}
    lo, hi = FEATURE_RANGE
    for name in sorted(streams):
        values = list(streams[name])
        lengths[name] = len(values)
        for step, value in enumerate(values):
            number = float(value)
            if math.isnan(number) or not (lo - _EPS <= number <= hi + _EPS):
                report.add(
                    "FLOW005",
                    f"feature stream {name!r} value {number:g} at step "
                    f"{step} is outside [{lo:g}, {hi:g}]",
                    Severity.ERROR,
                    source=source,
                )
                break  # one finding per stream is enough
    distinct = set(lengths.values())
    if len(distinct) > 1:
        detail = ", ".join(f"{n}={lengths[n]}" for n in sorted(lengths))
        report.add(
            "FLOW006",
            f"feature streams disagree on length ({detail}); a uniform "
            f"{rate:g} Hz series needs one step count",
            Severity.ERROR,
            source=source,
        )
    elif duration is not None and lengths:
        expected = int(duration * rate)
        actual = distinct.pop()
        if actual != expected:
            report.add(
                "FLOW006",
                f"feature streams have {actual} steps but {duration:g} s at "
                f"{rate:g} Hz requires {expected}",
                Severity.ERROR,
                source=source,
            )
    return report


# ---------------------------------------------------------------------------
# convenience entry point
# ---------------------------------------------------------------------------


def check_flow_source(
    source: str,
    name: str = "<mil>",
    commands: Mapping[str, Any] | Iterable[str] | None = None,
    signatures: Mapping[str, CommandSignature] | None = None,
    globals_names: Iterable[str] = (),
    procedures: Mapping[str, Any] | None = None,
) -> DiagnosticReport:
    """Parse and flow-check MIL source text."""
    return FlowChecker(commands, signatures, globals_names, procedures).check_source(
        source, name=name
    )
