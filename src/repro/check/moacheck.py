"""Static validation of Moa expression trees.

The checker walks an :class:`repro.moa.algebra.Expr` tree and verifies —
without evaluating it — that every ``Var`` is bound, every ``Apply`` names a
registered extension operator with a compatible arity, and that structural
operators (``Field``, ``Nest``, ``Unnest``, set operators) are applied to
payloads of the right *shape*. Shapes form a small lattice: ``any`` (top),
``scalar``, tuple shapes with per-field sub-shapes, and set shapes with an
element shape; ``Const`` payloads seed the lattice from their Python values.

Diagnostic codes:

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
MOA001    error     unbound ``Var``
MOA002    error     ``Apply`` names an unknown extension
MOA003    error     ``Apply`` names an unknown operator of an extension
MOA004    error     ``Apply`` argument count mismatches the operator
MOA005    error     ``Field`` access on a non-tuple shape
MOA006    error     invalid operator token (Cmp/Arith/BoolOp/Aggregate/SetOp)
MOA007    warning   duplicate field names in ``MakeTuple``
MOA008    error     unknown field on a statically known tuple shape
MOA009    error     set operator applied to a non-set shape
========  ========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
import difflib
import inspect
from typing import Any, Iterable, Mapping

from repro.check.diagnostics import DiagnosticReport, Severity
from repro.moa.algebra import (
    Aggregate,
    Apply,
    Arith,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Field,
    Join,
    MakeTuple,
    Map,
    Nest,
    Not,
    Select,
    Semijoin,
    SetOp,
    The,
    Unnest,
    Var,
)
from repro.moa.extension import ExtensionRegistry

__all__ = ["MoaChecker", "check_expr"]

_CMP_OPS = {"=", "!=", "<", "<=", ">", ">="}
_ARITH_OPS = {"+", "-", "*", "/"}
_BOOL_OPS = {"and", "or"}
_AGGREGATE_KINDS = {"count", "sum", "min", "max", "avg"}
_SET_OPS = {"union", "diff", "intersect"}


@dataclass(frozen=True)
class TupleShape:
    """Statically known tuple payload: field name -> shape."""

    fields: tuple[tuple[str, Any], ...]

    def field_names(self) -> list[str]:
        return [name for name, _ in self.fields]

    def get(self, name: str) -> Any:
        for field_name, shape in self.fields:
            if field_name == name:
                return shape
        return None


@dataclass(frozen=True)
class SetShape:
    """Statically known set payload with a common element shape."""

    element: Any = "any"


def _shape_of_value(value: Any) -> Any:
    """Seed a shape from a concrete ``Const`` payload."""
    if isinstance(value, Mapping):
        return TupleShape(tuple((k, _shape_of_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        element = _shape_of_value(value[0]) if value else "any"
        return SetShape(element)
    return "scalar"


def _shape_name(shape: Any) -> str:
    if isinstance(shape, TupleShape):
        return f"tuple<{', '.join(shape.field_names())}>"
    if isinstance(shape, SetShape):
        return f"set<{_shape_name(shape.element)}>"
    return str(shape)


def _merge(a: Any, b: Any) -> Any:
    return a if a == b else "any"


def _suggest(name: str, candidates: Iterable[str]) -> str:
    matches = difflib.get_close_matches(name, list(candidates), n=2)
    if matches:
        return " (did you mean " + ", ".join(repr(m) for m in matches) + "?)"
    return ""


class MoaChecker:
    """Static validator for Moa expression trees.

    Args:
        extensions: registry used to resolve ``Apply`` nodes; ``None`` makes
            every ``Apply`` an MOA002 finding.
        env: names (and optional shapes) bound in the evaluation environment.
            Iterables of names bind each name to the ``any`` shape.
        allow_free_vars: treat unbound ``Var`` as an external input instead
            of an MOA001 error — the :class:`repro.moa.rewrite.MoaCompiler`
            turns free variables into plan parameters, so it checks with
            this enabled.
    """

    def __init__(
        self,
        extensions: ExtensionRegistry | None = None,
        env: Mapping[str, Any] | Iterable[str] | None = None,
        allow_free_vars: bool = False,
    ):
        self._extensions = extensions
        if env is None:
            self._env: dict[str, Any] = {}
        elif isinstance(env, Mapping):
            self._env = dict(env)
        else:
            self._env = {name: "any" for name in env}
        self._allow_free_vars = allow_free_vars

    def check(self, expr: Expr, source: str = "<moa>") -> DiagnosticReport:
        """Walk ``expr`` and report shape/binding/registry findings."""
        report = DiagnosticReport()
        self._infer(expr, dict(self._env), report, source)
        return report

    # ------------------------------------------------------------------
    def _infer(
        self, expr: Expr, env: dict[str, Any], report: DiagnosticReport, source: str
    ) -> Any:
        match expr:
            case Const(value=value):
                return _shape_of_value(value)
            case Var(name=name):
                if name in env:
                    return env[name]
                if not self._allow_free_vars:
                    report.add(
                        "MOA001",
                        f"unbound Moa variable {name!r}"
                        + _suggest(name, env),
                        Severity.ERROR,
                        source=source,
                    )
                return "any"
            case Field(source=src, name=name):
                shape = self._infer(src, env, report, source)
                if isinstance(shape, TupleShape):
                    field_shape = shape.get(name)
                    if field_shape is None:
                        report.add(
                            "MOA008",
                            f"tuple has no field {name!r}"
                            + _suggest(name, shape.field_names()),
                            Severity.ERROR,
                            source=source,
                        )
                        return "any"
                    return field_shape
                if shape != "any":
                    report.add(
                        "MOA005",
                        f"field access {name!r} on non-tuple shape "
                        f"{_shape_name(shape)}",
                        Severity.ERROR,
                        source=source,
                    )
                return "any"
            case MakeTuple(fields=fields):
                seen: set[str] = set()
                shaped: list[tuple[str, Any]] = []
                for name, sub in fields:
                    if name in seen:
                        report.add(
                            "MOA007",
                            f"duplicate field {name!r} in MakeTuple",
                            Severity.WARNING,
                            source=source,
                        )
                    seen.add(name)
                    shaped.append((name, self._infer(sub, env, report, source)))
                return TupleShape(tuple(shaped))
            case Cmp(op=op, left=left, right=right):
                if op not in _CMP_OPS:
                    report.add(
                        "MOA006",
                        f"unknown comparison operator {op!r}; "
                        f"expected one of {sorted(_CMP_OPS)}",
                        Severity.ERROR,
                        source=source,
                    )
                self._infer(left, env, report, source)
                self._infer(right, env, report, source)
                return "scalar"
            case Arith(op=op, left=left, right=right):
                if op not in _ARITH_OPS:
                    report.add(
                        "MOA006",
                        f"unknown arithmetic operator {op!r}; "
                        f"expected one of {sorted(_ARITH_OPS)}",
                        Severity.ERROR,
                        source=source,
                    )
                self._infer(left, env, report, source)
                self._infer(right, env, report, source)
                return "scalar"
            case BoolOp(op=op, left=left, right=right):
                if op not in _BOOL_OPS:
                    report.add(
                        "MOA006",
                        f"unknown boolean operator {op!r}; expected 'and'/'or'",
                        Severity.ERROR,
                        source=source,
                    )
                self._infer(left, env, report, source)
                self._infer(right, env, report, source)
                return "scalar"
            case Not(operand=operand):
                self._infer(operand, env, report, source)
                return "scalar"
            case Map(var=var, body=body, source=src):
                element = self._set_element(src, env, report, source, "map")
                body_shape = self._infer(
                    body, {**env, var: element}, report, source
                )
                return SetShape(body_shape)
            case Select(var=var, pred=pred, source=src):
                element = self._set_element(src, env, report, source, "select")
                self._infer(pred, {**env, var: element}, report, source)
                return SetShape(element)
            case Join(
                left_var=lv,
                right_var=rv,
                pred=pred,
                left=left,
                right=right,
                result=result,
            ):
                left_el = self._set_element(left, env, report, source, "join")
                right_el = self._set_element(right, env, report, source, "join")
                bound = {**env, lv: left_el, rv: right_el}
                self._infer(pred, bound, report, source)
                return SetShape(self._infer(result, bound, report, source))
            case Semijoin(left_var=lv, right_var=rv, pred=pred, left=left, right=right):
                left_el = self._set_element(left, env, report, source, "semijoin")
                right_el = self._set_element(right, env, report, source, "semijoin")
                self._infer(pred, {**env, lv: left_el, rv: right_el}, report, source)
                return SetShape(left_el)
            case Nest(source=src, keys=keys, group_field=group_field):
                element = self._set_element(src, env, report, source, "nest")
                if isinstance(element, TupleShape):
                    for key in keys:
                        if element.get(key) is None:
                            report.add(
                                "MOA008",
                                f"nest key {key!r} is not a field of "
                                f"{_shape_name(element)}"
                                + _suggest(key, element.field_names()),
                                Severity.ERROR,
                                source=source,
                            )
                    residual = TupleShape(
                        tuple(
                            (n, s) for n, s in element.fields if n not in keys
                        )
                    )
                    nested = tuple(
                        (n, s) for n, s in element.fields if n in keys
                    ) + ((group_field, SetShape(residual)),)
                    return SetShape(TupleShape(nested))
                return SetShape("any")
            case Unnest(source=src, set_field=set_field):
                element = self._set_element(src, env, report, source, "unnest")
                if isinstance(element, TupleShape) and element.get(set_field) is None:
                    report.add(
                        "MOA008",
                        f"unnest field {set_field!r} is not a field of "
                        f"{_shape_name(element)}"
                        + _suggest(set_field, element.field_names()),
                        Severity.ERROR,
                        source=source,
                    )
                return SetShape("any")
            case Aggregate(kind=kind, source=src):
                if kind not in _AGGREGATE_KINDS:
                    report.add(
                        "MOA006",
                        f"unknown aggregate {kind!r}; "
                        f"expected one of {sorted(_AGGREGATE_KINDS)}",
                        Severity.ERROR,
                        source=source,
                    )
                self._set_element(src, env, report, source, f"aggregate {kind}")
                return "scalar"
            case SetOp(op=op, left=left, right=right):
                if op not in _SET_OPS:
                    report.add(
                        "MOA006",
                        f"unknown set operator {op!r}; "
                        f"expected one of {sorted(_SET_OPS)}",
                        Severity.ERROR,
                        source=source,
                    )
                left_el = self._set_element(left, env, report, source, op or "setop")
                right_el = self._set_element(right, env, report, source, op or "setop")
                return SetShape(_merge(left_el, right_el))
            case The(source=src):
                return self._set_element(src, env, report, source, "the")
            case Apply(extension=extension, operator=operator, args=args):
                for arg in args:
                    self._infer(arg, env, report, source)
                self._check_apply(expr, report, source)
                return "any"
            case _:
                return "any"

    def _set_element(
        self,
        expr: Expr,
        env: dict[str, Any],
        report: DiagnosticReport,
        source: str,
        operator: str,
    ) -> Any:
        """Infer ``expr`` and require a set shape, returning its element."""
        shape = self._infer(expr, env, report, source)
        if isinstance(shape, SetShape):
            return shape.element
        if shape != "any":
            report.add(
                "MOA009",
                f"{operator} applied to non-set shape {_shape_name(shape)}",
                Severity.ERROR,
                source=source,
            )
        return "any"

    def _check_apply(
        self, node: Apply, report: DiagnosticReport, source: str
    ) -> None:
        if self._extensions is None:
            report.add(
                "MOA002",
                f"expression uses extension {node.extension!r} but no "
                f"registry is available",
                Severity.ERROR,
                source=source,
            )
            return
        if node.extension not in self._extensions.names():
            report.add(
                "MOA002",
                f"unknown extension {node.extension!r}"
                + _suggest(node.extension, self._extensions.names()),
                Severity.ERROR,
                source=source,
            )
            return
        operators = self._extensions.get(node.extension).operators()
        if node.operator not in operators:
            report.add(
                "MOA003",
                f"extension {node.extension!r} has no operator "
                f"{node.operator!r}" + _suggest(node.operator, operators),
                Severity.ERROR,
                source=source,
            )
            return
        self._check_arity(node, operators[node.operator], report, source)

    def _check_arity(
        self, node: Apply, fn: Any, report: DiagnosticReport, source: str
    ) -> None:
        try:
            signature = inspect.signature(fn)
        except (TypeError, ValueError):
            return
        required = 0
        maximum: int | None = 0
        for parameter in signature.parameters.values():
            if parameter.kind in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            ):
                maximum = None if maximum is None else maximum + 1
                if parameter.default is inspect.Parameter.empty:
                    required += 1
            elif parameter.kind is inspect.Parameter.VAR_POSITIONAL:
                maximum = None
        count = len(node.args)
        if count < required or (maximum is not None and count > maximum):
            expected = (
                f"at least {required}"
                if maximum is None
                else str(required)
                if required == maximum
                else f"{required}..{maximum}"
            )
            report.add(
                "MOA004",
                f"operator {node.extension}.{node.operator} expects "
                f"{expected} argument(s), got {count}",
                Severity.ERROR,
                source=source,
            )


def check_expr(
    expr: Expr,
    extensions: ExtensionRegistry | None = None,
    env: Mapping[str, Any] | Iterable[str] | None = None,
    allow_free_vars: bool = False,
    source: str = "<moa>",
) -> DiagnosticReport:
    """Statically validate one Moa expression tree."""
    return MoaChecker(extensions, env, allow_free_vars).check(expr, source=source)
