"""Static analysis of sharded-fleet configurations and scatter plans.

Two entry points, mirroring :mod:`repro.check.replcheck`'s choke-point
pattern:

* :func:`check_fleet_config` runs at :class:`repro.sharding.ShardedKernel`
  construction — misconfigurations that would silently mis-place writes or
  hide degraded answers are rejected before any document is registered;
* :func:`check_scatter_source` runs when MIL source is registered for
  scatter execution (``ShardedKernel.run``) and as the sixth pass of the
  ``python -m repro.check`` CLI.

Diagnostics:

* ``SHARD001`` (error) — write routing targets anything but the owning
  shard. The placement map records one owner per document; a write routed
  elsewhere puts rows where no gather will ever look, which is silent data
  loss, not a policy choice.
* ``SHARD002`` (warning) — the fleet's default ``min_coverage`` floor is
  zero. Gathers then degrade all the way to an empty answer without any
  caller noticing unless every call site remembers to pass its own floor;
  declaring a fleet-wide floor makes "how wrong may an answer be" an
  explicit contract.
* ``SHARD003`` (error) — replicated shards with epoch fencing disabled.
  After a per-shard failover the deposed primary's late cross-shard write
  would be accepted into the new epoch: the same split-brain REPL002
  rejects, multiplied by the number of shards.
* ``SHARD004`` (warning, advisory) — scatter fan-out carries certified
  fusion regions inside ``PARALLEL`` branches. Those certifications rest
  on :mod:`repro.check.racecheck` ownership facts that hold under *one*
  kernel's BAT lock; scattering the branches across shards dissolves that
  lock domain, so the fused pipelines must be de-certified (and the fused
  compiler falls back to the interpreter) on the sharded path. Advisory
  like PERF/FUSE: it informs plan placement, it never fails ``--strict``.
* ``SHARD005`` (error) — online migration with coverage accounting
  disabled. During a split a document's rows live on two shards and the
  gather may answer it through a dual read; with
  ``migration_accounting=False`` the ``migrating``/``dual_read`` counters
  stay zero, so a degraded mid-migration answer is indistinguishable from
  a healthy one — the honest-degradation contract breaks silently.
* ``SHARD006`` (error) — migration cutover without epoch fencing. A
  write intent issued before a cutover names the old owner; with
  ``migration_fencing=False`` the stale source shard accepts the write
  after the ring advances, landing rows the ownership-filtered gather
  will never read — the single-shard twin of the split-brain SHARD003
  rejects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.check.diagnostics import DiagnosticReport, Severity
from repro.check.fusecheck import FuseChecker
from repro.errors import MilSyntaxError
from repro.monet.mil import ProcDef, parse

if TYPE_CHECKING:  # structural only; no runtime import of sharding
    from repro.sharding.fleet import ShardConfig

__all__ = ["check_fleet_config", "check_scatter_source"]

_SOURCE = "sharded-fleet"


def check_fleet_config(
    config: "ShardConfig", shards: Iterable[str]
) -> DiagnosticReport:
    """SHARD001-SHARD003 over one fleet configuration and its shard set."""
    report = DiagnosticReport()
    names = sorted(shards)

    if config.write_routing != "owner":
        report.add(
            "SHARD001",
            f"write routing targets {config.write_routing!r}: the placement "
            f"map records one owning shard per document, so a write routed "
            f"anywhere else lands in BATs no gather will ever read — silent "
            f"data loss, not a policy choice",
            Severity.ERROR,
            source=_SOURCE,
        )

    if config.min_coverage <= 0.0:
        report.add(
            "SHARD002",
            "the fleet declares no coverage floor (min_coverage=0): a "
            "gather that loses every shard degrades to an empty answer "
            "without failing; declare a fleet-wide floor (callers can still "
            "override per query) so degraded answers are a contract, not "
            "an accident",
            Severity.WARNING,
            source=_SOURCE,
        )

    if not config.migration_accounting:
        report.add(
            "SHARD005",
            "online migration without coverage accounting: the "
            "migrating/dual_read counters on ShardCoverageReport stay "
            "zero, so a gather answered through a mid-split dual read "
            "looks identical to a healthy one — degradation must stay "
            "visible to stay honest",
            Severity.ERROR,
            source=_SOURCE,
        )

    if not config.migration_fencing:
        report.add(
            "SHARD006",
            "migration cutover is not epoch-fenced: a write intent issued "
            "before a cutover would be honored by the stale source shard "
            "after the ring advances, landing rows the ownership-filtered "
            "gather never reads (silent lost update; the single-shard "
            "twin of SHARD003's split-brain)",
            Severity.ERROR,
            source=_SOURCE,
        )

    if config.replication > 0 and not config.fencing:
        report.add(
            "SHARD003",
            f"epoch fencing is disabled on a fleet of {len(names)} "
            f"replicated shard(s): after any per-shard failover the deposed "
            f"primary's late cross-shard writes would be accepted into the "
            f"new epoch (unfenced epoch transition / split-brain, once per "
            f"shard)",
            Severity.ERROR,
            source=_SOURCE,
        )
    return report


def check_scatter_source(
    source: str, name: str = "<mil>", **env
) -> DiagnosticReport:
    """SHARD004 over MIL source registered for scatter execution.

    ``env`` takes the same keyword environment as the other checkers
    (``commands``, ``signatures``, ``globals_names``, ``procedures``) so
    the CLI can drive it alongside the five existing passes; all of it is
    optional — the pass only needs the fusion partition.
    """
    report = DiagnosticReport()
    try:
        statements = parse(source)
    except MilSyntaxError:
        return report  # syntax is milcheck's job
    checker = FuseChecker(**env)
    for statement in statements:
        if not isinstance(statement, ProcDef):
            continue
        plan, _ = checker.analyze_with_report(statement, source=name)
        for region in plan.regions:
            if not region.certified or "parallel" not in region.path:
                continue
            report.add(
                "SHARD004",
                f"PROC {statement.name!r} fans out with a certified fusion "
                f"region at {region.path} (lines {region.start_line}-"
                f"{region.end_line}): its certification rests on ownership "
                f"facts under one kernel's BAT lock, which scatter "
                f"execution across shards dissolves — the region must run "
                f"uncertified (interpreter fallback) on the sharded path",
                Severity.WARNING,
                source=name,
                line=region.start_line,
                end_line=region.end_line,
            )
    return report
