"""Catalog invariant checking (``CATnnn`` codes).

Crash recovery rebuilds the BAT catalog from a checkpoint plus replayed WAL
records; before the recovered catalog is opened for queries,
:func:`check_catalog` verifies the structural invariants the rest of the
stack assumes. The same checks are available standalone (``python -m
repro.durability verify <store>`` runs them against a store on disk).

Codes:

* ``CAT001`` (warning) — catalog key and ``BAT.name`` disagree;
* ``CAT002`` (error) — head/tail column lengths differ;
* ``CAT003`` (error) — a void-headed BAT's oid counter would re-issue an
  oid that is already present (dense-sequence invariant);
* ``CAT004`` (error) — a stored value does not survive re-coercion through
  its declared atom type;
* ``CAT005`` (error) — BATs of an aligned group (``meta_event_*``,
  ``meta_object_*``) have diverging association counts;
* ``CAT006`` (error) — a role BAT references an event oid that is out of
  range of the event group.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.check.diagnostics import DiagnosticReport, Severity
from repro.errors import AtomTypeError
from repro.monet.bat import BAT

__all__ = ["check_catalog", "DEFAULT_GROUP_PREFIXES"]

#: Prefixes of BAT groups whose members must stay association-aligned
#: (fully decomposed storage: one logical table = one BAT per attribute).
DEFAULT_GROUP_PREFIXES = ("meta_event_", "meta_object_")

#: Atoms whose values are opaque Python objects — re-coercion is identity,
#: so CAT004 has nothing to verify.
_UNCHECKED_ATOMS = {"any"}


def check_catalog(
    catalog: Mapping[str, BAT],
    group_prefixes: Iterable[str] = DEFAULT_GROUP_PREFIXES,
) -> DiagnosticReport:
    """Verify the structural invariants of a BAT catalog.

    Returns a :class:`repro.check.DiagnosticReport`; callers decide whether
    error findings are fatal (recovery raises
    :class:`repro.errors.CatalogCheckError` through
    ``report.raise_if_errors``).
    """
    report = DiagnosticReport()
    for name, bat in catalog.items():
        _check_bat(report, name, bat)
    for prefix in group_prefixes:
        _check_group(report, catalog, prefix)
    _check_roles(report, catalog)
    return report


def _check_bat(report: DiagnosticReport, name: str, bat: BAT) -> None:
    if bat.name != name:
        report.add(
            "CAT001",
            f"catalog key {name!r} but BAT.name is {bat.name!r}",
            Severity.WARNING,
            source=name,
        )
    heads, tails, next_oid = bat.columns()
    if len(heads) != len(tails):
        report.add(
            "CAT002",
            f"column length mismatch: {len(heads)} heads, {len(tails)} tails",
            source=name,
        )
        return  # per-value checks would be misaligned
    if bat.head_type == "void" and heads:
        top = max(heads)
        if next_oid <= top:
            report.add(
                "CAT003",
                f"void head would re-issue oid {next_oid} "
                f"(max present oid is {top})",
                source=name,
            )
    _check_column(report, name, "head", bat.head_type, heads, bat)
    _check_column(report, name, "tail", bat.tail_type, tails, bat)


def _check_column(
    report: DiagnosticReport,
    name: str,
    which: str,
    atom_name: str,
    values: list,
    bat: BAT,
) -> None:
    if atom_name in _UNCHECKED_ATOMS:
        return
    coerce = (bat._head_atom if which == "head" else bat._tail_atom).coerce
    for position, value in enumerate(values):
        try:
            coerce(value)
        except AtomTypeError:
            report.add(
                "CAT004",
                f"{which} value {value!r} at position {position} does not "
                f"conform to atom type {atom_name!r}",
                source=name,
            )
            return  # one finding per column is enough to fail recovery


def _check_group(
    report: DiagnosticReport, catalog: Mapping[str, BAT], prefix: str
) -> None:
    members = {n: b for n, b in catalog.items() if n.startswith(prefix)}
    if len(members) < 2:
        return
    counts = {n: b.count() for n, b in members.items()}
    if len(set(counts.values())) > 1:
        rendered = ", ".join(f"{n}={c}" for n, c in sorted(counts.items()))
        report.add(
            "CAT005",
            f"aligned group {prefix}* has diverging counts: {rendered}",
            source=prefix + "*",
        )


def _check_roles(report: DiagnosticReport, catalog: Mapping[str, BAT]) -> None:
    events = catalog.get("meta_event_event_id")
    if events is None:
        return
    n_events = events.count()
    for role_bat_name in ("meta_role_name", "meta_role_object"):
        role_bat = catalog.get(role_bat_name)
        if role_bat is None:
            continue
        for oid in role_bat.heads():
            if not 0 <= oid < n_events:
                report.add(
                    "CAT006",
                    f"role references event oid {oid} but only "
                    f"{n_events} events exist",
                    source=role_bat_name,
                )
                break
