"""Static race detection over ``PARALLEL`` MIL blocks.

PR 2's :class:`repro.monet.parallel.ParallelExecutor` runs the top-level
statements of a ``PARALLEL { ... }`` block concurrently, and PR 3's WAL
auto-commits every ``persist``/``drop``.  This pass assigns each branch an
ownership label and checks the cross-branch effect sets — a static lockset
analysis specialised to the two shared stores of the kernel: BAT variables
and catalog names.

The analysis honours the paper's Fig. 4 idiom: BATs are safe for
*concurrent appends* (``insert`` / ``insert_bulk`` take the BAT lock and
commute), so append/append and append/read pairs are clean.  Non-append
mutation (``delete``, ``replace``) and catalog mutation (``persist``,
``drop``) are exclusive writes.

Diagnostic codes:

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
RACE001   error     write-write conflict on one BAT or catalog name
                    across concurrent branches
RACE002   error     read-write conflict: one branch reads a BAT another
                    branch mutates non-append
RACE003   warning   lost update — two branches assign the same enclosing
                    variable
RACE004   warning   catalog mutation inside a PARALLEL branch commits the
                    WAL mid-fan-out (transaction-boundary misuse)
RACE005   —         reserved for the runtime sanitizer: catalog mutation
                    from a thread that does not own the open transaction
========  ========  =====================================================

``RACE004`` is suppressed for occurrences already reported as a RACE001
conflict (one finding per defect).  ``RACE005`` has no static form — thread
identity exists only at runtime — and is raised by
:mod:`repro.check.sanitize`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.check.diagnostics import DiagnosticReport, Severity
from repro.errors import MilSyntaxError
from repro.monet.mil import (
    Assign,
    BinOp,
    Call,
    ExprStmt,
    If,
    Literal,
    MethodCall,
    MilProcedure,
    Name,
    Parallel,
    ProcDef,
    Return,
    UnaryOp,
    VarDecl,
    While,
    parse,
)

__all__ = ["RaceChecker", "check_race_source", "APPEND_METHODS", "WRITE_METHODS"]

#: BAT methods that append under the BAT lock — commutative, race-free.
APPEND_METHODS = frozenset({"insert", "insert_bulk"})

#: BAT methods that mutate non-append — exclusive writers.
WRITE_METHODS = frozenset({"delete", "replace"})

#: Kernel commands that mutate the catalog (and auto-commit the WAL).
CATALOG_COMMANDS = frozenset({"persist", "drop"})


@dataclass
class _Effect:
    """One access to a shared name inside a branch."""

    kind: str  # "read" | "append" | "write" | "assign"
    line: int | None


@dataclass
class _BranchEffects:
    """Effect summary of one PARALLEL branch."""

    label: str
    line: int | None
    #: variable name -> effects on it (BAT methods and scalar reads alike)
    variables: dict[str, list[_Effect]] = field(default_factory=dict)
    #: catalog name (or None when not a literal) -> catalog-write effects
    catalog: dict[str | None, list[_Effect]] = field(default_factory=dict)

    def touch(self, ident: str, kind: str, line: int | None) -> None:
        self.variables.setdefault(ident, []).append(_Effect(kind, line))

    def kinds(self, ident: str) -> set[str]:
        return {e.kind for e in self.variables.get(ident, ())}


class RaceChecker:
    """Lockset/ownership analysis of PARALLEL blocks in MIL programs."""

    def __init__(
        self,
        commands: Mapping[str, Any] | Iterable[str] | None = None,
        signatures: Mapping[str, Any] | None = None,
        globals_names: Iterable[str] = (),
        procedures: Mapping[str, Any] | None = None,
    ):
        # signature mirrors the other checkers; only the name sets matter here
        self._commands = set(commands or ())
        self._globals = set(globals_names)
        self._procs = set(procedures or ())

    # -- entry points ----------------------------------------------------
    def check_source(self, source: str, name: str = "<mil>") -> DiagnosticReport:
        """Parse and race-check a MIL program (syntax errors are MIL000's)."""
        try:
            statements = parse(source)
        except MilSyntaxError:
            return DiagnosticReport()  # milcheck owns the MIL000 report
        return self.check_program(statements, name=name)

    def check_program(
        self, statements: list[Any], name: str = "<mil>"
    ) -> DiagnosticReport:
        report = DiagnosticReport()
        self._walk(statements, report, name)
        return report

    def check_proc(
        self, definition: ProcDef | MilProcedure, source: str | None = None
    ) -> DiagnosticReport:
        if isinstance(definition, MilProcedure):
            definition = definition.definition
        report = DiagnosticReport()
        self._walk(definition.body, report, source or definition.name)
        return report

    # -- statement traversal ---------------------------------------------
    def _walk(
        self, statements: list[Any], report: DiagnosticReport, source: str
    ) -> None:
        for statement in statements:
            match statement:
                case ProcDef(body=body):
                    self._walk(body, report, source)
                case If(then=then, orelse=orelse):
                    self._walk(then, report, source)
                    self._walk(orelse, report, source)
                case While(body=body):
                    self._walk(body, report, source)
                case Parallel(body=body, line=line):
                    self._check_parallel(body, line, report, source)
                    # nested PARALLEL blocks inside branches
                    self._walk(body, report, source)
                case _:
                    pass

    # -- PARALLEL analysis -----------------------------------------------
    def _check_parallel(
        self,
        body: list[Any],
        line: int | None,
        report: DiagnosticReport,
        source: str,
    ) -> None:
        branches: list[_BranchEffects] = []
        for index, statement in enumerate(body):
            branch = _BranchEffects(
                f"branch {index + 1}", getattr(statement, "line", line)
            )
            self._collect(statement, branch, locals_=set())
            branches.append(branch)
        if len(branches) < 2:
            return
        self._report_variable_races(branches, report, source)
        self._report_catalog_races(branches, report, source)

    def _report_variable_races(
        self,
        branches: list[_BranchEffects],
        report: DiagnosticReport,
        source: str,
    ) -> None:
        names = sorted({n for b in branches for n in b.variables})
        for ident in names:
            involved = [b for b in branches if ident in b.variables]
            if len(involved) < 2:
                continue
            writers = [b for b in involved if "write" in b.kinds(ident)]
            appenders = [b for b in involved if "append" in b.kinds(ident)]
            readers = [b for b in involved if "read" in b.kinds(ident)]
            assigners = [b for b in involved if "assign" in b.kinds(ident)]
            if len(writers) >= 2 or (writers and appenders):
                first, second = (writers + appenders)[:2]
                report.add(
                    "RACE001",
                    f"write-write race on BAT {ident!r}: {first.label} and "
                    f"{second.label} both mutate it concurrently",
                    Severity.ERROR,
                    source=source,
                    line=self._first_line(first, ident, ("write", "append")),
                )
            elif writers and readers:
                reader = next(b for b in readers if b is not writers[0])
                report.add(
                    "RACE002",
                    f"read-write race on BAT {ident!r}: {writers[0].label} "
                    f"mutates it while {reader.label} reads it",
                    Severity.ERROR,
                    source=source,
                    line=self._first_line(writers[0], ident, ("write",)),
                )
            if len(assigners) >= 2:
                report.add(
                    "RACE003",
                    f"lost update: {ident!r} is assigned in "
                    f"{len(assigners)} concurrent branches; the surviving "
                    f"value depends on scheduling",
                    Severity.WARNING,
                    source=source,
                    line=self._first_line(assigners[0], ident, ("assign",)),
                )

    def _report_catalog_races(
        self,
        branches: list[_BranchEffects],
        report: DiagnosticReport,
        source: str,
    ) -> None:
        names = sorted(
            {n for b in branches for n in b.catalog if n is not None}
        )
        conflicted: set[str] = set()
        for catalog_name in names:
            involved = [b for b in branches if catalog_name in b.catalog]
            if len(involved) >= 2:
                conflicted.add(catalog_name)
                first, second = involved[:2]
                report.add(
                    "RACE001",
                    f"write-write race on catalog name {catalog_name!r}: "
                    f"{first.label} and {second.label} both persist or drop "
                    f"it concurrently",
                    Severity.ERROR,
                    source=source,
                    line=first.catalog[catalog_name][0].line,
                )
        for branch in branches:
            for catalog_name, effects in branch.catalog.items():
                if catalog_name in conflicted:
                    continue  # already a RACE001; one finding per defect
                report.add(
                    "RACE004",
                    f"catalog mutation"
                    + (f" of {catalog_name!r}" if catalog_name else "")
                    + f" inside {branch.label} auto-commits the WAL "
                    f"mid-fan-out; move it outside the PARALLEL block or "
                    f"into a transaction",
                    Severity.WARNING,
                    source=source,
                    line=effects[0].line,
                )

    @staticmethod
    def _first_line(
        branch: _BranchEffects, ident: str, kinds: tuple[str, ...]
    ) -> int | None:
        for effect in branch.variables.get(ident, ()):
            if effect.kind in kinds:
                return effect.line
        return branch.line

    # -- effect collection -----------------------------------------------
    def _collect(
        self, node: Any, branch: _BranchEffects, locals_: set[str]
    ) -> None:
        """Accumulate the shared-state effects of one branch statement."""
        match node:
            case None | Literal():
                pass
            case Name(ident=ident, line=line):
                if ident not in locals_:
                    branch.touch(ident, "read", line)
            case VarDecl(ident=ident, value=value):
                self._collect(value, branch, locals_)
                locals_.add(ident)
            case Assign(ident=ident, value=value, line=line):
                self._collect(value, branch, locals_)
                if ident not in locals_:
                    branch.touch(ident, "assign", line)
            case ExprStmt(expr=expr) | Return(expr=expr):
                self._collect(expr, branch, locals_)
            case MethodCall(target=target, method=method, args=args, line=line):
                if (
                    isinstance(target, Name)
                    and target.ident not in locals_
                ):
                    if method in APPEND_METHODS:
                        kind = "append"
                    elif method in WRITE_METHODS:
                        kind = "write"
                    else:
                        kind = "read"
                    branch.touch(target.ident, kind, line)
                else:
                    self._collect(target, branch, locals_)
                for arg in args:
                    self._collect(arg, branch, locals_)
            case Call(func=func, args=args, line=line):
                if func in CATALOG_COMMANDS:
                    catalog_name = (
                        args[0].value
                        if args and isinstance(args[0], Literal)
                        and isinstance(args[0].value, str)
                        else None
                    )
                    branch.catalog.setdefault(catalog_name, []).append(
                        _Effect("write", line)
                    )
                    for arg in args[1:]:
                        self._collect(arg, branch, locals_)
                else:
                    for arg in args:
                        self._collect(arg, branch, locals_)
            case BinOp(left=left, right=right):
                self._collect(left, branch, locals_)
                self._collect(right, branch, locals_)
            case UnaryOp(operand=operand):
                self._collect(operand, branch, locals_)
            case If(cond=cond, then=then, orelse=orelse):
                self._collect(cond, branch, locals_)
                for sub in (*then, *orelse):
                    self._collect(sub, branch, locals_)
            case While(cond=cond, body=body):
                self._collect(cond, branch, locals_)
                for sub in body:
                    self._collect(sub, branch, locals_)
            case Parallel(body=body):
                # a nested fan-out's effects still belong to this branch
                for sub in body:
                    self._collect(sub, branch, locals_)
            case _:
                pass


# ---------------------------------------------------------------------------
# convenience entry point
# ---------------------------------------------------------------------------


def check_race_source(
    source: str,
    name: str = "<mil>",
    commands: Mapping[str, Any] | Iterable[str] | None = None,
    signatures: Mapping[str, Any] | None = None,
    globals_names: Iterable[str] = (),
    procedures: Mapping[str, Any] | None = None,
) -> DiagnosticReport:
    """Parse and race-check MIL source text."""
    return RaceChecker(commands, signatures, globals_names, procedures).check_source(
        source, name=name
    )
