"""Whole-program interprocedural analysis of MIL procedures (``CALLnnn``).

Every earlier pass is intraprocedural: a ``CALL`` is a hole in their facts.
This pass closes the hole. It builds the call graph over all registered
procedures (:mod:`repro.check.callgraph`), computes one
:class:`ProcSummary` per PROC — effects in the fusecheck vocabulary
(commits / impure / parameter appends vs. writes / global writes), flow
facts from flowcheck, a cost estimate from costcheck, and cancellation
reachability in the servicecheck sense — and propagates summaries bottom-up
in SCC order, iterating recursive components to a fixpoint, so the existing
codes' concerns fire *across* call boundaries.

Summaries are memoized in a :class:`SummaryCache` keyed by the procedure's
source :func:`~repro.check.callgraph.fingerprint`: repeated registrations
of unchanged procs are cache hits, and redefining a proc invalidates (and
re-analyzes) exactly its transitive callers.

Fusion regions become *program-level* here: a call to a callee whose
summary is pure no longer breaks a region the way intraprocedural
fusecheck must assume — the region extends across the call. That extension
is what CALL003 guards: when a callee is later redefined so that it commits
a WAL transaction, every caller whose certified program-level region
contains a call to it has a stale certificate, and the redefinition is
rejected at the choke point.

Diagnostic codes:

========  =============  ==================================================
code      severity       meaning
========  =============  ==================================================
CALL001   error          call target undefined at registration: the name is
                         no command, no registered/pending PROC, no local,
                         and no catalog global
CALL002   error/warning  unbounded recursion: a call-graph cycle whose
                         recursive call is unconditional (error — the
                         runtime guard will raise ``MilRecursionError`` at
                         ``MIL_RECURSION_LIMIT``), or a conditional cycle
                         with no reachable ``cancelpoint()`` (warning — the
                         depth guard is the only backstop)
CALL003   error          a callee (transitively) commits a WAL transaction
                         inside a caller's certified program-level fusion
                         region — the redefinition invalidates the caller's
                         certificate
CALL004   error          a callee writes (non-append) a BAT that another
                         ``PARALLEL`` branch of the caller touches — an
                         interprocedural race invisible to racecheck
========  =============  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

from repro.check.callgraph import CallGraph, collect_call_sites, fingerprint
from repro.check.diagnostics import DiagnosticReport, Severity
from repro.check.fusecheck import IMPURE_COMMANDS, FuseChecker
from repro.check.racecheck import APPEND_METHODS, CATALOG_COMMANDS, WRITE_METHODS
from repro.check.servicecheck import CHECKPOINT_COMMANDS
from repro.errors import MilSyntaxError
from repro.monet.mil import (
    MIL_RECURSION_LIMIT,
    Assign,
    Call,
    ExprStmt,
    If,
    MethodCall,
    MilProcedure,
    Name,
    Parallel,
    ProcDef,
    Return,
    VarDecl,
    While,
    parse,
)

__all__ = [
    "ProcSummary",
    "ProgramChecker",
    "SummaryCache",
    "check_program_source",
]


@dataclass(frozen=True)
class ProcSummary:
    """Transitive effect/flow/cost facts of one procedure.

    ``param_appends``/``param_writes`` are parameter *indices*: callers map
    them back onto their own argument names at each call site. All fields
    are transitive — a proc that calls ``persist`` three levels down still
    has ``commits=True``.
    """

    name: str
    fingerprint: str
    #: Transitively commits a WAL transaction (``persist``/``drop``).
    commits: bool = False
    #: Residual impure calls reachable from the body (print, threadcnt, …)
    #: — catalog commits are tracked separately in ``commits``.
    impure: tuple[str, ...] = ()
    #: Parameter indices the proc (transitively) appends to.
    param_appends: tuple[int, ...] = ()
    #: Parameter indices the proc (transitively) mutates non-append.
    param_writes: tuple[int, ...] = ()
    #: Catalog/global names the proc (transitively) mutates non-append.
    global_writes: tuple[str, ...] = ()
    #: A ``cancelpoint()`` is reachable from the body (servicecheck sense).
    has_cancelpoint: bool = False
    #: costcheck estimate of one call, callee costs included.
    cost: float = 0.0
    #: Number of flowcheck findings in the body (0 = flow-clean).
    flow_findings: int = 0
    #: Distinct procedure callees, in first-call order.
    calls: tuple[str, ...] = ()

    @property
    def pure(self) -> bool:
        """Safe to fuse across a call: no commits, no residual impurity."""
        return not self.commits and not self.impure


@dataclass
class _Entry:
    fingerprint: str
    summary: ProcSummary
    #: Call sites to known procs inside certified program-level regions,
    #: as ``(callee, line, start_line, end_line)`` — the CALL003 facts.
    region_calls: tuple[tuple[str, int | None, int, int], ...]
    definition: ProcDef


class SummaryCache:
    """Per-proc summary memo keyed by source fingerprint.

    One instance lives on each :class:`repro.monet.mil.MilInterpreter`
    (``program_cache``) so repeated ``define_proc`` calls re-analyze only
    procs whose source actually changed. ``hits``/``misses``/
    ``invalidations`` make the memoization testable.
    """

    def __init__(self) -> None:
        self.entries: dict[str, _Entry] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, name: str, fp: str) -> _Entry | None:
        entry = self.entries.get(name)
        if entry is not None and entry.fingerprint == fp:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, name: str, entry: _Entry) -> None:
        self.entries[name] = entry

    def invalidate(self, name: str) -> None:
        if name in self.entries:
            del self.entries[name]
            self.invalidations += 1

    def callers_of(self, name: str) -> list[str]:
        return sorted(
            caller
            for caller, entry in self.entries.items()
            if name in entry.summary.calls
        )


class _ProgramFuseChecker(FuseChecker):
    """Fusecheck with summary-aware call classification.

    Where intraprocedural fusecheck must treat every proc call as impure,
    this variant consults the callee's :class:`ProcSummary`: a pure callee
    is region-transparent (the region extends across the call), an impure
    or committing callee stays a barrier.
    """

    def __init__(self, summaries: Mapping[str, ProcSummary], **environment: Any):
        super().__init__(**environment)
        self._summaries = summaries

    def _classify_call(
        self, func: str, flags: dict[str, bool], impure: list[str]
    ) -> None:
        summary = self._summaries.get(func)
        if summary is not None:
            if summary.pure:
                flags["bat"] = True  # a pure callee is fusible BAT work
                return
            if summary.commits:
                flags["commit"] = True
            impure.append(func)
            return
        super()._classify_call(func, flags, impure)


class ProgramChecker:
    """Whole-program call-graph analysis (CALL001–CALL004).

    Constructor arguments mirror the other passes so one ``**environment``
    serves all of them; ``cache`` is the interpreter's persistent
    :class:`SummaryCache` (a fresh one is used when omitted).
    """

    def __init__(
        self,
        commands: Mapping[str, Any] | Iterable[str] | None = None,
        signatures: Mapping[str, Any] | None = None,
        globals_names: Iterable[str] = (),
        procedures: Mapping[str, Any] | None = None,
        cache: SummaryCache | None = None,
    ):
        self._commands = set(commands or ())
        self._signatures = dict(signatures or {})
        self._globals = set(globals_names)
        self._context: dict[str, ProcDef] = {
            name: (p.definition if isinstance(p, MilProcedure) else p)
            for name, p in (procedures or {}).items()
        }
        self._cache = cache if cache is not None else SummaryCache()

    # -- entry points ----------------------------------------------------
    def check_source(self, source: str, name: str = "<mil>") -> DiagnosticReport:
        """Parse MIL source and program-check its PROCs in define order.

        Definitions are processed sequentially, so an in-file redefinition
        that breaks an earlier caller's certificate (CALL003) is caught the
        same way the interpreter's choke point catches it.
        """
        report = DiagnosticReport()
        try:
            statements = parse(source)
        except MilSyntaxError:
            return report  # syntax is milcheck's job
        defs = [s for s in statements if isinstance(s, ProcDef)]
        # seed forward references with their FIRST definition only: a later
        # in-file redefinition must stay invisible until its own define
        # step, or the temporal CALL003 semantics would evaporate
        for definition in defs:
            self._context.setdefault(definition.name, definition)
        for definition in defs:
            report.extend(self.on_define(definition, source=name))
        return report

    def check_program(
        self, procedures: Mapping[str, Any] | None = None
    ) -> DiagnosticReport:
        """Program-check an already-registered procedure set in order."""
        procs = {
            name: (p.definition if isinstance(p, MilProcedure) else p)
            for name, p in (procedures or self._context).items()
        }
        self._context.update(procs)
        report = DiagnosticReport()
        for definition in procs.values():
            report.extend(self.on_define(definition, source=definition.name))
        return report

    def summary(self, name: str) -> ProcSummary | None:
        entry = self._cache.entries.get(name)
        return entry.summary if entry is not None else None

    # -- incremental define ----------------------------------------------
    def on_define(
        self, definition: ProcDef | MilProcedure, source: str | None = None
    ) -> DiagnosticReport:
        """Analyze one (re)definition against the cached program state."""
        if isinstance(definition, MilProcedure):
            definition = definition.definition
        name = definition.name
        src = source or name
        report = DiagnosticReport()
        fp = fingerprint(definition)
        previous = self._cache.entries.get(name)
        redefined = previous is not None and previous.fingerprint != fp
        self._context[name] = definition

        entry = self._cache.lookup(name, fp)
        if entry is None:
            entry = self._compute_entry(name, definition, fp)
            self._cache.store(name, entry)

        self._check_unresolved(definition, entry, report, src)
        self._check_recursion(name, report, src)
        self._check_parallel_races(definition, entry, report, src)
        if redefined:
            self._check_stale_certificates(name, entry.summary, report, src)
            self._recompute_callers(name)
        return report

    # -- summary computation ---------------------------------------------
    def _compute_entry(self, name: str, definition: ProcDef, fp: str) -> _Entry:
        summaries = self._resolve_summaries(name)
        summary = self._summarize(definition, fp, summaries)
        # fixpoint for recursion: re-summarize against a view including
        # this proc until the summary is stable (effects are monotone over
        # a finite lattice, so this terminates quickly)
        for _ in range(len(summary.calls) + 2):
            view = {**summaries, name: summary}
            nxt = self._summarize(definition, fp, view)
            if nxt == summary:
                break
            summary = nxt
        region_calls = self._region_calls(
            definition, {**summaries, name: summary}
        )
        return _Entry(fp, summary, region_calls, definition)

    def _resolve_summaries(self, pending: str) -> dict[str, ProcSummary]:
        """Summaries for the pending proc's callee closure, bottom-up.

        Restricted to procs reachable from the pending definition: eagerly
        summarizing unrelated procs would cache premature entries for
        *callers* of the pending proc (whose summary is excluded here),
        and those degraded entries would survive as cache hits.
        """
        closure: dict[str, ProcDef] = {}
        frontier = [
            site.callee
            for site in collect_call_sites(self._context[pending])
            if site.callee in self._context and site.callee != pending
        ]
        while frontier:
            callee = frontier.pop()
            if callee in closure or callee == pending:
                continue
            closure[callee] = self._context[callee]
            frontier.extend(
                site.callee
                for site in collect_call_sites(self._context[callee])
                if site.callee in self._context
            )
        needed = {
            n: d
            for n, d in closure.items()
            if self._cache.lookup(n, fingerprint(d)) is None
        }
        if needed:
            graph = CallGraph(needed)
            for component in graph.sccs():
                self._summarize_component(component, graph)
        out: dict[str, ProcSummary] = {}
        for n, entry in self._cache.entries.items():
            if n != pending:
                out[n] = entry.summary
        return out

    def _summarize_component(
        self, component: tuple[str, ...], graph: CallGraph
    ) -> None:
        view: dict[str, ProcSummary] = {
            n: e.summary for n, e in self._cache.entries.items()
        }
        fps = {n: fingerprint(graph.procs[n]) for n in component}
        # optimistic bootstrap for cycle members, then iterate to fixpoint
        for n in component:
            view[n] = ProcSummary(name=n, fingerprint=fps[n])
        for _ in range(len(component) + 2):
            changed = False
            for n in component:
                nxt = self._summarize(graph.procs[n], fps[n], view)
                if nxt != view[n]:
                    view[n] = nxt
                    changed = True
            if not changed:
                break
        for n in component:
            region_calls = self._region_calls(graph.procs[n], view)
            self._cache.store(
                n, _Entry(fps[n], view[n], region_calls, graph.procs[n])
            )

    def _summarize(
        self,
        definition: ProcDef,
        fp: str,
        summaries: Mapping[str, ProcSummary],
    ) -> ProcSummary:
        params = [p.ident for p in definition.params]
        param_index = {ident: i for i, ident in enumerate(params)}
        locals_: set[str] = set(params)
        _collect_locals(definition.body, locals_)

        commits = False
        impure: list[str] = []
        param_appends: set[int] = set()
        param_writes: set[int] = set()
        global_writes: list[str] = []
        has_cancelpoint = False
        calls: list[str] = []

        def note_write(ident: str, append: bool) -> None:
            if ident in param_index:
                (param_appends if append else param_writes).add(
                    param_index[ident]
                )
            elif ident not in locals_:
                if not append and ident not in global_writes:
                    global_writes.append(ident)

        for site in collect_call_sites(definition):
            func = site.callee
            if func in CATALOG_COMMANDS:
                commits = True
                # persist("name", bat) mutates the catalog entry
                continue
            if func in CHECKPOINT_COMMANDS:
                has_cancelpoint = True
                continue
            if func in IMPURE_COMMANDS:
                if func not in impure:
                    impure.append(func)
                continue
            callee = summaries.get(func)
            if callee is not None:
                if func not in calls:
                    calls.append(func)
                commits = commits or callee.commits
                has_cancelpoint = has_cancelpoint or callee.has_cancelpoint
                for item in callee.impure:
                    if item not in impure:
                        impure.append(item)
                for index in callee.param_appends:
                    if index < len(site.arg_names) and site.arg_names[index]:
                        note_write(site.arg_names[index], append=True)
                for index in callee.param_writes:
                    if index < len(site.arg_names) and site.arg_names[index]:
                        note_write(site.arg_names[index], append=False)
                for ident in callee.global_writes:
                    if ident not in global_writes:
                        global_writes.append(ident)
                continue
            if func in self._context:
                # known proc without a summary yet (cycle bootstrap):
                # recorded as a call edge, effects folded in at fixpoint
                if func not in calls:
                    calls.append(func)

        for target, method in _method_mutations(definition.body):
            note_write(target, append=method in APPEND_METHODS)

        cost = self._estimate_cost(definition, summaries, calls)
        flow_findings = self._count_flow_findings(definition)
        return ProcSummary(
            name=definition.name,
            fingerprint=fp,
            commits=commits,
            impure=tuple(impure),
            param_appends=tuple(sorted(param_appends)),
            param_writes=tuple(sorted(param_writes)),
            global_writes=tuple(global_writes),
            has_cancelpoint=has_cancelpoint,
            cost=cost,
            flow_findings=flow_findings,
            calls=tuple(calls),
        )

    def _estimate_cost(
        self,
        definition: ProcDef,
        summaries: Mapping[str, ProcSummary],
        calls: list[str],
    ) -> float:
        from repro.check.costcheck import CostChecker

        local = CostChecker(
            commands=self._commands,
            signatures=self._signatures,
            globals_names=self._globals,
            procedures=self._context,
        ).estimate_proc(definition)
        transitive = sum(
            summaries[callee].cost for callee in calls if callee in summaries
        )
        return float(local) + float(transitive)

    def _count_flow_findings(self, definition: ProcDef) -> int:
        from repro.check.flowcheck import FlowChecker

        return len(
            FlowChecker(
                commands=self._commands,
                signatures=self._signatures,
                globals_names=self._globals,
                procedures=self._context,
            ).check_proc(definition)
        )

    def _environment(self) -> dict[str, Any]:
        return dict(
            commands=self._commands,
            signatures=self._signatures,
            globals_names=self._globals,
            procedures=self._context,
        )

    def _region_calls(
        self, definition: ProcDef, summaries: Mapping[str, ProcSummary]
    ) -> tuple[tuple[str, int | None, int, int], ...]:
        """Call sites to known procs inside certified program-level regions."""
        checker = _ProgramFuseChecker(summaries, **self._environment())
        plan, _ = checker.analyze_with_report(definition)
        spans = [
            (region.start_line, region.end_line)
            for region in plan.regions
            if region.certified
        ]
        if not spans:
            return ()
        out: list[tuple[str, int | None, int, int]] = []
        for site in collect_call_sites(definition):
            if site.callee not in summaries and site.callee not in self._context:
                continue
            if site.callee in self._commands:
                continue
            for start, end in spans:
                if site.line is not None and start <= site.line <= end:
                    out.append((site.callee, site.line, start, end))
                    break
        return tuple(out)

    # -- diagnostics -----------------------------------------------------
    def _check_unresolved(
        self,
        definition: ProcDef,
        entry: _Entry,
        report: DiagnosticReport,
        source: str,
    ) -> None:
        locals_: set[str] = {p.ident for p in definition.params}
        _collect_locals(definition.body, locals_)
        for site in collect_call_sites(definition):
            func = site.callee
            if (
                func == "new"
                or func in self._commands
                or func in self._context
                or func in locals_
                or func in self._globals
            ):
                continue
            report.add(
                "CALL001",
                f"PROC {definition.name}: call target {func!r} is undefined "
                f"at registration — no command, procedure, local, or catalog "
                f"name resolves it",
                Severity.ERROR,
                source=source,
                line=site.line,
            )

    def _check_recursion(
        self, name: str, report: DiagnosticReport, source: str
    ) -> None:
        graph = CallGraph(
            {
                n: e.definition
                for n, e in self._cache.entries.items()
            }
        )
        for component in graph.recursive_sccs():
            if name not in component:
                continue
            unconditional: tuple[str, int | None] | None = None
            cancellable = False
            for member in component:
                summary = self._cache.entries[member].summary
                cancellable = cancellable or summary.has_cancelpoint
                for site in graph.call_sites(member):
                    if site.callee in component and not site.conditional:
                        if unconditional is None:
                            unconditional = (member, site.line)
            cycle = " -> ".join(component + (component[0],))
            if unconditional is not None:
                member, line = unconditional
                report.add(
                    "CALL002",
                    f"unbounded recursion: cycle {cycle} recurses "
                    f"unconditionally in PROC {member} — the interpreter "
                    f"will raise MilRecursionError at depth "
                    f"{MIL_RECURSION_LIMIT}",
                    Severity.ERROR,
                    source=source,
                    line=line,
                )
            elif not cancellable:
                site_line = next(
                    (
                        s.line
                        for member in component
                        for s in graph.call_sites(member)
                        if s.callee in component
                    ),
                    None,
                )
                report.add(
                    "CALL002",
                    f"recursion without cancelpoint: cycle {cycle} carries "
                    f"no reachable cancelpoint(), so a cancelled request "
                    f"rides it until the depth guard "
                    f"({MIL_RECURSION_LIMIT}) fires",
                    Severity.WARNING,
                    source=source,
                    line=site_line,
                )

    def _check_parallel_races(
        self,
        definition: ProcDef,
        entry: _Entry,
        report: DiagnosticReport,
        source: str,
    ) -> None:
        """CALL004: callee effects surfaced into PARALLEL branch ownership."""
        fuse = FuseChecker(**self._environment())
        for block in _parallel_blocks(definition.body):
            branches = block.body
            intra = [fuse._branch_summary(branch) for branch in branches]
            sites = [
                s
                for s in collect_call_sites(definition)
                if s.branch is not None
            ]
            # names each branch mutates non-append *via a callee*
            callee_mutations: list[dict[str, str]] = [
                {} for _ in branches
            ]
            for site in sites:
                summary = self.summary(site.callee)
                if summary is None:
                    continue
                if site.branch is None or site.branch >= len(branches):
                    continue
                for index in summary.param_writes:
                    if index < len(site.arg_names) and site.arg_names[index]:
                        callee_mutations[site.branch][
                            site.arg_names[index]
                        ] = site.callee
                for ident in summary.global_writes:
                    callee_mutations[site.branch][ident] = site.callee
            for branch_index, mutations in enumerate(callee_mutations):
                if not mutations:
                    continue
                others_touched: set[str] = set()
                for other_index, (touched, _, assigned) in enumerate(intra):
                    if other_index != branch_index:
                        others_touched |= touched | assigned
                for other_index, other in enumerate(callee_mutations):
                    if other_index != branch_index:
                        others_touched |= set(other)
                for ident in sorted(set(mutations) & others_touched):
                    report.add(
                        "CALL004",
                        f"PROC {definition.name}: callee "
                        f"{mutations[ident]!r} writes BAT {ident!r} inside "
                        f"PARALLEL branch {branch_index + 1} while another "
                        f"branch touches it — an interprocedural race the "
                        f"per-branch ownership analysis cannot see",
                        Severity.ERROR,
                        source=source,
                        line=block.line,
                    )

    def _check_stale_certificates(
        self,
        name: str,
        summary: ProcSummary,
        report: DiagnosticReport,
        source: str,
    ) -> None:
        """CALL003: a redefinition that now commits breaks caller regions."""
        if not summary.commits:
            return
        for caller in self._cache.callers_of(name):
            entry = self._cache.entries[caller]
            for callee, line, start, end in entry.region_calls:
                if callee != name:
                    continue
                report.add(
                    "CALL003",
                    f"callee {name!r} now commits a WAL transaction inside "
                    f"PROC {caller}'s certified fusion region (lines "
                    f"{start}-{end}) — the redefinition invalidates the "
                    f"region's certificate",
                    Severity.ERROR,
                    source=source,
                    line=line,
                )

    def _recompute_callers(self, name: str) -> None:
        """Refresh transitive callers' summaries after a redefinition."""
        seen: set[str] = set()
        frontier = self._cache.callers_of(name)
        while frontier:
            caller = frontier.pop()
            if caller in seen or caller not in self._cache.entries:
                continue
            seen.add(caller)
            definition = self._cache.entries[caller].definition
            self._cache.invalidate(caller)
            entry = self._compute_entry(
                caller, definition, fingerprint(definition)
            )
            self._cache.store(caller, entry)
            frontier.extend(self._cache.callers_of(caller))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _collect_locals(body: list[Any], out: set[str]) -> None:
    for statement in body:
        match statement:
            case VarDecl(ident=ident):
                out.add(ident)
            case If(then=then, orelse=orelse):
                _collect_locals(then, out)
                _collect_locals(orelse, out)
            case While(body=inner) | Parallel(body=inner):
                _collect_locals(inner, out)
            case _:
                pass


def _method_mutations(body: list[Any]) -> list[tuple[str, str]]:
    """(target name, method) pairs for append/write method calls."""
    out: list[tuple[str, str]] = []

    def walk_expr(node: Any) -> None:
        match node:
            case MethodCall(target=target, method=method, args=args):
                walk_expr(target)
                for arg in args:
                    walk_expr(arg)
                if isinstance(target, Name) and (
                    method in APPEND_METHODS or method in WRITE_METHODS
                ):
                    out.append((target.ident, method))
            case Call(args=args):
                for arg in args:
                    walk_expr(arg)
            case _:
                pass

    def walk_stmt(statement: Any) -> None:
        match statement:
            case VarDecl(value=value) | Assign(value=value):
                if value is not None:
                    walk_expr(value)
            case ExprStmt(expr=expr) | Return(expr=expr):
                if expr is not None:
                    walk_expr(expr)
            case If(then=then, orelse=orelse):
                for sub in then + orelse:
                    walk_stmt(sub)
            case While(body=inner) | Parallel(body=inner):
                for sub in inner:
                    walk_stmt(sub)
            case _:
                pass

    for statement in body:
        walk_stmt(statement)
    return out


def _parallel_blocks(body: list[Any]) -> list[Parallel]:
    out: list[Parallel] = []
    for statement in body:
        match statement:
            case Parallel():
                out.append(statement)
                out.extend(_parallel_blocks(statement.body))
            case If(then=then, orelse=orelse):
                out.extend(_parallel_blocks(then))
                out.extend(_parallel_blocks(orelse))
            case While(body=inner):
                out.extend(_parallel_blocks(inner))
            case _:
                pass
    return out


def check_program_source(
    source: str,
    name: str = "<mil>",
    commands: Mapping[str, Any] | Iterable[str] | None = None,
    signatures: Mapping[str, Any] | None = None,
    globals_names: Iterable[str] = (),
    procedures: Mapping[str, Any] | None = None,
    cache: SummaryCache | None = None,
) -> DiagnosticReport:
    """Parse MIL source and run the whole-program pass over its PROCs."""
    return ProgramChecker(
        commands, signatures, globals_names, procedures, cache=cache
    ).check_source(source, name=name)


# `replace` and `field` are re-exported building blocks for summary tweaks
# in tests; keep linters from flagging the dataclass imports as unused.
_ = (replace, field)
