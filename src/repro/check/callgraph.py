"""Call-graph construction over registered MIL procedures.

The nine intraprocedural passes treat a ``CALL`` as a signature-shaped hole:
flowcheck forgets what the callee returns, racecheck cannot see what the
callee mutates, fusecheck conservatively marks every proc call impure. This
module supplies the whole-program structure those passes lack:

* :func:`collect_call_sites` — every :class:`~repro.monet.mil.Call` in a
  procedure body, annotated with its line, whether it is *conditional*
  (lexically under an ``IF``), and which ``PARALLEL`` branch (if any) owns
  it;
* :func:`fingerprint` — a stable hash of a ``ProcDef``'s canonical form, the
  cache key for per-proc summaries (redefining a proc changes the
  fingerprint and invalidates the memoized analysis);
* :class:`CallGraph` — proc → callee edges with reverse edges, unresolved
  targets, and bottom-up SCC ordering (iterative Tarjan), so summary
  propagation visits callees before callers and recognizes recursion as a
  non-trivial SCC.

:mod:`repro.check.programcheck` consumes all three to compute per-PROC
summaries and the ``CALLnnn`` diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
import hashlib
from typing import Any, Iterable, Mapping

from repro.monet.mil import (
    Assign,
    BinOp,
    Call,
    ExprStmt,
    If,
    Literal,
    MethodCall,
    MilProcedure,
    Name,
    Parallel,
    ProcDef,
    Return,
    UnaryOp,
    VarDecl,
    While,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "collect_call_sites",
    "fingerprint",
]


@dataclass(frozen=True)
class CallSite:
    """One ``Call`` in a procedure body, with its structural context."""

    caller: str
    callee: str
    line: int | None
    #: Positional arguments that are plain names (``None`` for computed
    #: arguments) — how parameter effect summaries map back to the
    #: caller's variables.
    arg_names: tuple[str | None, ...]
    #: Lexically under an ``IF``: the call may not execute on every run.
    conditional: bool
    #: Index of the owning ``PARALLEL`` branch, ``None`` outside fan-outs.
    branch: int | None


def collect_call_sites(definition: ProcDef | MilProcedure) -> tuple[CallSite, ...]:
    """Every call expression in a procedure, in source order."""
    if isinstance(definition, MilProcedure):
        definition = definition.definition
    sites: list[CallSite] = []

    def walk_expr(node: Any, conditional: bool, branch: int | None) -> None:
        match node:
            case Call(func=func, args=args, line=line):
                if func != "new":  # new()'s args are type atoms
                    for arg in args:
                        walk_expr(arg, conditional, branch)
                arg_names = tuple(
                    a.ident if isinstance(a, Name) else None for a in args
                )
                sites.append(
                    CallSite(
                        definition.name, func, line, arg_names, conditional, branch
                    )
                )
            case MethodCall(target=target, args=args):
                walk_expr(target, conditional, branch)
                for arg in args:
                    walk_expr(arg, conditional, branch)
            case BinOp(left=left, right=right):
                walk_expr(left, conditional, branch)
                walk_expr(right, conditional, branch)
            case UnaryOp(operand=operand):
                walk_expr(operand, conditional, branch)
            case _:
                pass

    def walk_stmt(statement: Any, conditional: bool, branch: int | None) -> None:
        match statement:
            case VarDecl(value=value) | Assign(value=value):
                if value is not None:
                    walk_expr(value, conditional, branch)
            case ExprStmt(expr=expr) | Return(expr=expr):
                if expr is not None:
                    walk_expr(expr, conditional, branch)
            case If(cond=cond, then=then, orelse=orelse):
                walk_expr(cond, conditional, branch)
                for sub in then + orelse:
                    walk_stmt(sub, True, branch)
            case While(cond=cond, body=body):
                walk_expr(cond, conditional, branch)
                for sub in body:
                    walk_stmt(sub, conditional, branch)
            case Parallel(body=body):
                for index, sub in enumerate(body):
                    walk_stmt(sub, conditional, index)
            case ProcDef():
                pass  # nested defs are analyzed at their own define site
            case _:
                pass

    for statement in definition.body:
        walk_stmt(statement, False, None)
    return tuple(sites)


def fingerprint(definition: ProcDef | MilProcedure) -> str:
    """Stable hash of a procedure's canonical form (the summary cache key)."""
    if isinstance(definition, MilProcedure):
        definition = definition.definition
    digest = hashlib.sha256()
    digest.update(_canonical(definition).encode("utf-8"))
    return digest.hexdigest()[:16]


def _canonical(node: Any) -> str:
    """Deterministic structural dump, line numbers excluded so a pure
    re-layout of the same procedure keeps its cached summary."""
    match node:
        case ProcDef(name=name, params=params, return_type=ret, body=body):
            inner = ";".join(_canonical(s) for s in body)
            sig = ",".join(f"{p.type_name} {p.ident}" for p in params)
            return f"proc {name}({sig}):{ret}{{{inner}}}"
        case VarDecl(ident=ident, value=value):
            return f"var {ident}={_canonical(value)}"
        case Assign(ident=ident, value=value):
            return f"{ident}={_canonical(value)}"
        case ExprStmt(expr=expr):
            return _canonical(expr)
        case Return(expr=expr):
            return f"return {_canonical(expr)}"
        case If(cond=cond, then=then, orelse=orelse):
            t = ";".join(_canonical(s) for s in then)
            e = ";".join(_canonical(s) for s in orelse)
            return f"if({_canonical(cond)}){{{t}}}else{{{e}}}"
        case While(cond=cond, body=body):
            b = ";".join(_canonical(s) for s in body)
            return f"while({_canonical(cond)}){{{b}}}"
        case Parallel(body=body):
            b = ";".join(_canonical(s) for s in body)
            return f"parallel{{{b}}}"
        case Call(func=func, args=args):
            a = ",".join(_canonical(x) for x in args)
            return f"{func}({a})"
        case MethodCall(target=target, method=method, args=args):
            a = ",".join(_canonical(x) for x in args)
            return f"{_canonical(target)}.{method}({a})"
        case BinOp(op=op, left=left, right=right):
            return f"({_canonical(left)}{op}{_canonical(right)})"
        case UnaryOp(op=op, operand=operand):
            return f"({op}{_canonical(operand)})"
        case Name(ident=ident):
            return ident
        case Literal(value=value):
            return repr(value)
        case None:
            return "~"
        case _:
            return repr(node)


class CallGraph:
    """Proc → callee edges over a set of MIL procedure definitions."""

    def __init__(self, procs: Mapping[str, ProcDef | MilProcedure]):
        self.procs: dict[str, ProcDef] = {
            name: (p.definition if isinstance(p, MilProcedure) else p)
            for name, p in procs.items()
        }
        self.sites: dict[str, tuple[CallSite, ...]] = {
            name: collect_call_sites(definition)
            for name, definition in self.procs.items()
        }
        self.edges: dict[str, tuple[str, ...]] = {
            name: tuple(
                dict.fromkeys(
                    s.callee for s in sites if s.callee in self.procs
                )
            )
            for name, sites in self.sites.items()
        }
        reverse: dict[str, list[str]] = {name: [] for name in self.procs}
        for caller, callees in self.edges.items():
            for callee in callees:
                reverse[callee].append(caller)
        self.reverse: dict[str, tuple[str, ...]] = {
            name: tuple(callers) for name, callers in reverse.items()
        }

    def callers_of(self, name: str) -> tuple[str, ...]:
        return self.reverse.get(name, ())

    def call_sites(self, name: str) -> tuple[CallSite, ...]:
        return self.sites.get(name, ())

    def sccs(self) -> list[tuple[str, ...]]:
        """Strongly connected components in bottom-up (callee-first) order.

        Iterative Tarjan over the sorted proc names, so the ordering is
        deterministic. Tarjan emits each SCC only after every SCC it calls
        into has been emitted, which is exactly the order summary
        propagation needs.
        """
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[tuple[str, ...]] = []
        counter = [0]

        for root in sorted(self.procs):
            if root in index:
                continue
            # frames: (node, iterator over callees)
            work: list[tuple[str, Iterable[str]]] = [(root, iter(self.edges[root]))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, callees = work[-1]
                advanced = False
                for callee in callees:
                    if callee not in index:
                        index[callee] = lowlink[callee] = counter[0]
                        counter[0] += 1
                        stack.append(callee)
                        on_stack.add(callee)
                        work.append((callee, iter(self.edges[callee])))
                        advanced = True
                        break
                    if callee in on_stack:
                        lowlink[node] = min(lowlink[node], index[callee])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(tuple(sorted(component)))
        return sccs

    def recursive_sccs(self) -> list[tuple[str, ...]]:
        """SCCs that contain a cycle (mutual recursion, or a self-edge)."""
        out: list[tuple[str, ...]] = []
        for component in self.sccs():
            if len(component) > 1:
                out.append(component)
            else:
                (name,) = component
                if name in self.edges.get(name, ()):
                    out.append(component)
        return out
