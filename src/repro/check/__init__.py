"""Static plan verification for the three-level stack.

Real DBMSs verify plans before running them. This package does the same for
the reproduction's three levels:

* :mod:`repro.check.milcheck` — type/scope checking of MIL procedures
  against the kernel's command signature table (``MILnnn`` codes);
* :mod:`repro.check.moacheck` — shape and binding validation of Moa
  expression trees against the extension registry (``MOAnnn`` codes);
* :mod:`repro.check.modelcheck` — linting of BN/DBN probability models and
  their evidence mappings (``MODELnnn`` codes);
* :mod:`repro.check.catalogcheck` — structural invariants of a BAT catalog
  (``CATnnn`` codes), run by crash recovery before a recovered catalog is
  opened;
* :mod:`repro.check.flowcheck` — cross-level dataflow analysis: abstract
  interpretation over a **type × range × rate** lattice, proving feature
  streams stay in [0, 1] at 10 Hz all the way into the evidence nodes
  (``FLOWnnn`` codes);
* :mod:`repro.check.racecheck` — static lockset/ownership analysis of
  ``PARALLEL`` blocks and catalog writes (``RACEnnn`` codes);
* :mod:`repro.check.costcheck` — abstract interpretation over a
  **cardinality × selectivity × cost** lattice emitting plan-level perf
  lints (``PERFnnn`` codes, advisory) and cost estimates consumed by the
  Cobra preprocessor for plan choice;
* :mod:`repro.check.fusecheck` — purity/effect inference partitioning
  plan bodies into certified fusion regions (``FUSEnnn`` codes,
  advisory), serialized as :class:`FusionPlan` artifacts attached to
  compiled procedures;
* :mod:`repro.check.sanitize` — the runtime sanitizer armed by
  ``check="sanitize"``, enforcing the same FLOW/RACE invariants while
  plans execute;
* :mod:`repro.check.servicecheck` — service-readiness checks run when a
  PROC is registered with :class:`repro.service.QueryService` (``SVCnnn``
  codes): unbounded ``WHILE`` loops must carry a ``cancelpoint()``;
* :mod:`repro.check.replcheck` — replication-topology checks run when a
  :class:`repro.replication.KernelGroup` is constructed (``REPLnnn``
  codes): writes must route to the primary, epoch fencing must be on,
  and the ``bounded(ms)`` read policy must be satisfiable against the
  replicas' registered link lag;
* :mod:`repro.check.shardcheck` — sharded-fleet checks run when a
  :class:`repro.sharding.ShardedKernel` is constructed and when MIL is
  registered for scatter execution (``SHARDnnn`` codes): writes must
  route to the owning shard, replicated shards must fence, a coverage
  floor should be declared, and fusion regions certified under one
  kernel's BAT lock must be de-certified when scattered (SHARD004,
  advisory like PERF/FUSE);
* :mod:`repro.check.programcheck` (with :mod:`repro.check.callgraph`) —
  whole-program interprocedural analysis: per-PROC effect/flow/cost
  summaries propagated bottom-up in SCC order over the call graph of all
  registered procedures, memoized by source fingerprint (``CALLnnn``
  codes): unresolved call targets, unbounded recursion without a
  ``cancelpoint``, callees that commit inside a caller's certified
  fusion region, and interprocedural ``PARALLEL`` races;
* :mod:`repro.check.equivcheck` — Moa→MIL translation validation:
  symbolic execution of both sides over an abstract BAT-algebra
  semantics, certifying every compiled plan equivalent to its source
  expression (``EQnnn`` codes); EQ001 certificates are serialized as
  :class:`EquivalenceCertificate` artifacts on :class:`MilPlan` and gate
  eligibility for compiled execution.

All passes report :class:`Diagnostic` findings through a shared
:class:`DiagnosticReport`; error-severity findings raise the matching
:class:`repro.errors.DiagnosticError` subclass at the registration choke
points (``MilInterpreter.define_proc``, ``MoaCompiler.compile``,
``DbnExtension.register``, the fusion experiments).

Run the linter from the command line::

    python -m repro.check                 # lint built-in procs + networks
    python -m repro.check path/to/file.mil
    python -m repro.check --strict --format sarif examples/
"""

from repro.check.callgraph import CallGraph, CallSite, collect_call_sites, fingerprint
from repro.check.catalogcheck import check_catalog
from repro.check.costcheck import (
    CostChecker,
    check_cost_source,
    check_moa_cost,
    estimate_extraction_cost,
    estimate_model_cost,
    estimate_moa_cost,
)
from repro.check.diagnostics import (
    CheckMode,
    Diagnostic,
    DiagnosticReport,
    Severity,
)
from repro.check.equivcheck import (
    EquivalenceCertificate,
    abstract_mil,
    abstract_moa,
    validate_translation,
)
from repro.check.flowcheck import (
    FlowChecker,
    check_feature_set,
    check_flow_source,
    check_moa_flow,
)
from repro.check.fusecheck import (
    Effects,
    FuseChecker,
    FusionPlan,
    FusionRegion,
    check_fuse_source,
)
from repro.check.milcheck import MilChecker
from repro.check.milcheck import check_proc as check_mil_proc
from repro.check.milcheck import check_source as check_mil_source
from repro.check.moacheck import MoaChecker
from repro.check.moacheck import check_expr as check_moa_expr
from repro.check.modelcheck import check_cpd, check_network, check_template
from repro.check.programcheck import (
    ProcSummary,
    ProgramChecker,
    SummaryCache,
    check_program_source,
)
from repro.check.racecheck import RaceChecker, check_race_source
from repro.check.replcheck import check_group_config, parse_read_policy
from repro.check.sanitize import KernelSanitizer
from repro.check.shardcheck import check_fleet_config, check_scatter_source
from repro.check.servicecheck import (
    ServiceChecker,
    check_service_proc,
    check_service_source,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "CheckMode",
    "CostChecker",
    "Diagnostic",
    "DiagnosticReport",
    "Effects",
    "EquivalenceCertificate",
    "FlowChecker",
    "FuseChecker",
    "FusionPlan",
    "FusionRegion",
    "KernelSanitizer",
    "MilChecker",
    "MoaChecker",
    "ProcSummary",
    "ProgramChecker",
    "RaceChecker",
    "ServiceChecker",
    "Severity",
    "SummaryCache",
    "abstract_mil",
    "abstract_moa",
    "check_catalog",
    "check_cost_source",
    "check_cpd",
    "check_feature_set",
    "check_fleet_config",
    "check_flow_source",
    "check_fuse_source",
    "check_group_config",
    "check_mil_proc",
    "check_mil_source",
    "check_moa_cost",
    "check_moa_expr",
    "check_moa_flow",
    "check_network",
    "check_program_source",
    "check_race_source",
    "check_scatter_source",
    "check_service_proc",
    "check_service_source",
    "check_template",
    "collect_call_sites",
    "estimate_extraction_cost",
    "estimate_model_cost",
    "estimate_moa_cost",
    "fingerprint",
    "parse_read_policy",
    "validate_translation",
]
