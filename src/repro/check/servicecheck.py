"""Service-readiness checks for MIL procedures (``SVCnnn`` codes).

A PROC registered for *service* execution (see
:meth:`repro.service.QueryService.register_proc`) runs on a shared worker
lane under cooperative cancellation: the interpreter checkpoints between
statements, but a hand-written ``WHILE`` whose condition never changes
inside the loop can still spin forever *between* service-visible
boundaries if the body is free of kernel calls. The service layer cannot
preempt a Python thread, so such loops must carry an explicit
``cancelpoint()`` call (the kernel builtin that checks the ambient
cancellation token).

Diagnostic codes:

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
SVC001    error     unbounded WHILE with no cancellation checkpoint in a
                    service-registered PROC
========  ========  =====================================================

A ``WHILE`` counts as *unbounded* when its condition is a constant truthy
literal, or when no variable the condition reads is assigned or mutated
anywhere in the loop body — the loop's own text cannot make it stop. A
``cancelpoint()`` call anywhere in the body (including nested blocks)
satisfies the checkpoint requirement.

This pass runs only at service registration, not at plain
``define_proc`` time: a batch PROC driven interactively is free to loop
on operator input, but one admitted to the shared service must stay
cancellable.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.check.diagnostics import DiagnosticReport, Severity
from repro.errors import MilSyntaxError
from repro.monet.mil import (
    Assign,
    BinOp,
    Call,
    ExprStmt,
    If,
    Literal,
    MethodCall,
    MilProcedure,
    Name,
    Parallel,
    ProcDef,
    Return,
    UnaryOp,
    VarDecl,
    While,
    parse,
)

__all__ = ["ServiceChecker", "check_service_proc", "check_service_source"]

#: Calls recognised as cancellation checkpoints inside a WHILE body.
CHECKPOINT_COMMANDS = frozenset({"cancelpoint"})


class ServiceChecker:
    """Static service-readiness analyzer for MIL procedures."""

    def check_proc(
        self, definition: ProcDef | MilProcedure, source: str | None = None
    ) -> DiagnosticReport:
        """Check one PROC definition for service execution."""
        if isinstance(definition, MilProcedure):
            definition = definition.definition
        report = DiagnosticReport()
        self._check_block(definition.body, definition, report, source or definition.name)
        return report

    def check_source(self, source: str, name: str = "<mil>") -> DiagnosticReport:
        """Parse MIL source and check every PROC it defines."""
        report = DiagnosticReport()
        try:
            statements = parse(source)
        except MilSyntaxError as exc:
            report.add("MIL000", str(exc), Severity.ERROR, source=name, line=exc.line)
            return report
        for statement in statements:
            if isinstance(statement, ProcDef):
                report.extend(self.check_proc(statement, source=name))
        return report

    # ------------------------------------------------------------------
    def _check_block(
        self,
        statements: list[Any],
        proc: ProcDef,
        report: DiagnosticReport,
        source: str,
    ) -> None:
        for statement in statements:
            match statement:
                case While(cond=cond, body=body):
                    if self._unbounded(cond, body) and not self._has_checkpoint(body):
                        report.add(
                            "SVC001",
                            f"PROC {proc.name}: unbounded WHILE with no "
                            f"cancellation checkpoint — the loop condition "
                            f"never changes inside the body and nothing "
                            f"calls cancelpoint(), so a cancelled request "
                            f"could spin forever on a service lane",
                            Severity.ERROR,
                            source=source,
                            line=getattr(statement, "line", None),
                        )
                    self._check_block(body, proc, report, source)
                case If(then=then, orelse=orelse):
                    self._check_block(then, proc, report, source)
                    self._check_block(orelse, proc, report, source)
                case Parallel(body=body):
                    self._check_block(body, proc, report, source)
                case ProcDef(body=body):
                    self._check_block(body, statement, report, source)
                case _:
                    pass

    def _unbounded(self, cond: Any, body: list[Any]) -> bool:
        """Whether the loop text itself can never terminate the loop."""
        if isinstance(cond, Literal):
            return bool(cond.value)
        cond_vars = set(self._names(cond))
        if not cond_vars:
            # a condition made only of calls is opaque — assume bounded
            return False
        mutated = set(self._mutations(body))
        return not (cond_vars & mutated)

    def _names(self, node: Any) -> Iterable[str]:
        match node:
            case Name(ident=ident):
                yield ident
            case BinOp(left=left, right=right):
                yield from self._names(left)
                yield from self._names(right)
            case UnaryOp(operand=operand):
                yield from self._names(operand)
            case MethodCall(target=target, args=args):
                yield from self._names(target)
                for arg in args:
                    yield from self._names(arg)
            case Call(args=args):
                for arg in args:
                    yield from self._names(arg)
            case _:
                return

    def _mutations(self, statements: list[Any]) -> Iterable[str]:
        """Names a block assigns or mutates (method calls count: a BAT the
        condition reads may shrink via ``delete`` and end the loop)."""
        for statement in statements:
            match statement:
                case Assign(ident=ident):
                    yield ident
                case VarDecl(ident=ident):
                    yield ident
                case ExprStmt(expr=MethodCall(target=Name(ident=ident))):
                    yield ident
                case If(then=then, orelse=orelse):
                    yield from self._mutations(then)
                    yield from self._mutations(orelse)
                case While(body=body):
                    yield from self._mutations(body)
                case Parallel(body=body):
                    yield from self._mutations(body)
                case _:
                    pass

    def _has_checkpoint(self, statements: list[Any]) -> bool:
        return any(self._calls_checkpoint(s) for s in statements)

    def _calls_checkpoint(self, node: Any) -> bool:
        match node:
            case Call(func=func, args=args):
                if func in CHECKPOINT_COMMANDS:
                    return True
                return any(self._calls_checkpoint(a) for a in args)
            case ExprStmt(expr=expr) | Return(expr=expr) | Assign(value=expr) | VarDecl(value=expr):
                return expr is not None and self._calls_checkpoint(expr)
            case If(cond=cond, then=then, orelse=orelse):
                return (
                    self._calls_checkpoint(cond)
                    or any(self._calls_checkpoint(s) for s in then)
                    or any(self._calls_checkpoint(s) for s in orelse)
                )
            case While(cond=cond, body=body):
                return self._calls_checkpoint(cond) or any(
                    self._calls_checkpoint(s) for s in body
                )
            case Parallel(body=body):
                return any(self._calls_checkpoint(s) for s in body)
            case BinOp(left=left, right=right):
                return self._calls_checkpoint(left) or self._calls_checkpoint(right)
            case UnaryOp(operand=operand):
                return self._calls_checkpoint(operand)
            case MethodCall(target=target, args=args):
                return self._calls_checkpoint(target) or any(
                    self._calls_checkpoint(a) for a in args
                )
            case _:
                return False


def check_service_proc(
    definition: ProcDef | MilProcedure, source: str | None = None
) -> DiagnosticReport:
    """Check one PROC for service execution (SVC001)."""
    return ServiceChecker().check_proc(definition, source=source)


def check_service_source(source: str, name: str = "<mil>") -> DiagnosticReport:
    """Parse and service-check every PROC in a MIL program."""
    return ServiceChecker().check_source(source, name=name)
