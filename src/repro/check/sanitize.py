"""Runtime sanitizer — the dynamic half of flowcheck/racecheck.

Static analysis proves what it can before a plan runs; everything it cannot
see (values computed at runtime, branches taken, threads scheduled) is the
sanitizer's job.  With ``check="sanitize"`` the kernel arms a
:class:`KernelSanitizer` that instruments the three dynamic choke points:

* **parallel fan-outs** — every :class:`repro.monet.parallel.ParallelExecutor`
  region run through the kernel tags its branch threads with an ownership
  label (thread-local, nesting-safe);
* **catalog access** — ``persist``/``drop`` record an owner-tag per catalog
  name and region; a second write to the same name from a *different*
  branch of the same region is the dynamic form of RACE001, and a catalog
  mutation from a thread that does not own the open transaction is RACE005;
* **command invocation** — commands whose
  :class:`repro.monet.module.CommandSignature` declares ``arg_ranges`` /
  ``returns_range`` get their actual values asserted (scalars directly, BAT
  arguments over every tail value) — the dynamic form of FLOW005.

Violations raise :class:`repro.errors.SanitizerError` carrying the same
diagnostic codes the static passes emit, so one defect reads identically
whether it is caught at ``define_proc`` time or mid-execution under the
fault/chaos harnesses.  All findings (raised or not) accumulate on
:attr:`KernelSanitizer.findings`.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Sequence

from repro.check.diagnostics import Diagnostic, Severity
from repro.errors import SanitizerError
from repro.monet.bat import BAT
from repro.monet.module import CommandSignature

__all__ = ["KernelSanitizer"]

_EPS = 1e-9


class KernelSanitizer:
    """Dynamic invariant checker armed by ``MonetKernel(check="sanitize")``.

    The kernel calls in at three points: :meth:`run_parallel` (wrapping the
    executor), :meth:`on_catalog_write` (from ``persist``/``drop``), and
    :meth:`wrap_command` (from the command call guard).
    """

    def __init__(self, kernel: Any):
        self._kernel = kernel
        self._local = threading.local()
        self._lock = threading.Lock()
        self._region_seq = 0
        #: Every violation observed, in detection order (also raised).
        self.findings: list[Diagnostic] = []

    # ------------------------------------------------------------------
    # parallel region ownership
    # ------------------------------------------------------------------
    def run_parallel(
        self,
        run: Callable[..., list[Any]],
        thunks: Sequence[Callable[[], Any]],
        labels: Sequence[str] | None = None,
    ) -> list[Any]:
        """Run a fan-out with every branch thread tagged by its label."""
        with self._lock:
            self._region_seq += 1
            region = self._region_seq
        state: dict[str, Any] = {"region": region, "writes": {}}
        resolved = (
            list(labels)
            if labels is not None
            else [f"parallel branch {i + 1}" for i in range(len(thunks))]
        )

        def tag(thunk: Callable[[], Any], label: str) -> Callable[[], Any]:
            def branch() -> Any:
                previous = getattr(self._local, "branch", None)
                self._local.branch = (label, state)
                try:
                    return thunk()
                finally:
                    self._local.branch = previous

            return branch

        tagged = [tag(t, label) for t, label in zip(thunks, resolved)]
        return run(tagged, resolved)

    def current_branch(self) -> str | None:
        """Label of the PARALLEL branch this thread is running, if any."""
        branch = getattr(self._local, "branch", None)
        return branch[0] if branch is not None else None

    # ------------------------------------------------------------------
    # catalog ownership
    # ------------------------------------------------------------------
    def on_catalog_write(self, op: str, name: str, bat: BAT | None = None) -> None:
        """Check one ``persist``/``drop`` against ownership invariants."""
        kernel = self._kernel
        if (
            kernel._txn_stack
            and kernel._txn_owner is not None
            and kernel._txn_owner != threading.get_ident()
        ):
            self._violation(
                "RACE005",
                f"{op} of {name!r} from a thread that does not own the "
                f"open transaction",
                source=f"<sanitize:{op}>",
            )
        branch = getattr(self._local, "branch", None)
        if branch is None:
            return
        label, state = branch
        with self._lock:
            writes: dict[str, str] = state["writes"]
            prior = writes.get(name)
            if prior is not None and prior != label:
                self._violation(
                    "RACE001",
                    f"write-write race on catalog name {name!r}: "
                    f"{prior} and {label} both ran {op} concurrently",
                    source=f"<sanitize:{op}>",
                )
            writes[name] = label
        if bat is not None:
            # owner-tag the BAT itself so later regions can attribute it
            bat.owner_tag = label

    # ------------------------------------------------------------------
    # value-range contracts
    # ------------------------------------------------------------------
    def wrap_command(
        self,
        name: str,
        signature: CommandSignature | None,
        fn: Callable[..., Any],
    ) -> Callable[..., Any]:
        """Wrap a kernel command with its declared range assertions."""
        if signature is None or (
            not signature.arg_ranges and signature.returns_range is None
        ):
            return fn

        def guarded(*args: Any) -> Any:
            for index, value in enumerate(args):
                contract = signature.arg_range(index)
                if contract is not None:
                    self._assert_range(
                        value,
                        contract,
                        f"{signature.describe()} argument {index + 1}",
                        name,
                    )
            result = fn(*args)
            if signature.returns_range is not None:
                self._assert_range(
                    result,
                    signature.returns_range,
                    f"{signature.describe()} return value",
                    name,
                )
            return result

        return guarded

    def _assert_range(
        self,
        value: Any,
        contract: tuple[float, float],
        what: str,
        command: str,
    ) -> None:
        lo, hi = contract
        for number in _numeric_values(value):
            if math.isnan(number) or not (lo - _EPS <= number <= hi + _EPS):
                self._violation(
                    "FLOW005",
                    f"{what} holds {number:g}, outside the declared "
                    f"contract [{lo:g}, {hi:g}]",
                    source=f"<sanitize:{command}>",
                )

    # ------------------------------------------------------------------
    def _violation(self, code: str, message: str, source: str) -> None:
        diagnostic = Diagnostic(code, message, Severity.ERROR, source=source)
        self.findings.append(diagnostic)
        raise SanitizerError(f"sanitizer violation {code}", [diagnostic])


def _numeric_values(value: Any) -> list[float]:
    """Numbers a range contract applies to: scalars or a BAT's tail values."""
    if isinstance(value, bool):
        return []
    if isinstance(value, (int, float)):
        return [float(value)]
    if isinstance(value, BAT):
        try:
            return [float(v) for v in value.tails()]
        except (TypeError, ValueError):
            return []
    return []
