"""Command-line linter: ``python -m repro.check [path ...]``.

Without arguments, lints the repo's built-in artifacts: the shipped MIL
procedures (the Fig. 4 parallel-HMM procedure and the Fig. 5b DBN inference
procedure) and the built-in fusion networks (audio structures a/b/c with
temporal variants v1/v2/v3, and the audio-visual DBN).

With arguments, each path is a ``.mil`` file (directories are searched
recursively) linted against the standard Cobra kernel command set.

Exit status: 0 when no error-severity diagnostics were found (warnings are
reported but do not fail), 1 when errors were found, 2 on usage errors.
"""

from __future__ import annotations

from pathlib import Path
import sys

import numpy as np

from repro.check.diagnostics import DiagnosticReport
from repro.check.milcheck import MilChecker
from repro.check.modelcheck import check_template


def _build_kernel():
    """The standard kernel with all four extensions loaded, checks off."""
    from repro.cobra.vdbms import CobraVDBMS

    return CobraVDBMS(check="off").kernel


def _mil_checker(kernel, exclude_procs: tuple[str, ...] = ()) -> MilChecker:
    procedures = {
        name: proc
        for name, proc in kernel.interpreter.procedures.items()
        if name not in exclude_procs
    }
    return MilChecker(
        commands=kernel.command_names(),
        signatures=kernel.command_signatures(),
        globals_names=kernel.catalog_names(),
        procedures=procedures,
    )


def _check_builtin_mil(kernel) -> DiagnosticReport:
    from repro.cobra.extensions import DBN_INFER_PROC
    from repro.hmm.parallel import build_parallel_eval_proc

    # the kernel itself defined dbnInferP at construction time; exclude it
    # so re-linting the shipped source is not a duplicate definition
    checker = _mil_checker(kernel, exclude_procs=("dbnInferP",))
    report = DiagnosticReport()
    report.extend(checker.check_source(DBN_INFER_PROC, name="<dbnInferP>"))
    parallel_source = build_parallel_eval_proc(
        "hmmP", [f"model{i}" for i in range(6)], n_servers=6
    )
    report.extend(checker.check_source(parallel_source, name="<hmmP>"))
    return report


def _check_builtin_models() -> DiagnosticReport:
    from repro.fusion.audio_networks import (
        AUDIO_NODE_TO_FEATURE,
        add_temporal_edges,
        audio_structure,
        fully_parameterized_dbn,
    )
    from repro.fusion.av_network import av_dbn, av_node_to_feature

    report = DiagnosticReport()
    rng_seed = 0
    for kind in ("a", "b", "c"):
        for variant in ("v1", "v2", "v3"):
            template = audio_structure(kind)
            add_temporal_edges(template, variant)
            template.randomize(np.random.default_rng(rng_seed))
            report.extend(
                check_template(
                    template,
                    node_to_feature=AUDIO_NODE_TO_FEATURE,
                    source=f"audio[{kind}/{variant}]",
                )
            )
    report.extend(
        check_template(
            fully_parameterized_dbn(seed=rng_seed),
            node_to_feature=AUDIO_NODE_TO_FEATURE,
            source="audio[fully-parameterized]",
        )
    )
    for include_passing in (True, False):
        report.extend(
            check_template(
                av_dbn(include_passing=include_passing, seed=rng_seed),
                node_to_feature=av_node_to_feature(include_passing),
                source=f"av[passing={include_passing}]",
            )
        )
    return report


def _collect_mil_files(paths: list[str]) -> list[Path] | None:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.mil")))
        elif path.is_file():
            files.append(path)
        else:
            print(f"repro.check: no such file or directory: {raw}", file=sys.stderr)
            return None
    return files


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    report = DiagnosticReport()
    if args:
        files = _collect_mil_files(args)
        if files is None:
            return 2
        checker = _mil_checker(_build_kernel())
        for path in files:
            report.extend(checker.check_source(path.read_text(), name=str(path)))
        checked = f"{len(files)} MIL file(s)"
    else:
        kernel = _build_kernel()
        report.extend(_check_builtin_mil(kernel))
        report.extend(_check_builtin_models())
        checked = "built-in MIL procedures and fusion networks"
    for diagnostic in report:
        print(diagnostic)
    errors, warnings = len(report.errors), len(report.warnings)
    print(
        f"repro.check: {checked}: {errors} error(s), {warnings} warning(s)"
    )
    return 1 if report.has_errors() else 0


if __name__ == "__main__":
    sys.exit(main())
