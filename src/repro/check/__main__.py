"""Command-line linter: ``python -m repro.check [options] [path ...]``.

Without paths, lints the repo's built-in artifacts: the shipped MIL
procedures (the Fig. 4 parallel-HMM procedure and the Fig. 5b DBN inference
procedure) and the built-in fusion networks (audio structures a/b/c with
temporal variants v1/v2/v3, and the audio-visual DBN).

With paths, each is a ``.mil`` file (directories are searched recursively)
linted against the standard Cobra kernel command set.  Every MIL artifact
runs through all seven passes: the per-statement checker
(:mod:`repro.check.milcheck`), the dataflow/range analysis
(:mod:`repro.check.flowcheck`), the PARALLEL race analysis
(:mod:`repro.check.racecheck`), the plan-cost analysis
(:mod:`repro.check.costcheck`), the purity/fusibility analysis
(:mod:`repro.check.fusecheck`), the scatter-placement analysis
(:mod:`repro.check.shardcheck`), and the whole-program call-graph
analysis (:mod:`repro.check.programcheck`).  Lint runs over the built-ins
add an eighth pass: every built-in Moa plan is compiled and its emitted
MIL validated equivalent (:mod:`repro.check.equivcheck`).

Options:

* ``--format text|json|sarif`` — ``text`` (default) prints one gcc-style
  line per diagnostic plus a summary; ``json`` and ``sarif`` print a single
  machine-readable document (SARIF 2.1.0 suits CI annotation uploads).
* ``--strict`` — warnings also fail the build (exit 1).  Advisory families
  (``PERF``/``FUSE`` performance-and-fusibility hints, plus the ``SHARD``
  scatter-placement hints — SHARD004 informs where a plan may run, not
  whether it is correct — and ``EQ003``, which reports that a plan fell
  back to the interpreter, not that it is wrong) are exempt: they never
  change the exit status, so ``--strict`` still fails only on
  error-severity findings plus genuine correctness warnings, and seed
  plans with perf hints keep CI green.  The error-severity SHARD findings
  (SHARD001/SHARD003) are not warnings and fail the build like any other
  error.
* ``--baseline PATH`` — compare the run's diagnostics against a committed
  baseline (JSON mapping ``"CODE@source"`` to counts).  Any (code,
  source) pair that appears more often than the baseline records fails
  the build, advisory or not: a *new* finding on a built-in artifact is a
  regression even when the family is informational.

Exit status: 0 when no failing diagnostics were found, 1 when some were,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.check.costcheck import CostChecker
from repro.check.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.check.flowcheck import FlowChecker
from repro.check.fusecheck import FuseChecker
from repro.check.milcheck import MilChecker
from repro.check.modelcheck import check_template
from repro.check.programcheck import ProgramChecker
from repro.check.racecheck import RaceChecker
from repro.check.shardcheck import check_scatter_source

#: Diagnostic-code prefixes that are advisory: they inform (and land in
#: reports/SARIF) but never fail the build, not even under ``--strict``.
#: Only warning-severity findings consult this list, so SHARD's
#: error-severity configuration findings still fail the build.  EQ003 is
#: the exact-code entry: "unsupported construct, interpreter fallback" is
#: a capability note, while EQ002 (error severity) stays fatal.
ADVISORY_PREFIXES = ("PERF", "FUSE", "SHARD", "EQ003")

_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _build_kernel():
    """The standard kernel with all four extensions loaded, checks off."""
    from repro.cobra.vdbms import CobraVDBMS

    return CobraVDBMS(check="off").kernel


def _checker_env(kernel, exclude_procs: tuple[str, ...] = ()) -> dict:
    procedures = {
        name: proc
        for name, proc in kernel.interpreter.procedures.items()
        if name not in exclude_procs
    }
    return dict(
        commands=kernel.command_names(),
        signatures=kernel.command_signatures(),
        globals_names=kernel.catalog_names(),
        procedures=procedures,
    )


def _check_mil(env: dict, source: str, name: str) -> DiagnosticReport:
    """Run all seven MIL passes over one source artifact."""
    report = DiagnosticReport()
    report.extend(MilChecker(**env).check_source(source, name=name))
    report.extend(FlowChecker(**env).check_source(source, name=name))
    report.extend(RaceChecker(**env).check_source(source, name=name))
    report.extend(CostChecker(**env).check_source(source, name=name))
    report.extend(FuseChecker(**env).check_source(source, name=name))
    report.extend(check_scatter_source(source, name=name, **env))
    report.extend(ProgramChecker(**env).check_source(source, name=name))
    return report


def _check_builtin_mil(kernel) -> DiagnosticReport:
    from repro.cobra.extensions import DBN_INFER_PROC
    from repro.hmm.parallel import build_parallel_eval_proc

    # the kernel itself defined dbnInferP at construction time; exclude it
    # so re-linting the shipped source is not a duplicate definition
    env = _checker_env(kernel, exclude_procs=("dbnInferP",))
    report = DiagnosticReport()
    report.extend(_check_mil(env, DBN_INFER_PROC, "<dbnInferP>"))
    parallel_source = build_parallel_eval_proc(
        "hmmP", [f"model{i}" for i in range(6)], n_servers=6
    )
    report.extend(_check_mil(env, parallel_source, "<hmmP>"))
    return report


def _check_builtin_moa(kernel) -> DiagnosticReport:
    """Pass 8: compile every built-in Moa plan and validate the translation.

    Each plan must come back with an EQ001 certificate; a missing
    certificate surfaces as EQ002 (mis-translation, error) or EQ003
    (unsupported construct, advisory) from the compiler's validator.
    """
    from repro.moa.rewrite import MoaCompiler, builtin_moa_plans

    report = DiagnosticReport()
    compiler = MoaCompiler(kernel, check="warn")
    for plan_name, expr in builtin_moa_plans().items():
        before = len(compiler.diagnostics)
        compiler.compile(expr)
        for diagnostic in compiler.diagnostics[before:]:
            if diagnostic.code.startswith("EQ"):
                report.add(
                    diagnostic.code,
                    f"[{plan_name}] {diagnostic.message}",
                    diagnostic.severity,
                    source=f"<moa:{plan_name}>",
                )
    return report


def _check_builtin_models() -> DiagnosticReport:
    from repro.fusion.audio_networks import (
        AUDIO_NODE_TO_FEATURE,
        add_temporal_edges,
        audio_structure,
        fully_parameterized_dbn,
    )
    from repro.fusion.av_network import av_dbn, av_node_to_feature

    report = DiagnosticReport()
    rng_seed = 0
    for kind in ("a", "b", "c"):
        for variant in ("v1", "v2", "v3"):
            template = audio_structure(kind)
            add_temporal_edges(template, variant)
            template.randomize(np.random.default_rng(rng_seed))
            report.extend(
                check_template(
                    template,
                    node_to_feature=AUDIO_NODE_TO_FEATURE,
                    source=f"audio[{kind}/{variant}]",
                )
            )
    report.extend(
        check_template(
            fully_parameterized_dbn(seed=rng_seed),
            node_to_feature=AUDIO_NODE_TO_FEATURE,
            source="audio[fully-parameterized]",
        )
    )
    for include_passing in (True, False):
        report.extend(
            check_template(
                av_dbn(include_passing=include_passing, seed=rng_seed),
                node_to_feature=av_node_to_feature(include_passing),
                source=f"av[passing={include_passing}]",
            )
        )
    return report


def _collect_mil_files(paths: list[str]) -> list[Path] | None:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.mil")))
        elif path.is_file():
            files.append(path)
        else:
            print(f"repro.check: no such file or directory: {raw}", file=sys.stderr)
            return None
    return files


# ---------------------------------------------------------------------------
# output formats
# ---------------------------------------------------------------------------


def _sarif_location(diagnostic: Diagnostic) -> dict:
    physical: dict = {
        "artifactLocation": {"uri": diagnostic.source or "<input>"}
    }
    if diagnostic.line is not None:
        region: dict = {"startLine": diagnostic.line}
        if diagnostic.col is not None:
            region["startColumn"] = diagnostic.col
        if diagnostic.end_line is not None:
            region["endLine"] = diagnostic.end_line
        physical["region"] = region
    return {"physicalLocation": physical}


def _sarif_document(report: DiagnosticReport) -> dict:
    ordered = report.sorted()
    rules = sorted({d.code for d in ordered})
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.check",
                        "informationUri": "https://example.invalid/repro",
                        "rules": [{"id": code} for code in rules],
                    }
                },
                "results": [
                    {
                        "ruleId": d.code,
                        "level": _SARIF_LEVELS[d.severity],
                        "message": {"text": d.message},
                        "locations": [_sarif_location(d)],
                    }
                    for d in ordered
                ],
            }
        ],
    }


def _json_document(report: DiagnosticReport, checked: str) -> dict:
    return {
        "tool": "repro.check",
        "checked": checked,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "diagnostics": report.to_dicts(),
    }


# ---------------------------------------------------------------------------
# baseline diffing
# ---------------------------------------------------------------------------


def baseline_counts(report: DiagnosticReport) -> dict[str, int]:
    """Histogram of ``"CODE@source"`` keys — the committed-baseline format."""
    counts: dict[str, int] = {}
    for diagnostic in report.sorted():
        key = f"{diagnostic.code}@{diagnostic.source or '<input>'}"
        counts[key] = counts.get(key, 0) + 1
    return counts


def _diff_baseline(report: DiagnosticReport, path: str) -> list[str]:
    """Keys exceeding the committed baseline (new findings = regressions)."""
    try:
        recorded = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        return [f"<unreadable baseline {path}: {exc}>"]
    counts = recorded.get("counts", recorded) if isinstance(recorded, dict) else {}
    regressions: list[str] = []
    for key, count in sorted(baseline_counts(report).items()):
        allowed = int(counts.get(key, 0))
        if count > allowed:
            regressions.append(f"{key} ({count} > baseline {allowed})")
    return regressions


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def _parse_args(argv: list[str]) -> argparse.Namespace | int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Static analysis of MIL/Moa plans and fusion models.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=".mil files or directories (default: lint the built-ins)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="output_format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (exit 1)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="fail on diagnostics not accounted for in this JSON baseline",
    )
    try:
        return parser.parse_args(argv)
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(list(sys.argv[1:] if argv is None else argv))
    if isinstance(args, int):
        return args
    report = DiagnosticReport()
    if args.paths:
        files = _collect_mil_files(args.paths)
        if files is None:
            return 2
        env = _checker_env(_build_kernel())
        for path in files:
            report.extend(_check_mil(env, path.read_text(), str(path)))
        checked = f"{len(files)} MIL file(s)"
    else:
        kernel = _build_kernel()
        report.extend(_check_builtin_mil(kernel))
        report.extend(_check_builtin_models())
        report.extend(_check_builtin_moa(kernel))
        checked = "built-in MIL procedures, fusion networks, and Moa plans"
    errors, warnings = len(report.errors), len(report.warnings)
    if args.output_format == "json":
        print(json.dumps(_json_document(report, checked), indent=2))
    elif args.output_format == "sarif":
        print(json.dumps(_sarif_document(report), indent=2))
    else:
        formatted = report.format()
        if formatted:
            print(formatted)
        print(
            f"repro.check: {checked}: {errors} error(s), {warnings} warning(s)"
        )
    failing_warnings = [
        d
        for d in report.warnings
        if not d.code.startswith(ADVISORY_PREFIXES)
    ]
    if args.baseline:
        regressions = _diff_baseline(report, args.baseline)
        if regressions:
            for item in regressions:
                print(f"repro.check: baseline regression: {item}", file=sys.stderr)
            return 1
    if errors or (args.strict and failing_warnings):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
