"""Static linting of Bayesian networks and DBN templates.

Goes beyond the structural checks of
:meth:`repro.bayes.network.BayesianNetwork.validate` and
:meth:`repro.dbn.template.DbnTemplate.validate`: probability tables are
checked for column stochasticity within a tolerance and for unreachable
(zero-probability) child states, inter-slice edges are sanity-checked
against the observed/hidden split, and evidence-node mappings are verified
against the discretization bins of :mod:`repro.fusion.discretize`.

Diagnostic codes:

=========  ========  ====================================================
code       severity  meaning
=========  ========  ====================================================
MODEL001   error     CPD column not stochastic (negative or sum != 1)
MODEL002   warning   child state with zero probability everywhere
MODEL003   error     node lacks a CPD (BN) or initial/transition CPD (DBN)
MODEL004   error     CPD parents/cardinalities drifted from the structure
MODEL005   warning   inter-slice edge originates or lands on an evidence
                     node (legal, but usually a modelling mistake)
MODEL006   error     observed node unmapped to a feature, or mapped with a
                     non-binary cardinality; warning for mappings to
                     feature names without discretization bins
MODEL007   error     the (intra-slice) graph has a cycle
=========  ========  ====================================================
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.check.diagnostics import DiagnosticReport, Severity
from repro.errors import CpdError, GraphStructureError
from repro.fusion.discretize import KNOWN_FEATURES

__all__ = ["check_cpd", "check_network", "check_template"]

#: Column sums farther than this from 1.0 are MODEL001 errors.
STOCHASTIC_TOLERANCE = 1e-6


def check_cpd(
    variable: Any,
    table: np.ndarray | Sequence,
    cardinality: int | None = None,
    tolerance: float = STOCHASTIC_TOLERANCE,
    source: str | None = None,
    report: DiagnosticReport | None = None,
) -> DiagnosticReport:
    """Lint one raw CPD table (child states along axis 0).

    Operates on raw arrays rather than :class:`repro.bayes.cpd.TabularCpd`
    (which refuses to construct from a bad table), so MODEL001 findings can
    be produced for tables that never made it into a network.
    """
    report = report if report is not None else DiagnosticReport()
    values = np.asarray(table, dtype=np.float64)
    if values.ndim == 0 or values.shape[0] < 1:
        report.add(
            "MODEL001",
            f"CPD of {variable!r} is not a table",
            Severity.ERROR,
            source=source,
        )
        return report
    if cardinality is not None and values.shape[0] != cardinality:
        report.add(
            "MODEL004",
            f"CPD of {variable!r} has {values.shape[0]} child states, "
            f"declared cardinality is {cardinality}",
            Severity.ERROR,
            source=source,
        )
    columns = values.reshape(values.shape[0], -1)
    if np.any(columns < 0):
        report.add(
            "MODEL001",
            f"CPD of {variable!r} contains negative probabilities",
            Severity.ERROR,
            source=source,
        )
    sums = columns.sum(axis=0)
    if not np.allclose(sums, 1.0, atol=tolerance):
        report.add(
            "MODEL001",
            f"CPD of {variable!r} has non-stochastic columns "
            f"(sums range {sums.min():.6f}..{sums.max():.6f}, "
            f"tolerance {tolerance})",
            Severity.ERROR,
            source=source,
        )
    else:
        for state in range(columns.shape[0]):
            if float(columns[state].max()) == 0.0:
                report.add(
                    "MODEL002",
                    f"{variable!r} state {state} has zero probability under "
                    f"every parent configuration (unreachable state)",
                    Severity.WARNING,
                    source=source,
                )
    return report


def check_network(
    network: Any, source: str | None = None
) -> DiagnosticReport:
    """Lint a :class:`repro.bayes.network.BayesianNetwork`."""
    report = DiagnosticReport()
    cpds: dict[Any, Any] = {}
    for node in network.nodes():
        try:
            cpds[node] = network.cpd(node)
        except GraphStructureError:
            report.add(
                "MODEL003",
                f"node {node!r} lacks a CPD",
                Severity.ERROR,
                source=source,
            )
    for node, cpd in cpds.items():
        structural = sorted(map(str, network.dag.parents(node)))
        declared = sorted(map(str, cpd.parents))
        if structural != declared:
            report.add(
                "MODEL004",
                f"node {node!r}: CPD parents {declared} differ from "
                f"graph parents {structural}",
                Severity.ERROR,
                source=source,
            )
        for parent, card in zip(cpd.parents, cpd.parent_cards):
            if parent in cpds and cpds[parent].cardinality != card:
                report.add(
                    "MODEL004",
                    f"node {node!r}: parent {parent!r} declared with "
                    f"cardinality {card}, its CPD has "
                    f"{cpds[parent].cardinality}",
                    Severity.ERROR,
                    source=source,
                )
        check_cpd(
            node, cpd.table, cpd.cardinality, source=source, report=report
        )
    try:
        network.dag.topological_order()
    except GraphStructureError as exc:
        report.add("MODEL007", str(exc), Severity.ERROR, source=source)
    return report


def check_template(
    template: Any,
    node_to_feature: Mapping[str, str] | None = None,
    known_features: Iterable[str] | None = None,
    source: str | None = None,
) -> DiagnosticReport:
    """Lint a :class:`repro.dbn.template.DbnTemplate`.

    Args:
        template: the 2-TBN specification.
        node_to_feature: observed-node -> feature-stream mapping as passed
            to :func:`repro.fusion.discretize.hard_evidence`. When given,
            MODEL006 checks that every observed node is mapped, binary, and
            mapped to a feature with discretization bins.
        known_features: feature names with defined bins; defaults to
            :data:`repro.fusion.discretize.KNOWN_FEATURES`.
        source: label used in diagnostics (e.g. the network name).
    """
    report = DiagnosticReport()
    features = (
        frozenset(known_features) if known_features is not None else KNOWN_FEATURES
    )
    observed = set(template.observed_nodes())
    for name in template.nodes():
        for kind, getter, parents in (
            ("initial", template.initial_cpd, template.initial_parents),
            ("transition", template.transition_cpd, template.transition_parents),
        ):
            try:
                cpd = getter(name)
            except CpdError:
                report.add(
                    "MODEL003",
                    f"node {name!r} has no {kind} CPD",
                    Severity.ERROR,
                    source=source,
                )
                continue
            expected = parents(name)
            if list(cpd.parents) != list(expected):
                report.add(
                    "MODEL004",
                    f"node {name!r}: {kind} CPD parents {cpd.parents} "
                    f"drifted from structure {expected}",
                    Severity.ERROR,
                    source=source,
                )
            else:
                expected_cards = [
                    template.cardinality(p.removesuffix("[t-1]"))
                    for p in expected
                ]
                if list(cpd.parent_cards) != expected_cards:
                    report.add(
                        "MODEL004",
                        f"node {name!r}: {kind} CPD parent cardinalities "
                        f"{cpd.parent_cards} drifted from structure "
                        f"{expected_cards}",
                        Severity.ERROR,
                        source=source,
                    )
            check_cpd(
                f"{name} ({kind})",
                cpd.table,
                template.cardinality(name),
                source=source,
                report=report,
            )
    for parent, child in template.inter_edges():
        if child in observed:
            report.add(
                "MODEL005",
                f"inter-slice edge {parent!r} -> {child!r} lands on an "
                f"evidence node; evidence usually has no temporal parents",
                Severity.WARNING,
                source=source,
            )
        elif parent in observed:
            report.add(
                "MODEL005",
                f"inter-slice edge {parent!r} -> {child!r} originates at an "
                f"evidence node; state should usually flow hidden -> hidden",
                Severity.WARNING,
                source=source,
            )
    if node_to_feature is not None:
        for node in template.observed_nodes():
            if node not in node_to_feature:
                report.add(
                    "MODEL006",
                    f"observed node {node!r} has no feature mapping; "
                    f"evidence construction will fail",
                    Severity.ERROR,
                    source=source,
                )
                continue
            if template.cardinality(node) != 2:
                report.add(
                    "MODEL006",
                    f"observed node {node!r} has cardinality "
                    f"{template.cardinality(node)}; discretized feature "
                    f"evidence is binary",
                    Severity.ERROR,
                    source=source,
                )
            feature = node_to_feature[node]
            if feature not in features:
                report.add(
                    "MODEL006",
                    f"observed node {node!r} maps to feature {feature!r} "
                    f"which has no discretization bins (falls back to a "
                    f"0.5 threshold)",
                    Severity.WARNING,
                    source=source,
                )
        for node in node_to_feature:
            if node in template.nodes() and node not in observed:
                report.add(
                    "MODEL006",
                    f"feature mapping names hidden node {node!r}; only "
                    f"observed nodes receive evidence",
                    Severity.WARNING,
                    source=source,
                )
    try:
        template.validate()
    except CpdError:
        pass  # missing CPDs already reported as MODEL003
    except GraphStructureError as exc:
        message = str(exc)
        code = "MODEL007" if "cycle" in message.lower() else "MODEL004"
        report.add(code, message, Severity.ERROR, source=source)
    return report
