"""Moa→MIL translation validation over an abstract BAT algebra (``EQnnn``).

The paper's rewriting layer (§3, :class:`repro.moa.rewrite.MoaCompiler`)
turns a Moa expression into a MIL ``PROC`` of bulk commands. Nothing in the
nine structural passes proves the emitted plan computes the *same answer*
as the expression it replaced — milcheck would happily bless a plan whose
``mselect`` comparison operator was flipped. This pass closes that gap with
translation validation: both sides are symbolically executed over an
abstract BAT-algebra semantics and certified equivalent, per compilation,
instead of trusting the rewriter once and forever.

The abstract semantics models a BAT as a multiset of (head, tail)
associations with *symbolic* tails. Each operator becomes a term
constructor — ``Sel(op, value)``, ``MapOp(op, value)``, ``Agg(kind)``,
``Set(op)`` — over symbolic input leaves; a plan denotes a term tree.
Normalization quotients the terms by the laws that hold for multisets:
adjacent selections commute (``σ_a ∘ σ_b = σ_b ∘ σ_a``), so maximal
selection chains are sorted; numeric literals are canonicalized through
``float``. Structural equality of the normal forms is the certificate.

Diagnostic codes:

=======  ========  =====================================================
code     severity  meaning
=======  ========  =====================================================
EQ001    info      certified equivalent — an :class:`EquivalenceCertificate`
                   is attached to the :class:`~repro.moa.rewrite.MilPlan`
                   (artifact ``repro.equivcert/1``, like ``FusionPlan``)
EQ002    error     validation failed: the emitted MIL denotes a different
                   term than the Moa expression (raised at
                   ``MoaCompiler.compile`` under ``check="error"``)
EQ003    warning   unsupported construct on either side — no certificate,
                   interpreter fallback required (advisory: never fails
                   ``--strict``)
=======  ========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.check.diagnostics import DiagnosticReport, Severity
from repro.errors import MilSyntaxError
from repro.moa.algebra import (
    Aggregate,
    Arith,
    Cmp,
    Const,
    Expr,
    Map,
    Select,
    SetOp,
    Var,
)
from repro.monet.mil import (
    Call,
    Literal,
    Name,
    ProcDef,
    Return,
    VarDecl,
    parse,
)

__all__ = [
    "EquivalenceCertificate",
    "abstract_mil",
    "abstract_moa",
    "normalize",
    "render",
    "validate_translation",
]


# ---------------------------------------------------------------------------
# abstract BAT-algebra terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatTerm:
    """Base of the term algebra; every node denotes a multiset of
    (head, symbolic tail) associations."""


@dataclass(frozen=True)
class InputBat(BatTerm):
    """A symbolic input BAT, named after the plan parameter."""

    name: str


@dataclass(frozen=True)
class Sel(BatTerm):
    """``σ_{tail <op> value}`` — keeps associations, never reorders tails."""

    source: BatTerm
    op: str
    value: Any


@dataclass(frozen=True)
class MapOp(BatTerm):
    """``[op value]`` — elementwise arithmetic on every tail."""

    source: BatTerm
    op: str
    value: Any


@dataclass(frozen=True)
class Agg(BatTerm):
    """Tail-column aggregate (count/sum/min/max/avg) — a scalar term."""

    source: BatTerm
    kind: str


@dataclass(frozen=True)
class Set(BatTerm):
    """Head-based set combination (union/diff/intersect)."""

    op: str
    left: BatTerm
    right: BatTerm


class UnsupportedConstruct(Exception):
    """Either side stepped outside the abstract semantics (→ EQ003)."""

    def __init__(self, side: str, what: str):
        self.side = side
        self.what = what
        super().__init__(f"{side}: {what}")


# ---------------------------------------------------------------------------
# abstraction: Moa side
# ---------------------------------------------------------------------------


def abstract_moa(expr: Expr) -> BatTerm:
    """Denote a Moa expression in the abstract BAT algebra.

    Exactly the compilable subset of :class:`MoaCompiler` is supported;
    anything else raises :class:`UnsupportedConstruct` (→ EQ003, the plan
    falls back to logical-level evaluation and gets no certificate).
    """
    match expr:
        case Var(name=name):
            return InputBat(name)
        case Select(
            var=var,
            pred=Cmp(op=op, left=Var(name=lv), right=Const(value=value)),
            source=source,
        ) if lv == var:
            return Sel(abstract_moa(source), op, _canonical_value(value))
        case Map(
            var=var,
            body=Arith(op=op, left=Var(name=lv), right=Const(value=value)),
            source=source,
        ) if lv == var:
            return MapOp(abstract_moa(source), op, _canonical_value(value))
        case Aggregate(kind=kind, source=source):
            return Agg(abstract_moa(source), kind)
        case SetOp(op=op, left=left, right=right):
            return Set(op, abstract_moa(left), abstract_moa(right))
        case _:
            raise UnsupportedConstruct(
                "moa", f"{type(expr).__name__} has no abstract denotation"
            )


# ---------------------------------------------------------------------------
# abstraction: MIL side (symbolic execution of the emitted PROC)
# ---------------------------------------------------------------------------

_BULK_COMMANDS = frozenset({"mselect", "mmap", "maggr", "msetop"})


def abstract_mil(
    mil_source: str,
    proc_name: str,
    input_names: Iterable[str] = (),
) -> BatTerm:
    """Symbolically execute an emitted plan PROC into a term.

    The environment starts with each parameter bound to an
    :class:`InputBat` leaf; ``VAR t := bulkcmd(...)`` steps extend it, and
    the ``RETURN`` value is the procedure's denotation. Any statement or
    expression outside the straight-line bulk-command shape raises
    :class:`UnsupportedConstruct`.
    """
    try:
        statements = parse(mil_source)
    except MilSyntaxError as exc:
        raise UnsupportedConstruct("mil", f"unparseable plan: {exc}") from exc
    definition = next(
        (
            s
            for s in statements
            if isinstance(s, ProcDef) and s.name == proc_name
        ),
        None,
    )
    if definition is None:
        raise UnsupportedConstruct("mil", f"no PROC {proc_name} in plan source")

    env: dict[str, BatTerm] = {
        p.ident: InputBat(p.ident) for p in definition.params
    }
    for name in input_names:
        env.setdefault(name, InputBat(name))

    def denote(node: Any) -> BatTerm:
        match node:
            case Name(ident=ident):
                if ident not in env:
                    raise UnsupportedConstruct(
                        "mil", f"unbound name {ident!r} in plan body"
                    )
                return env[ident]
            case Call(func="mselect", args=[src, op, value]):
                return Sel(
                    denote(src), _literal_str(op), _literal_value(value)
                )
            case Call(func="mmap", args=[src, op, value]):
                return MapOp(
                    denote(src), _literal_str(op), _literal_value(value)
                )
            case Call(func="maggr", args=[src, kind]):
                return Agg(denote(src), _literal_str(kind))
            case Call(func="msetop", args=[op, left, right]):
                return Set(_literal_str(op), denote(left), denote(right))
            case Call(func=func):
                raise UnsupportedConstruct(
                    "mil", f"call to {func!r} is outside the bulk algebra"
                )
            case _:
                raise UnsupportedConstruct(
                    "mil",
                    f"{type(node).__name__} expression has no abstract "
                    f"denotation",
                )

    result: BatTerm | None = None
    for statement in definition.body:
        match statement:
            case VarDecl(ident=ident, value=value) if value is not None:
                env[ident] = denote(value)
            case Return(expr=expr) if expr is not None:
                result = denote(expr)
                break
            case _:
                raise UnsupportedConstruct(
                    "mil",
                    f"{type(statement).__name__} statement breaks the "
                    f"straight-line plan shape",
                )
    if result is None:
        raise UnsupportedConstruct("mil", "plan PROC never returns a value")
    return result


def _literal_str(node: Any) -> str:
    if isinstance(node, Literal) and isinstance(node.value, str):
        return node.value
    raise UnsupportedConstruct("mil", "expected a string literal argument")


def _literal_value(node: Any) -> Any:
    if isinstance(node, Literal):
        return _canonical_value(node.value)
    raise UnsupportedConstruct("mil", "expected a literal argument")


def _canonical_value(value: Any) -> Any:
    """Quotient numeric literals: ``0.6`` and ``Const(0.6)`` must agree
    after a round-trip through MIL source text."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return value
    return float(value)


# ---------------------------------------------------------------------------
# normalization and certificates
# ---------------------------------------------------------------------------


def normalize(term: BatTerm) -> BatTerm:
    """Normal form under the multiset laws.

    Adjacent selections commute (each keeps a subset of associations and
    never rewrites a tail), so a maximal ``Sel`` chain is sorted by
    ``(op, value)``. Nothing else commutes in general: ``MapOp`` rewrites
    the tails a later ``Sel`` inspects, ``Set`` is head-based, ``Agg``
    collapses to a scalar.
    """
    match term:
        case Sel():
            filters: list[tuple[str, Any]] = []
            node: BatTerm = term
            while isinstance(node, Sel):
                filters.append((node.op, node.value))
                node = node.source
            base = normalize(node)
            for op, value in sorted(
                filters, key=lambda f: (f[0], repr(f[1]))
            ):
                base = Sel(base, op, value)
            return base
        case MapOp(source=source, op=op, value=value):
            return MapOp(normalize(source), op, value)
        case Agg(source=source, kind=kind):
            return Agg(normalize(source), kind)
        case Set(op=op, left=left, right=right):
            return Set(op, normalize(left), normalize(right))
        case _:
            return term


def render(term: BatTerm) -> str:
    """Deterministic s-expression rendering (certificate payload)."""
    match term:
        case InputBat(name=name):
            return name
        case Sel(source=source, op=op, value=value):
            return f"(sel {op} {value!r} {render(source)})"
        case MapOp(source=source, op=op, value=value):
            return f"(map {op} {value!r} {render(source)})"
        case Agg(source=source, kind=kind):
            return f"(agg {kind} {render(source)})"
        case Set(op=op, left=left, right=right):
            return f"(set {op} {render(left)} {render(right)})"
        case _:
            return repr(term)


@dataclass(frozen=True)
class EquivalenceCertificate:
    """Proof token that a compiled plan denotes its Moa expression.

    Attached to :class:`~repro.moa.rewrite.MilPlan` the way ``FusionPlan``
    is; the Cobra preprocessor admits only certified plans to the future
    compiled-execution path.
    """

    proc_name: str
    #: Rendered normal form both sides reduced to.
    normal_form: str
    #: Rendered (un-normalized) denotations of each side.
    moa_term: str
    mil_term: str
    inputs: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "artifact": "repro.equivcert/1",
            "proc": self.proc_name,
            "normal_form": self.normal_form,
            "moa_term": self.moa_term,
            "mil_term": self.mil_term,
            "inputs": list(self.inputs),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EquivalenceCertificate":
        if payload.get("artifact") != "repro.equivcert/1":
            raise ValueError(
                f"not an equivalence certificate: {payload.get('artifact')!r}"
            )
        return cls(
            proc_name=str(payload["proc"]),
            normal_form=str(payload["normal_form"]),
            moa_term=str(payload["moa_term"]),
            mil_term=str(payload["mil_term"]),
            inputs=tuple(payload.get("inputs", ())),
        )


def validate_translation(
    expr: Expr,
    mil_source: str,
    proc_name: str,
    input_names: Iterable[str] = (),
    source: str = "<moa-plan>",
) -> tuple[EquivalenceCertificate | None, DiagnosticReport]:
    """Certify that an emitted MIL plan denotes its Moa expression.

    Returns ``(certificate, report)``: EQ001 + certificate on success,
    EQ002 error + ``None`` on a real mismatch, EQ003 advisory + ``None``
    when either side uses a construct the abstract semantics cannot model.
    """
    report = DiagnosticReport()
    try:
        moa_term = abstract_moa(expr)
        mil_term = abstract_mil(mil_source, proc_name, input_names)
    except UnsupportedConstruct as exc:
        report.add(
            "EQ003",
            f"plan {proc_name}: translation not validated — {exc.side} side "
            f"uses an unsupported construct ({exc.what}); interpreter "
            f"fallback required, no certificate issued",
            Severity.WARNING,
            source=source,
        )
        return None, report
    moa_normal = normalize(moa_term)
    mil_normal = normalize(mil_term)
    if moa_normal != mil_normal:
        report.add(
            "EQ002",
            f"plan {proc_name}: emitted MIL is NOT equivalent to its Moa "
            f"expression — moa ⇒ {render(moa_normal)} but mil ⇒ "
            f"{render(mil_normal)}",
            Severity.ERROR,
            source=source,
        )
        return None, report
    certificate = EquivalenceCertificate(
        proc_name=proc_name,
        normal_form=render(moa_normal),
        moa_term=render(moa_term),
        mil_term=render(mil_term),
        inputs=tuple(input_names),
    )
    report.add(
        "EQ001",
        f"plan {proc_name}: certified equivalent to its Moa expression "
        f"(normal form {certificate.normal_form})",
        Severity.INFO,
        source=source,
    )
    return certificate, report
