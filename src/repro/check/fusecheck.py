"""Purity/effect inference and certified fusion regions over MIL plans.

ROADMAP item 1 wants MIL plans compiled into fused numpy pipelines.  Fusing
is only sound across statements that are *pure* with respect to the kernel's
shared state: no catalog commits, no I/O, no scheduler interaction.  This
pass infers a per-statement effect summary

    reads × writes × appends × allocates × commits × impure-calls

and partitions every procedure body into **fusion regions** — maximal runs
of pure statements in straight-line code that contain at least one
BAT-level computation.  Control statements (``IF``/``WHILE``/``PARALLEL``)
are region barriers whose bodies are partitioned recursively.

Regions inside ``PARALLEL`` branches are *certified* only when the
racecheck ownership facts hold: concurrent appends (``insert`` /
``insert_bulk``) commute under the BAT lock, but a region touching a name
that another branch mutates non-append (or assigns as a scalar) cannot be
fused without observing the race.  Top-level regions are always certified —
the interpreter is single-threaded outside ``PARALLEL``.

The partition is serialized as a :class:`FusionPlan` artifact and attached
to every compiled :class:`repro.monet.mil.MilProcedure` (and, through
:class:`repro.moa.rewrite.MoaCompiler`, to every :class:`MilPlan`).  The
PR 7 fused-kernel compiler consumes exactly these regions.

Diagnostic codes (all advisory — they never fail ``--strict``):

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
FUSE001   info      certified fusion region of >= 2 statements
FUSE002   warning   a single impure statement splits two fusible regions
                    (hoisting it would enlarge the fused span)
FUSE003   warning   fusible statements left uncertified by a cross-branch
                    ownership conflict
========  ========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.check.diagnostics import DiagnosticReport, Severity
from repro.check.racecheck import APPEND_METHODS, CATALOG_COMMANDS, WRITE_METHODS
from repro.errors import MilSyntaxError
from repro.monet.mil import (
    Assign,
    BinOp,
    Call,
    ExprStmt,
    If,
    Literal,
    MethodCall,
    MilProcedure,
    Name,
    Parallel,
    ProcDef,
    Return,
    UnaryOp,
    VarDecl,
    While,
    parse,
)

__all__ = [
    "Effects",
    "FuseChecker",
    "FusionPlan",
    "FusionRegion",
    "IMPURE_COMMANDS",
    "check_fuse_source",
]

#: Kernel commands with effects beyond their return value: scheduler state,
#: stdout, catalog allocation/commit, and cancellation checkpoints.
IMPURE_COMMANDS = frozenset(
    {"threadcnt", "print", "bat", "persist", "drop", "cancelpoint"}
)


@dataclass(frozen=True)
class Effects:
    """Effect summary of one MIL statement (straight-line, non-control)."""

    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    appends: tuple[str, ...] = ()
    allocates: bool = False
    commits: bool = False
    #: Names of impure calls (commands, procedures, unknowns) in the stmt.
    impure: tuple[str, ...] = ()
    #: True when the statement computes on BATs (fusion-worthy work).
    bat_compute: bool = False

    @property
    def pure(self) -> bool:
        """Safe to reorder/fuse: no commits, no impure calls."""
        return not self.commits and not self.impure

    @property
    def touched(self) -> frozenset[str]:
        return frozenset(self.reads) | frozenset(self.writes) | frozenset(
            self.appends
        )


@dataclass(frozen=True)
class FusionRegion:
    """One maximal fusible run of statements."""

    index: int
    #: Dotted location: ``body``, ``body.while@12``, ``body.parallel@4[2]``.
    path: str
    start_line: int
    end_line: int
    statements: int
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    allocates: bool
    certified: bool
    reason: str = ""

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "path": self.path,
            "start_line": self.start_line,
            "end_line": self.end_line,
            "statements": self.statements,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "allocates": self.allocates,
            "certified": self.certified,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FusionRegion":
        return cls(
            index=int(data["index"]),
            path=str(data["path"]),
            start_line=int(data["start_line"]),
            end_line=int(data["end_line"]),
            statements=int(data["statements"]),
            inputs=tuple(data["inputs"]),
            outputs=tuple(data["outputs"]),
            allocates=bool(data["allocates"]),
            certified=bool(data["certified"]),
            reason=str(data.get("reason", "")),
        )


@dataclass(frozen=True)
class FusionPlan:
    """The fusion partition of one procedure — a serializable artifact."""

    proc: str
    regions: tuple[FusionRegion, ...] = ()

    def __len__(self) -> int:
        return len(self.regions)

    @property
    def certified(self) -> tuple[FusionRegion, ...]:
        return tuple(r for r in self.regions if r.certified)

    def to_dict(self) -> dict:
        return {
            "artifact": "repro.fusionplan/1",
            "proc": self.proc,
            "regions": [r.to_dict() for r in self.regions],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FusionPlan":
        return cls(
            proc=str(data["proc"]),
            regions=tuple(
                FusionRegion.from_dict(r) for r in data.get("regions", ())
            ),
        )


@dataclass
class _Draft:
    """Accumulator for the fusible run currently being grown."""

    stmts: list[tuple[Any, Effects]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.stmts)


class FuseChecker:
    """Effect inference + fusion-region partitioning of MIL programs.

    Constructor arguments mirror the other passes so one ``**environment``
    serves all of them.
    """

    def __init__(
        self,
        commands: Mapping[str, Any] | Iterable[str] | None = None,
        signatures: Mapping[str, Any] | None = None,
        globals_names: Iterable[str] = (),
        procedures: Mapping[str, Any] | None = None,
    ):
        self._commands = set(commands or ())
        self._signatures = dict(signatures or {})
        self._globals = set(globals_names)
        self._procs = set(procedures or ())

    # -- entry points ----------------------------------------------------
    def check_source(self, source: str, name: str = "<mil>") -> DiagnosticReport:
        """Parse and fusion-check a MIL program (syntax is milcheck's job)."""
        try:
            statements = parse(source)
        except MilSyntaxError:
            return DiagnosticReport()
        report = DiagnosticReport()
        toplevel = [s for s in statements if not isinstance(s, ProcDef)]
        for statement in statements:
            if isinstance(statement, ProcDef):
                _, proc_report = self.analyze_with_report(statement, source=name)
                report.extend(proc_report)
        if toplevel:
            _, top_report = self._analyze(toplevel, "<toplevel>", name)
            report.extend(top_report)
        return report

    def check_proc(
        self, definition: ProcDef | MilProcedure, source: str | None = None
    ) -> DiagnosticReport:
        _, report = self.analyze_with_report(definition, source=source)
        return report

    def analyze_proc(
        self, definition: ProcDef | MilProcedure
    ) -> FusionPlan:
        plan, _ = self.analyze_with_report(definition)
        return plan

    def analyze_with_report(
        self,
        definition: ProcDef | MilProcedure,
        source: str | None = None,
    ) -> tuple[FusionPlan, DiagnosticReport]:
        """Partition one procedure; returns the plan and its diagnostics."""
        if isinstance(definition, MilProcedure):
            definition = definition.definition
        return self._analyze(
            definition.body, definition.name, source or definition.name
        )

    def certified_spans(self, body: list[Any]) -> tuple[tuple[int, int], ...]:
        """Line spans of certified regions (flowcheck's FLOW002 gate)."""
        plan, _ = self._analyze(body, "<body>", "<body>")
        return tuple(
            (r.start_line, r.end_line) for r in plan.regions if r.certified
        )

    # -- effect inference ------------------------------------------------
    def infer_effects(self, statement: Any) -> Effects:
        """Effect summary of one non-control statement."""
        reads: list[str] = []
        writes: list[str] = []
        appends: list[str] = []
        impure: list[str] = []
        flags = {"alloc": False, "commit": False, "bat": False}

        def walk(node: Any) -> None:
            match node:
                case Literal():
                    pass
                case Name(ident=ident):
                    if ident not in reads:
                        reads.append(ident)
                case Call(func=func, args=args):
                    if func != "new":  # new()'s args are type atoms, not reads
                        for arg in args:
                            walk(arg)
                    self._classify_call(func, flags, impure)
                case MethodCall(target=target, method=method, args=args):
                    walk(target)
                    for arg in args:
                        walk(arg)
                    flags["bat"] = True
                    if isinstance(target, Name):
                        if method in APPEND_METHODS:
                            if target.ident not in appends:
                                appends.append(target.ident)
                        elif method in WRITE_METHODS:
                            if target.ident not in writes:
                                writes.append(target.ident)
                case BinOp(left=left, right=right):
                    walk(left)
                    walk(right)
                case UnaryOp(operand=operand):
                    walk(operand)
                case _:
                    pass

        match statement:
            case VarDecl(ident=ident, value=value):
                if value is not None:
                    walk(value)
                writes.append(ident)
            case Assign(ident=ident, value=value):
                walk(value)
                writes.append(ident)
            case ExprStmt(expr=expr):
                walk(expr)
            case Return(expr=expr):
                if expr is not None:
                    walk(expr)
            case _:
                # control statements are barriers, never summarized here
                impure.append("<control>")

        return Effects(
            reads=tuple(reads),
            writes=tuple(writes),
            appends=tuple(appends),
            allocates=flags["alloc"],
            commits=flags["commit"],
            impure=tuple(impure),
            bat_compute=flags["bat"],
        )

    def _classify_call(
        self, func: str, flags: dict[str, bool], impure: list[str]
    ) -> None:
        if func == "new":
            flags["alloc"] = True
            flags["bat"] = True
            return
        if func in CATALOG_COMMANDS:
            flags["commit"] = True
            flags["bat"] = True
            impure.append(func)
            return
        if func in IMPURE_COMMANDS:
            impure.append(func)
            return
        signature = self._signatures.get(func)
        if signature is not None:
            # a declared command is pure unless listed above; it touches
            # BATs when its signature mentions a BAT column
            mentions_bat = any(
                "BAT" in str(a) for a in (signature.args or ())
            ) or "BAT" in str(signature.returns or "")
            flags["bat"] = flags["bat"] or mentions_bat
            return
        # procedure calls and unknown commands: conservatively impure
        # (the callee body may commit or print)
        impure.append(func)

    # -- region partitioning ---------------------------------------------
    def _analyze(
        self, body: list[Any], proc_name: str, source: str
    ) -> tuple[FusionPlan, DiagnosticReport]:
        regions: list[FusionRegion] = []
        report = DiagnosticReport()
        self._partition(body, "body", frozenset(), regions, report, source)
        plan = FusionPlan(proc_name, tuple(regions))
        for region in plan.regions:
            if region.certified and region.statements >= 2:
                report.add(
                    "FUSE001",
                    f"certified fusion region #{region.index} at "
                    f"{region.path}: {region.statements} statements "
                    f"(lines {region.start_line}-{region.end_line})",
                    Severity.INFO,
                    source=source,
                    line=region.start_line,
                    end_line=region.end_line,
                )
        return plan, report

    def _partition(
        self,
        body: list[Any],
        path: str,
        conflicted: frozenset[str],
        regions: list[FusionRegion],
        report: DiagnosticReport,
        source: str,
    ) -> None:
        draft = _Draft()
        last_region: FusionRegion | None = None
        barriers: list[tuple[int | None, str]] = []

        def flush() -> None:
            nonlocal last_region
            region = self._close(draft, path, conflicted, regions, report, source)
            if region is not None:
                if last_region is not None and len(barriers) == 1:
                    line, what = barriers[0]
                    report.add(
                        "FUSE002",
                        f"impure statement ({what}) splits two fusible "
                        f"regions at {path}; hoisting it would fuse "
                        f"lines {last_region.start_line}-{region.end_line}",
                        Severity.WARNING,
                        source=source,
                        line=line,
                    )
                last_region = region
                barriers.clear()

        for statement in body:
            if isinstance(statement, (If, While, Parallel, ProcDef)):
                flush()
                last_region = None
                barriers.clear()
                self._partition_control(
                    statement, path, conflicted, regions, report, source
                )
                continue
            effects = self.infer_effects(statement)
            if effects.pure:
                draft.stmts.append((statement, effects))
            else:
                flush()
                barriers.append(
                    (
                        getattr(statement, "line", None),
                        ", ".join(effects.impure) or "commit",
                    )
                )
        flush()

    def _partition_control(
        self,
        statement: Any,
        path: str,
        conflicted: frozenset[str],
        regions: list[FusionRegion],
        report: DiagnosticReport,
        source: str,
    ) -> None:
        line = getattr(statement, "line", None)
        match statement:
            case If(then=then, orelse=orelse):
                self._partition(
                    then, f"{path}.if@{line}", conflicted, regions, report, source
                )
                if orelse:
                    self._partition(
                        orelse,
                        f"{path}.else@{line}",
                        conflicted,
                        regions,
                        report,
                        source,
                    )
            case While(body=body):
                self._partition(
                    body, f"{path}.while@{line}", conflicted, regions, report, source
                )
            case Parallel(body=body):
                branch_conflicts = self._branch_conflicts(body)
                for index, branch in enumerate(body):
                    self._partition(
                        [branch],
                        f"{path}.parallel@{line}[{index}]",
                        conflicted | branch_conflicts,
                        regions,
                        report,
                        source,
                    )
            case ProcDef():
                pass  # nested defs get their own plan at their define site

    def _close(
        self,
        draft: _Draft,
        path: str,
        conflicted: frozenset[str],
        regions: list[FusionRegion],
        report: DiagnosticReport,
        source: str,
    ) -> FusionRegion | None:
        stmts = draft.stmts
        draft.stmts = []
        if not stmts or not any(e.bat_compute for _, e in stmts):
            return None
        lines = [
            getattr(s, "line", None)
            for s, _ in stmts
            if getattr(s, "line", None) is not None
        ]
        start = min(lines) if lines else 0
        end = max(lines) if lines else 0
        written: set[str] = set()
        inputs: list[str] = []
        outputs: list[str] = []
        touched: set[str] = set()
        allocates = False
        for _, effects in stmts:
            for ident in effects.reads:
                if ident not in written and ident not in inputs:
                    inputs.append(ident)
            for ident in effects.writes + effects.appends:
                written.add(ident)
                if ident not in outputs:
                    outputs.append(ident)
            touched |= effects.touched
            allocates = allocates or effects.allocates
        clash = sorted(touched & conflicted)
        certified = not clash
        reason = (
            "" if certified else f"shared-ownership conflict on {clash[0]!r}"
        )
        region = FusionRegion(
            index=len(regions),
            path=path,
            start_line=start,
            end_line=end,
            statements=len(stmts),
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            allocates=allocates,
            certified=certified,
            reason=reason,
        )
        regions.append(region)
        if not certified:
            report.add(
                "FUSE003",
                f"fusible statements at {path} (lines {start}-{end}) left "
                f"uncertified: {reason}",
                Severity.WARNING,
                source=source,
                line=start,
                end_line=end,
            )
        return region

    # -- PARALLEL ownership ----------------------------------------------
    def _branch_conflicts(self, branches: list[Any]) -> frozenset[str]:
        """Names no branch region may touch: racecheck's conflict facts.

        A name conflicts when one branch mutates it non-append (BAT
        ``delete``/``replace`` or a scalar assignment) while any other
        branch touches it at all, or when two branches assign it (lost
        update).  Concurrent appends commute under the BAT lock and do not
        conflict.
        """
        summaries = [self._branch_summary(branch) for branch in branches]
        conflicted: set[str] = set()
        for index, (touched, mutated, assigned) in enumerate(summaries):
            others_touched: set[str] = set()
            others_assigned: set[str] = set()
            for other_index, (o_touched, _, o_assigned) in enumerate(summaries):
                if other_index != index:
                    others_touched |= o_touched
                    others_assigned |= o_assigned
            conflicted |= mutated & others_touched
            conflicted |= assigned & others_touched
            conflicted |= assigned & others_assigned
        return frozenset(conflicted)

    def _branch_summary(
        self, statement: Any
    ) -> tuple[set[str], set[str], set[str]]:
        """(touched, non-append-mutated, assigned) shared names of a branch."""
        touched: set[str] = set()
        mutated: set[str] = set()
        assigned: set[str] = set()
        local: set[str] = set()

        def walk(node: Any) -> None:
            match node:
                case VarDecl(ident=ident, value=value):
                    if value is not None:
                        walk(value)
                    local.add(ident)
                case Assign(ident=ident, value=value):
                    walk(value)
                    assigned.add(ident)
                    touched.add(ident)
                case ExprStmt(expr=expr):
                    walk(expr)
                case Return(expr=expr):
                    if expr is not None:
                        walk(expr)
                case If(cond=cond, then=then, orelse=orelse):
                    walk(cond)
                    for sub in then + orelse:
                        walk(sub)
                case While(cond=cond, body=body):
                    walk(cond)
                    for sub in body:
                        walk(sub)
                case Parallel(body=body):
                    for sub in body:
                        walk(sub)
                case Name(ident=ident):
                    touched.add(ident)
                case Call(args=args):
                    for arg in args:
                        walk(arg)
                case MethodCall(target=target, method=method, args=args):
                    walk(target)
                    for arg in args:
                        walk(arg)
                    if isinstance(target, Name) and method in WRITE_METHODS:
                        mutated.add(target.ident)
                case BinOp(left=left, right=right):
                    walk(left)
                    walk(right)
                case UnaryOp(operand=operand):
                    walk(operand)
                case _:
                    pass

        walk(statement)
        return touched - local, mutated - local, assigned - local


def check_fuse_source(
    source: str,
    name: str = "<mil>",
    commands: Mapping[str, Any] | Iterable[str] | None = None,
    signatures: Mapping[str, Any] | None = None,
    globals_names: Iterable[str] = (),
    procedures: Mapping[str, Any] | None = None,
) -> DiagnosticReport:
    """Parse and fusion-check MIL source text."""
    return FuseChecker(commands, signatures, globals_names, procedures).check_source(
        source, name=name
    )
