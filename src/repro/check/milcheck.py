"""Static analysis of MIL procedures — type/scope checking without execution.

The analyzer walks the MIL AST produced by :func:`repro.monet.mil.parse` and
verifies, before any statement runs:

* **scoping** — def-before-use of variables through ``IF``/``WHILE``/
  ``PARALLEL`` blocks, assignment to declared names only;
* **kernel calls** — existence, arity and (where declared) argument types of
  commands against the :class:`repro.monet.module.CommandSignature` table;
* **BAT method chains** — method existence/arity on statically known BATs,
  with head/tail type propagation through ``reverse``, ``find``, ``join``,
  ``max`` and friends (``new(void, int).reverse.find(3)`` knows the lookup
  key is an ``int`` and the result an ``oid``);
* **control flow** — unreachable statements after ``RETURN`` and procedures
  whose declared return type is never produced on some path.

Diagnostic codes:

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
MIL000    error     MIL source failed to parse
MIL001    error     use of an undefined name
MIL002    error     assignment to an undeclared variable
MIL003    warning   redeclaration of a variable in the same scope
MIL004    error     call to an unknown command or procedure
MIL005    error     wrong number of arguments in a call
MIL006    error     argument type incompatible with the declared type
MIL007    error     unknown method on a BAT
MIL008    error     wrong number of arguments to a BAT method
MIL009    warning   unreachable code after RETURN
MIL010    error     missing RETURN in a procedure with a return type
MIL011    error     malformed ``new()`` constructor or unknown atom type
MIL012    error     duplicate parameter/procedure definition
MIL013    warning   variable declared but never used
MIL014    warning   RETURN value type incompatible with declared type
========  ========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
import difflib
from typing import Any, Iterable, Mapping

from repro.check.diagnostics import DiagnosticReport, Severity
from repro.errors import MilSyntaxError
from repro.monet.atoms import ATOMS
from repro.monet.mil import (
    Assign,
    BinOp,
    Call,
    ExprStmt,
    If,
    Literal,
    MethodCall,
    MilProcedure,
    Name,
    Parallel,
    ProcDef,
    Return,
    UnaryOp,
    VarDecl,
    While,
    parse,
)
from repro.monet.module import CommandSignature

__all__ = ["BatT", "MilChecker", "check_source", "check_proc"]

_NUMERIC = {"int", "oid", "void", "flt", "dbl"}
_STRINGY = {"str", "chr"}


@dataclass(frozen=True)
class BatT:
    """Statically inferred BAT type; ``"?"`` marks an unknown column type."""

    head: str = "?"
    tail: str = "?"

    def __str__(self) -> str:
        return f"BAT[{self.head},{self.tail}]"


#: Inferred MIL types are either a :class:`BatT` or an atom-type name string
#: ("int", "dbl", "str", "bit", ...); "any" is the unknown/escape type.
MilType = Any


def _named_type(type_name: str | None) -> MilType:
    """Map a declared MIL type name to an inferred type."""
    if type_name is None:
        return "any"
    if type_name == "BAT":
        return BatT()
    if type_name.startswith("BAT[") and type_name.endswith("]"):
        head, _, tail = type_name[4:-1].partition(",")
        return BatT(head.strip() or "?", tail.strip() or "?")
    if type_name in ATOMS or type_name in ("any", "bool"):
        return "bit" if type_name == "bool" else type_name
    return "any"


def _column_compatible(expected: str, actual: str) -> bool:
    if "?" in (expected, actual) or "any" in (expected, actual):
        return True
    if expected == actual:
        return True
    if expected in _NUMERIC and actual in _NUMERIC:
        return True
    return expected in _STRINGY and actual in _STRINGY


def _compatible(expected: MilType, actual: MilType) -> bool:
    """Permissive assignability: unknowns match, numerics widen."""
    if expected == "any" or actual == "any":
        return True
    if isinstance(expected, BatT):
        if not isinstance(actual, BatT):
            return False
        return _column_compatible(expected.head, actual.head) and _column_compatible(
            expected.tail, actual.tail
        )
    if isinstance(actual, BatT):
        return False
    if expected in _NUMERIC:
        return actual in _NUMERIC or actual == "bit"
    if expected == "bit":
        return actual == "bit" or actual in _NUMERIC
    if expected in _STRINGY:
        return actual in _STRINGY
    return True


def _head_as_value(head: str) -> str:
    """Column type a void head materializes to when it becomes a value."""
    return "oid" if head == "void" else head


# ---------------------------------------------------------------------------
# BAT method table: name -> (min_args, max_args, result)
# ``result`` is a type name, "head"/"tail" (resolved against the receiver),
# "same" (the receiver type), or a callable (receiver, arg_types) -> MilType.
# ---------------------------------------------------------------------------

def _reverse_result(bat: BatT, args: list[MilType]) -> MilType:
    return BatT(_head_as_value(bat.tail), _head_as_value(bat.head))


def _join_result(bat: BatT, args: list[MilType]) -> MilType:
    other = args[0] if args else "any"
    tail = _head_as_value(other.tail) if isinstance(other, BatT) else "?"
    return BatT(_head_as_value(bat.head), tail)


_BAT_METHODS: dict[str, tuple[int, int, Any]] = {
    "insert": (1, 2, "same"),
    "insert_bulk": (2, 2, "same"),
    "delete": (1, 1, "same"),
    "replace": (2, 2, "same"),
    "find": (1, 1, "tail"),
    "exist": (1, 1, "bit"),
    "fetch": (1, 1, "any"),
    "reverse": (0, 0, _reverse_result),
    "mirror": (0, 0, lambda b, a: BatT(_head_as_value(b.head), _head_as_value(b.head))),
    "mark": (0, 1, lambda b, a: BatT(_head_as_value(b.head), "oid")),
    "copy": (0, 1, "same"),
    "slice": (2, 2, "same"),
    "unique": (0, 0, "same"),
    "sort": (0, 1, "same"),
    "select": (1, 2, lambda b, a: BatT(_head_as_value(b.head), b.tail)),
    "filter_tail": (1, 1, "same"),
    "join": (1, 1, _join_result),
    "semijoin": (1, 1, "same"),
    "kdiff": (1, 1, "same"),
    "kunion": (1, 1, "same"),
    "max": (0, 0, "tail"),
    "min": (0, 0, "tail"),
    "sum": (0, 0, "tail"),
    "avg": (0, 0, "dbl"),
    "count": (0, 0, "int"),
    "histogram": (0, 0, lambda b, a: BatT(_head_as_value(b.tail), "int")),
    "heads": (0, 0, "any"),
    "tails": (0, 0, "any"),
    "tail_array": (0, 0, "any"),
    "head_array": (0, 0, "any"),
    "name": (0, 0, "str"),
    "head_type": (0, 0, "str"),
    "tail_type": (0, 0, "str"),
}

#: Per-method argument type expectations, resolved against the receiver.
_BAT_METHOD_ARGS: dict[str, tuple[str, ...]] = {
    "find": ("head",),
    "delete": ("head",),
    "exist": ("head",),
    "replace": ("head", "tail"),
    "select": ("tail", "tail"),
    "slice": ("int", "int"),
    "fetch": ("int",),
    "join": ("BAT",),
    "semijoin": ("BAT",),
    "kdiff": ("BAT",),
    "kunion": ("BAT",),
}


@dataclass
class _VarInfo:
    type: MilType
    line: int
    used: bool = False
    is_param: bool = False
    effect_free_init: bool = False


@dataclass
class _Scope:
    variables: dict[str, _VarInfo] = field(default_factory=dict)
    parent: "_Scope | None" = None

    def lookup(self, ident: str) -> "_VarInfo | None":
        scope: _Scope | None = self
        while scope is not None:
            if ident in scope.variables:
                return scope.variables[ident]
            scope = scope.parent
        return None


def _suggest(name: str, candidates: Iterable[str]) -> str:
    matches = difflib.get_close_matches(name, list(candidates), n=2)
    if matches:
        return " (did you mean " + ", ".join(repr(m) for m in matches) + "?)"
    return ""


def _effect_free(node: Any) -> bool:
    """Whether evaluating ``node`` can have no side effect (for MIL013)."""
    match node:
        case None | Literal() | Name():
            return True
        case BinOp(left=left, right=right):
            return _effect_free(left) and _effect_free(right)
        case UnaryOp(operand=operand):
            return _effect_free(operand)
        case _:
            return False


class MilChecker:
    """Static analyzer for MIL programs and procedures.

    Args:
        commands: known kernel command names (mapping or iterable).
        signatures: declared :class:`CommandSignature` per command name.
        globals_names: names visible at global scope (the BAT catalog plus
            interpreter globals); they type as ``any``.
        procedures: already defined procedures (name -> ProcDef or
            MilProcedure), callable from the checked code.
    """

    def __init__(
        self,
        commands: Mapping[str, Any] | Iterable[str] | None = None,
        signatures: Mapping[str, CommandSignature] | None = None,
        globals_names: Iterable[str] = (),
        procedures: Mapping[str, Any] | None = None,
    ):
        self._commands = set(commands or ())
        self._signatures = dict(signatures or {})
        self._globals = set(globals_names)
        self._procs: dict[str, ProcDef] = {}
        for name, proc in (procedures or {}).items():
            self._procs[name] = (
                proc.definition if isinstance(proc, MilProcedure) else proc
            )

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def check_source(self, source: str, name: str = "<mil>") -> DiagnosticReport:
        """Parse and check a whole MIL program; parse failures are MIL000."""
        report = DiagnosticReport()
        try:
            statements = parse(source)
        except MilSyntaxError as exc:
            report.add("MIL000", str(exc), Severity.ERROR, source=name, line=exc.line)
            return report
        return self.check_program(statements, name=name)

    def check_program(
        self, statements: list[Any], name: str = "<mil>"
    ) -> DiagnosticReport:
        """Check a parsed statement list (top level plus PROC bodies)."""
        report = DiagnosticReport()
        # procedures see every PROC of the program (forward references are
        # legal as long as the callee is defined before the call *runs*).
        pending = {
            s.name: s for s in statements if isinstance(s, ProcDef)
        }
        known_procs = {**self._procs, **pending}
        toplevel = _Scope(
            {
                g: _VarInfo("any", 0, used=True)
                for g in self._globals
            }
        )
        for statement in statements:
            if isinstance(statement, ProcDef):
                if (
                    statement.name in self._procs
                    or pending.get(statement.name) is not statement
                ):
                    report.add(
                        "MIL012",
                        f"procedure {statement.name!r} is already defined",
                        Severity.ERROR,
                        source=name,
                        line=statement.line,
                    )
                report.extend(
                    self._check_proc_def(statement, known_procs, source=name)
                )
            else:
                self._check_block([statement], toplevel, report, name, None)
        return report

    def check_proc(
        self, definition: ProcDef | MilProcedure, source: str | None = None
    ) -> DiagnosticReport:
        """Check one procedure definition against the known environment."""
        if isinstance(definition, MilProcedure):
            definition = definition.definition
        known = dict(self._procs)
        known.setdefault(definition.name, definition)
        report = DiagnosticReport()
        report.extend(
            self._check_proc_def(definition, known, source or definition.name)
        )
        return report

    # ------------------------------------------------------------------
    # procedure / block analysis
    # ------------------------------------------------------------------
    def _check_proc_def(
        self,
        definition: ProcDef,
        known_procs: Mapping[str, ProcDef],
        source: str,
    ) -> DiagnosticReport:
        report = DiagnosticReport()
        scope = _Scope(
            {
                g: _VarInfo("any", 0, used=True)
                for g in self._globals
            }
        )
        body_scope = _Scope(parent=scope)
        seen_params: set[str] = set()
        for param in definition.params:
            if param.ident in seen_params:
                report.add(
                    "MIL012",
                    f"duplicate parameter {param.ident!r} in PROC "
                    f"{definition.name}",
                    Severity.ERROR,
                    source=source,
                    line=definition.line,
                )
            seen_params.add(param.ident)
            body_scope.variables[param.ident] = _VarInfo(
                _named_type(param.type_name), definition.line, is_param=True
            )
        terminated = self._check_block(
            definition.body,
            body_scope,
            report,
            source,
            known_procs,
            return_type=(
                _named_type(definition.return_type)
                if definition.return_type is not None
                else "__none__"
            ),
        )
        if definition.return_type is not None and not terminated:
            report.add(
                "MIL010",
                f"PROC {definition.name} declares return type "
                f"{definition.return_type!r} but not every path RETURNs",
                Severity.ERROR,
                source=source,
                line=definition.line,
            )
        self._report_unused(body_scope, report, source)
        return report

    def _check_block(
        self,
        statements: list[Any],
        scope: _Scope,
        report: DiagnosticReport,
        source: str,
        known_procs: Mapping[str, ProcDef] | None,
        return_type: MilType | str | None = "__unset__",
    ) -> bool:
        """Check a statement list; returns True when every path RETURNs."""
        terminated = False
        ever_terminated = False
        for statement in statements:
            if terminated:
                report.add(
                    "MIL009",
                    "unreachable code after RETURN",
                    Severity.WARNING,
                    source=source,
                    line=getattr(statement, "line", None),
                )
                ever_terminated = True
                terminated = False  # report once per block
            match statement:
                case ProcDef():
                    # nested definitions are checked like top-level ones
                    report.extend(
                        self._check_proc_def(
                            statement, known_procs or {}, source
                        )
                    )
                case VarDecl(ident=ident, value=value):
                    declared_type = "any"
                    if value is not None:
                        declared_type = self._infer(
                            value, scope, report, source, known_procs
                        )
                    if ident in scope.variables:
                        report.add(
                            "MIL003",
                            f"variable {ident!r} redeclared in the same scope",
                            Severity.WARNING,
                            source=source,
                            line=statement.line,
                        )
                    scope.variables[ident] = _VarInfo(
                        declared_type,
                        statement.line,
                        effect_free_init=_effect_free(value),
                    )
                case Assign(ident=ident, value=value):
                    value_type = self._infer(
                        value, scope, report, source, known_procs
                    )
                    info = scope.lookup(ident)
                    if info is None:
                        report.add(
                            "MIL002",
                            f"assignment to undeclared variable {ident!r}",
                            Severity.ERROR,
                            source=source,
                            line=statement.line,
                        )
                    else:
                        info.type = value_type
                case ExprStmt(expr=expr):
                    self._infer(expr, scope, report, source, known_procs)
                case Return(expr=expr):
                    if expr is not None:
                        value_type = self._infer(
                            expr, scope, report, source, known_procs
                        )
                        if (
                            return_type not in ("__unset__", "__none__")
                            and not _compatible(return_type, value_type)
                        ):
                            report.add(
                                "MIL014",
                                f"RETURN value type {value_type} is "
                                f"incompatible with the declared return "
                                f"type {return_type}",
                                Severity.WARNING,
                                source=source,
                                line=statement.line,
                            )
                    terminated = True
                case If(cond=cond, then=then, orelse=orelse):
                    self._infer(cond, scope, report, source, known_procs)
                    then_done = self._check_block(
                        then, _Scope(parent=scope), report, source,
                        known_procs, return_type,
                    )
                    else_done = self._check_block(
                        orelse, _Scope(parent=scope), report, source,
                        known_procs, return_type,
                    )
                    if then_done and else_done and orelse:
                        terminated = True
                case While(cond=cond, body=body):
                    self._infer(cond, scope, report, source, known_procs)
                    self._check_block(
                        body, _Scope(parent=scope), report, source,
                        known_procs, return_type,
                    )
                case Parallel(body=body):
                    self._check_block(
                        body, _Scope(parent=scope), report, source,
                        known_procs, return_type,
                    )
                case _:
                    pass
        return terminated or ever_terminated

    def _report_unused(
        self, scope: _Scope, report: DiagnosticReport, source: str
    ) -> None:
        for ident, info in scope.variables.items():
            if info.used or info.is_param or not info.effect_free_init:
                continue
            report.add(
                "MIL013",
                f"variable {ident!r} is declared but never used",
                Severity.WARNING,
                source=source,
                line=info.line,
            )

    # ------------------------------------------------------------------
    # expression typing
    # ------------------------------------------------------------------
    def _infer(
        self,
        node: Any,
        scope: _Scope,
        report: DiagnosticReport,
        source: str,
        known_procs: Mapping[str, ProcDef] | None,
    ) -> MilType:
        match node:
            case Literal(value=value):
                if isinstance(value, bool):
                    return "bit"
                if isinstance(value, int):
                    return "int"
                if isinstance(value, float):
                    return "dbl"
                if isinstance(value, str):
                    return "str"
                return "any"
            case Name(ident=ident):
                info = scope.lookup(ident)
                if info is not None:
                    info.used = True
                    return info.type
                if ident in self._commands or ident in (known_procs or {}):
                    return "any"  # command/proc referenced as a value
                report.add(
                    "MIL001",
                    f"use of undefined name {ident!r}"
                    + _suggest(ident, self._known_names(scope, known_procs)),
                    Severity.ERROR,
                    source=source,
                    line=node.line,
                )
                return "any"
            case Call():
                return self._infer_call(node, scope, report, source, known_procs)
            case MethodCall():
                return self._infer_method(node, scope, report, source, known_procs)
            case BinOp(op=op, left=left, right=right):
                left_type = self._infer(left, scope, report, source, known_procs)
                right_type = self._infer(right, scope, report, source, known_procs)
                if op in ("AND", "OR", "=", "!=", "<", ">", "<=", ">="):
                    return "bit"
                if left_type == "str" or right_type == "str":
                    return "str"
                if "dbl" in (left_type, right_type) or "flt" in (left_type, right_type):
                    return "dbl"
                if left_type == "int" and right_type == "int":
                    return "dbl" if op == "/" else "int"
                return "any"
            case UnaryOp(op=op, operand=operand):
                operand_type = self._infer(
                    operand, scope, report, source, known_procs
                )
                return "bit" if op == "NOT" else operand_type
            case _:
                return "any"

    def _known_names(
        self, scope: _Scope, known_procs: Mapping[str, ProcDef] | None
    ) -> set[str]:
        names: set[str] = set(self._commands) | set(known_procs or {})
        walk: _Scope | None = scope
        while walk is not None:
            names.update(walk.variables)
            walk = walk.parent
        return names

    def _infer_call(
        self,
        node: Call,
        scope: _Scope,
        report: DiagnosticReport,
        source: str,
        known_procs: Mapping[str, ProcDef] | None,
    ) -> MilType:
        procs = known_procs or {}
        if node.func == "new":
            return self._check_new(node, report, source)
        arg_types = [
            self._infer(a, scope, report, source, procs) for a in node.args
        ]
        # precedence mirrors the interpreter: procs, then scope, then commands
        if node.func in procs:
            definition = procs[node.func]
            if len(node.args) != len(definition.params):
                report.add(
                    "MIL005",
                    f"PROC {node.func} expects {len(definition.params)} "
                    f"argument(s), got {len(node.args)}",
                    Severity.ERROR,
                    source=source,
                    line=node.line,
                )
            else:
                for index, (param, actual) in enumerate(
                    zip(definition.params, arg_types)
                ):
                    expected = _named_type(param.type_name)
                    if not _compatible(expected, actual):
                        report.add(
                            "MIL006",
                            f"PROC {node.func} argument {index + 1} "
                            f"({param.ident}) expects {param.type_name}, "
                            f"got {actual}",
                            Severity.ERROR,
                            source=source,
                            line=node.line,
                        )
            return _named_type(definition.return_type)
        info = scope.lookup(node.func)
        if info is not None:
            info.used = True
            return "any"  # a variable holding a callable; nothing to check
        if node.func in self._signatures:
            return self._check_signature_call(
                node, self._signatures[node.func], arg_types, report, source
            )
        if node.func in self._commands:
            return "any"
        report.add(
            "MIL004",
            f"call to unknown command or procedure {node.func!r}"
            + _suggest(node.func, set(self._commands) | set(procs)),
            Severity.ERROR,
            source=source,
            line=node.line,
        )
        return "any"

    def _check_new(
        self, node: Call, report: DiagnosticReport, source: str
    ) -> MilType:
        type_names = [a.ident for a in node.args if isinstance(a, Name)]
        if len(node.args) != 2 or len(type_names) != 2:
            report.add(
                "MIL011",
                "new(head_type, tail_type) needs exactly two type names",
                Severity.ERROR,
                source=source,
                line=node.line,
            )
            return BatT()
        for type_name in type_names:
            if type_name not in ATOMS:
                report.add(
                    "MIL011",
                    f"unknown atom type {type_name!r} in new()"
                    + _suggest(type_name, ATOMS.names()),
                    Severity.ERROR,
                    source=source,
                    line=node.line,
                )
        return BatT(type_names[0], type_names[1])

    def _check_signature_call(
        self,
        node: Call,
        signature: CommandSignature,
        arg_types: list[MilType],
        report: DiagnosticReport,
        source: str,
    ) -> MilType:
        n = len(arg_types)
        if (signature.varargs and n < signature.min_args) or (
            not signature.varargs and n != len(signature.args)
        ):
            expected = (
                f"at least {signature.min_args}"
                if signature.varargs
                else str(len(signature.args))
            )
            report.add(
                "MIL005",
                f"{signature.describe()} expects {expected} argument(s), "
                f"got {n}",
                Severity.ERROR,
                source=source,
                line=node.line,
            )
        else:
            for index, actual in enumerate(arg_types):
                slot = min(index, len(signature.args) - 1) if signature.args else 0
                if not signature.args:
                    break
                expected = _named_type(signature.args[slot])
                if not _compatible(expected, actual):
                    report.add(
                        "MIL006",
                        f"{signature.describe()} argument {index + 1} expects "
                        f"{signature.args[slot]}, got {actual}",
                        Severity.ERROR,
                        source=source,
                        line=node.line,
                    )
        return _named_type(signature.returns)

    def _infer_method(
        self,
        node: MethodCall,
        scope: _Scope,
        report: DiagnosticReport,
        source: str,
        known_procs: Mapping[str, ProcDef] | None,
    ) -> MilType:
        receiver = self._infer(node.target, scope, report, source, known_procs)
        arg_types = [
            self._infer(a, scope, report, source, known_procs) for a in node.args
        ]
        if not isinstance(receiver, BatT):
            return "any"  # only BAT chains are statically modelled
        entry = _BAT_METHODS.get(node.method)
        if entry is None:
            report.add(
                "MIL007",
                f"{receiver} has no MIL method {node.method!r}"
                + _suggest(node.method, _BAT_METHODS),
                Severity.ERROR,
                source=source,
                line=node.line,
            )
            return "any"
        min_args, max_args, result = entry
        if not min_args <= len(arg_types) <= max_args:
            expected = (
                str(min_args)
                if min_args == max_args
                else f"{min_args}..{max_args}"
            )
            report.add(
                "MIL008",
                f"BAT method {node.method!r} expects {expected} argument(s), "
                f"got {len(arg_types)}",
                Severity.ERROR,
                source=source,
                line=node.line,
            )
        else:
            self._check_method_args(node, receiver, arg_types, report, source)
        if callable(result):
            return result(receiver, arg_types)
        if result == "same":
            return receiver
        if result == "tail":
            return _head_as_value(receiver.tail) if receiver.tail != "?" else "any"
        if result == "head":
            return _head_as_value(receiver.head) if receiver.head != "?" else "any"
        return result

    def _check_method_args(
        self,
        node: MethodCall,
        receiver: BatT,
        arg_types: list[MilType],
        report: DiagnosticReport,
        source: str,
    ) -> None:
        if node.method == "insert":
            if len(arg_types) == 1:
                if receiver.head not in ("void", "?"):
                    report.add(
                        "MIL006",
                        f"single-argument insert needs a void head, "
                        f"receiver is {receiver}",
                        Severity.ERROR,
                        source=source,
                        line=node.line,
                    )
                expected: list[str] = [receiver.tail]
            else:
                expected = [receiver.head, receiver.tail]
        else:
            spec = _BAT_METHOD_ARGS.get(node.method)
            if spec is None:
                return
            expected = [
                receiver.head if kind == "head"
                else receiver.tail if kind == "tail"
                else kind
                for kind in spec[: len(arg_types)]
            ]
        for index, (kind, actual) in enumerate(zip(expected, arg_types)):
            expected_type: MilType = BatT() if kind == "BAT" else kind
            if kind == "?":
                continue
            if not _compatible(expected_type, actual):
                report.add(
                    "MIL006",
                    f"BAT method {node.method!r} argument {index + 1} expects "
                    f"{expected_type}, got {actual} (receiver {receiver})",
                    Severity.ERROR,
                    source=source,
                    line=node.line,
                )


# ---------------------------------------------------------------------------
# convenience entry points
# ---------------------------------------------------------------------------

def check_source(
    source: str,
    name: str = "<mil>",
    commands: Mapping[str, Any] | Iterable[str] | None = None,
    signatures: Mapping[str, CommandSignature] | None = None,
    globals_names: Iterable[str] = (),
    procedures: Mapping[str, Any] | None = None,
) -> DiagnosticReport:
    """Parse and statically check MIL source text."""
    return MilChecker(commands, signatures, globals_names, procedures).check_source(
        source, name=name
    )


def check_proc(
    definition: ProcDef | MilProcedure,
    commands: Mapping[str, Any] | Iterable[str] | None = None,
    signatures: Mapping[str, CommandSignature] | None = None,
    globals_names: Iterable[str] = (),
    procedures: Mapping[str, Any] | None = None,
) -> DiagnosticReport:
    """Statically check a single parsed procedure definition."""
    return MilChecker(commands, signatures, globals_names, procedures).check_proc(
        definition
    )
