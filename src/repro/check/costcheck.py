"""Plan-level cost analysis: cardinality × selectivity × cost lattice.

Where :mod:`repro.check.flowcheck` proves *value* facts (type, interval,
rate), ``costcheck`` estimates *work*: every MIL expression carries a point
in the lattice

    **cardinality × selectivity × cost**

* *cardinality* — an estimated row count.  BAT-typed procedure parameters
  seed at :data:`DEFAULT_CARD` rows (or measured :class:`BatStats` when the
  caller has live BATs); ``new()`` allocations seed small.
* *selectivity* — the fraction of rows a selection keeps.  When flowcheck's
  interval facts are available (feature streams seed at ``[0, 1]``) the
  predicate's overlap with the value interval gives the estimate; otherwise
  :data:`DEFAULT_SELECTIVITY` applies.
* *cost* — abstract work units: one unit per command dispatch plus one per
  BAT row consumed; joins multiply when no keyed access exists; ``WHILE``
  bodies multiply by :data:`LOOP_TRIPS`; ``PARALLEL`` costs the longest
  branch plus :data:`BRANCH_OVERHEAD` per branch.

Alongside cardinalities the analysis tracks physical access facts —
``sorted_tail`` (after ``.sort``) and ``keyed_head`` (void/dense heads) —
which drive the access-path lints.

Diagnostic codes (the PERF family is advisory: warnings that never fail
``--strict``; the interpreter cannot be made slower by a hint):

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
PERF001   warning   quadratic nested-loop join: the inner BAT has no
                    keyed (dense/void) head to probe
PERF002   warning   unfused select chain re-materializes intermediates
PERF003   warning   loop-invariant command call inside a WHILE body
PERF004   warning   full materialization (``.copy``) never sliced and
                    never justified by a later mutation of the source
PERF005   warning   value scan (``select``/``mselect``) over a BAT whose
                    tail is already sorted — a sorted access exists
PERF006   warning   fan-out (PARALLEL) plan whose estimated cost exceeds
                    the shard-local (sequential) alternative
========  ========  =====================================================

Scope notes: PERF003 considers top-level command calls in ``WHILE`` bodies
(method chains and nested calls are left to the runtime); PERF004 only
fires for copies of unbounded-cardinality BATs (degree >= 1).

The module also exposes the cost model to the other layers:
:func:`estimate_moa_cost` / :func:`check_moa_cost` for Moa expression
trees (used by :class:`repro.moa.rewrite.MoaCompiler`),
:func:`estimate_extraction_cost` for the Cobra preprocessor's method
choice, and :func:`estimate_model_cost` for DBN registration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

from repro.check.diagnostics import DiagnosticReport, Severity
from repro.check.flowcheck import (
    EMPTY,
    FEATURE_RANGE,
    TOP,
    Interval,
    _arith_interval,
    _narrow,
    _point,
)
from repro.check.fusecheck import IMPURE_COMMANDS
from repro.check.milcheck import BatT, _named_type
from repro.check.racecheck import APPEND_METHODS, WRITE_METHODS
from repro.errors import MilSyntaxError
from repro.moa.algebra import (
    Aggregate,
    Apply,
    Arith,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Field,
    Join,
    MakeTuple,
    Map,
    Nest,
    Not,
    Select,
    Semijoin,
    SetOp,
    The,
    Unnest,
    Var,
)
from repro.monet.mil import (
    Assign,
    BinOp,
    Call,
    ExprStmt,
    If,
    Literal,
    MethodCall,
    MilProcedure,
    Name,
    Parallel,
    ProcDef,
    Return,
    UnaryOp,
    VarDecl,
    While,
    parse,
)
from repro.monet.operators import BatStats

__all__ = [
    "BRANCH_OVERHEAD",
    "CostChecker",
    "DEFAULT_CARD",
    "DEFAULT_SELECTIVITY",
    "LOOP_TRIPS",
    "QUALITY_TOLERANCE",
    "check_cost_source",
    "check_moa_cost",
    "estimate_extraction_cost",
    "estimate_moa_cost",
    "estimate_model_cost",
]

#: Assumed cardinality of an unbounded BAT input (one 100 s clip at 10 Hz).
DEFAULT_CARD = 1000.0

#: Kept fraction of a selection when the interval facts cannot refine it.
DEFAULT_SELECTIVITY = 0.5

#: Assumed trip count of a WHILE loop (bodies cost ``trips x`` their work).
LOOP_TRIPS = 8.0

#: Fixed cost of shipping one PARALLEL branch to a server (Fig. 4 fan-out).
BRANCH_OVERHEAD = 50.0

#: Rows seeded for a fresh ``new()`` BAT (Fig. 4 collects one per server).
_FRESH_ROWS = 8.0

#: The preprocessor prefers cheaper methods within this quality band.
QUALITY_TOLERANCE = 0.2

#: Floor for refined selectivities (a selection rarely keeps nothing).
_MIN_SELECTIVITY = 0.01


@dataclass(frozen=True)
class CostVal:
    """One lattice point for a value: cardinality + physical access facts."""

    is_bat: bool = False
    rows: float = 1.0
    #: 0 = bounded/small, 1 = linear in an unbounded input (transitively).
    degree: int = 0
    sorted_tail: bool = False
    keyed_head: bool = False
    interval: Interval = TOP


_SCALAR = CostVal()


@dataclass
class _CopyRecord:
    target: str
    source: str | None
    line: int | None


@dataclass
class _CostCtx:
    source: str
    report: DiagnosticReport
    #: cost accumulator stack; the top frame is the current block/branch
    frames: list[float] = field(default_factory=lambda: [0.0])
    #: select-result ident -> (chain length, first select line)
    select_chain: dict[str, tuple[int, int | None]] = field(default_factory=dict)
    copies: list[_CopyRecord] = field(default_factory=list)
    mutated: set[str] = field(default_factory=set)
    sliced: set[str] = field(default_factory=set)

    def add(self, cost: float) -> None:
        self.frames[-1] += cost

    def push(self) -> None:
        self.frames.append(0.0)

    def pop(self) -> float:
        return self.frames.pop()


class CostChecker:
    """Abstract cost interpreter over MIL procedures.

    Constructor arguments mirror the other passes so one ``**environment``
    serves all of them.
    """

    def __init__(
        self,
        commands: Mapping[str, Any] | Iterable[str] | None = None,
        signatures: Mapping[str, Any] | None = None,
        globals_names: Iterable[str] = (),
        procedures: Mapping[str, Any] | None = None,
    ):
        self._commands = set(commands or ())
        self._signatures = dict(signatures or {})
        self._globals = set(globals_names)
        self._procs: dict[str, ProcDef] = {}
        for name, proc in (procedures or {}).items():
            self._procs[name] = (
                proc.definition if isinstance(proc, MilProcedure) else proc
            )

    # -- entry points ----------------------------------------------------
    def check_source(self, source: str, name: str = "<mil>") -> DiagnosticReport:
        """Parse and cost-check a MIL program (syntax is milcheck's job)."""
        try:
            statements = parse(source)
        except MilSyntaxError:
            return DiagnosticReport()
        report = DiagnosticReport()
        toplevel = [s for s in statements if not isinstance(s, ProcDef)]
        for statement in statements:
            if isinstance(statement, ProcDef):
                report.extend(self.check_proc(statement, source=name))
        if toplevel:
            ctx = _CostCtx(name, report)
            self._walk_block(toplevel, {}, ctx)
            self._finish(ctx)
        return report

    def check_proc(
        self,
        definition: ProcDef | MilProcedure,
        source: str | None = None,
        stats: Mapping[str, BatStats] | None = None,
    ) -> DiagnosticReport:
        report = DiagnosticReport()
        self._run_proc(definition, source, stats, report)
        return report

    def estimate_proc(
        self,
        definition: ProcDef | MilProcedure,
        stats: Mapping[str, BatStats] | None = None,
    ) -> float:
        """Estimated cost (abstract work units) of one procedure call."""
        return self._run_proc(definition, None, stats, DiagnosticReport())

    def _run_proc(
        self,
        definition: ProcDef | MilProcedure,
        source: str | None,
        stats: Mapping[str, BatStats] | None,
        report: DiagnosticReport,
    ) -> float:
        if isinstance(definition, MilProcedure):
            definition = definition.definition
        env: dict[str, CostVal] = {}
        for param in definition.params:
            env[param.ident] = self._seed_param(
                param.type_name, (stats or {}).get(param.ident)
            )
        ctx = _CostCtx(source or definition.name, report)
        self._walk_block(definition.body, env, ctx)
        self._finish(ctx)
        return ctx.frames[0]

    def _seed_param(
        self, type_name: str | None, stats: BatStats | None
    ) -> CostVal:
        inferred = _named_type(type_name)
        if not isinstance(inferred, BatT):
            return _SCALAR
        interval = (
            Interval(*FEATURE_RANGE)
            if inferred.head == "void" and inferred.tail == "dbl"
            else TOP
        )
        if stats is not None:
            return CostVal(
                is_bat=True,
                rows=max(float(stats.rows), 1.0),
                degree=1,
                sorted_tail=stats.sorted_tail,
                keyed_head=stats.keyed_head or inferred.head == "void",
                interval=interval,
            )
        return CostVal(
            is_bat=True,
            rows=DEFAULT_CARD,
            degree=1,
            keyed_head=inferred.head == "void",
            interval=interval,
        )

    # -- statement walk --------------------------------------------------
    def _walk_block(
        self, statements: list[Any], env: dict[str, CostVal], ctx: _CostCtx
    ) -> None:
        for statement in statements:
            self._walk_statement(statement, env, ctx)

    def _walk_statement(
        self, statement: Any, env: dict[str, CostVal], ctx: _CostCtx
    ) -> None:
        match statement:
            case ProcDef():
                pass  # nested defs are costed at their own define site
            case VarDecl(ident=ident, value=value, line=line):
                if value is None:
                    env[ident] = _SCALAR
                    return
                val = self._eval(value, env, ctx)
                env[ident] = val
                self._note_assignment(ident, value, val, line, env, ctx)
            case Assign(ident=ident, value=value, line=line):
                val = self._eval(value, env, ctx)
                env[ident] = val
                self._note_assignment(ident, value, val, line, env, ctx)
            case ExprStmt(expr=expr):
                self._eval(expr, env, ctx)
            case Return(expr=expr):
                if expr is not None:
                    self._eval(expr, env, ctx)
            case If(cond=cond, then=then, orelse=orelse):
                self._eval(cond, env, ctx)
                then_env = dict(env)
                else_env = dict(env)
                ctx.push()
                self._walk_block(then, then_env, ctx)
                then_cost = ctx.pop()
                ctx.push()
                self._walk_block(orelse, else_env, ctx)
                else_cost = ctx.pop()
                ctx.add(max(then_cost, else_cost))
                for ident in env:
                    env[ident] = _merge(then_env[ident], else_env[ident])
            case While(cond=cond, body=body):
                self._eval(cond, env, ctx)
                self._check_loop_invariants(body, env, ctx)
                ctx.push()
                self._walk_block(body, env, ctx)
                ctx.add(ctx.pop() * LOOP_TRIPS)
            case Parallel(body=body, line=line):
                branch_costs: list[float] = []
                for branch in body:
                    ctx.push()
                    self._walk_statement(branch, env, ctx)
                    branch_costs.append(ctx.pop())
                n = len(branch_costs)
                sequential = sum(branch_costs)
                fan_out = max(branch_costs, default=0.0) + BRANCH_OVERHEAD * n
                ctx.add(min(fan_out, sequential) if n else 0.0)
                if n >= 2 and fan_out >= sequential:
                    ctx.report.add(
                        "PERF006",
                        f"fan-out plan over {n} branches costs ~{fan_out:.0f} "
                        f"(longest branch + {BRANCH_OVERHEAD:g}/branch "
                        f"dispatch) but the shard-local sequential plan "
                        f"costs ~{sequential:.0f}; the branches are too "
                        f"cheap to ship",
                        Severity.WARNING,
                        source=ctx.source,
                        line=line,
                    )
            case _:
                pass

    def _note_assignment(
        self,
        ident: str,
        value: Any,
        val: CostVal,
        line: int | None,
        env: dict[str, CostVal],
        ctx: _CostCtx,
    ) -> None:
        """Per-assignment bookkeeping for the chain/copy lints."""
        source_ident = _select_source(value)
        if source_ident is not None:
            length, first = 1, line
            previous = ctx.select_chain.get(source_ident)
            if previous is not None:
                length = previous[0] + 1
                first = previous[1]
            ctx.select_chain[ident] = (length, first)
            if length == 2:
                ctx.report.add(
                    "PERF002",
                    f"chain of {length} selections materializes an "
                    f"intermediate BAT at every step; a fused selection "
                    f"would scan the input once",
                    Severity.WARNING,
                    source=ctx.source,
                    line=first,
                    end_line=line,
                )
        if (
            isinstance(value, MethodCall)
            and value.method == "copy"
            and isinstance(value.target, Name)
            and val.degree >= 1
        ):
            ctx.copies.append(_CopyRecord(ident, value.target.ident, line))

    def _finish(self, ctx: _CostCtx) -> None:
        """End of walk: copies never sliced nor justified are PERF004."""
        for record in ctx.copies:
            justified = (
                record.target in ctx.mutated
                or record.target in ctx.sliced
                or (record.source is not None and record.source in ctx.mutated)
            )
            if not justified:
                ctx.report.add(
                    "PERF004",
                    f"{record.target!r} fully materializes a copy of "
                    f"{record.source!r} but is never sliced or mutated; "
                    f"read the source (or a slice) directly",
                    Severity.WARNING,
                    source=ctx.source,
                    line=record.line,
                )

    # -- PERF003: loop-invariant commands --------------------------------
    def _check_loop_invariants(
        self, body: list[Any], env: dict[str, CostVal], ctx: _CostCtx
    ) -> None:
        assigned = _assigned_names(body)
        for statement in body:
            expr = None
            match statement:
                case VarDecl(value=value):
                    expr = value
                case Assign(value=value):
                    expr = value
                case ExprStmt(expr=inner):
                    expr = inner
            if not isinstance(expr, Call):
                continue
            if expr.func not in self._signatures or expr.func in IMPURE_COMMANDS:
                continue
            free = _free_names(expr)
            if free & assigned:
                continue
            ctx.report.add(
                "PERF003",
                f"call to {expr.func!r} is loop-invariant: none of its "
                f"inputs change inside the WHILE body; hoist it out of "
                f"the loop",
                Severity.WARNING,
                source=ctx.source,
                line=getattr(statement, "line", None) or expr.line,
            )

    # -- expression evaluation -------------------------------------------
    def _eval(self, node: Any, env: dict[str, CostVal], ctx: _CostCtx) -> CostVal:
        match node:
            case Literal(value=value):
                if isinstance(value, bool):
                    return CostVal(interval=_point(1.0 if value else 0.0))
                if isinstance(value, (int, float)):
                    return CostVal(interval=_point(float(value)))
                return _SCALAR
            case Name(ident=ident):
                return env.get(ident, _SCALAR)
            case Call():
                return self._eval_call(node, env, ctx)
            case MethodCall():
                return self._eval_method(node, env, ctx)
            case BinOp(op=op, left=left, right=right):
                left_val = self._eval(left, env, ctx)
                right_val = self._eval(right, env, ctx)
                if op in ("AND", "OR", "=", "!=", "<", ">", "<=", ">="):
                    return CostVal(interval=Interval(0.0, 1.0))
                return CostVal(
                    interval=_arith_interval(
                        op, left_val.interval, right_val.interval
                    )
                )
            case UnaryOp(operand=operand):
                val = self._eval(operand, env, ctx)
                return CostVal(
                    interval=_arith_interval("-", _point(0.0), val.interval)
                )
            case _:
                return _SCALAR

    def _eval_call(self, node: Call, env, ctx: _CostCtx) -> CostVal:
        if node.func == "new":
            ctx.add(1.0)
            names = [a.ident for a in node.args if isinstance(a, Name)]
            keyed = bool(names) and names[0] == "void"
            return CostVal(
                is_bat=True,
                rows=_FRESH_ROWS,
                degree=0,
                keyed_head=keyed,
                interval=EMPTY,
            )
        arg_vals = [self._eval(a, env, ctx) for a in node.args]
        handler = _BULK_COST.get(node.func)
        if handler is not None:
            return handler(self, node, arg_vals, env, ctx)
        scanned = sum(v.rows for v in arg_vals if v.is_bat)
        ctx.add(1.0 + scanned)
        if node.func in self._procs:
            definition = self._procs[node.func]
            return self._result_from_type(definition.return_type, arg_vals)
        signature = self._signatures.get(node.func)
        if signature is not None:
            result = self._result_from_type(signature.returns, arg_vals)
            if signature.returns_range is not None:
                return replace(
                    result, interval=Interval(*signature.returns_range)
                )
            return result
        return _SCALAR

    def _result_from_type(
        self, type_name: str | None, arg_vals: list[CostVal]
    ) -> CostVal:
        inferred = _named_type(type_name)
        if not isinstance(inferred, BatT):
            return _SCALAR
        bat_rows = [v.rows for v in arg_vals if v.is_bat]
        degree = max((v.degree for v in arg_vals if v.is_bat), default=1)
        return CostVal(
            is_bat=True,
            rows=max(bat_rows, default=DEFAULT_CARD),
            degree=degree,
            keyed_head=inferred.head == "void",
        )

    # -- BAT methods -----------------------------------------------------
    def _eval_method(self, node: MethodCall, env, ctx: _CostCtx) -> CostVal:
        receiver = self._eval(node.target, env, ctx)
        arg_vals = [self._eval(a, env, ctx) for a in node.args]
        target_ident = (
            node.target.ident if isinstance(node.target, Name) else None
        )
        if not receiver.is_bat:
            ctx.add(1.0)
            return _SCALAR
        method = node.method
        rows = receiver.rows
        if method in APPEND_METHODS:
            ctx.add(1.0)
            if target_ident is not None:
                ctx.mutated.add(target_ident)
                inserted = arg_vals[-1] if arg_vals else _SCALAR
                env[target_ident] = replace(
                    receiver,
                    rows=receiver.rows + 1.0,
                    sorted_tail=False,
                    interval=receiver.interval.hull(inserted.interval),
                )
            return receiver
        if method in WRITE_METHODS:
            ctx.add(rows)
            if target_ident is not None:
                ctx.mutated.add(target_ident)
            return receiver
        if method == "select":
            ctx.add(rows)
            if receiver.sorted_tail:
                ctx.report.add(
                    "PERF005",
                    f"value scan over a tail-sorted BAT; a sorted "
                    f"(binary-search) access path exists and costs "
                    f"O(log n) instead of O(n)",
                    Severity.WARNING,
                    source=ctx.source,
                    line=node.line,
                )
            interval = receiver.interval
            if len(arg_vals) == 2:
                interval = _narrow(
                    _narrow(interval, ">=", arg_vals[0].interval),
                    "<=",
                    arg_vals[1].interval,
                )
                kept = _range_selectivity(
                    receiver.interval, arg_vals[0].interval, arg_vals[1].interval
                )
            elif len(arg_vals) == 1:
                interval = _narrow(interval, "=", arg_vals[0].interval)
                kept = _MIN_SELECTIVITY * 5
            else:
                kept = DEFAULT_SELECTIVITY
            return CostVal(
                is_bat=True,
                rows=max(rows * kept, 1.0),
                degree=receiver.degree,
                sorted_tail=receiver.sorted_tail,
                keyed_head=receiver.keyed_head,
                interval=interval,
            )
        if method == "sort":
            ctx.add(rows * max(math.log2(rows + 2.0), 1.0))
            return replace(receiver, sorted_tail=True, keyed_head=False)
        if method == "join":
            other = arg_vals[0] if arg_vals else _SCALAR
            if other.is_bat and not other.keyed_head:
                ctx.add(rows * other.rows)
                if receiver.degree >= 1 and other.degree >= 1:
                    ctx.report.add(
                        "PERF001",
                        f"nested-loop join: the inner BAT has no keyed "
                        f"(dense/void) head, so every one of ~{rows:.0f} "
                        f"probes scans ~{other.rows:.0f} rows "
                        f"(~{rows * other.rows:.0f} work); key or mark "
                        f"the inner BAT first",
                        Severity.WARNING,
                        source=ctx.source,
                        line=node.line,
                    )
            else:
                ctx.add(rows + (other.rows if other.is_bat else 0.0))
            return CostVal(
                is_bat=True,
                rows=rows,
                degree=max(receiver.degree, other.degree),
                keyed_head=receiver.keyed_head,
                interval=other.interval,
            )
        if method in ("semijoin", "kdiff", "kunion"):
            other = arg_vals[0] if arg_vals else _SCALAR
            other_rows = other.rows if other.is_bat else 0.0
            ctx.add(rows + other_rows)
            out_rows = rows + other_rows if method == "kunion" else rows
            return CostVal(
                is_bat=True,
                rows=out_rows,
                degree=max(receiver.degree, other.degree),
                keyed_head=receiver.keyed_head,
                interval=receiver.interval.hull(other.interval)
                if method == "kunion"
                else receiver.interval,
            )
        if method == "slice":
            if target_ident is not None:
                ctx.sliced.add(target_ident)
            lo = arg_vals[0].interval if len(arg_vals) > 0 else TOP
            hi = arg_vals[1].interval if len(arg_vals) > 1 else TOP
            if lo.known and hi.known:
                out_rows = max(min(hi.hi - lo.lo, rows), 1.0)
            else:
                out_rows = max(rows * 0.1, 1.0)
            ctx.add(out_rows)
            return replace(receiver, rows=out_rows, degree=0)
        if method == "copy":
            ctx.add(rows)
            return replace(receiver, keyed_head=False)
        if method in ("unique", "filter_tail"):
            ctx.add(rows)
            return receiver
        if method in ("reverse", "mirror", "mark", "histogram"):
            ctx.add(rows)
            return CostVal(
                is_bat=True,
                rows=rows,
                degree=receiver.degree,
                keyed_head=method == "mark",
            )
        if method == "count":
            ctx.add(1.0)
            return CostVal(interval=Interval(0.0, math.inf))
        if method in ("max", "min", "avg", "sum", "find", "exist", "fetch"):
            ctx.add(1.0 if receiver.keyed_head and method == "fetch" else rows)
            interval = receiver.interval if method != "sum" else TOP
            return CostVal(interval=interval)
        ctx.add(1.0)
        return _SCALAR


def _merge(a: CostVal, b: CostVal) -> CostVal:
    if a == b:
        return a
    return CostVal(
        is_bat=a.is_bat or b.is_bat,
        rows=max(a.rows, b.rows),
        degree=max(a.degree, b.degree),
        sorted_tail=a.sorted_tail and b.sorted_tail,
        keyed_head=a.keyed_head and b.keyed_head,
        interval=a.interval.hull(b.interval),
    )


def _select_source(value: Any) -> str | None:
    """The source ident when ``value`` is a selection over a variable."""
    if (
        isinstance(value, Call)
        and value.func == "mselect"
        and value.args
        and isinstance(value.args[0], Name)
    ):
        return value.args[0].ident
    if (
        isinstance(value, MethodCall)
        and value.method == "select"
        and isinstance(value.target, Name)
    ):
        return value.target.ident
    return None


def _assigned_names(body: list[Any]) -> set[str]:
    """Every name a loop body may rebind or mutate (recursively)."""
    assigned: set[str] = set()

    def walk(node: Any) -> None:
        match node:
            case VarDecl(ident=ident, value=value):
                assigned.add(ident)
                if value is not None:
                    walk(value)
            case Assign(ident=ident, value=value):
                assigned.add(ident)
                walk(value)
            case ExprStmt(expr=expr):
                walk(expr)
            case Return(expr=expr):
                if expr is not None:
                    walk(expr)
            case If(cond=cond, then=then, orelse=orelse):
                walk(cond)
                for sub in then + orelse:
                    walk(sub)
            case While(cond=cond, body=inner):
                walk(cond)
                for sub in inner:
                    walk(sub)
            case Parallel(body=inner):
                for sub in inner:
                    walk(sub)
            case Call(args=args):
                for arg in args:
                    walk(arg)
            case MethodCall(target=target, method=method, args=args):
                walk(target)
                for arg in args:
                    walk(arg)
                if isinstance(target, Name) and method in (
                    APPEND_METHODS | WRITE_METHODS
                ):
                    assigned.add(target.ident)
            case BinOp(left=left, right=right):
                walk(left)
                walk(right)
            case UnaryOp(operand=operand):
                walk(operand)
            case _:
                pass

    for statement in body:
        walk(statement)
    return assigned


def _free_names(node: Any) -> set[str]:
    free: set[str] = set()

    def walk(sub: Any) -> None:
        match sub:
            case Name(ident=ident):
                free.add(ident)
            case Call(args=args):
                for arg in args:
                    walk(arg)
            case MethodCall(target=target, args=args):
                walk(target)
                for arg in args:
                    walk(arg)
            case BinOp(left=left, right=right):
                walk(left)
                walk(right)
            case UnaryOp(operand=operand):
                walk(operand)
            case _:
                pass

    walk(node)
    return free


def _range_selectivity(interval: Interval, lo: Interval, hi: Interval) -> float:
    """Kept fraction of ``select(lo, hi)`` given the value interval."""
    if not (interval.known and lo.known and hi.known):
        return DEFAULT_SELECTIVITY
    width = interval.hi - interval.lo
    if width <= 0.0:
        return DEFAULT_SELECTIVITY
    kept = min(interval.hi, hi.hi) - max(interval.lo, lo.lo)
    return min(max(kept / width, _MIN_SELECTIVITY), 1.0)


def _cmp_selectivity(interval: Interval, op: str, bound: Interval) -> float:
    """Kept fraction of ``mselect(op, bound)`` given the value interval."""
    if not (interval.known and bound.known):
        return DEFAULT_SELECTIVITY
    width = interval.hi - interval.lo
    if width <= 0.0:
        return DEFAULT_SELECTIVITY
    if op in (">", ">="):
        kept = interval.hi - max(interval.lo, bound.lo)
    elif op in ("<", "<="):
        kept = min(interval.hi, bound.hi) - interval.lo
    elif op == "=":
        return _MIN_SELECTIVITY * 5
    else:
        return DEFAULT_SELECTIVITY
    return min(max(kept / width, _MIN_SELECTIVITY), 1.0)


# ---------------------------------------------------------------------------
# bulk-operator cost transfer functions
# ---------------------------------------------------------------------------


def _literal_str(node: Any) -> str | None:
    if isinstance(node, Literal) and isinstance(node.value, str):
        return node.value
    return None


def _bulk_mselect(
    checker: CostChecker, node: Call, args: list[CostVal], env, ctx: _CostCtx
) -> CostVal:
    source_val = args[0] if args else _SCALAR
    ctx.add(1.0 + source_val.rows)
    if source_val.is_bat and source_val.sorted_tail:
        ctx.report.add(
            "PERF005",
            "value scan over a tail-sorted BAT; a sorted (binary-search) "
            "access path exists and costs O(log n) instead of O(n)",
            Severity.WARNING,
            source=ctx.source,
            line=node.line,
        )
    op = _literal_str(node.args[1]) if len(node.args) > 1 else None
    bound = args[2].interval if len(args) > 2 else TOP
    kept = (
        _cmp_selectivity(source_val.interval, op, bound)
        if op
        else DEFAULT_SELECTIVITY
    )
    interval = _narrow(source_val.interval, op, bound) if op else TOP
    return CostVal(
        is_bat=True,
        rows=max(source_val.rows * kept, 1.0),
        degree=source_val.degree,
        sorted_tail=source_val.sorted_tail,
        keyed_head=source_val.keyed_head,
        interval=interval,
    )


def _bulk_mmap(
    checker: CostChecker, node: Call, args: list[CostVal], env, ctx: _CostCtx
) -> CostVal:
    source_val = args[0] if args else _SCALAR
    ctx.add(1.0 + source_val.rows)
    op = _literal_str(node.args[1]) if len(node.args) > 1 else None
    operand = args[2].interval if len(args) > 2 else TOP
    interval = _arith_interval(op, source_val.interval, operand) if op else TOP
    return CostVal(
        is_bat=True,
        rows=source_val.rows,
        degree=source_val.degree,
        keyed_head=source_val.keyed_head,
        interval=interval,
    )


def _bulk_maggr(
    checker: CostChecker, node: Call, args: list[CostVal], env, ctx: _CostCtx
) -> CostVal:
    source_val = args[0] if args else _SCALAR
    ctx.add(1.0 + source_val.rows)
    kind = _literal_str(node.args[1]) if len(node.args) > 1 else None
    if kind == "count":
        return CostVal(interval=Interval(0.0, math.inf))
    return CostVal(interval=source_val.interval)


def _bulk_msetop(
    checker: CostChecker, node: Call, args: list[CostVal], env, ctx: _CostCtx
) -> CostVal:
    left = args[1] if len(args) > 1 else _SCALAR
    right = args[2] if len(args) > 2 else _SCALAR
    ctx.add(1.0 + left.rows + right.rows)
    return CostVal(
        is_bat=True,
        rows=left.rows + right.rows,
        degree=max(left.degree, right.degree),
        interval=left.interval.hull(right.interval),
    )


_BULK_COST = {
    "mselect": _bulk_mselect,
    "mmap": _bulk_mmap,
    "maggr": _bulk_maggr,
    "msetop": _bulk_msetop,
}


# ---------------------------------------------------------------------------
# Moa expression cost model
# ---------------------------------------------------------------------------


def estimate_moa_cost(expr: Expr, card: float = DEFAULT_CARD) -> float:
    """Estimated work units of a Moa expression over ``card``-row inputs."""
    cost, _ = _moa_walk(expr, card, None)
    return cost


def check_moa_cost(
    expr: Expr, source: str = "<moa>", card: float = DEFAULT_CARD
) -> DiagnosticReport:
    """Moa-level PERF lints: nested selections and nested-loop joins."""
    report = DiagnosticReport()
    _moa_walk(expr, card, report, source)
    return report


def _moa_walk(
    expr: Expr,
    card: float,
    report: DiagnosticReport | None,
    source: str = "<moa>",
) -> tuple[float, float]:
    """Returns ``(cost, rows)`` for one node; reports when asked."""

    def walk(node: Expr) -> tuple[float, float]:
        match node:
            case Const():
                return 0.0, 1.0
            case Var():
                return 0.0, card
            case Select(source=inner):
                if report is not None and isinstance(inner, Select):
                    report.add(
                        "PERF002",
                        "nested selections materialize an intermediate at "
                        "every level; fuse the predicates into one pass",
                        Severity.WARNING,
                        source=source,
                    )
                sub_cost, sub_rows = walk(inner)
                return sub_cost + sub_rows, max(
                    sub_rows * DEFAULT_SELECTIVITY, 1.0
                )
            case Map(source=inner):
                sub_cost, sub_rows = walk(inner)
                return sub_cost + sub_rows, sub_rows
            case Aggregate(source=inner):
                sub_cost, sub_rows = walk(inner)
                return sub_cost + sub_rows, 1.0
            case SetOp(left=left, right=right):
                l_cost, l_rows = walk(left)
                r_cost, r_rows = walk(right)
                return l_cost + r_cost + l_rows + r_rows, l_rows + r_rows
            case Join(left=left, right=right):
                l_cost, l_rows = walk(left)
                r_cost, r_rows = walk(right)
                if report is not None and l_rows >= card and r_rows >= card:
                    report.add(
                        "PERF001",
                        "nested-loop join over two unbounded inputs "
                        f"(~{l_rows * r_rows:.0f} work); restrict one side "
                        "before joining",
                        Severity.WARNING,
                        source=source,
                    )
                return l_cost + r_cost + l_rows * r_rows, l_rows * r_rows
            case Semijoin(left=left, right=right):
                l_cost, l_rows = walk(left)
                r_cost, r_rows = walk(right)
                return l_cost + r_cost + l_rows + r_rows, l_rows
            case Nest(source=inner) | Unnest(source=inner) | The(source=inner):
                return walk(inner)
            case Apply(args=args):
                total_cost, total_rows = 0.0, 0.0
                for arg in args:
                    sub_cost, sub_rows = walk(arg)
                    total_cost += sub_cost + sub_rows
                    total_rows = max(total_rows, sub_rows)
                return total_cost, max(total_rows, 1.0)
            case Field(source=inner):
                return walk(inner)
            case MakeTuple(fields=fields):
                total = 0.0
                for _, sub in fields:
                    sub_cost, _rows = walk(sub)
                    total += sub_cost
                return total, 1.0
            case Arith(left=left, right=right) | Cmp(
                left=left, right=right
            ) | BoolOp(left=left, right=right):
                l_cost, _ = walk(left)
                r_cost, _ = walk(right)
                return l_cost + r_cost, 1.0
            case Not(operand=operand):
                return walk(operand)
            case _:
                return 0.0, 1.0

    return walk(expr)


# ---------------------------------------------------------------------------
# cost models for the Cobra layers
# ---------------------------------------------------------------------------


def estimate_extraction_cost(method: Any, document: Any) -> float:
    """Estimated cost of running one extraction method on one document.

    ``method.cost`` is the catalog's declared per-row unit cost; the row
    count is the total length of the feature tracks the method reads (all
    tracks when it declares no prerequisites — a raw-media pass), falling
    back to :data:`DEFAULT_CARD` when the document carries no usable
    tracks.  Used by
    :meth:`repro.cobra.preprocessor.QueryPreprocessor._choose_method`.
    """
    features = getattr(document, "features", {}) or {}
    names = tuple(getattr(method, "requires_features", ()) or ()) or tuple(
        sorted(features)
    )
    rows = 0.0
    for name in names:
        track = features.get(name)
        if track is None:
            rows += DEFAULT_CARD
        else:
            rows += float(len(getattr(track, "values", ())))
    if rows == 0.0:
        rows = DEFAULT_CARD
    return 1.0 + float(getattr(method, "cost", 1.0)) * rows


def estimate_model_cost(template: Any) -> float:
    """Per-step inference cost estimate of a DBN template.

    Exact interface inference over a two-slice DBN is linear in the joint
    hidden state space per step: the product of the hidden-node
    cardinalities, squared by the transition.  Stored by
    :meth:`repro.cobra.extensions.DbnExtension.register` so plan choice
    can weigh models against each other.
    """
    try:
        nodes = template.nodes()
        observed = set(template.observed_nodes())
    except Exception:  # pragma: no cover - duck-typed templates
        return 1.0
    hidden_states = 1.0
    for name in nodes:
        if name not in observed:
            hidden_states *= float(template.cardinality(name))
    return max(hidden_states * hidden_states, 1.0)


# ---------------------------------------------------------------------------
# convenience entry point
# ---------------------------------------------------------------------------


def check_cost_source(
    source: str,
    name: str = "<mil>",
    commands: Mapping[str, Any] | Iterable[str] | None = None,
    signatures: Mapping[str, Any] | None = None,
    globals_names: Iterable[str] = (),
    procedures: Mapping[str, Any] | None = None,
) -> DiagnosticReport:
    """Parse and cost-check MIL source text."""
    return CostChecker(commands, signatures, globals_names, procedures).check_source(
        source, name=name
    )
