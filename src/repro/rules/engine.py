"""A forward-chaining rule engine (the rule-based Moa extension's core).

Facts are typed records; rules bind variables across patterns, test guards
(including temporal predicates from :mod:`repro.rules.temporal`), and
assert derived facts. The engine runs to fixpoint, which is how the Cobra
system derives high-level concepts like "pit-stop duel" from stored events
without re-touching the video.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import itertools
from typing import Any, Callable, Iterable, Mapping

from repro.errors import RuleError

__all__ = ["Fact", "Var", "Pattern", "Rule", "RuleEngine"]


@dataclass(frozen=True)
class Fact:
    """One immutable fact: a kind plus named fields."""

    kind: str
    fields: tuple[tuple[str, Any], ...]

    @staticmethod
    def of(kind: str, /, **fields: Any) -> "Fact":
        """Build a fact; ``kind`` is positional-only so a field may also be
        called "kind"."""
        return Fact(kind, tuple(sorted(fields.items())))

    def get(self, name: str, default: Any = None) -> Any:
        for key, value in self.fields:
            if key == name:
                return value
        return default

    def as_dict(self) -> dict[str, Any]:
        return dict(self.fields)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields)
        return f"{self.kind}({inner})"


@dataclass(frozen=True)
class Var:
    """A pattern variable, bound on first match and unified afterwards."""

    name: str


@dataclass(frozen=True)
class Pattern:
    """Matches facts of one kind with per-field constraints.

    Field constraints are literals (equality), :class:`Var` (bind/unify),
    or predicates ``callable(value) -> bool``.
    """

    kind: str
    constraints: tuple[tuple[str, Any], ...] = ()

    @staticmethod
    def of(kind: str, /, **constraints: Any) -> "Pattern":
        return Pattern(kind, tuple(sorted(constraints.items())))

    def match(self, fact: Fact, bindings: dict[str, Any]) -> dict[str, Any] | None:
        """Try to extend ``bindings`` so this pattern matches ``fact``."""
        if fact.kind != self.kind:
            return None
        extended = dict(bindings)
        for name, constraint in self.constraints:
            value = fact.get(name, _MISSING)
            if value is _MISSING:
                return None
            if isinstance(constraint, Var):
                if constraint.name in extended:
                    if extended[constraint.name] != value:
                        return None
                else:
                    extended[constraint.name] = value
            elif callable(constraint):
                if not constraint(value):
                    return None
            elif constraint != value:
                return None
        return extended


_MISSING = object()


@dataclass
class Rule:
    """WHEN patterns (+ guard) THEN derive facts.

    Attributes:
        name: for tracing.
        patterns: all must match distinct facts simultaneously.
        guard: extra test on the joint bindings (e.g. temporal relations);
            None = always true.
        action: produces derived facts from the bindings.
    """

    name: str
    patterns: list[Pattern]
    action: Callable[[Mapping[str, Any]], Iterable[Fact]]
    guard: Callable[[Mapping[str, Any]], bool] | None = None


class RuleEngine:
    """Naive-but-correct forward chaining to fixpoint."""

    def __init__(self, max_iterations: int = 100):
        self._facts: list[Fact] = []
        self._fact_set: set[Fact] = set()
        self._rules: list[Rule] = []
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------
    def add_fact(self, fact: Fact) -> bool:
        """Insert a fact; returns False if it was already known."""
        if fact in self._fact_set:
            return False
        self._facts.append(fact)
        self._fact_set.add(fact)
        return True

    def add_rule(self, rule: Rule) -> None:
        if not rule.patterns:
            raise RuleError(f"rule {rule.name!r} has no patterns")
        self._rules.append(rule)

    def facts(self, kind: str | None = None) -> list[Fact]:
        if kind is None:
            return list(self._facts)
        return [f for f in self._facts if f.kind == kind]

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Fire rules to fixpoint; returns the number of derived facts."""
        derived = 0
        for _ in range(self.max_iterations):
            new_facts: list[Fact] = []
            for rule in self._rules:
                for bindings in self._matches(rule):
                    for fact in rule.action(bindings):
                        if fact not in self._fact_set and fact not in new_facts:
                            new_facts.append(fact)
            if not new_facts:
                return derived
            for fact in new_facts:
                self.add_fact(fact)
            derived += len(new_facts)
        raise RuleError(
            f"no fixpoint after {self.max_iterations} iterations "
            f"(a rule probably derives ever-growing facts)"
        )

    def _matches(self, rule: Rule) -> Iterable[dict[str, Any]]:
        """All binding sets satisfying every pattern (distinct facts) and
        the guard."""
        candidate_lists = [
            [f for f in self._facts if f.kind == p.kind] for p in rule.patterns
        ]
        for combo in itertools.product(*candidate_lists):
            if len({id(f) for f in combo}) != len(combo):
                continue
            bindings: dict[str, Any] | None = {}
            for pattern, fact in zip(rule.patterns, combo):
                bindings = pattern.match(fact, bindings)
                if bindings is None:
                    break
            if bindings is None:
                continue
            if rule.guard is not None and not rule.guard(bindings):
                continue
            yield bindings
