"""Allen interval algebra — the spatio-temporal core of the rule engine.

The rule-based extension "is aimed at formalizing the descriptions of
high-level concepts, as well as their extraction based on features and
spatio-temporal reasoning" (§3); the UI lets a user "define new compound
events by specifying different temporal relationships among already defined
events" (§5.6). Allen's thirteen interval relations are that vocabulary.
"""

from __future__ import annotations

from repro.errors import RuleError
from repro.synth.annotations import Interval

__all__ = ["allen_relation", "holds", "ALLEN_RELATIONS", "INVERSES"]

ALLEN_RELATIONS = (
    "before",
    "meets",
    "overlaps",
    "starts",
    "during",
    "finishes",
    "equals",
    "after",
    "met_by",
    "overlapped_by",
    "started_by",
    "contains",
    "finished_by",
)

INVERSES = {
    "before": "after",
    "meets": "met_by",
    "overlaps": "overlapped_by",
    "starts": "started_by",
    "during": "contains",
    "finishes": "finished_by",
    "equals": "equals",
    "after": "before",
    "met_by": "meets",
    "overlapped_by": "overlaps",
    "started_by": "starts",
    "contains": "during",
    "finished_by": "finishes",
}


def allen_relation(a: Interval, b: Interval, tolerance: float = 0.0) -> str:
    """The unique Allen relation holding between intervals a and b.

    Args:
        tolerance: endpoints closer than this count as equal (media
            timestamps are never exact).
    """
    def eq(x: float, y: float) -> bool:
        return abs(x - y) <= tolerance

    if eq(a.start, b.start) and eq(a.end, b.end):
        return "equals"
    if eq(a.end, b.start):
        return "meets"
    if eq(b.end, a.start):
        return "met_by"
    if a.end < b.start:
        return "before"
    if b.end < a.start:
        return "after"
    if eq(a.start, b.start):
        return "starts" if a.end < b.end else "started_by"
    if eq(a.end, b.end):
        return "finishes" if a.start > b.start else "finished_by"
    if a.start > b.start and a.end < b.end:
        return "during"
    if a.start < b.start and a.end > b.end:
        return "contains"
    if a.start < b.start:
        return "overlaps"
    return "overlapped_by"


def holds(relation: str, a: Interval, b: Interval, tolerance: float = 0.5) -> bool:
    """Does the named relation hold between a and b (with tolerance)?

    Accepts the exact Allen names plus two practical disjunctions:
    ``"intersects"`` (any overlap) and ``"within"`` (during/starts/
    finishes/equals).
    """
    if relation == "intersects":
        return a.overlaps(b)
    if relation == "within":
        return allen_relation(a, b, tolerance) in (
            "during",
            "starts",
            "finishes",
            "equals",
        )
    if relation not in ALLEN_RELATIONS:
        raise RuleError(f"unknown temporal relation {relation!r}")
    return allen_relation(a, b, tolerance) == relation
