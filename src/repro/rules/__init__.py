"""Rule-based extension: forward-chaining inference with Allen-interval
temporal predicates."""

from repro.rules.engine import Fact, Pattern, Rule, RuleEngine, Var
from repro.rules.temporal import ALLEN_RELATIONS, INVERSES, allen_relation, holds

__all__ = [
    "Fact", "Pattern", "Rule", "RuleEngine", "Var",
    "ALLEN_RELATIONS", "INVERSES", "allen_relation", "holds",
]
