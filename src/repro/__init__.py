"""Cobra VDBMS reproduction.

A from-scratch Python implementation of "Extending a DBMS to Support
Content-Based Video Retrieval: A Formula 1 Case Study" (EDBT workshops,
2002): a Monet-style binary-relational kernel, the Moa object algebra, the
Cobra video data model with dynamic feature/semantic extraction, discrete
BN/DBN/HMM engines, the paper's audio/visual/text feature extractors, a
synthetic Formula 1 substrate standing in for the digitized races, the
DBN fusion experiments, and the retrieval front-end.

Quick start::

    from repro.synth import GERMAN_GP
    from repro.fusion import prepare_race, AvExperiment

    data = prepare_race(GERMAN_GP)
    experiment = AvExperiment(data)
    print(experiment.evaluate(data).highlight_scores)
"""

from repro import (
    audio,
    bayes,
    cobra,
    dbn,
    fusion,
    hmm,
    moa,
    monet,
    retrieval,
    rules,
    synth,
    text,
    video,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "audio", "bayes", "cobra", "dbn", "fusion", "hmm", "moa", "monet",
    "retrieval", "rules", "synth", "text", "video", "ReproError",
    "__version__",
]
