"""Resilient-execution primitives shared by all three architecture levels.

A production video DBMS answers queries over messy broadcast material: slow
extractors, transient kernel glitches, whole modalities that fail to decode.
This module supplies the machinery the kernel (`repro.monet`), the algebra
(`repro.moa`) and the conceptual level (`repro.cobra`) use to keep going:

* :class:`Deadline` — a monotonic-clock budget shared per call or per query;
  an expired check raises :class:`repro.errors.TimeoutExpired` carrying the
  site and the overshoot, so ``FailureReport.from_exception`` classifies it
  as transient,
* :class:`CancellationToken` — a Deadline that can also be cancelled
  cooperatively; hot loops across all three levels call
  :func:`cancel_checkpoint` against the ambient token installed by
  :func:`cancel_scope`, so an expired or cancelled request stops doing work
  within one kernel step,
* :class:`RetryPolicy` — bounded retry with exponential backoff, applied only
  to :class:`repro.errors.TransientError`; ``TimeoutExpired``,
  ``OverloadError`` and ``CircuitOpenError`` are transient but excluded by
  default so exhausted budgets, saturated services and open circuits fail
  fast instead of being hammered,
* :class:`CircuitBreaker` — closed/open/half-open protection around each
  registered extractor so a persistently failing method fails fast; in the
  half-open state exactly one in-flight probe is allowed at a time,
* :class:`FailureReport` — the structured record that replaces raw
  tracebacks on ``QueryResult`` / ``PreprocessReport``,
* :class:`ResiliencePolicy` — the bundle of the above a `CobraVDBMS` or
  `MonetKernel` is configured with.

Everything takes an injectable clock/sleep so chaos tests are deterministic.
"""

from __future__ import annotations

import contextvars
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import (
    CircuitOpenError,
    OverloadError,
    RequestCancelled,
    TimeoutExpired,
    TransientError,
    is_transient,
)

__all__ = [
    "Deadline",
    "CancellationToken",
    "cancel_scope",
    "current_token",
    "cancel_checkpoint",
    "RetryPolicy",
    "CircuitBreaker",
    "FailureReport",
    "ResiliencePolicy",
]


class Deadline:
    """A monotonic-clock time budget.

    ``Deadline(None)`` never expires; :meth:`after` starts a finite budget
    now. Checks are cooperative — long-running Python calls are measured
    after the fact, which still bounds retries and multi-statement work.
    """

    __slots__ = ("_expires_at", "_clock")

    def __init__(
        self,
        budget_seconds: float | None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._clock = clock
        if budget_seconds is None:
            self._expires_at: float | None = None
        else:
            if budget_seconds < 0:
                raise TimeoutExpired(
                    "deadline created already expired",
                    overshoot=-budget_seconds,
                )
            self._expires_at = clock() + budget_seconds

    @classmethod
    def after(
        cls, seconds: float | None, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(seconds, clock=clock)

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and self._clock() >= self._expires_at

    def remaining(self) -> float:
        """Seconds left; ``inf`` for an unbounded deadline, floored at 0."""
        if self._expires_at is None:
            return float("inf")
        return max(0.0, self._expires_at - self._clock())

    def check(self, site: str = "") -> None:
        """Raise :class:`repro.errors.TimeoutExpired` if the budget is spent.

        The raised error carries the checkpoint ``site`` and the overshoot
        (how far past the deadline the check noticed the expiry), and is
        classified as transient by :meth:`FailureReport.from_exception` —
        the same work may succeed under a fresh budget.
        """
        if self._expires_at is None:
            return
        now = self._clock()
        if now >= self._expires_at:
            raise TimeoutExpired(
                "deadline exceeded",
                site=site or None,
                overshoot=now - self._expires_at,
            )


class CancellationToken(Deadline):
    """A :class:`Deadline` that can additionally be cancelled cooperatively.

    One token rides along with each service request, from admission through
    the conceptual preprocessor into Moa evaluation, MIL interpretation,
    DBN inference steps and per-frame extraction. Hot loops call
    :meth:`check` (directly, where a deadline is already threaded through)
    or :func:`cancel_checkpoint` (against the ambient token installed with
    :func:`cancel_scope`), and the first checkpoint after :meth:`cancel`
    or deadline expiry raises — so a cancelled request stops consuming
    kernel steps within one MIL statement / inference step / frame.
    """

    __slots__ = ("_cancelled", "_cancel_reason")

    def __init__(
        self,
        budget_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        super().__init__(budget_seconds, clock=clock)
        self._cancelled = False
        self._cancel_reason = ""

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cooperative cancellation; idempotent and thread-safe.

        (A plain attribute write: booleans are atomic under the GIL and
        the flag only ever flips False -> True.)
        """
        if not self._cancelled:
            self._cancel_reason = reason
            self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def cancel_reason(self) -> str:
        return self._cancel_reason

    def check(self, site: str = "") -> None:
        """Raise :class:`RequestCancelled` when cancelled, else defer to the
        deadline check (:class:`TimeoutExpired` when the budget is spent)."""
        if self._cancelled:
            raise RequestCancelled(
                self._cancel_reason or "request cancelled", site=site or None
            )
        super().check(site)


#: The ambient token of the request currently executing on this thread /
#: context. Low layers (MIL statement dispatch, DBN inference, per-frame
#: extraction) consult it through :func:`cancel_checkpoint` so cancellation
#: propagates without threading a token through every signature.
_CURRENT_TOKEN: contextvars.ContextVar[CancellationToken | None] = (
    contextvars.ContextVar("repro_cancellation_token", default=None)
)


def current_token() -> CancellationToken | None:
    """The ambient :class:`CancellationToken`, or None outside any scope."""
    return _CURRENT_TOKEN.get()


@contextmanager
def cancel_scope(token: CancellationToken | None) -> Iterator[CancellationToken | None]:
    """Install ``token`` as the ambient cancellation token for this context.

    ``ParallelExecutor`` propagates the context into worker threads, so
    checkpoints inside PARALLEL branches observe the same token.
    """
    handle = _CURRENT_TOKEN.set(token)
    try:
        yield token
    finally:
        _CURRENT_TOKEN.reset(handle)


def cancel_checkpoint(site: str = "") -> None:
    """Cooperative cancellation checkpoint against the ambient token.

    A no-op outside any :func:`cancel_scope` (one context-variable read),
    so hot loops can call it unconditionally.
    """
    token = _CURRENT_TOKEN.get()
    if token is not None:
        token.check(site)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient faults.

    Only :class:`repro.errors.TransientError` is retried.
    :class:`repro.errors.CircuitOpenError`,
    :class:`repro.errors.TimeoutExpired` and
    :class:`repro.errors.OverloadError` are excluded by default: all three
    are transient (a later, fresh attempt may succeed) but retrying *now* —
    against an open circuit, an exhausted budget, or a saturated service —
    only makes the condition worse. Sleeps never exceed the active
    deadline's remaining budget.
    """

    max_attempts: int = 3
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    give_up_on: tuple[type[BaseException], ...] = (
        CircuitOpenError,
        TimeoutExpired,
        OverloadError,
    )
    sleep: Callable[[float], None] = time.sleep

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)

    def call(
        self,
        fn: Callable[[], Any],
        site: str = "",
        deadline: Deadline | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> Any:
        """Run ``fn`` with retries; returns its value or raises the last error.

        ``on_retry(attempt, error)`` fires before each backoff sleep so
        callers can log a :class:`FailureReport` per recovery.
        """
        attempt = 0
        while True:
            attempt += 1
            if deadline is not None:
                deadline.check(site)
            try:
                return fn()
            except TransientError as exc:
                if isinstance(exc, self.give_up_on) or attempt >= self.max_attempts:
                    raise
                pause = self.delay_for(attempt)
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= 0:
                        raise TimeoutExpired(
                            "deadline exhausted during retry backoff",
                            site=site or None,
                            overshoot=0.0,
                        ) from exc
                    pause = min(pause, remaining)
                if on_retry is not None:
                    on_retry(attempt, exc)
                if pause > 0:
                    self.sleep(pause)


class CircuitBreaker:
    """Closed / open / half-open protection around one extractor.

    Closed: calls pass through; ``failure_threshold`` consecutive failures
    open the circuit. Open: calls raise :class:`CircuitOpenError` without
    running until ``recovery_timeout`` elapses. Half-open: exactly ONE trial
    call is let through at a time — :meth:`allow` hands the single probe
    slot to the first caller and fails every concurrent caller fast until
    the probe reports back (success closes the circuit, failure re-opens
    it). Without the slot, every worker of a saturated pool would probe the
    recovering extractor at once, re-creating the thundering herd the
    breaker exists to prevent.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        name: str = "",
        failure_threshold: int = 3,
        recovery_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        #: Whether the half-open state's single probe slot is taken.
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._probe_state()

    def _probe_state(self) -> str:
        """Current state, promoting open -> half-open after the timeout."""
        if self._state == self.OPEN:
            assert self._opened_at is not None
            if self._clock() - self._opened_at >= self.recovery_timeout:
                self._state = self.HALF_OPEN
        return self._state

    def allow(self) -> None:
        """Raise :class:`CircuitOpenError` when calls must not run.

        In the half-open state only a single in-flight probe is allowed:
        the first caller takes the probe slot; every concurrent caller
        fails fast with ``CircuitOpenError`` until the probe's outcome is
        recorded.
        """
        with self._lock:
            state = self._probe_state()
            if state == self.OPEN:
                assert self._opened_at is not None
                wait = self.recovery_timeout - (self._clock() - self._opened_at)
                raise CircuitOpenError(
                    f"circuit {self.name or '<anonymous>'} is open "
                    f"({self._consecutive_failures} consecutive failures)",
                    retry_after=max(wait, 0.0),
                )
            if state == self.HALF_OPEN:
                if self._probe_in_flight:
                    raise CircuitOpenError(
                        f"circuit {self.name or '<anonymous>'} is half-open "
                        f"with its probe already in flight",
                        retry_after=0.0,
                    )
                self._probe_in_flight = True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._state = self.CLOSED
            self._opened_at = None
            self._probe_in_flight = False

    def reset(self) -> None:
        """Operator re-arm: close the breaker and forget failure history.

        Unlike the half-open trial, this is unconditional — use it after a
        recovery/deploy when the operator knows the underlying extractor is
        healthy again and the breaker should not wait out its timeout.
        """
        self.record_success()

    def release_probe(self) -> None:
        """Give the half-open probe slot back without recording an outcome.

        For probes that did not run to a verdict — the caller's own budget
        expired or its request was cancelled mid-probe. The circuit stays
        half-open and the next caller may probe.
        """
        with self._lock:
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            state = self._probe_state()
            if (
                state == self.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
            self._probe_in_flight = False

    def call(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` under the breaker, recording the outcome."""
        self.allow()
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result


@dataclass
class FailureReport:
    """One structured failure/degradation record (instead of a traceback).

    Attributes:
        site: where it happened (``kernel.command:hmmP``,
            ``extractor:flyout_visual``, ``extract.visual`` ...).
        error: exception class name.
        message: the exception message.
        transient: whether the fault was retryable.
        action: what the system did about it — ``"retried"``,
            ``"dropped"``, ``"rolled-back"``, ``"circuit-open"``,
            ``"masked"``, ``"failed"``.
        attempts: how many attempts had run when the record was made.
        detail: free-form extra context (dropped kind, masked nodes, ...).
    """

    site: str
    error: str
    message: str
    transient: bool
    action: str
    attempts: int = 1
    detail: str = ""

    @classmethod
    def from_exception(
        cls,
        site: str,
        exc: BaseException,
        action: str,
        attempts: int = 1,
        detail: str = "",
    ) -> "FailureReport":
        return cls(
            site=site,
            error=type(exc).__name__,
            message=str(exc),
            transient=is_transient(exc),
            action=action,
            attempts=attempts,
            detail=detail,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" [{self.detail}]" if self.detail else ""
        return (
            f"{self.site}: {self.error}({self.message!r}) -> "
            f"{self.action} after {self.attempts} attempt(s){extra}"
        )


@dataclass(frozen=True)
class ResiliencePolicy:
    """The fault-handling configuration of a kernel / VDBMS.

    Attributes:
        retry: backoff policy for transient faults.
        call_timeout: per-call budget (seconds) for guarded kernel commands
            and extractor invocations; ``None`` = unbounded.
        query_budget: per-query budget (seconds); ``None`` = unbounded.
        breaker_failure_threshold / breaker_recovery_timeout: parameters of
            the per-extractor circuit breakers.
        on_error: ``"raise"`` keeps the historical fail-fast behaviour;
            ``"degrade"`` drops what failed, records a
            :class:`FailureReport`, and answers from what survived.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    call_timeout: float | None = None
    query_budget: float | None = None
    breaker_failure_threshold: int = 3
    breaker_recovery_timeout: float = 30.0
    on_error: str = "raise"

    def __post_init__(self) -> None:
        if self.on_error not in ("raise", "degrade"):
            raise ValueError(
                f"on_error must be 'raise' or 'degrade', got {self.on_error!r}"
            )

    @property
    def degrade(self) -> bool:
        return self.on_error == "degrade"

    def query_deadline(self) -> Deadline:
        return Deadline(self.query_budget)

    def new_breaker(self, name: str) -> CircuitBreaker:
        return CircuitBreaker(
            name=name,
            failure_threshold=self.breaker_failure_threshold,
            recovery_timeout=self.breaker_recovery_timeout,
        )
