"""Resilient-execution primitives shared by all three architecture levels.

A production video DBMS answers queries over messy broadcast material: slow
extractors, transient kernel glitches, whole modalities that fail to decode.
This module supplies the machinery the kernel (`repro.monet`), the algebra
(`repro.moa`) and the conceptual level (`repro.cobra`) use to keep going:

* :class:`Deadline` — a monotonic-clock budget shared per call or per query,
* :class:`RetryPolicy` — bounded retry with exponential backoff, applied only
  to :class:`repro.errors.TransientError`,
* :class:`CircuitBreaker` — closed/open/half-open protection around each
  registered extractor so a persistently failing method fails fast,
* :class:`FailureReport` — the structured record that replaces raw
  tracebacks on ``QueryResult`` / ``PreprocessReport``,
* :class:`ResiliencePolicy` — the bundle of the above a `CobraVDBMS` or
  `MonetKernel` is configured with.

Everything takes an injectable clock/sleep so chaos tests are deterministic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    TransientError,
    is_transient,
)

__all__ = [
    "Deadline",
    "RetryPolicy",
    "CircuitBreaker",
    "FailureReport",
    "ResiliencePolicy",
]


class Deadline:
    """A monotonic-clock time budget.

    ``Deadline(None)`` never expires; :meth:`after` starts a finite budget
    now. Checks are cooperative — long-running Python calls are measured
    after the fact, which still bounds retries and multi-statement work.
    """

    __slots__ = ("_expires_at", "_clock")

    def __init__(
        self,
        budget_seconds: float | None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._clock = clock
        if budget_seconds is None:
            self._expires_at: float | None = None
        else:
            if budget_seconds < 0:
                raise DeadlineExceeded("deadline created already expired")
            self._expires_at = clock() + budget_seconds

    @classmethod
    def after(
        cls, seconds: float | None, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(seconds, clock=clock)

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and self._clock() >= self._expires_at

    def remaining(self) -> float:
        """Seconds left; ``inf`` for an unbounded deadline, floored at 0."""
        if self._expires_at is None:
            return float("inf")
        return max(0.0, self._expires_at - self._clock())

    def check(self, site: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            raise DeadlineExceeded("deadline exceeded", site=site or None)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient faults.

    Only :class:`repro.errors.TransientError` is retried, and
    :class:`repro.errors.CircuitOpenError` is excluded by default so open
    circuits keep failing fast. Sleeps never exceed the active deadline's
    remaining budget.
    """

    max_attempts: int = 3
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    give_up_on: tuple[type[BaseException], ...] = (CircuitOpenError,)
    sleep: Callable[[float], None] = time.sleep

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)

    def call(
        self,
        fn: Callable[[], Any],
        site: str = "",
        deadline: Deadline | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> Any:
        """Run ``fn`` with retries; returns its value or raises the last error.

        ``on_retry(attempt, error)`` fires before each backoff sleep so
        callers can log a :class:`FailureReport` per recovery.
        """
        attempt = 0
        while True:
            attempt += 1
            if deadline is not None:
                deadline.check(site)
            try:
                return fn()
            except TransientError as exc:
                if isinstance(exc, self.give_up_on) or attempt >= self.max_attempts:
                    raise
                pause = self.delay_for(attempt)
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= 0:
                        raise DeadlineExceeded(
                            "deadline exhausted during retry backoff",
                            site=site or None,
                        ) from exc
                    pause = min(pause, remaining)
                if on_retry is not None:
                    on_retry(attempt, exc)
                if pause > 0:
                    self.sleep(pause)


class CircuitBreaker:
    """Closed / open / half-open protection around one extractor.

    Closed: calls pass through; ``failure_threshold`` consecutive failures
    open the circuit. Open: calls raise :class:`CircuitOpenError` without
    running until ``recovery_timeout`` elapses. Half-open: one trial call is
    let through — success closes the circuit, failure re-opens it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        name: str = "",
        failure_threshold: int = 3,
        recovery_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None

    @property
    def state(self) -> str:
        with self._lock:
            return self._probe_state()

    def _probe_state(self) -> str:
        """Current state, promoting open -> half-open after the timeout."""
        if self._state == self.OPEN:
            assert self._opened_at is not None
            if self._clock() - self._opened_at >= self.recovery_timeout:
                self._state = self.HALF_OPEN
        return self._state

    def allow(self) -> None:
        """Raise :class:`CircuitOpenError` when calls must not run."""
        with self._lock:
            state = self._probe_state()
            if state == self.OPEN:
                assert self._opened_at is not None
                wait = self.recovery_timeout - (self._clock() - self._opened_at)
                raise CircuitOpenError(
                    f"circuit {self.name or '<anonymous>'} is open "
                    f"({self._consecutive_failures} consecutive failures)",
                    retry_after=max(wait, 0.0),
                )

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._state = self.CLOSED
            self._opened_at = None

    def reset(self) -> None:
        """Operator re-arm: close the breaker and forget failure history.

        Unlike the half-open trial, this is unconditional — use it after a
        recovery/deploy when the operator knows the underlying extractor is
        healthy again and the breaker should not wait out its timeout.
        """
        self.record_success()

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            state = self._probe_state()
            if (
                state == self.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()

    def call(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` under the breaker, recording the outcome."""
        self.allow()
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result


@dataclass
class FailureReport:
    """One structured failure/degradation record (instead of a traceback).

    Attributes:
        site: where it happened (``kernel.command:hmmP``,
            ``extractor:flyout_visual``, ``extract.visual`` ...).
        error: exception class name.
        message: the exception message.
        transient: whether the fault was retryable.
        action: what the system did about it — ``"retried"``,
            ``"dropped"``, ``"rolled-back"``, ``"circuit-open"``,
            ``"masked"``, ``"failed"``.
        attempts: how many attempts had run when the record was made.
        detail: free-form extra context (dropped kind, masked nodes, ...).
    """

    site: str
    error: str
    message: str
    transient: bool
    action: str
    attempts: int = 1
    detail: str = ""

    @classmethod
    def from_exception(
        cls,
        site: str,
        exc: BaseException,
        action: str,
        attempts: int = 1,
        detail: str = "",
    ) -> "FailureReport":
        return cls(
            site=site,
            error=type(exc).__name__,
            message=str(exc),
            transient=is_transient(exc),
            action=action,
            attempts=attempts,
            detail=detail,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" [{self.detail}]" if self.detail else ""
        return (
            f"{self.site}: {self.error}({self.message!r}) -> "
            f"{self.action} after {self.attempts} attempt(s){extra}"
        )


@dataclass(frozen=True)
class ResiliencePolicy:
    """The fault-handling configuration of a kernel / VDBMS.

    Attributes:
        retry: backoff policy for transient faults.
        call_timeout: per-call budget (seconds) for guarded kernel commands
            and extractor invocations; ``None`` = unbounded.
        query_budget: per-query budget (seconds); ``None`` = unbounded.
        breaker_failure_threshold / breaker_recovery_timeout: parameters of
            the per-extractor circuit breakers.
        on_error: ``"raise"`` keeps the historical fail-fast behaviour;
            ``"degrade"`` drops what failed, records a
            :class:`FailureReport`, and answers from what survived.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    call_timeout: float | None = None
    query_budget: float | None = None
    breaker_failure_threshold: int = 3
    breaker_recovery_timeout: float = 30.0
    on_error: str = "raise"

    def __post_init__(self) -> None:
        if self.on_error not in ("raise", "degrade"):
            raise ValueError(
                f"on_error must be 'raise' or 'degrade', got {self.on_error!r}"
            )

    @property
    def degrade(self) -> bool:
        return self.on_error == "degrade"

    def query_deadline(self) -> Deadline:
        return Deadline(self.query_budget)

    def new_breaker(self, name: str) -> CircuitBreaker:
        return CircuitBreaker(
            name=name,
            failure_threshold=self.breaker_failure_threshold,
            recovery_timeout=self.breaker_recovery_timeout,
        )
