"""Excited-speech feature extraction (§5.2).

"For the detection of emphasized speech we use STE, MFCCs, pitch, and pause
rate. For different features we use different frequency bands. For STE we
use filtered audio signal, 882 Hz - 2205 Hz, and for MFCCs and pitch we use
low passed audio signal, 0 - 882 Hz. We compute average and maximum values
in an audio clip for all these features ... Additionally, we compute
dynamic range for STE, and pitch as well. These computations are only
performed on speech segments."

The result is the f2..f10 block of the paper's feature list, one value per
0.1 s clip, normalized to [0, 1]:

==== =============================================
f2   pause rate
f3   average STE          (882-2205 Hz band)
f4   dynamic range of STE
f5   maximum STE
f6   average pitch        (0-882 Hz band)
f7   dynamic range of pitch
f8   maximum pitch
f9   average |MFCC|       (0-882 Hz band)
f10  maximum |MFCC|
==== =============================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.audio.endpoint import EndpointConfig, EndpointResult, detect_speech
from repro.audio.features import mfcc, pause_rate, pitch_track, short_time_energy
from repro.audio.filters import ENDPOINT_BAND, EXCITEMENT_BAND, bandpass
from repro.audio.signal import AudioSignal, clip_statistics

__all__ = ["ExcitementFeatures", "extract_excitement_features"]

#: Names of the audio features in the paper's f-numbering.
AUDIO_FEATURE_NAMES = ("f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10")


@dataclass
class ExcitementFeatures:
    """Per-clip excited-speech features plus the endpoint mask.

    Attributes:
        streams: feature name ("f2"..."f10") -> array (n_clips,) in [0, 1].
        endpoint: the endpoint detection result the masking came from.
    """

    streams: dict[str, np.ndarray]
    endpoint: EndpointResult

    @property
    def n_clips(self) -> int:
        return next(iter(self.streams.values())).shape[0]

    def matrix(self) -> np.ndarray:
        """Features stacked as (n_clips, 9) in f2..f10 order."""
        return np.stack([self.streams[name] for name in AUDIO_FEATURE_NAMES], axis=1)


def _normalize_unit(values: np.ndarray, scale: float | None = None) -> np.ndarray:
    """Map a non-negative feature to [0, 1] by a robust scale (99th pct)."""
    if scale is None:
        scale = float(np.percentile(values, 99.0))
    if scale <= 0:
        return np.zeros_like(values)
    return np.clip(values / scale, 0.0, 1.0)


def extract_excitement_features(
    signal: AudioSignal,
    endpoint_config: EndpointConfig | None = None,
) -> ExcitementFeatures:
    """Compute the f2..f10 per-clip streams for one audio track.

    Clips classified non-speech by the endpoint detector get zero for every
    excitement feature (the paper computes them "only ... on speech
    segments"); pause rate is computed everywhere since it measures the
    quantity of speech itself.
    """
    endpoint = detect_speech(signal, endpoint_config)

    high = bandpass(signal, *EXCITEMENT_BAND)
    low = bandpass(signal, *ENDPOINT_BAND)

    ste = short_time_energy(high)
    ste_stats = clip_statistics(signal, ste)
    pitch = pitch_track(low)
    pitch_stats = clip_statistics(signal, pitch)
    coefficients = np.abs(mfcc(low)).mean(axis=1)
    mfcc_stats = clip_statistics(signal, coefficients)
    pauses = pause_rate(signal)

    n = endpoint.is_speech.shape[0]
    mask = endpoint.is_speech.astype(np.float64)

    def masked(values: np.ndarray, scale: float | None = None) -> np.ndarray:
        return _normalize_unit(values[:n], scale) * mask

    streams = {
        "f2": np.clip(pauses[:n], 0.0, 1.0),
        "f3": masked(ste_stats["average"]),
        "f4": masked(ste_stats["dynamic_range"]),
        "f5": masked(ste_stats["maximum"]),
        "f6": masked(pitch_stats["average"], scale=500.0),
        "f7": masked(pitch_stats["dynamic_range"], scale=500.0),
        "f8": masked(pitch_stats["maximum"], scale=500.0),
        "f9": masked(mfcc_stats["average"]),
        "f10": masked(mfcc_stats["maximum"]),
    }
    return ExcitementFeatures(streams, endpoint)
