"""Audio substrate: signal containers, band filtering, frame features
(STE / pitch / MFCC / pause rate), speech endpoint detection, excited-speech
feature assembly, and FSG keyword spotting."""

from repro.audio.endpoint import EndpointConfig, EndpointResult, detect_speech
from repro.audio.excitement import (
    AUDIO_FEATURE_NAMES,
    ExcitementFeatures,
    extract_excitement_features,
)
from repro.audio.features import (
    frame_entropy,
    mel_filterbank,
    mfcc,
    pause_rate,
    pitch_track,
    short_time_energy,
    zero_crossing_rate,
)
from repro.audio.filters import (
    ENDPOINT_BAND,
    EXCITEMENT_BAND,
    SPEECH_BAND_LIMIT,
    bandpass,
)
from repro.audio.keywords import (
    CLEAN_SPEECH_MODEL,
    F1_KEYWORDS,
    PHONES,
    TV_NEWS_MODEL,
    AcousticModel,
    KeywordHit,
    KeywordSpotter,
    PhoneLattice,
    keyword_stream,
)
from repro.audio.signal import (
    CLIP_SECONDS,
    FRAME_SECONDS,
    AudioSignal,
    clip_statistics,
    window_function,
)

__all__ = [
    "EndpointConfig", "EndpointResult", "detect_speech",
    "AUDIO_FEATURE_NAMES", "ExcitementFeatures", "extract_excitement_features",
    "frame_entropy", "mel_filterbank", "mfcc", "pause_rate", "pitch_track",
    "short_time_energy", "zero_crossing_rate",
    "ENDPOINT_BAND", "EXCITEMENT_BAND", "SPEECH_BAND_LIMIT", "bandpass",
    "CLEAN_SPEECH_MODEL", "F1_KEYWORDS", "PHONES", "TV_NEWS_MODEL",
    "AcousticModel", "KeywordHit", "KeywordSpotter", "PhoneLattice",
    "keyword_stream",
    "CLIP_SECONDS", "FRAME_SECONDS", "AudioSignal", "clip_statistics",
    "window_function",
]
