"""Keyword spotting with a finite state grammar (§5.2).

"For the recognition of specific keywords we used a keyword-spotting tool,
which is based on a finite state grammar. We extract a couple of tens of
words that can be usually heard when the commentator is excited ... Two
different acoustic models have been tried for this purpose. One was trained
for clean speech, and the other was aimed at word recognition in TV news.
The latter showed better results."

The paper's tool (TNO-Abbot) consumed broadcast audio; here the acoustic
front-end is simulated (documented substitution): the synthetic commentary
carries its true phone stream, and an :class:`AcousticModel` turns it into
a noisy :class:`PhoneLattice` of per-phone posteriors — the clean-speech
model with more confusion on broadcast audio than the TV-news model, which
is what makes the paper's model comparison reproducible. The spotter
itself is real: a keyword-loop finite state grammar decoded over the
lattice, emitting per-hit non-normalized score, start time and duration,
plus the normalization step that feeds the DBN's f1 evidence node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import SignalError

__all__ = [
    "PHONES",
    "F1_KEYWORDS",
    "AcousticModel",
    "CLEAN_SPEECH_MODEL",
    "TV_NEWS_MODEL",
    "PhoneLattice",
    "KeywordHit",
    "KeywordSpotter",
    "keyword_stream",
]

#: Simplified phone inventory (enough to spell the F1 lexicon).
PHONES = tuple("abdefghijklmnoprstuvwz") + ("sh", "ch", "th")

_PHONE_INDEX = {p: i for i, p in enumerate(PHONES)}

#: Duration of one phone slot in the lattice, seconds.
PHONE_SECONDS = 0.1

#: "a couple of tens of words that can be usually heard when the commentator
#: is excited, or it is a specific part of the race that we are interested
#: in" — the spotting lexicon, word -> phone spelling.
F1_KEYWORDS: dict[str, tuple[str, ...]] = {
    "accident": ("a", "k", "s", "i", "d", "e", "n", "t"),
    "crash": ("k", "r", "a", "sh"),
    "overtake": ("o", "v", "e", "r", "t", "e", "k"),
    "passing": ("p", "a", "s", "i", "n", "g"),
    "pitstop": ("p", "i", "t", "s", "t", "o", "p"),
    "start": ("s", "t", "a", "r", "t"),
    "leader": ("l", "i", "d", "e", "r"),
    "spin": ("s", "p", "i", "n"),
    "gravel": ("g", "r", "a", "v", "e", "l"),
    "offtrack": ("o", "f", "t", "r", "a", "k"),
    "incredible": ("i", "n", "k", "r", "e", "d", "i", "b", "l"),
    "unbelievable": ("u", "n", "b", "i", "l", "i", "v", "a", "b", "l"),
    "fantastic": ("f", "a", "n", "t", "a", "s", "t", "i", "k"),
    "amazing": ("a", "m", "e", "z", "i", "n", "g"),
    "schumacher": ("sh", "u", "m", "a", "h", "e", "r"),
    "hakkinen": ("h", "a", "k", "i", "n", "e", "n"),
    "barrichello": ("b", "a", "r", "i", "k", "e", "l", "o"),
    "montoya": ("m", "o", "n", "t", "o", "j", "a"),
    "coulthard": ("k", "u", "l", "th", "a", "r", "d"),
    "flyout": ("f", "l", "a", "j", "o", "u", "t"),
    "winner": ("w", "i", "n", "e", "r"),
    "finalap": ("f", "i", "n", "a", "l", "a", "p"),
}


@dataclass(frozen=True)
class AcousticModel:
    """A simulated acoustic front-end.

    Attributes:
        name: model label.
        accuracy: probability mass the posterior puts on the true phone on
            broadcast (F1) audio; the rest is spread over confusable phones.
        confusion_spread: number of confusable phones sharing the residual
            mass.
    """

    name: str
    accuracy: float
    confusion_spread: int = 4

    def decode(
        self, phones: Sequence[str | None], rng: np.random.Generator
    ) -> "PhoneLattice":
        """Produce a noisy posterior lattice from a true phone stream.

        ``None`` entries mark non-speech slots: the front-end outputs a
        flat, noisy posterior there (nothing to recognize).
        """
        n = len(phones)
        posteriors = np.zeros((n, len(PHONES)))
        for i, phone in enumerate(phones):
            if phone is None:
                posteriors[i] = rng.dirichlet(np.ones(len(PHONES)))
                continue
            if phone not in _PHONE_INDEX:
                raise SignalError(f"unknown phone {phone!r}")
            true_index = _PHONE_INDEX[phone]
            # Jitter the true-phone mass around the model accuracy.
            mass = float(np.clip(rng.normal(self.accuracy, 0.08), 0.05, 0.98))
            posteriors[i, true_index] = mass
            others = rng.choice(
                [k for k in range(len(PHONES)) if k != true_index],
                size=self.confusion_spread,
                replace=False,
            )
            residual = rng.dirichlet(np.ones(self.confusion_spread)) * (1 - mass)
            posteriors[i, others] = residual
        return PhoneLattice(posteriors)


#: Model "trained for clean speech" — degraded on broadcast audio.
CLEAN_SPEECH_MODEL = AcousticModel("clean-speech", accuracy=0.55)
#: Model "aimed at word recognition in TV news" — the paper's better pick.
TV_NEWS_MODEL = AcousticModel("tv-news", accuracy=0.78)


class PhoneLattice:
    """Per-slot phone posteriors, shape (n_slots, n_phones)."""

    def __init__(self, posteriors: np.ndarray):
        posteriors = np.asarray(posteriors, dtype=np.float64)
        if posteriors.ndim != 2 or posteriors.shape[1] != len(PHONES):
            raise SignalError(
                f"lattice must have shape (n, {len(PHONES)}), got {posteriors.shape}"
            )
        self.posteriors = posteriors

    def __len__(self) -> int:
        return self.posteriors.shape[0]

    def phone_score(self, slot: int, phone: str) -> float:
        return float(self.posteriors[slot, _PHONE_INDEX[phone]])


@dataclass
class KeywordHit:
    """One spotted keyword occurrence.

    Attributes:
        word: lexicon entry.
        start_time: seconds from lattice start.
        duration: seconds.
        score: non-normalized probability (product of phone posteriors).
        normalized_score: per-phone geometric mean in [0, 1] — the
            "normalization step based on keyword spotting system outputs"
            that feeds the probabilistic network.
    """

    word: str
    start_time: float
    duration: float
    score: float
    normalized_score: float

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration


class KeywordSpotter:
    """Keyword-loop FSG decoding over a phone lattice.

    The grammar is the standard spotting construction: a filler state that
    consumes any phone, with one branch per keyword whose phones must be
    matched consecutively. Decoding scans every lattice slot as a potential
    keyword entry point and scores the aligned phones.
    """

    def __init__(
        self,
        lexicon: dict[str, tuple[str, ...]] | None = None,
        threshold: float = 0.35,
    ):
        self.lexicon = dict(lexicon or F1_KEYWORDS)
        if not self.lexicon:
            raise SignalError("keyword spotter needs a non-empty lexicon")
        for word, spelling in self.lexicon.items():
            unknown = [p for p in spelling if p not in _PHONE_INDEX]
            if unknown:
                raise SignalError(f"word {word!r} uses unknown phones {unknown}")
        self.threshold = threshold
        # "we separate words into several categories based on their length"
        # (§5.4 does this for OCR; the spotter applies the same trick so one
        # scan groups words by phone count).
        self._by_length: dict[int, list[str]] = {}
        for word, spelling in self.lexicon.items():
            self._by_length.setdefault(len(spelling), []).append(word)

    def spot(self, lattice: PhoneLattice) -> list[KeywordHit]:
        """All above-threshold keyword hits, best-first, non-overlapping per
        word."""
        hits: list[KeywordHit] = []
        n = len(lattice)
        for length, words in self._by_length.items():
            if length > n:
                continue
            for word in words:
                spelling = self.lexicon[word]
                scores = self._score_word(lattice, spelling)
                for start, score in enumerate(scores):
                    normalized = score ** (1.0 / length)
                    if normalized >= self.threshold:
                        hits.append(
                            KeywordHit(
                                word=word,
                                start_time=start * PHONE_SECONDS,
                                duration=length * PHONE_SECONDS,
                                score=float(score),
                                normalized_score=float(normalized),
                            )
                        )
        hits.sort(key=lambda h: -h.normalized_score)
        return _suppress_overlaps(hits)

    def _score_word(
        self, lattice: PhoneLattice, spelling: tuple[str, ...]
    ) -> np.ndarray:
        """Product of phone posteriors for every start slot (vectorized)."""
        n = len(lattice)
        length = len(spelling)
        columns = [
            lattice.posteriors[offset : n - length + offset + 1, _PHONE_INDEX[p]]
            for offset, p in enumerate(spelling)
        ]
        return np.prod(np.stack(columns), axis=0)


def _suppress_overlaps(hits: list[KeywordHit]) -> list[KeywordHit]:
    """Greedy non-maximum suppression of same-word overlapping hits."""
    kept: list[KeywordHit] = []
    for hit in hits:
        clash = any(
            k.word == hit.word
            and hit.start_time < k.end_time
            and k.start_time < hit.end_time
            for k in kept
        )
        if not clash:
            kept.append(hit)
    return kept


def keyword_stream(
    hits: Iterable[KeywordHit], n_clips: int, clip_seconds: float = 0.1
) -> np.ndarray:
    """Rasterize keyword hits into the f1 evidence stream.

    Each 0.1 s clip gets the best normalized score among hits overlapping
    it (0 where no keyword is active).
    """
    out = np.zeros(n_clips)
    for hit in hits:
        lo = max(int(hit.start_time / clip_seconds), 0)
        hi = min(int(np.ceil(hit.end_time / clip_seconds)), n_clips)
        if lo < hi:
            out[lo:hi] = np.maximum(out[lo:hi], hit.normalized_score)
    return out
