"""Audio signal containers, framing and windowing.

The paper analyses 22 kHz broadcast audio in 10 ms *frames* grouped into
0.1 s *clips*: features are computed per frame, then summarized (average,
maximum, dynamic range) per clip, giving the 10 Hz evidence streams the
DBNs consume. This module provides the sampled-signal container and the
frame/clip bookkeeping; the synthetic races use 16 kHz audio (documented
substitution — every algorithm is sample-rate-parametric).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.errors import SignalError

__all__ = [
    "AudioSignal",
    "FRAME_SECONDS",
    "CLIP_SECONDS",
    "window_function",
    "clip_statistics",
]

#: Analysis frame length (10 ms, §5.2 "each audio frame (10 ms segments)").
FRAME_SECONDS = 0.01
#: Clip length (0.1 s, §5.2 "audio clips (0.1 s segments)").
CLIP_SECONDS = 0.1


def window_function(name: str, length: int) -> np.ndarray:
    """Return a window of the given length.

    The paper compares four window filters for STE and settles on Hamming
    "because it brought the best results for speech endpoint detection, and
    excited speech indication"; all four are available here.
    """
    if length < 1:
        raise SignalError("window length must be >= 1")
    n = np.arange(length)
    if name == "rectangular":
        return np.ones(length)
    if name == "hamming":
        return 0.54 - 0.46 * np.cos(2 * np.pi * n / max(length - 1, 1))
    if name == "hanning":
        return 0.5 - 0.5 * np.cos(2 * np.pi * n / max(length - 1, 1))
    if name == "blackman":
        x = 2 * np.pi * n / max(length - 1, 1)
        return 0.42 - 0.5 * np.cos(x) + 0.08 * np.cos(2 * x)
    raise SignalError(f"unknown window {name!r}")


@dataclass
class AudioSignal:
    """A mono sampled signal.

    Attributes:
        samples: float64 samples, nominally in [-1, 1].
        sample_rate: samples per second.
    """

    samples: np.ndarray
    sample_rate: int

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.float64)
        if samples.ndim != 1:
            raise SignalError("AudioSignal needs a 1-D sample array")
        if self.sample_rate < 2000:
            raise SignalError(
                f"sample rate {self.sample_rate} too low for speech analysis"
            )
        object.__setattr__(self, "samples", samples)

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        return self.samples.shape[0] / self.sample_rate

    @property
    def frame_length(self) -> int:
        """Samples per 10 ms frame."""
        return int(round(self.sample_rate * FRAME_SECONDS))

    @property
    def frames_per_clip(self) -> int:
        return int(round(CLIP_SECONDS / FRAME_SECONDS))

    def n_frames(self) -> int:
        return self.samples.shape[0] // self.frame_length

    def n_clips(self) -> int:
        return self.n_frames() // self.frames_per_clip

    def frames(self) -> np.ndarray:
        """Non-overlapping 10 ms frames as a (n_frames, frame_length) matrix."""
        length = self.frame_length
        count = self.n_frames()
        if count == 0:
            raise SignalError("signal shorter than one frame")
        return self.samples[: count * length].reshape(count, length)

    def clip_view(self, per_frame: np.ndarray) -> np.ndarray:
        """Group a per-frame feature vector into (n_clips, frames_per_clip)."""
        per_frame = np.asarray(per_frame)
        k = self.frames_per_clip
        count = per_frame.shape[0] // k
        if count == 0:
            raise SignalError("fewer frames than one clip")
        return per_frame[: count * k].reshape(count, k)

    def slice_seconds(self, start: float, stop: float) -> "AudioSignal":
        i = int(start * self.sample_rate)
        j = int(stop * self.sample_rate)
        if not 0 <= i < j <= self.samples.shape[0]:
            raise SignalError(f"bad slice [{start}, {stop}) s")
        return AudioSignal(self.samples[i:j], self.sample_rate)


def clip_statistics(
    signal: AudioSignal, per_frame: np.ndarray
) -> dict[str, np.ndarray]:
    """Per-clip average, maximum, and dynamic range of a per-frame feature.

    These are the clip summaries the paper derives from frame features
    before feeding the probabilistic networks.
    """
    grouped = signal.clip_view(per_frame)
    return {
        "average": grouped.mean(axis=1),
        "maximum": grouped.max(axis=1),
        "dynamic_range": grouped.max(axis=1) - grouped.min(axis=1),
    }
