"""Speech endpoint detection (§5.2 "Audio Analysis").

The paper detects speech clips with two clip-level tests:

* a weighted sum of the average, maximum and dynamic range of the short
  time energy computed on the 0-882 Hz band, thresholded at ``2.2e-3``;
* the sum of the average values and dynamic range of the first three
  mel-frequency cepstral coefficients (0-882 Hz band), thresholded at
  ``1.3``.

A clip is speech when both scores clear their thresholds. The exact scale
of each score depends on recording gain; the thresholds are exposed so the
fusion layer can calibrate (the paper's constants are the defaults).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.audio.features import mfcc, short_time_energy
from repro.audio.filters import ENDPOINT_BAND, bandpass
from repro.audio.signal import AudioSignal, clip_statistics

__all__ = ["EndpointConfig", "EndpointResult", "detect_speech"]

#: §5.2: "The thresholds we used are 2.2e-3 for the weighted sum of the
#: average and maximum values, and dynamic range of STE, and 1.3 for the
#: sum of the average values and dynamic range of first three
#: Mel-frequency cepstral coefficients."
PAPER_STE_THRESHOLD = 2.2e-3
PAPER_MFCC_THRESHOLD = 1.3


@dataclass(frozen=True)
class EndpointConfig:
    """Tunable parameters of the endpoint detector."""

    ste_threshold: float = PAPER_STE_THRESHOLD
    mfcc_threshold: float = PAPER_MFCC_THRESHOLD
    #: Weights of (average, maximum, dynamic range) in the STE score.
    ste_weights: tuple[float, float, float] = (1.0, 0.5, 0.5)
    band: tuple[float, float] = ENDPOINT_BAND
    n_mfcc: int = 3


@dataclass
class EndpointResult:
    """Per-clip endpoint decisions and the underlying scores."""

    is_speech: np.ndarray
    ste_score: np.ndarray
    mfcc_score: np.ndarray

    def speech_ratio(self) -> float:
        return float(self.is_speech.mean())

    def segments(self, clip_seconds: float = 0.1) -> list[tuple[float, float]]:
        """Contiguous speech runs as (start_s, end_s) intervals."""
        out: list[tuple[float, float]] = []
        start: int | None = None
        for i, flag in enumerate(self.is_speech):
            if flag and start is None:
                start = i
            elif not flag and start is not None:
                out.append((start * clip_seconds, i * clip_seconds))
                start = None
        if start is not None:
            out.append((start * clip_seconds, len(self.is_speech) * clip_seconds))
        return out


def detect_speech(
    signal: AudioSignal, config: EndpointConfig | None = None
) -> EndpointResult:
    """Classify each 0.1 s clip as speech or non-speech.

    The STE is computed on the band-filtered signal "because this bandwidth
    diminishes car noises, and various background noises"; the MFCC score
    uses the first ``n_mfcc`` coefficients, "the most indicative for speech
    detection".
    """
    config = config or EndpointConfig()
    filtered = bandpass(signal, *config.band)

    ste = short_time_energy(filtered)
    stats = clip_statistics(signal, ste)
    w_avg, w_max, w_rng = config.ste_weights
    ste_score = (
        w_avg * stats["average"]
        + w_max * stats["maximum"]
        + w_rng * stats["dynamic_range"]
    )

    coefficients = mfcc(filtered, n_coefficients=config.n_mfcc)
    magnitude = np.abs(coefficients).sum(axis=1)
    mfcc_stats = clip_statistics(signal, magnitude)
    mfcc_score = mfcc_stats["average"] + mfcc_stats["dynamic_range"]

    n = min(ste_score.shape[0], mfcc_score.shape[0])
    is_speech = (ste_score[:n] >= config.ste_threshold) & (
        mfcc_score[:n] >= config.mfcc_threshold
    )
    return EndpointResult(is_speech, ste_score[:n], mfcc_score[:n])
