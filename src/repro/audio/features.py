"""Frame-level audio features: STE, pitch, MFCCs, pause rate.

Implements the feature set of §5.2:

* **Short time energy** — average windowed waveform power per 10 ms frame;
  Hamming window by default (the paper's pick among four candidates).
* **Pitch** — fundamental frequency by autocorrelation analysis, searched
  below 1 kHz ("human speech is usually under 1 kHz").
* **MFCCs** — mel filterbank log-energies followed by a cosine transform;
  12 coefficients of which the paper uses the first three for endpoint
  detection.
* **Pause rate** — fraction of silent frames per clip, "intended to
  determine the quantity of speech in an audio clip".

All functions are vectorized over frames.
"""

from __future__ import annotations

import numpy as np

from repro.audio.signal import AudioSignal, window_function
from repro.errors import SignalError

__all__ = [
    "short_time_energy",
    "pitch_track",
    "mel_filterbank",
    "mfcc",
    "pause_rate",
    "zero_crossing_rate",
    "frame_entropy",
]


def short_time_energy(signal: AudioSignal, window: str = "hamming") -> np.ndarray:
    """Per-frame short time energy: mean of the windowed squared samples.

    Returns:
        Array of shape (n_frames,).
    """
    frames = signal.frames()
    w = window_function(window, frames.shape[1])
    return np.mean((frames * w) ** 2, axis=1)


def pitch_track(
    signal: AudioSignal,
    fmin: float = 50.0,
    fmax: float = 1000.0,
    energy_floor: float = 1e-7,
) -> np.ndarray:
    """Per-frame fundamental frequency by autocorrelation analysis.

    Frames whose energy is below ``energy_floor`` (or whose autocorrelation
    peak is unconvincing) get pitch 0 — the conventional "unvoiced" marker.

    Args:
        fmin: lowest admissible pitch in Hz.
        fmax: highest admissible pitch in Hz; the paper restricts the
            search to below 1 kHz.

    Returns:
        Array of shape (n_frames,) in Hz.
    """
    if not 0 < fmin < fmax:
        raise SignalError(f"bad pitch range [{fmin}, {fmax}]")
    base = signal.frames()
    # Pitch needs more than one period in view: analyse a 30 ms window
    # centred on each 10 ms frame (previous + current + next frame).
    padded = np.vstack([base[:1], base, base[-1:]])
    frames = np.hstack([padded[:-2], padded[1:-1], padded[2:]])
    fs = signal.sample_rate
    lag_min = max(int(fs / fmax), 1)
    lag_max = min(int(fs / fmin), frames.shape[1] - 1)
    if lag_max <= lag_min:
        raise SignalError(
            "frames too short for the requested pitch range; "
            "lower fmin or raise the sample rate"
        )
    centered = frames - frames.mean(axis=1, keepdims=True)
    # Autocorrelation via FFT, per frame; unbiased normalization so long
    # lags (low pitch) compete fairly with short lags.
    n = frames.shape[1]
    size = 1 << int(np.ceil(np.log2(2 * n)))
    spectra = np.fft.rfft(centered, n=size, axis=1)
    autocorr = np.fft.irfft(spectra * np.conj(spectra), n=size, axis=1)[:, :n]
    overlap = (n - np.arange(n)).astype(np.float64)
    unbiased = autocorr / overlap
    r0 = unbiased[:, 0]
    window = unbiased[:, lag_min : lag_max + 1]
    peak_val = window.max(axis=1)
    # A periodic signal peaks equally at every multiple of its period; take
    # the SMALLEST near-maximal lag so subharmonics don't halve the pitch.
    near_peak = window >= 0.93 * np.maximum(peak_val[:, None], 1e-12)
    best_lag = np.argmax(near_peak, axis=1) + lag_min
    best_val = window[np.arange(window.shape[0]), best_lag - lag_min]
    energies = np.mean(centered**2, axis=1)
    voiced = (energies > energy_floor) & (best_val > 0.3 * np.maximum(r0, 1e-12))
    pitch = np.where(voiced, fs / best_lag, 0.0)
    return pitch


def mel_filterbank(
    n_filters: int, n_fft: int, sample_rate: int, fmax: float | None = None
) -> np.ndarray:
    """Triangular mel-spaced filterbank, shape (n_filters, n_fft // 2 + 1).

    "Mel-scale is gradually warped linear spectrum, with coarser resolution
    on higher, and finer resolution on lower frequencies" (§5.2).
    """
    fmax = fmax or sample_rate / 2

    def hz_to_mel(f: np.ndarray | float) -> np.ndarray | float:
        return 2595.0 * np.log10(1.0 + np.asarray(f) / 700.0)

    def mel_to_hz(m: np.ndarray | float) -> np.ndarray | float:
        return 700.0 * (10.0 ** (np.asarray(m) / 2595.0) - 1.0)

    mel_points = np.linspace(hz_to_mel(0.0), hz_to_mel(fmax), n_filters + 2)
    hz_points = mel_to_hz(mel_points)
    bins = np.floor((n_fft + 1) * hz_points / sample_rate).astype(int)
    bank = np.zeros((n_filters, n_fft // 2 + 1))
    for i in range(n_filters):
        left, center, right = bins[i], bins[i + 1], bins[i + 2]
        center = max(center, left + 1)
        right = max(right, center + 1)
        for k in range(left, min(center, bank.shape[1])):
            bank[i, k] = (k - left) / (center - left)
        for k in range(center, min(right, bank.shape[1])):
            bank[i, k] = (right - k) / (right - center)
    return bank


def mfcc(
    signal: AudioSignal,
    n_coefficients: int = 12,
    n_filters: int = 24,
    window: str = "hamming",
) -> np.ndarray:
    """Per-frame mel-frequency cepstral coefficients.

    "MFCCs are a simple cosine transform of the Mel-scale energy for
    different filtered sub-bands" (§5.2).

    Returns:
        Array of shape (n_frames, n_coefficients); coefficient 0 is the
        first (index 0 = C1 in the paper's counting of "first three").
    """
    frames = signal.frames()
    w = window_function(window, frames.shape[1])
    n_fft = 1 << int(np.ceil(np.log2(frames.shape[1])))
    spectra = np.abs(np.fft.rfft(frames * w, n=n_fft, axis=1)) ** 2
    bank = mel_filterbank(n_filters, n_fft, signal.sample_rate)
    energies = spectra @ bank.T
    log_energies = np.log(np.maximum(energies, 1e-12))
    # DCT-II over the filter axis.
    k = np.arange(n_coefficients)[:, None]
    j = np.arange(n_filters)[None, :]
    dct = np.cos(np.pi * (k + 1) * (j + 0.5) / n_filters)
    return log_energies @ dct.T


def pause_rate(
    signal: AudioSignal, silence_threshold: float | None = None
) -> np.ndarray:
    """Per-clip fraction of silent frames.

    Args:
        silence_threshold: STE below this marks a frame silent; defaults to
            10 % of the median frame energy (adaptive, robust to gain).

    Returns:
        Array of shape (n_clips,), values in [0, 1].
    """
    energy = short_time_energy(signal)
    if silence_threshold is None:
        silence_threshold = 0.1 * float(np.median(energy) + 1e-12)
    silent = (energy < silence_threshold).astype(np.float64)
    return signal.clip_view(silent).mean(axis=1)


def zero_crossing_rate(signal: AudioSignal) -> np.ndarray:
    """Per-frame zero-crossing rate.

    Kept as the paper keeps it: tried for endpoint detection, "showed
    powerless when applied in a noisy environment such as ours" — the
    endpoint bench demonstrates exactly that.
    """
    frames = signal.frames()
    signs = np.sign(frames)
    signs[signs == 0] = 1
    return np.mean(np.abs(np.diff(signs, axis=1)) > 0, axis=1)


def frame_entropy(signal: AudioSignal, n_bins: int = 16) -> np.ndarray:
    """Per-frame amplitude-histogram entropy (the other rejected endpoint
    feature)."""
    frames = signal.frames()
    lo = frames.min(axis=1, keepdims=True)
    hi = frames.max(axis=1, keepdims=True)
    span = np.maximum(hi - lo, 1e-12)
    normalized = (frames - lo) / span
    bins = np.minimum((normalized * n_bins).astype(int), n_bins - 1)
    out = np.zeros(frames.shape[0])
    for b in range(n_bins):
        p = (bins == b).mean(axis=1)
        mask = p > 0
        out[mask] -= p[mask] * np.log2(p[mask])
    return out
