"""Frequency-band filtering.

The paper computes different features on different bands: STE for endpoint
detection on 0-882 Hz, STE for excitement on 882-2205 Hz, MFCCs and pitch
on the low-passed 0-882 Hz signal, and notes that "indicative bands for
speech characterization are lower sub-bands ... below 2.5 kHz". The band
edges here default to those values.

Filtering is done with an FFT brick-wall band-pass — simple, linear-phase
and exactly reproducible, which matters more for a reproduction than
matched roll-off.
"""

from __future__ import annotations

import numpy as np

from repro.audio.signal import AudioSignal
from repro.errors import SignalError

__all__ = [
    "bandpass",
    "ENDPOINT_BAND",
    "EXCITEMENT_BAND",
    "SPEECH_BAND_LIMIT",
]

#: Band used for endpoint-detection STE, "because this bandwidth diminishes
#: car noises, and various background noises as well" (§5.2).
ENDPOINT_BAND = (0.0, 882.0)
#: Band used for excited-speech STE (§5.2).
EXCITEMENT_BAND = (882.0, 2205.0)
#: "indicative bands for speech characterization are ... below 2.5 kHz".
SPEECH_BAND_LIMIT = 2500.0


def bandpass(signal: AudioSignal, low_hz: float, high_hz: float) -> AudioSignal:
    """Zero out spectral content outside [low_hz, high_hz].

    Args:
        signal: input signal.
        low_hz: lower edge (inclusive); 0 gives a low-pass.
        high_hz: upper edge (inclusive); must not exceed Nyquist.

    Returns:
        A new :class:`AudioSignal` with the same length and sample rate.
    """
    nyquist = signal.sample_rate / 2
    if not 0 <= low_hz < high_hz:
        raise SignalError(f"bad band [{low_hz}, {high_hz}]")
    if high_hz > nyquist:
        raise SignalError(
            f"band edge {high_hz} Hz exceeds Nyquist {nyquist} Hz"
        )
    spectrum = np.fft.rfft(signal.samples)
    freqs = np.fft.rfftfreq(signal.samples.shape[0], d=1.0 / signal.sample_rate)
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    filtered = np.fft.irfft(spectrum * mask, n=signal.samples.shape[0])
    return AudioSignal(filtered, signal.sample_rate)
