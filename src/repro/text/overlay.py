"""Semantic parsing of recognized overlay text (§5.5).

"We decide to extract the names of Formula 1 drivers, and the semantic
content of superimposed text (for example if it is a pit stop, or driver's
classification is shown, etc.)." The parsed events become Cobra metadata
that the retrieval layer joins with the DBN results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.text.recognition import DRIVER_NAMES

__all__ = ["OverlayEvent", "parse_overlay"]


@dataclass
class OverlayEvent:
    """Structured content of one recognized overlay.

    Attributes:
        kind: one of "pit_stop", "classification", "winner", "final_lap",
            "lap", "driver_info", "unknown".
        drivers: driver names mentioned, in display order.
        positions: {driver: position} when a classification is shown.
        lap: lap number when present.
        words: the raw recognized words.
    """

    kind: str
    drivers: list[str] = field(default_factory=list)
    positions: dict[str, int] = field(default_factory=dict)
    lap: int | None = None
    words: list[str] = field(default_factory=list)


def parse_overlay(words: list[str]) -> OverlayEvent:
    """Interpret a recognized word sequence.

    Handles the layouts the TV chyron uses: ``PIT STOP <driver>``,
    ``<pos> <driver> [<pos> <driver> ...]`` classifications, ``WINNER
    <driver>``, ``FINAL LAP``, ``LAP <n>``, and bare driver mentions.
    """
    tokens = [w.upper() for w in words]
    drivers = [t for t in tokens if t in DRIVER_NAMES]
    numbers = [int(t) for t in tokens if t.isdigit()]

    if "PIT" in tokens and "STOP" in tokens:
        return OverlayEvent("pit_stop", drivers=drivers, words=tokens)
    if "WINNER" in tokens:
        return OverlayEvent("winner", drivers=drivers, words=tokens)
    if "FINAL" in tokens and "LAP" in tokens:
        return OverlayEvent("final_lap", drivers=drivers, words=tokens)
    if "LAP" in tokens and numbers and not drivers:
        return OverlayEvent("lap", lap=numbers[0], words=tokens)

    # Classification: alternating position/driver pairs.
    positions: dict[str, int] = {}
    pending: int | None = None
    for token in tokens:
        if token.isdigit():
            pending = int(token)
        elif token in DRIVER_NAMES and pending is not None:
            positions[token] = pending
            pending = None
    if positions:
        ordered = sorted(positions, key=positions.get)
        lap = None
        if "LAP" in tokens:
            trailing = [
                int(t)
                for i, t in enumerate(tokens)
                if t.isdigit() and i > 0 and tokens[i - 1] == "LAP"
            ]
            lap = trailing[0] if trailing else None
        return OverlayEvent(
            "classification",
            drivers=ordered,
            positions=positions,
            lap=lap,
            words=tokens,
        )
    if drivers:
        return OverlayEvent("driver_info", drivers=drivers, words=tokens)
    return OverlayEvent("unknown", words=tokens)
