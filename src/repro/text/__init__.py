"""Superimposed-text substrate: detection of shaded overlay regions,
min-intensity refinement + 4x interpolation, projection-based character and
word segmentation, length-categorized pattern-matching recognition, and
semantic overlay parsing."""

from repro.text.detection import (
    TextDetector,
    TextDetectorConfig,
    TextSegment,
    shaded_region,
)
from repro.text.overlay import OverlayEvent, parse_overlay
from repro.text.patterns import GLYPH_HEIGHT, GLYPH_WIDTH, GLYPHS, glyph, render_text
from repro.text.recognition import (
    DEFAULT_LEXICON,
    DRIVER_NAMES,
    INFORMATIVE_WORDS,
    WordMatch,
    match_word,
    recognize_region,
    recognize_words,
)
from repro.text.refinement import (
    MAGNIFICATION,
    binarize,
    magnify,
    min_intensity_filter,
)
from repro.text.segmentation import (
    CharacterBox,
    WordRegion,
    group_words,
    segment_characters,
)

__all__ = [
    "TextDetector", "TextDetectorConfig", "TextSegment", "shaded_region",
    "OverlayEvent", "parse_overlay",
    "GLYPH_HEIGHT", "GLYPH_WIDTH", "GLYPHS", "glyph", "render_text",
    "DEFAULT_LEXICON", "DRIVER_NAMES", "INFORMATIVE_WORDS", "WordMatch",
    "match_word", "recognize_region", "recognize_words",
    "MAGNIFICATION", "binarize", "magnify", "min_intensity_filter",
    "CharacterBox", "WordRegion", "group_words", "segment_characters",
]
