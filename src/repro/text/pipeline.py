"""Full text-recognition pipeline over a frame stream.

Detection (two-pass shaded-region analysis) -> refinement (min-intensity
filter + 4x interpolation) -> recognition (projection segmentation +
pattern matching) -> semantic parsing, producing timed overlay events the
Cobra metadata store ingests.

The pass is streaming: only the bottom strips of shaded frames are kept in
memory ("processing each frame for text recognition is not computationally
feasible" — §5.4 — and neither is buffering a race).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.text.detection import TextDetector, TextDetectorConfig, shaded_region
from repro.text.overlay import OverlayEvent, parse_overlay
from repro.text.recognition import recognize_region
from repro.video.frames import FrameStream

__all__ = ["RecognizedOverlay", "extract_overlays"]


@dataclass
class RecognizedOverlay:
    """One recognized overlay occurrence."""

    start_time: float
    end_time: float
    words: list[str]
    event: OverlayEvent

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


def extract_overlays(
    stream: FrameStream,
    config: TextDetectorConfig | None = None,
    frames_per_segment: int = 5,
) -> list[RecognizedOverlay]:
    """Detect, refine, recognize and parse every overlay in a stream.

    Args:
        stream: frame stream (iterated exactly once).
        config: text-detector tunables.
        frames_per_segment: how many frames of each detected segment feed
            the min-intensity refinement.
    """
    config = config or TextDetectorConfig()
    detector = TextDetector(config)

    flags: list[bool] = []
    stats: list[tuple[float, float]] = []
    strips: dict[int, np.ndarray] = {}
    for index, frame in enumerate(stream):
        has_shade = detector.frame_has_shade(frame)
        flags.append(has_shade)
        if has_shade:
            stats.append(detector.bright_statistics(frame))
            strips[index] = shaded_region(frame, config.bottom_fraction).copy()
        else:
            stats.append((0.0, 0.0))

    segments = _runs_to_segments(detector, flags, stats)

    out: list[RecognizedOverlay] = []
    for start_frame, end_frame in segments:
        step = max((end_frame - start_frame) // frames_per_segment, 1)
        picks = list(range(start_frame, end_frame, step))[:frames_per_segment]
        regions = [strips[i] for i in picks if i in strips]
        if not regions:
            continue
        matches = recognize_region(regions)
        words = [m.word for m in matches]
        if not words:
            continue
        out.append(
            RecognizedOverlay(
                start_time=start_frame / stream.fps,
                end_time=end_frame / stream.fps,
                words=words,
                event=parse_overlay(words),
            )
        )
    return out


def _runs_to_segments(
    detector: TextDetector,
    flags: list[bool],
    stats: list[tuple[float, float]],
) -> list[tuple[int, int]]:
    """Apply the duration + bright-pixel criteria to shaded runs.

    A naturally dark scene also reads as "shaded", so a shaded run can be
    much longer than the overlay inside it; within each run we therefore
    keep only the sub-runs whose frames actually contain bright (character)
    pixels before applying the duration and variance criteria.
    """
    config = detector.config
    bright = [
        flag and stats[k][0] >= config.min_bright_fraction
        for k, flag in enumerate(flags)
    ]
    out: list[tuple[int, int]] = []
    i = 0
    n = len(bright)
    while i < n:
        if not bright[i]:
            i += 1
            continue
        j = i
        while j + 1 < n and bright[j + 1]:
            j += 1
        length = j + 1 - i
        if length >= config.min_duration_frames:
            fractions = [stats[k][0] for k in range(i, j + 1)]
            variances = [stats[k][1] for k in range(i, j + 1)]
            if (
                float(np.mean(fractions)) <= config.max_bright_fraction
                and float(np.mean(variances)) >= config.min_bright_variance
            ):
                out.append((i, j + 1))
        i = j + 1
    return out
