"""Reference character patterns (5x7 bitmap font).

"The algorithm for text recognition is based on pattern matching
techniques, mainly because of the uniform structure of a small number of
different words superimposed on the screen" (§5.4). The TV chyron of the
synthetic races and the recognizer's reference patterns both come from this
font — matching the paper's setting where the superimposed text is
mechanically rendered and therefore uniform.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError

__all__ = ["GLYPHS", "glyph", "render_text", "GLYPH_HEIGHT", "GLYPH_WIDTH"]

GLYPH_HEIGHT = 7
GLYPH_WIDTH = 5

# fmt: off
_RAW = {
    "A": ".###.#...##...#######...##...##...#",
    "B": "####.#...#####.#...##...##...#####.",
    "C": ".#####....#....#....#....#.....####",
    "D": "####.#...##...##...##...##...#####.",
    "E": "######....#....####.#....#....#####",
    "F": "######....#....####.#....#....#....",
    "G": ".#####....#....#..###...##...#.###.",
    "H": "#...##...##...#######...##...##...#",
    "I": ".###...#....#....#....#....#...###.",
    "J": "..###...#....#....#.#..#.#..#..##..",
    "K": "#...##..#.#.#..##...#.#..#..#.#...#",
    "L": "#....#....#....#....#....#....#####",
    "M": "#...###.#######.#.##...##...##...#.",
    "N": "#...###..##.#.##.#.##..###...##...#",
    "O": ".###.#...##...##...##...##...#.###.",
    "P": "####.#...##...#####.#....#....#....",
    "Q": ".###.#...##...##...##.#.##..#..##.#",
    "R": "####.#...##...#####.#.#..#..#.#...#",
    "S": ".#####....#.....###......#....####.",
    "T": "#####..#....#....#....#....#....#..",
    "U": "#...##...##...##...##...##...#.###.",
    "V": "#...##...##...##...#.#.#..#.#...#..",
    "W": "#...##...##...##.#.##.#.######.#.#.",
    "X": "#...##...#.#.#...#...#.#.#...##...#",
    "Y": "#...##...#.#.#...#....#....#....#..",
    "Z": "#####....#...#...#...#...#....#####",
    "0": ".###.#...##..###.#.###..##...#.###.",
    "1": "..#..###....#....#....#....#..#####",
    "2": ".###.#...#....#...#...#...#...#####",
    "3": ".###.#...#....#..##.....##...#.###.",
    "4": "...#...##..#.#.#..######...#....#..",
    "5": "######....####.....#....##...#.###.",
    "6": ".#####....#....####.#...##...#.###.",
    "7": "#####....#...#...#...#....#....#...",
    "8": ".###.#...##...#.###.#...##...#.###.",
    "9": ".###.#...##...#.####....#....#####.",
    " ": "...................................",
    ".": "........................." + ".##.." + ".##..",
    "-": "...............#####...............",
    ":": "....." + ".##.." + ".##.." + "....." + ".##.." + ".##.." + ".....",
}
# fmt: on


def _decode(raw: str) -> np.ndarray:
    if len(raw) != GLYPH_HEIGHT * GLYPH_WIDTH:
        raise SignalError(f"glyph bitmap has wrong size {len(raw)}")
    bits = np.array([1 if c == "#" else 0 for c in raw], dtype=np.uint8)
    return bits.reshape(GLYPH_HEIGHT, GLYPH_WIDTH)


#: Character -> (7, 5) binary glyph array.
GLYPHS: dict[str, np.ndarray] = {char: _decode(raw) for char, raw in _RAW.items()}


def glyph(char: str) -> np.ndarray:
    """The binary bitmap of one character (uppercased)."""
    key = char.upper()
    if key not in GLYPHS:
        raise SignalError(f"no glyph for character {char!r}")
    return GLYPHS[key]


def render_text(text: str, scale: int = 1, spacing: int = 1) -> np.ndarray:
    """Render text into a binary array.

    Args:
        text: characters from the glyph set (case-insensitive).
        scale: integer magnification of each glyph pixel.
        spacing: blank columns between characters (at scale 1).

    Returns:
        uint8 array of shape (7 * scale, width * scale) with 1 = character
        pixel.
    """
    if not text:
        raise SignalError("cannot render empty text")
    if scale < 1 or spacing < 0:
        raise SignalError("scale must be >= 1 and spacing >= 0")
    columns: list[np.ndarray] = []
    for i, char in enumerate(text):
        if i > 0 and spacing:
            columns.append(np.zeros((GLYPH_HEIGHT, spacing), dtype=np.uint8))
        columns.append(glyph(char))
    bitmap = np.hstack(columns)
    if scale > 1:
        bitmap = np.kron(bitmap, np.ones((scale, scale), dtype=np.uint8))
    return bitmap
