"""Character and word segmentation by projections (§5.4, step 3 prelude).

"For character extraction we used the horizontal and the vertical
projection of white pixels. Since characters can have different heights we
used a double vertical projection in order to refine the characters better.
... we connect characters that belong to one word into a region. This is
done based on the pixel distance between characters."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError

__all__ = ["CharacterBox", "WordRegion", "segment_characters", "group_words"]


@dataclass(frozen=True)
class CharacterBox:
    """One character's bounding box in the binarized region."""

    top: int
    bottom: int
    left: int
    right: int

    @property
    def width(self) -> int:
        return self.right - self.left

    @property
    def height(self) -> int:
        return self.bottom - self.top


@dataclass
class WordRegion:
    """A run of characters grouped into one word."""

    characters: list[CharacterBox]

    @property
    def left(self) -> int:
        return self.characters[0].left

    @property
    def right(self) -> int:
        return self.characters[-1].right

    @property
    def top(self) -> int:
        return min(c.top for c in self.characters)

    @property
    def bottom(self) -> int:
        return max(c.bottom for c in self.characters)

    def __len__(self) -> int:
        return len(self.characters)


def _runs(mask: np.ndarray) -> list[tuple[int, int]]:
    """Maximal [start, end) runs of True in a boolean vector."""
    out: list[tuple[int, int]] = []
    start: int | None = None
    for i, flag in enumerate(mask):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            out.append((start, i))
            start = None
    if start is not None:
        out.append((start, len(mask)))
    return out


def segment_characters(binary: np.ndarray, min_pixels: int = 2) -> list[CharacterBox]:
    """Extract character boxes from a binarized text line.

    Horizontal projection bounds the text line vertically; the vertical
    projection splits characters at blank columns; a second ("double")
    vertical projection inside each column run re-derives the exact height
    of each character, "since characters can have different heights".
    """
    if binary.ndim != 2:
        raise SignalError("segment_characters needs a 2-D binary array")
    rows = binary.sum(axis=1)
    row_runs = _runs(rows > 0)
    if not row_runs:
        return []
    top = row_runs[0][0]
    bottom = row_runs[-1][1]
    line = binary[top:bottom]

    columns = line.sum(axis=0)
    boxes: list[CharacterBox] = []
    for left, right in _runs(columns > 0):
        chunk = line[:, left:right]
        if chunk.sum() < min_pixels:
            continue
        # double vertical projection: per-character height refinement
        chunk_rows = chunk.sum(axis=1)
        inner = _runs(chunk_rows > 0)
        ctop = top + inner[0][0]
        cbottom = top + inner[-1][1]
        boxes.append(CharacterBox(ctop, cbottom, left, right))
    return boxes


def group_words(
    characters: list[CharacterBox],
    gap_factor: float = 1.6,
    width_factor: float = 0.6,
) -> list[WordRegion]:
    """Group characters into words by inter-character pixel distance.

    "Regions that are closed to each other are considered as characters
    that belong to the same word." A gap starts a new word when it exceeds
    BOTH ``gap_factor`` times the median inter-character gap and
    ``width_factor`` times the median character width — the second term
    keeps narrow glyphs (I, 1) whose flanking gaps run wide from splitting
    their word.
    """
    if not characters:
        return []
    ordered = sorted(characters, key=lambda c: c.left)
    gaps = [b.left - a.right for a, b in zip(ordered[:-1], ordered[1:])]
    median_gap = float(np.median([g for g in gaps if g >= 0] or [1.0]))
    median_width = float(np.median([c.width for c in ordered]))
    threshold = max(gap_factor * max(median_gap, 1.0), width_factor * median_width)
    words: list[WordRegion] = [WordRegion([ordered[0]])]
    for previous, current in zip(ordered[:-1], ordered[1:]):
        gap = current.left - previous.right
        if gap > threshold:
            words.append(WordRegion([current]))
        else:
            words[-1].characters.append(current)
    return words
