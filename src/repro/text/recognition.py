"""Pattern-matching word recognition (§5.4, step 3 of 3).

"To speed up the matching algorithm, we separate words into several
categories based on their length, and perform the matching procedure only
for reference patterns with a similar length. A simple metric of pixel
difference is used for pattern matching. By specifying an appropriate
threshold, we were able to recognize the superimposed words. Thus, a
reference pattern with the largest metric above this threshold is selected
as a matched word."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError
from repro.text.patterns import render_text
from repro.text.refinement import MAGNIFICATION, binarize, magnify, min_intensity_filter
from repro.text.segmentation import WordRegion, group_words, segment_characters

__all__ = [
    "DEFAULT_LEXICON",
    "DRIVER_NAMES",
    "INFORMATIVE_WORDS",
    "WordMatch",
    "match_word",
    "recognize_words",
    "recognize_region",
]

#: Formula 1 drivers of the 2001 season used by the case study.
DRIVER_NAMES = (
    "SCHUMACHER",
    "BARRICHELLO",
    "HAKKINEN",
    "COULTHARD",
    "MONTOYA",
    "RALF",
    "VILLENEUVE",
    "FRENTZEN",
    "TRULLI",
    "HEIDFELD",
)

#: "some informative words, such as pit stop, final lap, classification,
#: winner, etc."
INFORMATIVE_WORDS = (
    "PIT",
    "STOP",
    "FINAL",
    "LAP",
    "CLASSIFICATION",
    "WINNER",
    "FASTEST",
    "SPEED",
)

DEFAULT_LEXICON = DRIVER_NAMES + INFORMATIVE_WORDS + tuple("0123456789")


@dataclass(frozen=True)
class WordMatch:
    """One recognized word with its matching score."""

    word: str
    score: float
    left: int
    right: int


def _resample(binary: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Nearest-neighbour resample of a binary image to a target shape."""
    rows = (np.arange(shape[0]) * binary.shape[0] / shape[0]).astype(int)
    cols = (np.arange(shape[1]) * binary.shape[1] / shape[1]).astype(int)
    return binary[np.ix_(rows, cols)]


def _reference(word: str) -> np.ndarray:
    return render_text(word, scale=MAGNIFICATION)


def match_word(
    word_bitmap: np.ndarray,
    lexicon: tuple[str, ...] = DEFAULT_LEXICON,
    n_characters: int | None = None,
    threshold: float = 0.8,
    length_slack: int = 1,
) -> WordMatch | None:
    """Match one cropped word bitmap against the lexicon.

    Args:
        word_bitmap: 2-D binary crop of the word.
        lexicon: candidate words.
        n_characters: segmented character count; candidates are restricted
            to similar lengths (the paper's length categories).
        threshold: minimum pixel-agreement score for a match.
        length_slack: admissible character-count difference.

    Returns:
        The best :class:`WordMatch` above threshold, or None.
    """
    if word_bitmap.ndim != 2 or word_bitmap.size == 0:
        raise SignalError("match_word needs a non-empty 2-D bitmap")
    best: tuple[float, str] | None = None
    for candidate in lexicon:
        if n_characters is not None and abs(len(candidate) - n_characters) > length_slack:
            continue
        reference = _reference(candidate)
        resampled = _resample(word_bitmap, reference.shape)
        agreement = float((resampled == reference).mean())
        if best is None or agreement > best[0]:
            best = (agreement, candidate)
    if best is None or best[0] < threshold:
        return None
    return WordMatch(best[1], best[0], 0, word_bitmap.shape[1])


def recognize_words(
    binary: np.ndarray,
    lexicon: tuple[str, ...] = DEFAULT_LEXICON,
    threshold: float = 0.8,
) -> list[WordMatch]:
    """Segment a binarized (already magnified) text line and match words."""
    characters = segment_characters(binary)
    words: list[WordRegion] = group_words(characters)
    out: list[WordMatch] = []
    digits = tuple("0123456789")
    for region in words:
        crop = binary[region.top : region.bottom, region.left : region.right]
        if crop.size == 0:
            continue
        match = match_word(
            crop, lexicon, n_characters=len(region), threshold=threshold
        )
        if match is not None:
            out.append(
                WordMatch(match.word, match.score, region.left, region.right)
            )
            continue
        # Multi-digit numbers (lap counters, speeds) are matched per
        # character — the lexicon only carries single-digit references.
        characters: list[str] = []
        scores: list[float] = []
        for box in region.characters:
            char_crop = binary[box.top : box.bottom, box.left : box.right]
            digit = match_word(char_crop, digits, n_characters=1, threshold=threshold)
            if digit is None:
                characters = []
                break
            characters.append(digit.word)
            scores.append(digit.score)
        if characters:
            out.append(
                WordMatch(
                    "".join(characters),
                    float(np.mean(scores)),
                    region.left,
                    region.right,
                )
            )
    out.sort(key=lambda m: m.left)
    return out


def recognize_region(
    color_regions: list[np.ndarray],
    lexicon: tuple[str, ...] = DEFAULT_LEXICON,
    threshold: float = 0.8,
    binarize_threshold: float = 170.0,
) -> list[WordMatch]:
    """Full §5.4 refinement + recognition on consecutive region crops.

    Args:
        color_regions: the same overlay region cropped from several
            consecutive frames (RGB or grayscale).

    Pipeline: min-intensity filtering -> magnification x4 -> binarization
    -> projection segmentation -> length-categorized pattern matching.
    """
    filtered = min_intensity_filter(color_regions)
    magnified = magnify(filtered)
    binary = binarize(magnified, threshold=binarize_threshold)
    return recognize_words(binary, lexicon, threshold)
