"""Superimposed-text detection (§5.4, steps 1 of 3).

"We used the property of our domain that the superimposed text is placed in
the bottom of the picture, while the background is shaded ... Our text
detection algorithm consists of two steps. In the first step we analyze if
the shaded region is present in the bottom part on each image ... By
computing the number of these shaded regions in consecutive frames, we skip
all the short segments that do not satisfy the duration criteria. In the
second pass we calculate the duration, number, and variance of bright
pixels present in these shaded regions."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError

__all__ = ["TextDetectorConfig", "TextSegment", "shaded_region", "TextDetector"]


@dataclass(frozen=True)
class TextDetectorConfig:
    """Tunables of the two-pass text detector."""

    #: Fraction of frame height treated as "the bottom part of the picture".
    bottom_fraction: float = 0.2
    #: Maximum mean luminance of the shade behind the text.
    shade_luminance: float = 80.0
    #: Luminance above which a pixel counts as a (bright) character pixel.
    bright_threshold: float = 170.0
    #: Minimum run length (frames) satisfying "the duration criteria".
    min_duration_frames: int = 5
    #: Bright-pixel fraction bounds for a plausible text overlay.
    min_bright_fraction: float = 0.005
    max_bright_fraction: float = 0.5
    #: Minimum variance of bright-pixel columns (text is structured, a
    #: uniformly bright strip is not text).
    min_bright_variance: float = 1.0


@dataclass(frozen=True)
class TextSegment:
    """A frame interval containing a stable superimposed overlay."""

    start_frame: int
    end_frame: int

    @property
    def n_frames(self) -> int:
        return self.end_frame - self.start_frame


def shaded_region(frame: np.ndarray, bottom_fraction: float = 0.2) -> np.ndarray:
    """Crop the bottom band where graphic text lives."""
    if not 0 < bottom_fraction <= 1:
        raise SignalError(f"bad bottom_fraction {bottom_fraction}")
    height = frame.shape[0]
    top = int(height * (1 - bottom_fraction))
    return frame[top:, :, :]


def _luminance(region: np.ndarray) -> np.ndarray:
    return region.astype(np.float64) @ np.array([0.299, 0.587, 0.114])


class TextDetector:
    """Two-pass detection of overlay segments across a frame sequence."""

    def __init__(self, config: TextDetectorConfig | None = None):
        self.config = config or TextDetectorConfig()

    def frame_has_shade(self, frame: np.ndarray) -> bool:
        """First pass test: is the shaded backing strip present?"""
        config = self.config
        region = _luminance(shaded_region(frame, config.bottom_fraction))
        bright = region >= config.bright_threshold
        dark_mean = region[~bright].mean() if (~bright).any() else 255.0
        return bool(dark_mean <= config.shade_luminance)

    def bright_statistics(self, frame: np.ndarray) -> tuple[float, float]:
        """Second pass: (bright fraction, column variance) in the strip."""
        config = self.config
        region = _luminance(shaded_region(frame, config.bottom_fraction))
        bright = region >= config.bright_threshold
        fraction = float(bright.mean())
        per_column = bright.sum(axis=0).astype(np.float64)
        return fraction, float(per_column.var())

    def segments(self, frames) -> list[TextSegment]:
        """Detect overlay segments in an iterable of frames."""
        config = self.config
        flags: list[bool] = []
        stats: list[tuple[float, float]] = []
        for frame in frames:
            has_shade = self.frame_has_shade(frame)
            flags.append(has_shade)
            stats.append(self.bright_statistics(frame) if has_shade else (0.0, 0.0))

        out: list[TextSegment] = []
        i = 0
        n = len(flags)
        while i < n:
            if not flags[i]:
                i += 1
                continue
            j = i
            while j + 1 < n and flags[j + 1]:
                j += 1
            run = TextSegment(i, j + 1)
            # duration criteria
            if run.n_frames >= config.min_duration_frames:
                fractions = [stats[k][0] for k in range(i, j + 1)]
                variances = [stats[k][1] for k in range(i, j + 1)]
                mean_fraction = float(np.mean(fractions))
                mean_variance = float(np.mean(variances))
                if (
                    config.min_bright_fraction <= mean_fraction <= config.max_bright_fraction
                    and mean_variance >= config.min_bright_variance
                ):
                    out.append(run)
            i = j + 1
        return out
