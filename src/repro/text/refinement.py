"""Text-region refinement (§5.4, step 2 of 3).

"The text regions have to be filtered in order to enable better separation
from the background ... The filtering is done through minimizing pixel
intensities over several consecutive frames. However, this filtering is not
sufficient ... we have to employ an interpolation algorithm to enlarge
characters ... the text area is magnified four times in both directions."
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError

__all__ = ["min_intensity_filter", "magnify", "binarize", "MAGNIFICATION"]

#: "the text area is magnified four times in both directions".
MAGNIFICATION = 4


def min_intensity_filter(regions: list[np.ndarray]) -> np.ndarray:
    """Pixel-wise minimum over consecutive frames of the same region.

    The overlay is static while the noisy background moves, so the minimum
    sharpens characters against the shade (bright text survives because the
    chyron renders it every frame; background transients do not).
    """
    if not regions:
        raise SignalError("min_intensity_filter needs at least one region")
    shapes = {r.shape for r in regions}
    if len(shapes) != 1:
        raise SignalError(f"regions differ in shape: {shapes}")
    stack = np.stack([r.astype(np.float64) for r in regions])
    return stack.min(axis=0)


def magnify(region: np.ndarray, factor: int = MAGNIFICATION) -> np.ndarray:
    """Nearest-neighbour magnification in both directions."""
    if factor < 1:
        raise SignalError(f"magnification factor must be >= 1, got {factor}")
    if region.ndim == 2:
        return np.kron(region, np.ones((factor, factor)))
    if region.ndim == 3:
        return np.kron(region, np.ones((factor, factor, 1)))
    raise SignalError(f"cannot magnify array of ndim {region.ndim}")


def binarize(region: np.ndarray, threshold: float = 170.0) -> np.ndarray:
    """Black-white conversion: characters as white on black background.

    "Black-white text regions are obtained from the color text regions by
    filtering RGB components. After applying thresholds on the text region,
    we marked characters as a white space on the black background."
    """
    if region.ndim == 3:
        luminance = region.astype(np.float64) @ np.array([0.299, 0.587, 0.114])
    else:
        luminance = region.astype(np.float64)
    return (luminance >= threshold).astype(np.uint8)
