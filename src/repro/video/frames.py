"""Video frame containers.

Frames are ``(height, width, 3)`` uint8 RGB numpy arrays. The paper digitized
PAL video at quarter resolution (384x288); the synthetic races render at a
configurable size (default 192x144 at 10 fps) and every detector is
resolution-independent. :class:`FrameStream` wraps a frame iterator so long
races never need to be materialized in memory.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from repro.errors import SignalError

__all__ = ["FrameStream", "check_frame", "DEFAULT_FRAME_SIZE", "DEFAULT_FPS"]

#: (height, width) of synthesized frames.
DEFAULT_FRAME_SIZE = (144, 192)
#: Synthetic frame rate; chosen to equal the 10 Hz evidence rate so one
#: frame maps to one clip.
DEFAULT_FPS = 10.0


def check_frame(frame: np.ndarray) -> np.ndarray:
    """Validate an RGB frame and return it as uint8."""
    frame = np.asarray(frame)
    if frame.ndim != 3 or frame.shape[2] != 3:
        raise SignalError(f"frame must be (H, W, 3), got {frame.shape}")
    if frame.dtype != np.uint8:
        if frame.min() < 0 or frame.max() > 255:
            raise SignalError("frame values outside [0, 255]")
        frame = frame.astype(np.uint8)
    return frame


class FrameStream:
    """A lazily evaluated frame sequence with known rate and length.

    Args:
        source: factory returning a fresh frame iterator — a factory rather
            than an iterator so the stream is re-playable (several detectors
            can each make a full pass).
        fps: frames per second.
        n_frames: total frame count.
    """

    def __init__(
        self,
        source: Callable[[], Iterable[np.ndarray]],
        fps: float,
        n_frames: int,
    ):
        if fps <= 0:
            raise SignalError(f"fps must be positive, got {fps}")
        if n_frames < 1:
            raise SignalError("stream needs at least one frame")
        self._source = source
        self.fps = fps
        self.n_frames = n_frames

    @property
    def duration(self) -> float:
        return self.n_frames / self.fps

    def __len__(self) -> int:
        return self.n_frames

    def __iter__(self) -> Iterator[np.ndarray]:
        produced = 0
        for frame in self._source():
            yield check_frame(frame)
            produced += 1
        if produced != self.n_frames:
            raise SignalError(
                f"stream promised {self.n_frames} frames but produced {produced}"
            )

    def materialize(self) -> list[np.ndarray]:
        """Collect all frames (tests and short clips only)."""
        return list(self)

    @staticmethod
    def from_frames(frames: list[np.ndarray], fps: float) -> "FrameStream":
        checked = [check_frame(f) for f in frames]
        return FrameStream(lambda: iter(checked), fps, len(checked))
