"""Fly-out detection by dust and sand color filtering (§5.3).

"Fly outs usually come with a lot of sand and dust. Therefore, we recognize
presence of these two characteristics in the picture. We filter the RGB
image for these colors and compute the probability, which will be used by a
probabilistic network."
"""

from __future__ import annotations

import numpy as np

__all__ = ["sand_fraction", "dust_fraction", "SAND_RGB", "DUST_RGB"]

#: Reference gravel-trap sand color.
SAND_RGB = (194, 178, 128)
#: Reference dust-cloud color (desaturated warm grey).
DUST_RGB = (170, 160, 140)


def _color_fraction(
    frame: np.ndarray, reference: tuple[int, int, int], tolerance: int
) -> float:
    pixels = frame.astype(np.int16)
    mask = np.ones(frame.shape[:2], dtype=bool)
    for channel, value in enumerate(reference):
        mask &= np.abs(pixels[:, :, channel] - value) <= tolerance
    return float(mask.mean())


def sand_fraction(frame: np.ndarray, tolerance: int = 35) -> float:
    """Fraction of pixels matching the sand color, in [0, 1]."""
    return _color_fraction(frame, SAND_RGB, tolerance)


def dust_fraction(frame: np.ndarray, tolerance: int = 30) -> float:
    """Fraction of pixels matching the dust color, in [0, 1].

    Dust additionally requires low saturation (a haze, not a painted
    object): the channel spread must be small.
    """
    pixels = frame.astype(np.int16)
    base = np.ones(frame.shape[:2], dtype=bool)
    for channel, value in enumerate(DUST_RGB):
        base &= np.abs(pixels[:, :, channel] - value) <= tolerance
    spread = pixels.max(axis=2) - pixels.min(axis=2)
    return float((base & (spread <= 40)).mean())
