"""Visual feature extraction: the f11..f17 evidence streams (§5.5).

One pass over a frame stream produces:

==== ==========================================================
f11  part of the race (normalized race position)
f12  replay indicator (DVE-bracketed segments)
f13  color difference between consecutive frames
f14  semaphore (start lights) score
f15  dust fraction
f16  sand fraction
f17  amount of motion (smoothed color difference)
==== ==========================================================

The synthetic races render at 10 fps, so one frame maps onto one 0.1 s
evidence step; for other rates the caller resamples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.resilience import cancel_checkpoint
from repro.video.flyout import dust_fraction, sand_fraction
from repro.video.frames import FrameStream
from repro.video.motion import frame_difference, motion_histogram, passing_score
from repro.video.replay import DveDetector, ReplaySegmenter
from repro.video.semaphore import SemaphoreTracker

__all__ = ["VisualFeatures", "extract_visual_features", "VISUAL_FEATURE_NAMES"]

VISUAL_FEATURE_NAMES = ("f11", "f12", "f13", "f14", "f15", "f16", "f17")


@dataclass
class VisualFeatures:
    """Per-frame visual evidence streams.

    Attributes:
        streams: name ("f11".."f17" plus "passing") -> array (n_frames,).
        fps: frame rate of the streams.
    """

    streams: dict[str, np.ndarray]
    fps: float

    @property
    def n_frames(self) -> int:
        return next(iter(self.streams.values())).shape[0]

    def matrix(self) -> np.ndarray:
        return np.stack(
            [self.streams[name] for name in VISUAL_FEATURE_NAMES], axis=1
        )


def extract_visual_features(
    stream: FrameStream,
    passing_window: int = 20,
    motion_smoothing: int = 5,
) -> VisualFeatures:
    """Extract f11..f17 (and the raw passing score) in one pass.

    Args:
        stream: the frame stream (replayable, but only iterated once here).
        passing_window: consecutive motion histograms per passing score.
        motion_smoothing: moving-average width for f17.
    """
    n = stream.n_frames
    color_diff = np.zeros(n)
    semaphore = np.zeros(n)
    dust = np.zeros(n)
    sand = np.zeros(n)
    dve_scores = np.zeros(n)
    passing = np.zeros(n)

    tracker = SemaphoreTracker()
    dve = DveDetector()
    histogram_buffer: list[np.ndarray] = []
    previous: np.ndarray | None = None

    for i, frame in enumerate(stream):
        cancel_checkpoint("extract.frame")
        semaphore[i] = tracker.update(frame)
        dve_scores[i] = dve.update(frame)
        dust[i] = dust_fraction(frame)
        sand[i] = sand_fraction(frame)
        if previous is not None:
            color_diff[i] = frame_difference(previous, frame)
            histogram_buffer.append(motion_histogram(previous, frame))
            if len(histogram_buffer) > passing_window:
                histogram_buffer.pop(0)
            if len(histogram_buffer) >= 3:
                passing[i] = passing_score(np.stack(histogram_buffer))
        previous = frame

    segmenter = ReplaySegmenter(stream.fps)
    replay = segmenter.indicator(dve_scores)

    kernel = np.ones(motion_smoothing) / motion_smoothing
    motion = np.convolve(color_diff, kernel, mode="same")

    part_of_race = np.linspace(0.0, 1.0, n)

    streams = {
        "f11": part_of_race,
        "f12": replay,
        "f13": np.clip(color_diff / 0.25, 0.0, 1.0),
        "f14": semaphore,
        "f15": np.clip(dust / 0.25, 0.0, 1.0),
        "f16": np.clip(sand / 0.25, 0.0, 1.0),
        "f17": np.clip(motion / 0.25, 0.0, 1.0),
        "passing": passing,
        "dve": dve_scores,
    }
    return VisualFeatures(streams, stream.fps)
