"""Replay detection via DVE (Digital Video Effect) recognition (§5.3).

"The replay scenes in the Formula 1 program ... frequently begin and
conclude with special shot change operations termed Digital Video Effects.
The problem is that these DVEs vary very often ... Therefore, we decide to
employ a more general algorithm based on motion flow and pattern matching."

A DVE wipe replaces the picture gradually along a moving boundary. The
detector looks for exactly that general pattern rather than one concrete
effect: an inter-frame difference whose active region is (a) strongly
concentrated in a band, and (b) drifts coherently over consecutive frames,
sustained for several frames — which a hard cut (one frame) or ordinary
motion (spatially spread) does not produce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError

__all__ = ["DveDetector", "ReplaySegmenter", "wipe_band_score"]


def wipe_band_score(
    previous: np.ndarray, current: np.ndarray, n_bands: int = 16
) -> tuple[float, float]:
    """Score how wipe-like one frame transition is.

    Returns:
        (concentration, centroid): concentration in [0, 1] measures how much
        of the inter-frame change lives in few adjacent column bands;
        centroid in [0, 1] is the horizontal position of the change mass.
    """
    if previous.shape != current.shape:
        raise SignalError("frames differ in shape")
    diff = np.abs(current.astype(np.int16) - previous.astype(np.int16)).sum(axis=2)
    total = diff.sum()
    if total <= 0:
        return 0.0, 0.5
    width = diff.shape[1]
    edges = np.linspace(0, width, n_bands + 1).astype(int)
    energy = np.array(
        [diff[:, edges[i] : edges[i + 1]].sum() for i in range(n_bands)],
        dtype=np.float64,
    )
    probabilities = energy / total
    top3 = np.sort(probabilities)[-3:].sum()
    uniform_top3 = 3.0 / n_bands
    concentration = float(
        np.clip((top3 - uniform_top3) / (1.0 - uniform_top3), 0.0, 1.0)
    )
    centroid = float(probabilities @ np.arange(n_bands) / (n_bands - 1))
    return concentration, centroid


class DveDetector:
    """Streaming DVE detector over (previous, current) frame pairs."""

    def __init__(
        self,
        concentration_threshold: float = 0.45,
        min_run: int = 3,
        min_drift: float = 0.15,
        min_change: float = 0.02,
    ):
        self.concentration_threshold = concentration_threshold
        self.min_run = min_run
        self.min_drift = min_drift
        self.min_change = min_change
        self._run_centroids: list[float] = []
        self._previous: np.ndarray | None = None

    def update(self, frame: np.ndarray) -> float:
        """Consume one frame; return the current DVE score in [0, 1]."""
        if self._previous is None:
            self._previous = frame
            return 0.0
        diff_level = float(
            np.abs(frame.astype(np.int16) - self._previous.astype(np.int16)).mean()
            / 255.0
        )
        concentration, centroid = wipe_band_score(self._previous, frame)
        self._previous = frame
        if concentration >= self.concentration_threshold and diff_level >= self.min_change:
            self._run_centroids.append(centroid)
        else:
            self._run_centroids.clear()
            return 0.0
        return self._score()

    def _score(self) -> float:
        if len(self._run_centroids) < self.min_run:
            return 0.0
        centroids = np.asarray(self._run_centroids[-8:])
        steps = np.diff(centroids)
        if steps.size == 0:
            return 0.0
        direction = np.sign(steps.sum())
        if direction == 0:
            return 0.0
        coherence = float((np.sign(steps) == direction).mean())
        drift = float(abs(centroids[-1] - centroids[0]))
        drift_score = min(drift / self.min_drift, 1.0)
        return float(np.clip(coherence * drift_score, 0.0, 1.0))

    def reset(self) -> None:
        self._run_centroids.clear()
        self._previous = None


@dataclass(frozen=True)
class ReplaySegment:
    """A replay: the interval between a DVE-in and a DVE-out."""

    start_time: float
    end_time: float


class ReplaySegmenter:
    """Pair DVE events into replay segments.

    The Formula 1 replays "begin and conclude" with DVEs; consecutive DVE
    detections closer than ``max_replay_seconds`` bracket one replay.
    """

    def __init__(
        self,
        fps: float,
        score_threshold: float = 0.5,
        max_replay_seconds: float = 30.0,
        min_replay_seconds: float = 2.0,
        merge_window_seconds: float = 1.0,
    ):
        if fps <= 0:
            raise SignalError("fps must be positive")
        self.fps = fps
        self.score_threshold = score_threshold
        self.max_replay_seconds = max_replay_seconds
        self.min_replay_seconds = min_replay_seconds
        self.merge_window_seconds = merge_window_seconds

    def dve_times(self, scores: np.ndarray) -> list[float]:
        """Collapse per-frame DVE scores into distinct DVE event times."""
        times: list[float] = []
        above = scores >= self.score_threshold
        i = 0
        while i < above.shape[0]:
            if above[i]:
                j = i
                while j + 1 < above.shape[0] and above[j + 1]:
                    j += 1
                center = (i + j) / 2 / self.fps
                if not times or center - times[-1] > self.merge_window_seconds:
                    times.append(center)
                i = j + 1
            else:
                i += 1
        return times

    def segments(self, scores: np.ndarray) -> list[ReplaySegment]:
        """Pair DVE events into replay intervals."""
        times = self.dve_times(scores)
        out: list[ReplaySegment] = []
        i = 0
        while i + 1 < len(times):
            start, end = times[i], times[i + 1]
            length = end - start
            if self.min_replay_seconds <= length <= self.max_replay_seconds:
                out.append(ReplaySegment(start, end))
                i += 2
            else:
                i += 1
        return out

    def indicator(self, scores: np.ndarray) -> np.ndarray:
        """Per-frame replay indicator in {0, 1} (paper feature f12)."""
        out = np.zeros(scores.shape[0])
        for segment in self.segments(scores):
            lo = int(segment.start_time * self.fps)
            hi = min(int(segment.end_time * self.fps) + 1, scores.shape[0])
            out[lo:hi] = 1.0
        return out
