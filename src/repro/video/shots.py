"""Shot boundary detection (§5.3 pre-processing).

"A simple histogram based algorithm is modified in the sense that we
calculate the histogram difference among several consecutive frames. This
algorithm resulted in the accuracy of over 90%."

The multi-frame modification makes the detector robust to flashes and fast
motion: a frame is a cut only when its histogram differs strongly from the
*median histogram difference* of a small trailing window, not merely from
its direct predecessor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.video.frames import FrameStream
from repro.video.histogram import color_histogram, histogram_difference

__all__ = ["ShotDetector", "Shot", "detect_shots"]


@dataclass(frozen=True)
class Shot:
    """One detected shot: frame interval [start, end) and its times."""

    start_frame: int
    end_frame: int
    start_time: float
    end_time: float

    @property
    def n_frames(self) -> int:
        return self.end_frame - self.start_frame


class ShotDetector:
    """Streaming multi-frame histogram-difference cut detector.

    Args:
        threshold: a cut fires when the current inter-frame difference
            exceeds ``threshold`` AND is ``ratio`` times the median of the
            trailing window (adaptivity suppresses motion-induced noise).
        window: number of trailing differences forming the baseline.
        ratio: multiple of the window median required for a cut.
        bins_per_channel: histogram resolution.
        min_shot_frames: cuts closer than this to the previous cut are
            ignored (debounce).
    """

    def __init__(
        self,
        threshold: float = 0.35,
        window: int = 5,
        ratio: float = 3.0,
        bins_per_channel: int = 8,
        min_shot_frames: int = 3,
    ):
        self.threshold = threshold
        self.window = window
        self.ratio = ratio
        self.bins = bins_per_channel
        self.min_shot_frames = min_shot_frames

    def differences(self, frames: Iterable[np.ndarray]) -> np.ndarray:
        """Inter-frame histogram differences (d[i] between frame i-1 and i)."""
        previous = None
        out = [0.0]
        first = True
        for frame in frames:
            histogram = color_histogram(frame, self.bins)
            if first:
                first = False
            else:
                out.append(histogram_difference(previous, histogram))
            previous = histogram
        return np.asarray(out)

    def cuts(self, stream: FrameStream) -> list[int]:
        """Frame indices that start a new shot."""
        diffs = self.differences(stream)
        cut_frames: list[int] = []
        last_cut = -self.min_shot_frames
        for i in range(1, diffs.shape[0]):
            lo = max(1, i - self.window)
            baseline = np.median(diffs[lo:i]) if i > 1 else 0.0
            fired = diffs[i] >= self.threshold and diffs[i] >= self.ratio * max(
                baseline, 1e-6
            )
            if fired and i - last_cut >= self.min_shot_frames:
                cut_frames.append(i)
                last_cut = i
        return cut_frames

    def shots(self, stream: FrameStream) -> list[Shot]:
        """Segment the stream into shots."""
        cut_frames = self.cuts(stream)
        boundaries = [0] + cut_frames + [stream.n_frames]
        fps = stream.fps
        return [
            Shot(a, b, a / fps, b / fps)
            for a, b in zip(boundaries[:-1], boundaries[1:])
            if b > a
        ]


def detect_shots(stream: FrameStream, **kwargs) -> list[Shot]:
    """Convenience wrapper: run a :class:`ShotDetector` with given options."""
    return ShotDetector(**kwargs).shots(stream)
