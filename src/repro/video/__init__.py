"""Visual substrate: frames, histograms, shot detection, motion, semaphore,
dust/sand filtering, DVE/replay detection, and the f11..f17 extractor."""

from repro.video.features import (
    VISUAL_FEATURE_NAMES,
    VisualFeatures,
    extract_visual_features,
)
from repro.video.flyout import DUST_RGB, SAND_RGB, dust_fraction, sand_fraction
from repro.video.frames import DEFAULT_FPS, DEFAULT_FRAME_SIZE, FrameStream, check_frame
from repro.video.histogram import color_histogram, histogram_difference
from repro.video.motion import frame_difference, motion_histogram, passing_score
from repro.video.replay import DveDetector, ReplaySegmenter, wipe_band_score
from repro.video.semaphore import SemaphoreTracker, red_rectangle, semaphore_score
from repro.video.shots import Shot, ShotDetector, detect_shots

__all__ = [
    "VISUAL_FEATURE_NAMES", "VisualFeatures", "extract_visual_features",
    "DUST_RGB", "SAND_RGB", "dust_fraction", "sand_fraction",
    "DEFAULT_FPS", "DEFAULT_FRAME_SIZE", "FrameStream", "check_frame",
    "color_histogram", "histogram_difference",
    "frame_difference", "motion_histogram", "passing_score",
    "DveDetector", "ReplaySegmenter", "wipe_band_score",
    "SemaphoreTracker", "red_rectangle", "semaphore_score",
    "Shot", "ShotDetector", "detect_shots",
]
