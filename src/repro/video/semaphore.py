"""Start-semaphore detection (§5.3).

"The semaphore is described as a rectangular shape, because the distance
between red circles is small and they touch each other. This rectangular
shape is increasing its horizontal dimension in regular time intervals ...
The rectangular region is detected by filtering the red component of the
RGB color representation of a still image."

Detection is therefore two-stage: a per-frame red-rectangle score, and a
temporal check that the rectangle widens in regular steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["red_rectangle", "semaphore_score", "SemaphoreTracker"]


@dataclass(frozen=True)
class RedRectangle:
    """Bounding box of the dominant red region plus its fill ratio."""

    top: int
    bottom: int
    left: int
    right: int
    fill: float

    @property
    def width(self) -> int:
        return self.right - self.left

    @property
    def height(self) -> int:
        return self.bottom - self.top


def red_rectangle(
    frame: np.ndarray,
    red_min: int = 150,
    other_max: int = 90,
) -> RedRectangle | None:
    """Find the dominant red region by filtering the R component.

    Returns None when fewer than 20 red pixels exist.
    """
    mask = (
        (frame[:, :, 0] >= red_min)
        & (frame[:, :, 1] <= other_max)
        & (frame[:, :, 2] <= other_max)
    )
    if mask.sum() < 20:
        return None
    rows = np.where(mask.any(axis=1))[0]
    cols = np.where(mask.any(axis=0))[0]
    top, bottom = int(rows[0]), int(rows[-1]) + 1
    left, right = int(cols[0]), int(cols[-1]) + 1
    area = (bottom - top) * (right - left)
    fill = float(mask[top:bottom, left:right].sum() / max(area, 1))
    return RedRectangle(top, bottom, left, right, fill)


def semaphore_score(frame: np.ndarray) -> float:
    """Per-frame semaphore likelihood in [0, 1].

    High when a well-filled, wide-and-short red rectangle is present — the
    touching-red-circles signature.
    """
    rect = red_rectangle(frame)
    if rect is None or rect.height == 0:
        return 0.0
    aspect = rect.width / rect.height
    aspect_score = float(np.clip((aspect - 1.0) / 4.0, 0.0, 1.0))
    return float(np.clip(rect.fill, 0.0, 1.0) * aspect_score)


class SemaphoreTracker:
    """Temporal semaphore verification.

    Feeds per-frame rectangles and scores how well the width grows "in
    regular time intervals, i.e. after a constant number of video frames".
    """

    def __init__(self, history: int = 30):
        self.history = history
        self._widths: list[int] = []

    def update(self, frame: np.ndarray) -> float:
        """Consume one frame; return the current start-light score."""
        rect = red_rectangle(frame)
        width = rect.width if rect is not None and rect.fill > 0.4 else 0
        self._widths.append(width)
        if len(self._widths) > self.history:
            self._widths.pop(0)
        return self.score()

    def score(self) -> float:
        """Regular-growth score over the tracked window, in [0, 1]."""
        widths = np.asarray(self._widths)
        present = widths > 0
        if present.sum() < 4:
            return 0.0
        active = widths[present]
        steps = np.diff(active)
        growing = steps >= 0
        if growing.size == 0:
            return 0.0
        growth_ratio = float(growing.mean())
        increments = steps[steps > 0]
        if increments.size >= 2:
            regularity = 1.0 - float(
                np.std(increments) / (np.mean(increments) + 1e-9)
            )
            regularity = max(regularity, 0.0)
        elif increments.size == 1:
            regularity = 0.5
        else:
            regularity = 0.0
        presence = float(present.mean())
        return float(
            np.clip(0.4 * presence + 0.3 * growth_ratio + 0.3 * regularity, 0.0, 1.0)
        )

    def reset(self) -> None:
        self._widths.clear()
