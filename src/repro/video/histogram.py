"""Color histograms and histogram differences (shot-detection primitives)."""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError

__all__ = ["color_histogram", "histogram_difference"]


def color_histogram(frame: np.ndarray, bins_per_channel: int = 8) -> np.ndarray:
    """Normalized per-channel color histogram, shape (3, bins).

    Concatenated per-channel histograms are a standard, cheap signature for
    cut detection; normalization makes the difference metric resolution
    independent.
    """
    if not 1 <= bins_per_channel <= 256:
        raise SignalError(f"bins_per_channel out of range: {bins_per_channel}")
    out = np.zeros((3, bins_per_channel))
    scale = 256 // bins_per_channel
    for channel in range(3):
        values = frame[:, :, channel].reshape(-1) // scale
        counts = np.bincount(
            np.minimum(values, bins_per_channel - 1), minlength=bins_per_channel
        )
        out[channel] = counts / values.shape[0]
    return out


def histogram_difference(a: np.ndarray, b: np.ndarray) -> float:
    """L1 distance between two histograms, in [0, 2] (0 = identical)."""
    if a.shape != b.shape:
        raise SignalError(f"histogram shapes differ: {a.shape} vs {b.shape}")
    return float(np.abs(a - b).sum() / a.shape[0])
