"""Motion features (§5.3).

Two motion measures feed the networks:

* the **amount of motion** (paper feature f17, also half of the start
  detector): mean absolute pixel color difference between consecutive
  frames;
* the **motion histogram** used for passing detection (f13 pipeline): the
  spatial distribution of the inter-frame difference across column bands,
  from which :func:`passing_score` computes "the probability that there is
  a chance of one car passing another" by tracking a coherent motion
  centroid sweep.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError

__all__ = [
    "frame_difference",
    "motion_histogram",
    "passing_score",
]


#: Per-pixel channel-sum difference below this is treated as sensor noise.
NOISE_GATE = 45


def _gated_difference(previous: np.ndarray, current: np.ndarray) -> np.ndarray:
    """Channel-summed absolute difference with small (noise) values zeroed."""
    if previous.shape != current.shape:
        raise SignalError("frames differ in shape")
    diff = np.abs(current.astype(np.int16) - previous.astype(np.int16)).sum(axis=2)
    diff[diff < NOISE_GATE] = 0
    return diff


def frame_difference(previous: np.ndarray, current: np.ndarray) -> float:
    """Mean absolute pixel color difference, noise-gated, in [0, 1]."""
    diff = _gated_difference(previous, current)
    return float(diff.mean() / (3 * 255.0))


def motion_histogram(
    previous: np.ndarray, current: np.ndarray, n_bands: int = 12
) -> np.ndarray:
    """Motion energy per vertical column band, normalized to sum 1.

    Returns:
        Array (n_bands,); uniform when the frame pair is static.
    """
    diff = _gated_difference(previous, current)
    width = diff.shape[1]
    edges = np.linspace(0, width, n_bands + 1).astype(int)
    energy = np.array(
        [diff[:, edges[i] : edges[i + 1]].sum() for i in range(n_bands)],
        dtype=np.float64,
    )
    total = energy.sum()
    if total <= 0:
        return np.full(n_bands, 1.0 / n_bands)
    return energy / total


def passing_score(histograms: np.ndarray) -> float:
    """Probability-like score that a passing manoeuvre is in progress.

    Args:
        histograms: motion histograms of several consecutive frame pairs,
            shape (k, n_bands) — §5.3 computes "the movement properties of
            several consecutive pictures, based on their motion histogram".

    A passing shows as a *concentrated* motion blob whose centroid sweeps
    monotonically across the frame. The score combines

    * concentration: how far each histogram is from uniform,
    * sweep: monotone centroid displacement across the window.
    """
    histograms = np.asarray(histograms, dtype=np.float64)
    if histograms.ndim != 2 or histograms.shape[0] < 3:
        raise SignalError("passing_score needs >= 3 consecutive histograms")
    k, n_bands = histograms.shape
    uniform = 1.0 / n_bands

    # Background motion is spatially uniform; subtract the uniform floor so
    # the centroid tracks only the concentrated (foreground) blob.
    excess = np.clip(histograms - uniform, 0.0, None)
    mass = excess.sum(axis=1)
    concentration = mass / (1.0 - uniform)
    valid = mass > 0.02
    if valid.sum() < 3:
        return 0.0
    positions = np.arange(n_bands)
    centroids = (excess[valid] @ positions) / (mass[valid] * (n_bands - 1))

    steps = np.diff(centroids)
    if np.all(steps == 0):
        return 0.0
    direction = np.sign(steps.sum())
    if direction == 0:
        return 0.0
    monotone = float((np.sign(steps) == direction).mean())
    displacement = float(abs(centroids[-1] - centroids[0]))
    sweep = min(displacement / 0.25, 1.0) * monotone
    mean_concentration = float(concentration[valid].mean())

    return float(np.clip(mean_concentration * sweep, 0.0, 1.0))
