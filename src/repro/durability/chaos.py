"""Kill-point chaos verification of the durability layer.

The crash model is a *process kill*: a ``kind="kill"`` fault raises
:class:`repro.errors.SimulatedCrash` at a named crash point inside the WAL
or checkpoint write path, the "process" (the kernel object) is abandoned,
and a fresh :class:`DurableStore` recovers from whatever reached the file
system. Bytes already written survive the kill (page-cache loss is not
modelled); torn records are manufactured for real by the WAL writer's
split-write protocol around ``wal.append:mid``.

Every crash point is classified by what the last mutation's fate must be
after recovery:

* ``durable`` — the record (or commit marker) reached the file before the
  kill, so the mutation MUST be present after recovery;
* ``absent`` — the kill preceded the record (or tore it, or left a commit
  batch without its marker), so the mutation MUST NOT be present;
* ``neutral`` — checkpoint-path kills: checkpoints never change the logical
  catalog, so recovery must return exactly the pre-kill committed state.

:func:`kill_point_sweep` runs a fixed six-step workload once per crash
point, kills at that point, recovers, and compares the recovered catalog
against the expected model — structurally via :meth:`BAT.equals` and
byte-for-byte on the numeric tail arrays. Any surviving uncommitted
transaction, lost committed mutation, or resurrected rolled-back state is
a sweep failure. ``python -m repro.durability sweep`` runs it standalone;
the CI ``crash-recovery`` job runs it on every push.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.durability.store import DurableStore, RecoveryReport
from repro.errors import SimulatedCrash
from repro.faults import FaultPlan, FaultSpec
from repro.monet.bat import BAT
from repro.monet.kernel import MonetKernel

__all__ = [
    "ABSENT",
    "CRASH_SITES",
    "DURABLE",
    "NEUTRAL",
    "SweepResult",
    "SweepSummary",
    "kill_point_sweep",
    "run_crash_site",
]

DURABLE = "durable"
ABSENT = "absent"
NEUTRAL = "neutral"

#: Every named crash point, classified by the required post-recovery fate
#: of the mutation in flight when the kill fires.
CRASH_SITES: dict[str, str] = {
    "wal.append:before": ABSENT,
    "wal.append:mid": ABSENT,  # record torn in half; recovery truncates it
    "wal.append:written": DURABLE,
    "wal.append:synced": DURABLE,
    "wal.commit:begin": ABSENT,
    "wal.commit:mid": ABSENT,  # batch without its commit marker: discarded
    "wal.commit:marker": DURABLE,
    "wal.commit:synced": DURABLE,
    "checkpoint:before": NEUTRAL,
    "checkpoint:temp-written": NEUTRAL,
    # renamed over the old checkpoint but the directory entry is not yet
    # fsynced — the window the parent-directory fsync exists to cover
    "checkpoint:replaced": NEUTRAL,
    "checkpoint:renamed": NEUTRAL,
    "checkpoint:truncated": NEUTRAL,
}


# ---------------------------------------------------------------------------
# the workload: six deterministic steps covering every write path
# ---------------------------------------------------------------------------

_PROC_SOURCE = """
PROC bestLap(BAT[void,dbl] laps) : dbl := {
    RETURN laps.min;
}
"""


def _lap_bat() -> BAT:
    return BAT.from_columns(
        "void", "dbl", [0, 1, 2], [78.123, 77.901, 78.456], next_oid=3
    )


def _lap_bat_extended() -> BAT:
    return BAT.from_columns(
        "void", "dbl", [0, 1, 2, 3], [78.123, 77.901, 78.456, 77.512], next_oid=4
    )


def _driver_bat() -> BAT:
    return BAT.from_columns(
        "void", "str", [0, 1], ["hakkinen", "schumacher"], next_oid=2
    )


def _pit_bat() -> BAT:
    return BAT.from_columns("void", "dbl", [0, 1], [7.8, 8.4], next_oid=2)


def _ranking_bat() -> BAT:
    return BAT.from_columns("void", "int", [0, 1, 2], [3, 1, 2], next_oid=3)


@dataclass
class _Step:
    """One workload step: mutate the kernel, and (on success or a
    ``durable``-classified kill) the expected model."""

    name: str
    run: Callable[[MonetKernel], None]
    commit: Callable[[dict[str, BAT], set[str]], None]


def _txn_insert(kernel: MonetKernel) -> None:
    with kernel.transaction():
        kernel.persist("driver", _driver_bat())
        kernel.bat("lap_time").insert(77.512)


def _txn_insert_model(model: dict[str, BAT], procs: set[str]) -> None:
    model["driver"] = _driver_bat()
    model["lap_time"] = _lap_bat_extended()


def _txn_drop(kernel: MonetKernel) -> None:
    with kernel.transaction():
        kernel.drop("driver")
        kernel.persist("pit_stop", _pit_bat())


def _txn_drop_model(model: dict[str, BAT], procs: set[str]) -> None:
    del model["driver"]
    model["pit_stop"] = _pit_bat()


def build_workload() -> list[_Step]:
    """The sweep workload: auto-commit persists, transactions (insert and
    drop), a PROC definition, and a checkpoint — in an order that puts each
    crash-site family's first trigger in a known step."""
    return [
        _Step(
            "persist lap_time (auto-commit)",
            lambda k: k.persist("lap_time", _lap_bat()),
            lambda m, p: m.__setitem__("lap_time", _lap_bat()),
        ),
        _Step("txn: persist driver + insert lap", _txn_insert, _txn_insert_model),
        _Step(
            "define PROC bestLap",
            lambda k: k.run(_PROC_SOURCE),
            lambda m, p: p.add("bestLap"),
        ),
        _Step("checkpoint", lambda k: k.checkpoint(), lambda m, p: None),
        _Step("txn: drop driver + persist pit_stop", _txn_drop, _txn_drop_model),
        _Step(
            "persist final_ranking (auto-commit)",
            lambda k: k.persist("final_ranking", _ranking_bat()),
            lambda m, p: m.__setitem__("final_ranking", _ranking_bat()),
        ),
    ]


# ---------------------------------------------------------------------------
# comparison and results
# ---------------------------------------------------------------------------


def compare_catalogs(
    expected: Mapping[str, BAT], recovered: Mapping[str, BAT]
) -> list[str]:
    """Mismatch descriptions between an expected model and a recovered
    catalog — empty when they agree structurally AND the numeric tail
    arrays agree byte-for-byte."""
    failures: list[str] = []
    if set(expected) != set(recovered):
        failures.append(
            f"catalog names differ: expected {sorted(expected)}, "
            f"recovered {sorted(recovered)}"
        )
    for name in sorted(set(expected) & set(recovered)):
        want, got = expected[name], recovered[name]
        if not want.equals(got):
            failures.append(
                f"{name}: recovered BAT differs "
                f"(expected {len(want)} rows, got {len(got)})"
            )
            continue
        want_tail, got_tail = want.tail_array(), got.tail_array()
        if want_tail.dtype != got_tail.dtype:
            failures.append(
                f"{name}: tail dtype {got_tail.dtype} != expected {want_tail.dtype}"
            )
        elif want_tail.dtype != np.dtype(object) and (
            want_tail.tobytes() != got_tail.tobytes()
        ):
            failures.append(f"{name}: tail arrays differ byte-for-byte")
    return failures


@dataclass
class SweepResult:
    """Outcome of one crash-site run of the workload."""

    site: str
    classification: str
    crashed: bool
    crashed_step: str | None
    failures: list[str]
    report: RecoveryReport

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        where = f" (killed during: {self.crashed_step})" if self.crashed else ""
        lines = [f"{status}  {self.site} [{self.classification}]{where}"]
        lines.extend(f"      {f}" for f in self.failures)
        return "\n".join(lines)


@dataclass
class SweepSummary:
    results: list[SweepResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failed(self) -> list[SweepResult]:
        return [r for r in self.results if not r.ok]

    def describe(self) -> str:
        lines = [r.describe() for r in self.results]
        lines.append(
            f"kill-point sweep: {len(self.results) - len(self.failed)}/"
            f"{len(self.results)} site(s) recovered to the last committed state"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------


def run_crash_site(
    base_dir: str | Path,
    site: str,
    classification: str | None = None,
    fsync: bool = True,
) -> SweepResult:
    """Run the workload with a one-shot kill at ``site``, then recover and
    compare against the expected committed state."""
    classification = (
        CRASH_SITES[site] if classification is None else classification
    )
    store_dir = Path(base_dir) / site.replace(":", "__").replace(".", "_")
    plan = FaultPlan(
        seed=7,
        name=f"kill-{site}",
        specs=(FaultSpec(site=site, kind="kill", max_triggers=1),),
    )
    store = DurableStore(store_dir, faults=plan, fsync=fsync)
    # check="warn": the sweep verifies crash consistency, not MIL style
    kernel = MonetKernel(check="warn", store=store)

    model: dict[str, BAT] = {}
    expected_procs: set[str] = set()
    crashed = False
    crashed_step: str | None = None
    for step in build_workload():
        try:
            step.run(kernel)
        except SimulatedCrash:
            crashed = True
            crashed_step = step.name
            if classification == DURABLE:
                step.commit(model, expected_procs)
            break
        step.commit(model, expected_procs)
    # the killed "process" is abandoned; release its file handle (the kill
    # is simulated in-process, so the descriptor would otherwise leak)
    kernel.close()

    state = DurableStore(store_dir, fsync=fsync).recover()
    failures = compare_catalogs(model, state.catalog)
    missing_procs = expected_procs - set(state.definitions)
    if missing_procs:
        failures.append(f"committed PROC(s) lost: {sorted(missing_procs)}")
    return SweepResult(
        site=site,
        classification=classification,
        crashed=crashed,
        crashed_step=crashed_step,
        failures=failures,
        report=state.report,
    )


def kill_point_sweep(
    base_dir: str | Path,
    sites: Iterable[str] | None = None,
    fsync: bool = True,
) -> SweepSummary:
    """Kill at every crash point in turn; every run must recover to exactly
    the last committed state (the acceptance bar for the durability layer)."""
    chosen = list(CRASH_SITES) if sites is None else list(sites)
    summary = SweepSummary()
    for site in chosen:
        summary.results.append(run_crash_site(base_dir, site, fsync=fsync))
    return summary
