"""Atomic catalog checkpoints.

A checkpoint is one JSON document holding the full BAT catalog, the pickled
MIL ``ProcDef`` ASTs, and the registered module names, wrapped with a
format tag and a CRC32 over the canonically serialized body::

    {"format": 1, "crc": <crc32>, "body": {"seqno": ..., "catalog": ...}}

Writing is crash-atomic: serialize to ``checkpoint.tmp``, fsync, rename
over ``checkpoint``, fsync the directory. A reader therefore sees either
the previous checkpoint or the new one, never a torn hybrid; the CRC guards
against bit rot, not torn writes.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.durability.wal import bat_from_payload, bat_to_payload, fsync_directory
from repro.errors import RecoveryError
from repro.faults import FaultInjector
from repro.monet.bat import BAT

__all__ = ["CHECKPOINT_NAME", "Checkpoint", "read_checkpoint", "write_checkpoint"]

CHECKPOINT_NAME = "checkpoint"
CHECKPOINT_FORMAT = 1


@dataclass
class Checkpoint:
    """A deserialized checkpoint: the durable state at one seqno."""

    seqno: int = 0
    catalog: dict[str, BAT] = field(default_factory=dict)
    #: MIL procedure name -> pickled ProcDef AST (kept pickled until the
    #: kernel replays it, so loading a store never requires the modules).
    procs: dict[str, bytes] = field(default_factory=dict)
    modules: list[str] = field(default_factory=list)

    def definitions(self) -> dict[str, Any]:
        """Unpickled ProcDef ASTs keyed by procedure name."""
        return {name: pickle.loads(blob) for name, blob in self.procs.items()}


def _body(checkpoint: Checkpoint) -> dict[str, Any]:
    return {
        "seqno": checkpoint.seqno,
        "catalog": {
            name: bat_to_payload(bat) for name, bat in checkpoint.catalog.items()
        },
        "procs": {
            name: base64.b64encode(blob).decode("ascii")
            for name, blob in checkpoint.procs.items()
        },
        "modules": sorted(checkpoint.modules),
    }


def _canonical(body: Mapping[str, Any]) -> bytes:
    return json.dumps(body, sort_keys=True, allow_nan=True).encode("utf-8")


def write_checkpoint(
    directory: str | Path,
    checkpoint: Checkpoint,
    faults: FaultInjector | None = None,
    fsync: bool = True,
) -> Path:
    """Atomically install ``checkpoint`` as ``<directory>/checkpoint``.

    Crash points: ``checkpoint:before`` (nothing written),
    ``checkpoint:temp-written`` (temp file complete, not yet renamed),
    ``checkpoint:replaced`` (renamed over the old checkpoint, but the
    directory entry for the rename is not yet fsynced — power loss here
    may surface either checkpoint, both of which must recover),
    ``checkpoint:renamed`` (rename durable on the directory entry, caller
    has not yet truncated the WAL). All four leave a recoverable store.
    """
    faults = faults if faults is not None else FaultInjector.disabled()
    directory = Path(directory)
    final = directory / CHECKPOINT_NAME
    temp = directory / (CHECKPOINT_NAME + ".tmp")
    body = _body(checkpoint)
    document = {
        "format": CHECKPOINT_FORMAT,
        "crc": zlib.crc32(_canonical(body)),
        "body": body,
    }
    faults.on_call("checkpoint:before")
    with open(temp, "w", encoding="utf-8") as fh:
        json.dump(document, fh, allow_nan=True)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    faults.on_call("checkpoint:temp-written")
    os.replace(temp, final)
    faults.on_call("checkpoint:replaced")
    if fsync:
        fsync_directory(directory)
    faults.on_call("checkpoint:renamed")
    return final


def read_checkpoint(directory: str | Path) -> Checkpoint | None:
    """Load the checkpoint, or None when the store has never checkpointed.

    A structurally damaged checkpoint raises :class:`RecoveryError`: the
    write protocol makes torn checkpoints impossible, so damage here means
    real corruption that silent fallback to an empty catalog would hide.
    """
    path = Path(directory) / CHECKPOINT_NAME
    if not path.exists():
        return None
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise RecoveryError(f"checkpoint {path} is not valid JSON: {exc}") from exc
    if document.get("format") != CHECKPOINT_FORMAT:
        raise RecoveryError(
            f"checkpoint {path} has unsupported format {document.get('format')!r}"
        )
    body = document.get("body")
    if not isinstance(body, dict):
        raise RecoveryError(f"checkpoint {path} has no body")
    if zlib.crc32(_canonical(body)) != document.get("crc"):
        raise RecoveryError(f"checkpoint {path} failed its CRC check")
    catalog = {
        name: bat_from_payload(payload, name=name)
        for name, payload in body.get("catalog", {}).items()
    }
    procs = {
        name: base64.b64decode(blob)
        for name, blob in body.get("procs", {}).items()
    }
    return Checkpoint(
        seqno=int(body.get("seqno", 0)),
        catalog=catalog,
        procs=procs,
        modules=list(body.get("modules", [])),
    )


def pickle_definition(definition: Any) -> bytes:
    """Pickle one MIL ProcDef AST for WAL/checkpoint storage."""
    return pickle.dumps(definition)


def checkpoint_from_state(
    seqno: int,
    catalog: Mapping[str, BAT],
    definitions: Mapping[str, Any],
    modules: Iterable[str],
) -> Checkpoint:
    """Build a Checkpoint from live kernel state (BATs are deep-copied)."""
    return Checkpoint(
        seqno=seqno,
        catalog={name: bat.copy(name=name) for name, bat in catalog.items()},
        procs={
            name: pickle_definition(definition)
            for name, definition in definitions.items()
        },
        modules=sorted(modules),
    )
