"""The append-only, checksummed write-ahead log.

File layout::

    REPROWAL1\\n                      10-byte magic header
    [u32 length][u32 crc32][payload]  repeated; big-endian, crc over payload

Payloads are JSON dictionaries with an ``op`` field. Catalog values that
JSON cannot carry natively (opaque ``any``-atom objects, pickled MIL
``ProcDef`` ASTs) are tagged ``{"__pickle__": <base64>}``; everything else
stays human-readable for ``python -m repro.durability inspect``.

Write semantics: an *auto-commit* record (:meth:`WriteAheadLog.append`) is
written and fsynced on its own; a *transaction* (:meth:`commit`) is written
as one ``begin`` + delta records + ``commit`` batch, fsynced after the
commit marker — a batch without its commit marker is discarded on replay.
The writer deliberately splits each auto-commit record into two OS writes
around a named crash point so the chaos harness can manufacture genuinely
torn records.

Read semantics (:func:`read_records`): records are scanned until EOF or the
first structurally bad record (short header, length past EOF, CRC or JSON
failure). Everything from the bad record on is untrustworthy — the reader
reports the last valid offset so recovery can truncate the tail.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterable

from repro.errors import DurabilityError, WalCorruptionError
from repro.faults import FaultInjector
from repro.monet.bat import BAT

__all__ = [
    "MAGIC",
    "WalScan",
    "WriteAheadLog",
    "bat_from_payload",
    "bat_to_payload",
    "decode_record",
    "decode_value",
    "encode_record",
    "encode_value",
    "fsync_directory",
    "read_records",
]

MAGIC = b"REPROWAL1\n"
_HEADER = struct.Struct(">II")  # (payload length, crc32 of payload)

#: Upper bound on one record's payload; a length field above this is treated
#: as corruption rather than an allocation request.
MAX_RECORD_BYTES = 1 << 28


# ---------------------------------------------------------------------------
# value / record codec
# ---------------------------------------------------------------------------

def encode_value(value: Any) -> Any:
    """JSON-encodable form of one atom value (tagged pickle as fallback)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # numpy scalars sneak in through tail arrays and coercions
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return item()
    return {"__pickle__": base64.b64encode(pickle.dumps(value)).decode("ascii")}


def decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "__pickle__" in value:
        return pickle.loads(base64.b64decode(value["__pickle__"]))
    return value


def bat_to_payload(bat: BAT) -> dict[str, Any]:
    heads, tails, next_oid = bat.columns()
    return {
        "head_type": bat.head_type,
        "tail_type": bat.tail_type,
        "head": [encode_value(v) for v in heads],
        "tail": [encode_value(v) for v in tails],
        "next_oid": next_oid,
    }


def bat_from_payload(payload: dict[str, Any], name: str | None = None) -> BAT:
    return BAT.from_columns(
        payload["head_type"],
        payload["tail_type"],
        [decode_value(v) for v in payload["head"]],
        [decode_value(v) for v in payload["tail"]],
        next_oid=payload.get("next_oid", 0),
        name=name,
    )


def encode_record(record: dict[str, Any]) -> bytes:
    """Frame one record: length + crc32 header, JSON payload."""
    payload = json.dumps(record, separators=(",", ":"), allow_nan=True).encode(
        "utf-8"
    )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_record(payload: bytes) -> dict[str, Any]:
    return json.loads(payload.decode("utf-8"))


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------


@dataclass
class WalScan:
    """Result of scanning a WAL file.

    Attributes:
        records: every structurally valid record, in append order.
        valid_length: byte offset up to which the file is trustworthy.
        file_length: actual byte length of the file on disk.
        corruption: human-readable reason scanning stopped early (``None``
            when the whole file was valid).
    """

    records: list[dict[str, Any]]
    valid_length: int
    file_length: int
    corruption: str | None = None

    @property
    def torn_bytes(self) -> int:
        return self.file_length - self.valid_length


def read_records(path: str | Path) -> WalScan:
    """Scan a WAL file, stopping at the first torn or corrupt record."""
    path = Path(path)
    if not path.exists():
        return WalScan([], 0, 0)
    data = path.read_bytes()
    if not data:
        return WalScan([], 0, 0)
    if not data.startswith(MAGIC):
        if len(data) < len(MAGIC) and MAGIC.startswith(data):
            # crash while writing the header of a brand-new log
            return WalScan([], 0, len(data), corruption="torn magic header")
        raise WalCorruptionError(
            f"{path} does not start with the WAL magic header"
        )
    records: list[dict[str, Any]] = []
    offset = len(MAGIC)
    corruption: str | None = None
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            corruption = f"torn record header at offset {offset}"
            break
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if length > MAX_RECORD_BYTES:
            corruption = f"implausible record length {length} at offset {offset}"
            break
        if start + length > len(data):
            corruption = f"torn record payload at offset {offset}"
            break
        payload = data[start : start + length]
        if zlib.crc32(payload) != crc:
            corruption = f"checksum mismatch at offset {offset}"
            break
        try:
            record = decode_record(payload)
        except (ValueError, UnicodeDecodeError):
            corruption = f"undecodable payload at offset {offset}"
            break
        if not isinstance(record, dict) or "op" not in record:
            corruption = f"malformed record (no op) at offset {offset}"
            break
        records.append(record)
        offset = start + length
    return WalScan(records, offset, len(data), corruption=corruption)


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------


class WriteAheadLog:
    """Append-only writer over one WAL file.

    ``faults`` is consulted at the named crash points (``wal.append:*``,
    ``wal.commit:*``) so a chaos plan with ``kind="kill"`` can terminate
    the "process" between any two physical write steps; ``fsync=False``
    trades durability for speed in tests that only exercise replay logic.
    """

    def __init__(
        self,
        path: str | Path,
        faults: FaultInjector | None = None,
        fsync: bool = True,
    ):
        self.path = Path(path)
        self._faults = faults if faults is not None else FaultInjector.disabled()
        self._fsync = fsync
        self._file: IO[bytes] | None = None
        self._records_written = 0

    # -- file lifecycle -------------------------------------------------
    def open(self) -> None:
        if self._file is not None:
            return
        existed = self.path.exists()
        is_new = not existed or self.path.stat().st_size == 0
        self._file = open(self.path, "ab")
        if is_new:
            self._file.write(MAGIC)
            self._file.flush()
            self._sync()
            if not existed and self._fsync:
                # fsyncing the file makes its *contents* durable; a freshly
                # created file also needs its directory entry persisted, or
                # power loss can lose the whole log despite every record
                # fsync that follows
                fsync_directory(self.path.parent)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    @property
    def records_written(self) -> int:
        """Records appended through this writer since open/truncate."""
        return self._records_written

    def truncate(self, length: int | None = None) -> None:
        """Physically truncate the file (to empty-with-header by default)."""
        self.close()
        with open(self.path, "r+b" if self.path.exists() else "wb") as fh:
            fh.truncate(len(MAGIC) if length is None else length)
            if length is None:
                fh.seek(0)
                fh.write(MAGIC)
            fh.flush()
            os.fsync(fh.fileno())
        self._records_written = 0
        self.open()

    def _sync(self) -> None:
        assert self._file is not None
        if self._fsync:
            os.fsync(self._file.fileno())

    def _require_open(self) -> IO[bytes]:
        if self._file is None:
            self.open()
        assert self._file is not None
        return self._file

    # -- appending ------------------------------------------------------
    def append(self, record: dict[str, Any]) -> None:
        """Write one auto-commit record, durable before returning.

        Crash points: ``wal.append:before`` (nothing written),
        ``wal.append:mid`` (record torn in half — recovery truncates),
        ``wal.append:written`` (record complete, not yet fsynced),
        ``wal.append:synced`` (fully durable).
        """
        fh = self._require_open()
        self._faults.on_call("wal.append:before")
        data = encode_record(record)
        split = len(data) // 2
        fh.write(data[:split])
        fh.flush()
        self._faults.on_call("wal.append:mid")
        fh.write(data[split:])
        fh.flush()
        self._faults.on_call("wal.append:written")
        self._sync()
        self._records_written += 1
        self._faults.on_call("wal.append:synced")

    def commit(
        self, txn_id: int, records: Iterable[dict[str, Any]]
    ) -> None:
        """Write one transaction as a begin + records + commit batch.

        The batch only becomes visible to replay once its ``commit`` marker
        is on disk — a crash at ``wal.commit:begin`` or ``wal.commit:mid``
        leaves an uncommitted prefix that recovery discards.
        """
        fh = self._require_open()
        body = [{"op": "begin", "txn": txn_id}, *records]
        self._faults.on_call("wal.commit:begin")
        fh.write(b"".join(encode_record(r) for r in body))
        fh.flush()
        self._faults.on_call("wal.commit:mid")
        fh.write(encode_record({"op": "commit", "txn": txn_id}))
        fh.flush()
        self._faults.on_call("wal.commit:marker")
        self._sync()
        self._records_written += len(body) + 1
        self._faults.on_call("wal.commit:synced")

    def size(self) -> int:
        if not self.path.exists():
            return 0
        return self.path.stat().st_size


def require_directory(path: str | Path) -> Path:
    """Create/verify a store directory (shared by store and CLI)."""
    path = Path(path)
    if path.exists() and not path.is_dir():
        raise DurabilityError(f"store path {path} exists and is not a directory")
    path.mkdir(parents=True, exist_ok=True)
    return path


def fsync_directory(directory: str | Path) -> None:
    """Persist a directory's entries (file creations and renames).

    An fsync of a file does not cover the directory entry that names it:
    after creating or renaming a file, the parent directory must itself be
    fsynced or power loss can unlink the file despite its durable contents.
    """
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
