"""Durability and crash recovery for the Monet catalog.

The paper's Monet kernel is a real DBMS with persistent BATs; the
reproduction's catalog was purely in-memory until this package added the
classic recoverability stack:

* :mod:`repro.durability.wal` — an append-only, CRC32-checksummed,
  length-prefixed write-ahead log with fsync-on-commit and named crash
  points;
* :mod:`repro.durability.checkpoint` — atomic (write-temp, fsync, rename)
  full-catalog checkpoints that truncate the log;
* :mod:`repro.durability.store` — the :class:`DurableStore` façade tying
  the two together, with :meth:`DurableStore.recover` rebuilding the last
  committed state and reporting recovery-time metrics;
* :mod:`repro.durability.chaos` — the kill-point sweep that proves the
  guarantees by killing at every crash point and recovering.

Opt in through the kernel::

    kernel = MonetKernel(store="state/catalog")   # recovers, then logs
    with kernel.transaction():                    # WAL commit boundary
        kernel.persist("laps", laps)
    kernel.checkpoint()                           # fold WAL into checkpoint

Inspect a store from the command line::

    python -m repro.durability inspect state/catalog
    python -m repro.durability verify  state/catalog
    python -m repro.durability compact state/catalog
    python -m repro.durability sweep
"""

from repro.durability.chaos import (
    CRASH_SITES,
    SweepResult,
    SweepSummary,
    kill_point_sweep,
    run_crash_site,
)
from repro.durability.checkpoint import (
    Checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.durability.store import (
    DurableStore,
    RecoveredState,
    RecoveryReport,
)
from repro.durability.wal import WalScan, WriteAheadLog, read_records

__all__ = [
    "CRASH_SITES",
    "Checkpoint",
    "DurableStore",
    "RecoveredState",
    "RecoveryReport",
    "SweepResult",
    "SweepSummary",
    "WalScan",
    "WriteAheadLog",
    "kill_point_sweep",
    "read_checkpoint",
    "read_records",
    "run_crash_site",
    "write_checkpoint",
]
