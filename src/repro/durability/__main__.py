"""Inspect, verify, compact, and chaos-test durable catalog stores.

Usage::

    python -m repro.durability inspect <store-dir>   # dump checkpoint + WAL
    python -m repro.durability verify  <store-dir>   # read-only recovery
    python -m repro.durability compact <store-dir>   # fold WAL -> checkpoint
    python -m repro.durability sweep [--dir DIR]     # kill-point sweep

``verify`` exits non-zero when the store is unrecoverable, the recovered
catalog violates the :mod:`repro.check` invariants, or catalogcheck
reports *any* CAT finding (warnings included) — so CI can gate on a clean
store; ``sweep`` exits non-zero when any crash point fails to recover to
the last committed state (the CI ``crash-recovery`` job gates on this).
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.durability.checkpoint import read_checkpoint
from repro.durability.store import WAL_FILE, DurableStore
from repro.durability.wal import read_records
from repro.errors import CatalogCheckError, DurabilityError, ReproError


def _cmd_inspect(args: argparse.Namespace) -> int:
    checkpoint = read_checkpoint(args.store)
    if checkpoint is None:
        print("checkpoint: (none)")
    else:
        print(f"checkpoint: seqno {checkpoint.seqno}")
        for name in sorted(checkpoint.catalog):
            bat = checkpoint.catalog[name]
            print(f"  {bat!r}")
        for name in sorted(checkpoint.procs):
            print(f"  PROC {name} ({len(checkpoint.procs[name])} pickled bytes)")
        if checkpoint.modules:
            print(f"  modules: {', '.join(checkpoint.modules)}")
    scan = read_records(f"{args.store}/{WAL_FILE}")
    print(
        f"wal: {len(scan.records)} record(s), {scan.valid_length} valid "
        f"byte(s) of {scan.file_length}"
    )
    if scan.corruption:
        print(f"  CORRUPT TAIL: {scan.corruption} ({scan.torn_bytes} byte(s))")
    for index, record in enumerate(scan.records):
        op = record.get("op")
        detail = ""
        if op in ("persist",):
            payload = record.get("bat", {})
            detail = (
                f" {record.get('name')!r} "
                f"BAT[{payload.get('head_type')},{payload.get('tail_type')}] "
                f"({len(payload.get('head', []))} associations)"
            )
        elif op in ("drop", "proc", "module"):
            detail = f" {record.get('name')!r}"
        elif op in ("begin", "commit", "abort"):
            detail = f" txn {record.get('txn')}"
        print(f"  [{index:04d}] {op}{detail}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    store = DurableStore(args.store)
    try:
        state = store.recover(dry_run=True)
    except CatalogCheckError as exc:
        print("catalog invariants VIOLATED on the recovered store:")
        for diagnostic in exc.diagnostics:
            print(f"  {diagnostic}")
        return 1
    except ReproError as exc:
        print(f"UNRECOVERABLE: {exc}")
        return 1
    print(state.report.describe())
    findings = state.report.diagnostics
    print(
        f"catalog invariants (CAT001-CAT006): checked, "
        f"{len(findings)} finding(s)"
    )
    if findings:
        # any finding — warnings included — fails verification, so CI can
        # gate on a clean store rather than merely a recoverable one
        for diagnostic in findings:
            print(f"  {diagnostic}")
        print("store is recoverable but NOT clean")
        return 1
    print("store is recoverable")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    store = DurableStore(args.store)
    report = store.compact()
    print(report.describe())
    print(
        f"compacted into checkpoint seqno {report.checkpoint_seqno + 1}; "
        f"wal now {store.wal_size()} byte(s)"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    # Imported lazily: the sweep pulls in the whole kernel stack.
    from repro.durability.chaos import CRASH_SITES, kill_point_sweep

    for site in args.site or ():
        if site not in CRASH_SITES:
            raise SystemExit(
                f"unknown crash site {site!r}; known: {', '.join(CRASH_SITES)}"
            )
    base = args.dir or tempfile.mkdtemp(prefix="repro-sweep-")
    print(f"sweeping {len(args.site or CRASH_SITES)} crash site(s) under {base}")
    summary = kill_point_sweep(base, sites=args.site or None, fsync=not args.no_fsync)
    print(summary.describe())
    return 0 if summary.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.durability",
        description="Inspect, verify, compact, and chaos-test durable stores.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    for name, handler, doc in (
        ("inspect", _cmd_inspect, "dump the checkpoint and WAL records"),
        ("verify", _cmd_verify, "read-only recovery + invariant check"),
        ("compact", _cmd_compact, "fold the WAL into a fresh checkpoint"),
    ):
        sub = commands.add_parser(name, help=doc)
        sub.add_argument("store", help="store directory")
        sub.set_defaults(handler=handler)

    sweep = commands.add_parser(
        "sweep", help="run the kill-point chaos sweep against a scratch store"
    )
    sweep.add_argument(
        "--dir", default=None, help="scratch directory (default: a temp dir)"
    )
    sweep.add_argument(
        "--site", action="append", help="limit to specific crash site(s)"
    )
    sweep.add_argument(
        "--no-fsync", action="store_true", help="skip fsync calls (faster)"
    )
    sweep.set_defaults(handler=_cmd_sweep)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except DurabilityError as exc:
        print(f"error: {exc}")
        return 1
    except BrokenPipeError:
        # stdout went away (e.g. `inspect ... | head`); not an error
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
