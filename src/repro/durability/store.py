"""The durable catalog store: WAL + checkpoint + recovery.

A :class:`DurableStore` owns one directory::

    <store>/
        checkpoint      atomic full-catalog snapshot (see checkpoint.py)
        wal.log         append-only mutation log since that snapshot

Mutations reach the store through two paths. *Auto-commit* operations
(``persist``/``drop`` outside a transaction, PROC definitions, module
registrations) are appended and fsynced individually. *Transactions* are
group-committed: the kernel computes the catalog delta at commit time and
the store writes ``begin`` + delta + ``commit`` as one batch, fsyncing
after the commit marker — the WAL commit boundary of
``MonetKernel.transaction()``.

:meth:`DurableStore.recover` loads the checkpoint, replays committed WAL
records (discarding any uncommitted batch), truncates torn or corrupt log
tails, verifies the :mod:`repro.check` catalog invariants, and reports
recovery-time metrics on a :class:`RecoveryReport`.
"""

from __future__ import annotations

import base64
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.check.catalogcheck import check_catalog
from repro.check.diagnostics import Diagnostic
from repro.durability.checkpoint import (
    Checkpoint,
    checkpoint_from_state,
    pickle_definition,
    read_checkpoint,
    write_checkpoint,
)
from repro.durability.wal import (
    WriteAheadLog,
    bat_from_payload,
    bat_to_payload,
    read_records,
    require_directory,
)
from repro.errors import CatalogCheckError, DurabilityError
from repro.faults import FaultInjector, FaultPlan, resolve_injector
from repro.monet.bat import BAT

__all__ = [
    "CatalogDelta",
    "DurableStore",
    "RecoveredState",
    "RecoveryReport",
    "WAL_FILE",
]

WAL_FILE = "wal.log"


#: One catalog mutation inside a transaction delta:
#: ``("persist", name, bat)`` or ``("drop", name, None)``.
CatalogDelta = Sequence[tuple]


@dataclass
class RecoveryReport:
    """Metrics and findings of one recovery pass."""

    store: str
    checkpoint_seqno: int = 0
    checkpoint_bats: int = 0
    wal_records: int = 0
    records_replayed: int = 0
    transactions_committed: int = 0
    transactions_discarded: int = 0
    aborts_seen: int = 0
    truncated_bytes: int = 0
    corruption: str | None = None
    bats_recovered: int = 0
    procs_recovered: int = 0
    modules_expected: list[str] = field(default_factory=list)
    duration_seconds: float = 0.0
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing had to be discarded or truncated."""
        return (
            self.truncated_bytes == 0
            and self.transactions_discarded == 0
            and not any(d.severity.name == "ERROR" for d in self.diagnostics)
        )

    def describe(self) -> str:
        lines = [
            f"recovery of {self.store}",
            f"  checkpoint: seqno {self.checkpoint_seqno}, "
            f"{self.checkpoint_bats} BAT(s)",
            f"  wal: {self.wal_records} record(s), "
            f"{self.records_replayed} replayed, "
            f"{self.transactions_committed} txn(s) committed, "
            f"{self.transactions_discarded} discarded, "
            f"{self.aborts_seen} abort marker(s)",
            f"  tail: {self.truncated_bytes} byte(s) truncated"
            + (f" ({self.corruption})" if self.corruption else ""),
            f"  recovered: {self.bats_recovered} BAT(s), "
            f"{self.procs_recovered} PROC(s), "
            f"modules expected: {self.modules_expected or '[]'}",
            f"  invariants: {len(self.diagnostics)} finding(s)",
            f"  took {self.duration_seconds * 1e3:.2f} ms",
        ]
        lines.extend(f"    {d}" for d in self.diagnostics)
        return "\n".join(lines)


@dataclass
class RecoveredState:
    """What :meth:`DurableStore.recover` hands back to the kernel."""

    catalog: dict[str, BAT]
    definitions: dict[str, Any]  # proc name -> ProcDef AST
    modules: list[str]
    next_txn: int
    report: RecoveryReport


class DurableStore:
    """Write-ahead log + checkpoints for one Monet catalog.

    Args:
        path: store directory (created if missing).
        faults: optional injector consulted at the named crash points
            (``wal.append:*``, ``wal.commit:*``, ``checkpoint:*``).
        fsync: set False to skip fsync calls (fast tests of replay logic).
        auto_checkpoint: when set, :meth:`wants_checkpoint` turns True once
            this many WAL records accumulate — the owning kernel then calls
            :meth:`checkpoint` at its next safe point.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        faults: "FaultInjector | FaultPlan | None" = None,
        fsync: bool = True,
        auto_checkpoint: int | None = None,
    ):
        self.path = require_directory(path)
        self.faults = resolve_injector(faults)
        self._fsync = fsync
        self.auto_checkpoint = auto_checkpoint
        self._wal = WriteAheadLog(
            self.path / WAL_FILE, faults=self.faults, fsync=fsync
        )
        self._seqno = 0
        self._next_txn = 1
        self._records_in_wal = 0
        self._modules: set[str] = set()
        self._opened = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self) -> RecoveredState:
        """Recover the on-disk state, then open the WAL for appending."""
        state = self.recover()
        self._seqno = state.report.checkpoint_seqno
        self._next_txn = state.next_txn
        self._records_in_wal = state.report.wal_records
        self._modules = set(state.modules)
        self._wal.open()
        self._opened = True
        return state

    def close(self) -> None:
        self._wal.close()
        self._opened = False

    @property
    def wal_path(self) -> Path:
        return self.path / WAL_FILE

    def wal_size(self) -> int:
        return self._wal.size()

    @property
    def records_since_checkpoint(self) -> int:
        return self._records_in_wal

    def wants_checkpoint(self) -> bool:
        return (
            self.auto_checkpoint is not None
            and self._records_in_wal >= self.auto_checkpoint
        )

    # ------------------------------------------------------------------
    # logging (write path)
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if not self._opened:
            raise DurabilityError(
                "store is not open for appending (call open() first)"
            )

    def log_persist(self, name: str, bat: BAT) -> None:
        """Auto-commit record: full image of one persisted BAT."""
        self._require_open()
        self._wal.append(
            {"op": "persist", "name": name, "bat": bat_to_payload(bat)}
        )
        self._records_in_wal += 1

    def log_drop(self, name: str) -> None:
        self._require_open()
        self._wal.append({"op": "drop", "name": name})
        self._records_in_wal += 1

    def log_proc(self, name: str, definition: Any) -> None:
        """Auto-commit record: one MIL PROC definition (pickled AST)."""
        self._require_open()
        blob = base64.b64encode(pickle_definition(definition)).decode("ascii")
        self._wal.append({"op": "proc", "name": name, "def": blob})
        self._records_in_wal += 1

    def log_module(self, name: str) -> None:
        """Auto-commit record: a MEL module registration marker."""
        self._require_open()
        if name in self._modules:
            return
        self._modules.add(name)
        self._wal.append({"op": "module", "name": name})
        self._records_in_wal += 1

    def log_abort(self) -> int:
        """Audit marker for a rolled-back transaction (nothing to undo:
        transaction records are only written at commit)."""
        self._require_open()
        txn = self._next_txn
        self._next_txn += 1
        self._wal.append({"op": "abort", "txn": txn})
        self._records_in_wal += 1
        return txn

    def commit(self, delta: CatalogDelta) -> int | None:
        """Group-commit one transaction delta; fsync after the marker.

        Returns the transaction id, or None for an empty delta (no-op
        transactions leave no trace in the log).
        """
        self._require_open()
        records = []
        for entry in delta:
            if entry[0] == "persist":
                _, name, bat = entry
                records.append(
                    {"op": "persist", "name": name, "bat": bat_to_payload(bat)}
                )
            elif entry[0] == "drop":
                records.append({"op": "drop", "name": entry[1]})
            else:
                raise DurabilityError(f"unknown delta op {entry[0]!r}")
        if not records:
            return None
        txn = self._next_txn
        self._next_txn += 1
        self._wal.commit(txn, records)
        self._records_in_wal += len(records) + 2
        return txn

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(
        self,
        catalog: Mapping[str, BAT],
        definitions: Mapping[str, Any] | None = None,
        modules: Iterable[str] = (),
    ) -> int:
        """Serialize the full state atomically, then truncate the WAL.

        Crash-safe at every step: until the rename the old checkpoint +
        full WAL are authoritative; after the rename the new checkpoint
        subsumes the WAL, whose replay is idempotent until truncation.
        Returns the new checkpoint seqno.
        """
        self._require_open()
        self._seqno += 1
        snapshot = checkpoint_from_state(
            self._seqno,
            catalog,
            definitions or {},
            set(modules) | self._modules,
        )
        write_checkpoint(self.path, snapshot, faults=self.faults, fsync=self._fsync)
        self._wal.truncate()
        self._records_in_wal = 0
        self.faults.on_call("checkpoint:truncated")
        return self._seqno

    # ------------------------------------------------------------------
    # recovery (read path)
    # ------------------------------------------------------------------
    def recover(self, dry_run: bool = False) -> RecoveredState:
        """Rebuild the last committed state from checkpoint + WAL.

        ``dry_run`` skips the physical truncation of torn/corrupt tails
        (used by ``python -m repro.durability verify``, which must not
        modify the store). Raises :class:`repro.errors.RecoveryError` for
        an unreadable checkpoint and
        :class:`repro.errors.CatalogCheckError` when the recovered catalog
        violates the :mod:`repro.check` invariants.
        """
        started = time.perf_counter()
        report = RecoveryReport(store=str(self.path))

        snapshot = read_checkpoint(self.path) or Checkpoint()
        report.checkpoint_seqno = snapshot.seqno
        report.checkpoint_bats = len(snapshot.catalog)

        catalog = dict(snapshot.catalog)
        definitions = snapshot.definitions()
        modules = set(snapshot.modules)

        scan = read_records(self.wal_path)
        report.wal_records = len(scan.records)
        report.corruption = scan.corruption
        report.truncated_bytes = scan.torn_bytes
        if scan.torn_bytes and not dry_run:
            self._truncate_tail(scan.valid_length)

        max_txn = 0
        pending: list[dict[str, Any]] | None = None
        for record in scan.records:
            op = record.get("op")
            if op == "begin":
                if pending is not None:
                    report.transactions_discarded += 1
                pending = []
                max_txn = max(max_txn, int(record.get("txn", 0)))
            elif op == "commit":
                if pending is not None:
                    for buffered in pending:
                        self._apply(buffered, catalog, definitions, modules)
                        report.records_replayed += 1
                    report.transactions_committed += 1
                    pending = None
            elif op == "abort":
                report.aborts_seen += 1
                max_txn = max(max_txn, int(record.get("txn", 0)))
            elif pending is not None:
                pending.append(record)
            else:
                self._apply(record, catalog, definitions, modules)
                report.records_replayed += 1
        if pending is not None:
            report.transactions_discarded += 1

        report.bats_recovered = len(catalog)
        report.procs_recovered = len(definitions)
        report.modules_expected = sorted(modules)

        invariants = check_catalog(catalog)
        report.diagnostics = list(invariants)
        report.duration_seconds = time.perf_counter() - started
        invariants.raise_if_errors(
            f"recovered catalog of {self.path}", CatalogCheckError
        )
        return RecoveredState(
            catalog=catalog,
            definitions=definitions,
            modules=sorted(modules),
            next_txn=max_txn + 1,
            report=report,
        )

    def _truncate_tail(self, valid_length: int) -> None:
        was_open = self._opened
        self._wal.truncate(max(valid_length, 0) or None)
        if not was_open:
            self._wal.close()

    @staticmethod
    def _apply(
        record: dict[str, Any],
        catalog: dict[str, BAT],
        definitions: dict[str, Any],
        modules: set[str],
    ) -> None:
        """Replay one committed record; idempotent by construction
        (persist carries a full image, drop tolerates absence)."""
        op = record.get("op")
        if op == "persist":
            name = record["name"]
            catalog[name] = bat_from_payload(record["bat"], name=name)
        elif op == "drop":
            catalog.pop(record["name"], None)
        elif op == "proc":
            definitions[record["name"]] = pickle.loads(
                base64.b64decode(record["def"])
            )
        elif op == "module":
            modules.add(record["name"])
        # unknown ops are skipped: a newer writer may add record types that
        # an older reader can safely ignore

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def compact(self) -> RecoveryReport:
        """Offline compaction: recover, then fold the WAL into a fresh
        checkpoint (``python -m repro.durability compact``)."""
        state = self.recover()
        was_open = self._opened
        if not was_open:
            self._wal.open()
            self._opened = True
        self._seqno = state.report.checkpoint_seqno
        self._modules = set(state.modules)
        try:
            self.checkpoint(state.catalog, state.definitions, state.modules)
        finally:
            if not was_open:
                self.close()
        return state.report
