"""Probabilistic fusion (the paper's core): feature assembly f1..f17,
discretization, the Fig. 7/8 audio networks, the Fig. 10/11 audio-visual
DBN, supervised-EM training, and segment-level evaluation."""

from repro.fusion.audio_networks import (
    AUDIO_EVIDENCE,
    AUDIO_NODE_TO_FEATURE,
    INTERMEDIATES,
    add_temporal_edges,
    audio_structure,
    fully_parameterized_dbn,
)
from repro.fusion.av_network import (
    AV_NODE_TO_FEATURE,
    AV_SUBEVENTS,
    HIGHLIGHT,
    av_dbn,
    av_node_to_feature,
)
from repro.fusion.discretize import DiscretizationConfig, hard_evidence, soft_evidence
from repro.fusion.evaluate import (
    PrecisionRecall,
    accumulate,
    classify_segments,
    extract_segments,
    segment_precision_recall,
)
from repro.fusion.features import (
    ALL_FEATURE_NAMES,
    AUDIO_FEATURES,
    VISUAL_FEATURES,
    FeatureSet,
    extract_feature_set,
)
from repro.fusion.pipeline import (
    AudioEvaluation,
    AudioExperiment,
    AvEvaluation,
    AvExperiment,
    RaceData,
    prepare_race,
)
from repro.fusion.train import (
    SEGMENT_SECONDS,
    TRAIN_SECONDS,
    annotation_tracks,
    train_audio_network,
    train_av_network,
    transfer_parameters,
)

__all__ = [
    "AUDIO_EVIDENCE", "AUDIO_NODE_TO_FEATURE", "INTERMEDIATES",
    "add_temporal_edges", "audio_structure", "fully_parameterized_dbn",
    "AV_NODE_TO_FEATURE", "AV_SUBEVENTS", "HIGHLIGHT", "av_dbn",
    "av_node_to_feature",
    "DiscretizationConfig", "hard_evidence", "soft_evidence",
    "PrecisionRecall", "accumulate", "classify_segments", "extract_segments",
    "segment_precision_recall",
    "ALL_FEATURE_NAMES", "AUDIO_FEATURES", "VISUAL_FEATURES", "FeatureSet",
    "extract_feature_set",
    "AudioEvaluation", "AudioExperiment", "AvEvaluation", "AvExperiment",
    "RaceData", "prepare_race",
    "SEGMENT_SECONDS", "TRAIN_SECONDS", "annotation_tracks",
    "train_audio_network", "train_av_network", "transfer_parameters",
]
