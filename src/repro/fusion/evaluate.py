"""Segment extraction and precision/recall scoring (§5.5).

"The precision and recall for highlights are calculated based on the
probability threshold of 0.5, and minimal time duration of 6 s. ... We
calculated the most probable candidates during each 'highlight' segment,
and pronounce it as a start, fly out, or passing based on values of
corresponding nodes. For segments longer than 15 s we performed this
operation every 5 s to enable multiple selections."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import InferenceError
from repro.synth.annotations import Interval, merge_intervals

__all__ = [
    "PrecisionRecall",
    "extract_segments",
    "accumulate",
    "segment_precision_recall",
    "classify_segments",
]

#: Paper constants.
POSTERIOR_THRESHOLD = 0.5
MIN_SEGMENT_SECONDS = 6.0
MULTI_LABEL_SEGMENT_SECONDS = 15.0
MULTI_LABEL_STRIDE_SECONDS = 5.0


@dataclass(frozen=True)
class PrecisionRecall:
    """Segment-level detection quality."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        total = self.true_positives + self.false_positives
        return self.true_positives / total if total else 0.0

    @property
    def recall(self) -> float:
        total = self.true_positives + self.false_negatives
        return self.true_positives / total if total else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def as_percents(self) -> tuple[float, float]:
        return round(self.precision * 100, 1), round(self.recall * 100, 1)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        p, r = self.as_percents()
        return f"precision {p}% recall {r}%"


def extract_segments(
    posterior: np.ndarray,
    threshold: float = POSTERIOR_THRESHOLD,
    min_duration: float = MIN_SEGMENT_SECONDS,
    step_seconds: float = 0.1,
    merge_gap: float = 2.0,
    label: str = "",
) -> list[Interval]:
    """Threshold a posterior series into segments.

    Args:
        posterior: P(query = active) per step.
        threshold: paper value 0.5.
        min_duration: paper value 6 s; shorter runs are dropped AFTER
            merging nearby runs (brief dips below threshold do not split a
            segment).
    """
    posterior = np.asarray(posterior)
    if posterior.ndim != 1:
        raise InferenceError("posterior series must be 1-D")
    above = posterior >= threshold
    raw: list[Interval] = []
    start: int | None = None
    for i, flag in enumerate(above):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            raw.append(Interval(start * step_seconds, i * step_seconds, label))
            start = None
    if start is not None:
        raw.append(Interval(start * step_seconds, above.shape[0] * step_seconds, label))
    merged = merge_intervals(raw, gap=merge_gap)
    return [s for s in merged if s.duration >= min_duration]


def accumulate(
    posterior: np.ndarray, window_seconds: float = 3.0, step_seconds: float = 0.1
) -> np.ndarray:
    """Temporal accumulation of a spiky BN output (Fig. 9a post-processing).

    "We had to process the results obtained from BNs since the output
    values cannot be directly employed ... we accumulated values of a query
    node over time to make a conclusion whether the announcer is excited."

    A moving average over ``window_seconds``.
    """
    width = max(int(window_seconds / step_seconds), 1)
    kernel = np.ones(width) / width
    return np.convolve(np.asarray(posterior, dtype=np.float64), kernel, mode="same")


def segment_precision_recall(
    detected: Sequence[Interval],
    truth: Sequence[Interval],
    min_overlap_seconds: float = 1.0,
) -> PrecisionRecall:
    """Event-level matching: a detection is correct if it overlaps a true
    segment by at least ``min_overlap_seconds``; a true segment is found if
    some detection overlaps it likewise."""
    def hits(a: Interval, b: Interval) -> bool:
        need = min(
            min_overlap_seconds, 0.5 * a.duration, 0.5 * b.duration
        )
        return a.overlap_seconds(b) >= max(need, 1e-9)

    tp = sum(1 for d in detected if any(hits(d, t) for t in truth))
    fp = len(detected) - tp
    fn = sum(1 for t in truth if not any(hits(d, t) for d in detected))
    return PrecisionRecall(tp, fp, fn)


def classify_segments(
    segments: Sequence[Interval],
    node_posteriors: Mapping[str, np.ndarray],
    step_seconds: float = 0.1,
    stride_seconds: float = MULTI_LABEL_STRIDE_SECONDS,
    long_segment_seconds: float = MULTI_LABEL_SEGMENT_SECONDS,
) -> dict[str, list[Interval]]:
    """Assign sub-event labels to highlight segments (the paper's rule).

    Each segment is pronounced the sub-event whose node posterior is the
    most probable within it; segments longer than 15 s are labelled every
    5 s so several events inside one long highlight are all recovered.
    "Most probable" is measured against each node's own race-wide baseline
    (nodes differ in prior activity, so raw posteriors are not comparable).

    Returns:
        label -> list of labelled intervals.
    """
    out: dict[str, list[Interval]] = {name: [] for name in node_posteriors}
    names = list(node_posteriors)
    baselines = {
        name: float(np.mean(series)) for name, series in node_posteriors.items()
    }
    for segment in segments:
        if segment.duration > long_segment_seconds:
            windows = []
            start = segment.start
            while start < segment.end:
                windows.append(
                    Interval(start, min(start + stride_seconds, segment.end))
                )
                start += stride_seconds
        else:
            windows = [segment]
        for window in windows:
            lo = int(window.start / step_seconds)
            hi = max(int(window.end / step_seconds), lo + 1)
            means = {
                name: float(np.mean(series[lo:hi])) - baselines[name]
                for name, series in node_posteriors.items()
                if series[lo:hi].size
            }
            if not means:
                continue
            best = max(names, key=lambda n: means.get(n, float("-inf")))
            out[best].append(Interval(window.start, window.end, best))
    return {name: merge_intervals(vals, gap=0.5) for name, vals in out.items()}
