"""The audio BN/DBN structures of Fig. 7 and Fig. 8.

Three one-slice structures for detecting Excited Announcer speech (EA) from
the audio evidence f1..f10:

* **Structure A — "fully parameterized"** (Fig. 7a): EA generates four
  hidden intermediate concepts — keyword activity (KW), energy level (EN),
  pitch level (PI), cepstral character (MF) — and each intermediate
  generates its evidence features.
* **Structure B — direct evidence influence** (Fig. 7b): the evidence
  nodes feed straight into the query node (diagnostic direction, no
  intermediates).
* **Structure C — input/output** (Fig. 7c): evidence feeds intermediates,
  intermediates feed EA.

Three inter-slice (temporal) wirings for the DBN counterparts:

* **V1** (Fig. 8, the paper's best): every hidden node keeps a self edge,
  the query node distributes to all non-observables in the next slice, and
  all non-observables feed the query node in the next slice.
* **V2**: "all non-observable nodes distribute evidence to the query node
  in the next time slice, and only the query node receives evidence from
  the previous time slice".
* **V3**: "the query node does not distribute evidence to all
  non-observable nodes, but only to the query node in the next time slice.
  All other non-observable nodes pass their values to the corresponding
  nodes and the query node in the next time slice."

The fully parameterized DBN of Table 1 is structure A wired with V1.
"""

from __future__ import annotations

import numpy as np

from repro.dbn.template import DbnTemplate
from repro.errors import GraphStructureError

__all__ = [
    "AUDIO_EVIDENCE",
    "AUDIO_NODE_TO_FEATURE",
    "EA",
    "INTERMEDIATES",
    "audio_structure",
    "add_temporal_edges",
    "fully_parameterized_dbn",
]

#: The query node: Excited Announcer.
EA = "EA"

#: Evidence node names are the paper's feature ids; the mapping to streams
#: is the identity.
AUDIO_EVIDENCE = tuple(f"f{i}" for i in range(1, 11))
AUDIO_NODE_TO_FEATURE = {name: name for name in AUDIO_EVIDENCE}

#: Hidden intermediates of structures A and C with their evidence groups.
INTERMEDIATES: dict[str, tuple[str, ...]] = {
    "KW": ("f1", "f2"),
    "EN": ("f3", "f4", "f5"),
    "PI": ("f6", "f7", "f8"),
    "MF": ("f9", "f10"),
}


def audio_structure(kind: str, ea_observed: bool = False) -> DbnTemplate:
    """Build one of the Fig. 7 one-slice structures (no temporal edges yet).

    Args:
        kind: "a" (fully parameterized), "b" (direct evidence influence),
            or "c" (input/output).
        ea_observed: mark EA observed — used during supervised training,
            where the annotated excitement track clamps the query node.
    """
    template = DbnTemplate()
    template.add_node(EA, 2, observed=ea_observed)
    for name in AUDIO_EVIDENCE:
        template.add_node(name, 2, observed=True)

    if kind == "a":
        for intermediate, evidence in INTERMEDIATES.items():
            template.add_node(intermediate, 2)
            template.add_intra_edge(EA, intermediate)
            for node in evidence:
                template.add_intra_edge(intermediate, node)
    elif kind == "b":
        for node in AUDIO_EVIDENCE:
            template.add_intra_edge(node, EA)
    elif kind == "c":
        for intermediate, evidence in INTERMEDIATES.items():
            template.add_node(intermediate, 2)
            for node in evidence:
                template.add_intra_edge(node, intermediate)
            template.add_intra_edge(intermediate, EA)
    else:
        raise GraphStructureError(f"unknown audio structure {kind!r}")
    return template


def add_temporal_edges(template: DbnTemplate, variant: str) -> DbnTemplate:
    """Wire one of the three §5.5 temporal-dependency variants (in place).

    Evidence nodes never receive temporal edges ("temporal dependencies
    between nodes from two consecutive time slices" concern the hidden
    part); the variant decides which hidden pairs connect.
    """
    hidden = template.hidden_nodes()
    others = [h for h in hidden if h != EA]
    if EA not in hidden:
        # EA was marked observed (supervised training); it still takes part
        # in the temporal wiring exactly as in the inference network.
        others = [h for h in hidden]
    if variant == "v1":
        for node in hidden:
            template.add_inter_edge(node, node)
        if EA in template.nodes():
            for node in others:
                template.add_inter_edge(EA, node)
                template.add_inter_edge(node, EA)
            template.add_inter_edge(EA, EA)
    elif variant == "v2":
        if EA in template.nodes():
            template.add_inter_edge(EA, EA)
            for node in others:
                template.add_inter_edge(node, EA)
    elif variant == "v3":
        for node in hidden:
            template.add_inter_edge(node, node)
        if EA in template.nodes():
            template.add_inter_edge(EA, EA)
            for node in others:
                template.add_inter_edge(node, EA)
    else:
        raise GraphStructureError(f"unknown temporal variant {variant!r}")
    return template


def fully_parameterized_dbn(
    ea_observed: bool = False,
    variant: str = "v1",
    seed: int = 0,
) -> DbnTemplate:
    """Structure A + Fig. 8 temporal edges, randomly initialized.

    This is "the most powerful DBN structure for detection of the
    emphasized announcer speech" the paper settles on.
    """
    template = audio_structure("a", ea_observed=ea_observed)
    add_temporal_edges(template, variant)
    template.randomize(np.random.default_rng(seed))
    return template
