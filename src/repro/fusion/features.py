"""Assembly of the full f1..f17 evidence block (§5.5).

"The features we extracted from a Formula 1 video are: keywords (f1),
pause rate (f2), average values of short time energy (f3), dynamic range of
short time energy (f4), maximum values of short time energy (f5), average
values of pitch (f6), dynamic range of pitch (f7), maximum values of pitch
(f8), average values of MFCCs (f9), maximum values of MFCCs (f10), part of
the race (f11), replay (f12), color difference (f13), semaphore (f14),
dust (f15), sand (f16), and motion (f17)."

"Feature values ... are represented as probabilistic values in range from
zero to one. Since the parameters are calculated for each 0.1 s, the length
of feature vectors is ten times longer than the duration of the video
measured in seconds."

Extraction is also where whole modalities die on real material — a muted
audio track, an undecodable video stream. ``extract_feature_set`` therefore
runs each modality chain under a fault hook and, in ``degrade`` mode,
records what was lost on the returned :class:`FeatureSet` instead of
aborting: downstream fusion masks the missing evidence nodes and answers
from the surviving modalities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.audio.excitement import extract_excitement_features
from repro.audio.keywords import (
    TV_NEWS_MODEL,
    AcousticModel,
    KeywordHit,
    KeywordSpotter,
    keyword_stream,
)
from repro.errors import SignalError
from repro.faults import resolve_injector
from repro.resilience import FailureReport
from repro.synth.grandprix import SyntheticRace
from repro.video.features import extract_visual_features

__all__ = [
    "FeatureSet",
    "ALL_FEATURE_NAMES",
    "AUDIO_FEATURES",
    "VISUAL_FEATURES",
    "MODALITY_OF_FEATURE",
    "extract_feature_set",
]

AUDIO_FEATURES = tuple(f"f{i}" for i in range(1, 11))
VISUAL_FEATURES = tuple(f"f{i}" for i in range(11, 18))
ALL_FEATURE_NAMES = AUDIO_FEATURES + VISUAL_FEATURES

#: Which acquisition chain produces each stream — f1 rides the audio track
#: but is a *text* modality (keyword spotting), f2-f10 are the excited-speech
#: block, f11-f17 (plus the auxiliary passing/dve streams) are visual.
MODALITY_OF_FEATURE: dict[str, str] = {
    "f1": "text",
    **{f"f{i}": "audio" for i in range(2, 11)},
    **{f"f{i}": "visual" for i in range(11, 18)},
    "passing": "visual",
    "dve": "visual",
}


@dataclass
class FeatureSet:
    """All evidence streams of one race at 10 Hz, each in [0, 1].

    Attributes:
        race_name: source race.
        streams: "f1".."f17" (plus auxiliary "passing", "dve") -> (n,).
        keyword_hits: the raw keyword-spotter output (f1's source).
        dropped: stream name -> reason, for streams that could not be
            extracted (modality failure or injected loss).
        failures: structured records of the faults behind the drops.
    """

    race_name: str
    streams: dict[str, np.ndarray]
    keyword_hits: list[KeywordHit] = field(default_factory=list)
    dropped: dict[str, str] = field(default_factory=dict)
    failures: list[FailureReport] = field(default_factory=list)

    @property
    def n_steps(self) -> int:
        return next(iter(self.streams.values())).shape[0]

    @property
    def degraded(self) -> bool:
        return bool(self.dropped)

    def missing_modalities(self) -> list[str]:
        """Modalities with no surviving stream at all."""
        alive = {MODALITY_OF_FEATURE.get(name) for name in self.streams}
        lost = {
            MODALITY_OF_FEATURE.get(name, "unknown") for name in self.dropped
        }
        return sorted(lost - alive)

    def stream(self, name: str) -> np.ndarray:
        if name not in self.streams:
            if name in self.dropped:
                raise SignalError(
                    f"feature stream {name!r} was dropped: {self.dropped[name]}"
                )
            raise SignalError(f"no feature stream {name!r}")
        return self.streams[name]

    def matrix(self, names: tuple[str, ...] = ALL_FEATURE_NAMES) -> np.ndarray:
        return np.stack([self.stream(n) for n in names], axis=1)


def extract_feature_set(
    race: SyntheticRace,
    acoustic_model: AcousticModel = TV_NEWS_MODEL,
    spotter: KeywordSpotter | None = None,
    lattice_seed: int = 17,
    faults=None,
    on_error: str = "raise",
) -> FeatureSet:
    """Run the complete §5.2-§5.4 extraction chain on one race.

    The audio chain (endpoint detection, excited-speech features, keyword
    spotting) and the visual chain (shot/DVE/semaphore/dust/sand/motion)
    produce streams that are truncated to a common length.

    With ``on_error="degrade"`` a failing modality chain is dropped and
    recorded on ``FeatureSet.dropped`` / ``FeatureSet.failures`` instead of
    raising; per-stream ``drop``/``corrupt`` faults from ``faults`` (or the
    global injector) are applied at site ``extract.stream:<name>``.
    """
    if on_error not in ("raise", "degrade"):
        raise SignalError(
            f"on_error must be 'raise' or 'degrade', got {on_error!r}"
        )
    injector = resolve_injector(faults)
    n_target = int(race.duration * 10)
    dropped: dict[str, str] = {}
    failures: list[FailureReport] = []

    def chain(site, names, fn):
        """Run one modality chain; on degrade-mode failure drop its streams."""
        try:
            injector.on_call(site)
            return fn()
        except Exception as exc:  # noqa: BLE001 - policy decides
            if on_error != "degrade":
                raise
            reason = f"{type(exc).__name__}: {exc}"
            for name in names:
                dropped[name] = reason
            failures.append(
                FailureReport.from_exception(
                    site, exc, action="dropped", detail=f"streams {list(names)}"
                )
            )
            return None

    def spot_keywords():
        engine = spotter or KeywordSpotter()
        rng = np.random.default_rng(lattice_seed + race.spec.seed)
        lattice = acoustic_model.decode(race.audio.phone_slots, rng)
        found = engine.spot(lattice)
        return found, keyword_stream(found, n_target)

    audio_features = chain(
        "extract.audio",
        AUDIO_FEATURES[1:],
        lambda: extract_excitement_features(race.signal),
    )
    visual_features = chain(
        "extract.visual",
        VISUAL_FEATURES + ("passing", "dve"),
        lambda: extract_visual_features(race.video),
    )
    keywords = chain("extract.keywords", ("f1",), spot_keywords)

    hits: list[KeywordHit] = []
    streams: dict[str, np.ndarray] = {}
    if keywords is not None:
        hits, f1 = keywords
        streams["f1"] = f1
    if audio_features is not None:
        streams.update(audio_features.streams)
    if visual_features is not None:
        streams.update(visual_features.streams)

    # Per-stream faults: whole-stream loss and in-band corruption.
    if injector.enabled:
        for name in sorted(streams):
            site = f"extract.stream:{name}"
            if injector.should_drop(site):
                dropped[name] = "stream dropped by fault injection"
                failures.append(
                    FailureReport(
                        site=site,
                        error="InjectedFault",
                        message="stream dropped by fault injection",
                        transient=False,
                        action="dropped",
                    )
                )
                del streams[name]
                continue
            values = streams[name]
            corrupted = injector.corrupt_array(site, values)
            if corrupted is not values:
                streams[name] = np.clip(corrupted, 0.0, 1.0)

    if not streams:
        raise SignalError(
            f"every modality of race {race.name!r} failed extraction: "
            f"{sorted(set(dropped.values()))}"
        )
    n = min(min(v.shape[0] for v in streams.values()), n_target)
    streams = {name: values[:n] for name, values in streams.items()}
    return FeatureSet(race.name, streams, hits, dropped=dropped, failures=failures)
