"""Assembly of the full f1..f17 evidence block (§5.5).

"The features we extracted from a Formula 1 video are: keywords (f1),
pause rate (f2), average values of short time energy (f3), dynamic range of
short time energy (f4), maximum values of short time energy (f5), average
values of pitch (f6), dynamic range of pitch (f7), maximum values of pitch
(f8), average values of MFCCs (f9), maximum values of MFCCs (f10), part of
the race (f11), replay (f12), color difference (f13), semaphore (f14),
dust (f15), sand (f16), and motion (f17)."

"Feature values ... are represented as probabilistic values in range from
zero to one. Since the parameters are calculated for each 0.1 s, the length
of feature vectors is ten times longer than the duration of the video
measured in seconds."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.audio.excitement import extract_excitement_features
from repro.audio.keywords import (
    TV_NEWS_MODEL,
    AcousticModel,
    KeywordHit,
    KeywordSpotter,
    keyword_stream,
)
from repro.errors import SignalError
from repro.synth.grandprix import SyntheticRace
from repro.video.features import extract_visual_features

__all__ = [
    "FeatureSet",
    "ALL_FEATURE_NAMES",
    "AUDIO_FEATURES",
    "VISUAL_FEATURES",
    "extract_feature_set",
]

AUDIO_FEATURES = tuple(f"f{i}" for i in range(1, 11))
VISUAL_FEATURES = tuple(f"f{i}" for i in range(11, 18))
ALL_FEATURE_NAMES = AUDIO_FEATURES + VISUAL_FEATURES


@dataclass
class FeatureSet:
    """All evidence streams of one race at 10 Hz, each in [0, 1].

    Attributes:
        race_name: source race.
        streams: "f1".."f17" (plus auxiliary "passing", "dve") -> (n,).
        keyword_hits: the raw keyword-spotter output (f1's source).
    """

    race_name: str
    streams: dict[str, np.ndarray]
    keyword_hits: list[KeywordHit] = field(default_factory=list)

    @property
    def n_steps(self) -> int:
        return next(iter(self.streams.values())).shape[0]

    def stream(self, name: str) -> np.ndarray:
        if name not in self.streams:
            raise SignalError(f"no feature stream {name!r}")
        return self.streams[name]

    def matrix(self, names: tuple[str, ...] = ALL_FEATURE_NAMES) -> np.ndarray:
        return np.stack([self.stream(n) for n in names], axis=1)


def extract_feature_set(
    race: SyntheticRace,
    acoustic_model: AcousticModel = TV_NEWS_MODEL,
    spotter: KeywordSpotter | None = None,
    lattice_seed: int = 17,
) -> FeatureSet:
    """Run the complete §5.2-§5.4 extraction chain on one race.

    The audio chain (endpoint detection, excited-speech features, keyword
    spotting) and the visual chain (shot/DVE/semaphore/dust/sand/motion)
    produce streams that are truncated to a common length.
    """
    n_target = int(race.duration * 10)

    audio_features = extract_excitement_features(race.signal)
    visual_features = extract_visual_features(race.video)

    spotter = spotter or KeywordSpotter()
    rng = np.random.default_rng(lattice_seed + race.spec.seed)
    lattice = acoustic_model.decode(race.audio.phone_slots, rng)
    hits = spotter.spot(lattice)
    f1 = keyword_stream(hits, n_target)

    streams: dict[str, np.ndarray] = {"f1": f1}
    for name, values in audio_features.streams.items():
        streams[name] = values
    for name, values in visual_features.streams.items():
        streams[name] = values

    n = min(min(v.shape[0] for v in streams.values()), n_target)
    streams = {name: values[:n] for name, values in streams.items()}
    return FeatureSet(race.name, streams, hits)
