"""Training the fusion networks on annotated race segments.

The paper "learned the BN parameters on a sequence of 300 s, consisting of
3000 evidence values ... For the DBNs, we used the same video sequence of
300 s, which was divided into 12 segments with 25 s duration each" and used
EM throughout (§4, §5.5). Query/concept nodes are clamped to the annotation
tracks during training (supervised EM: the intermediates stay hidden), then
the learned tables are transferred into the inference network where the
concepts are hidden again.
"""

from __future__ import annotations

import numpy as np

from repro.dbn.evidence import EvidenceSequence
from repro.dbn.learn import DbnEmResult, dbn_em
from repro.dbn.template import DbnTemplate
from repro.errors import LearningError
from repro.fusion.audio_networks import (
    AUDIO_NODE_TO_FEATURE,
    audio_structure,
    add_temporal_edges,
)
from repro.fusion.av_network import av_dbn, av_node_to_feature
from repro.fusion.discretize import DiscretizationConfig, hard_evidence
from repro.fusion.features import FeatureSet
from repro.synth.annotations import GroundTruth, raster

__all__ = [
    "transfer_parameters",
    "annotation_tracks",
    "positive_initialization",
    "train_audio_network",
    "train_av_network",
    "TRAIN_SECONDS",
    "SEGMENT_SECONDS",
]


def positive_initialization(
    template: DbnTemplate,
    rng: np.random.Generator,
    base: float = 0.15,
    gain: float = 0.6,
    jitter: float = 0.08,
) -> DbnTemplate:
    """Initialize CPDs so state 1 of every node correlates positively with
    state 1 of its parents.

    EM only finds a local optimum; from a fully random start the hidden
    intermediate concepts frequently come out inverted or decoupled from
    the query node. Seeding every table with a weak monotone
    parents-excite-child trend (plus jitter to break symmetry) puts the
    search in the basin where "active" means the same thing everywhere —
    the standard practitioner's initialization for this kind of network.

    A node's own previous-slice copy gets three times the weight of other
    parents: states persist across a 0.1 s step far more than they respond
    to any single cross edge, and encoding that in the prior is what makes
    the richly connected DBN output smooth (Fig. 9b) instead of spiky.
    """
    for name in template.nodes():
        for setter, parents in (
            (template.set_initial_cpd, template.initial_parents(name)),
            (template.set_transition_cpd, template.transition_parents(name)),
        ):
            weights = np.array(
                [3.0 if p == f"{name}[t-1]" else 1.0 for p in parents]
            )
            cards = [2] * len(parents)
            shape = (2, *cards)
            table = np.zeros(shape)
            for index in np.ndindex(*cards) if cards else [()]:
                if index:
                    active = float(np.dot(weights, index) / weights.sum())
                else:
                    active = 0.0
                p1 = base + gain * active + rng.uniform(-jitter, jitter)
                p1 = float(np.clip(p1, 0.02, 0.98))
                table[(1, *index)] = p1
                table[(0, *index)] = 1.0 - p1
            setter(name, table)
    return template

#: Paper training regimen.
TRAIN_SECONDS = 300.0
SEGMENT_SECONDS = 25.0


def transfer_parameters(source: DbnTemplate, target: DbnTemplate) -> DbnTemplate:
    """Copy learned CPD tables from a training template into an inference
    template with identical structure (only observed-flags may differ)."""
    if sorted(source.nodes()) != sorted(target.nodes()):
        raise LearningError(
            "templates differ in node set; cannot transfer parameters"
        )
    for name in source.nodes():
        target.set_initial_cpd(name, source.initial_cpd(name).table.copy())
        target.set_transition_cpd(name, source.transition_cpd(name).table.copy())
    target.validate()
    return target


def annotation_tracks(truth: GroundTruth, n_steps: int) -> dict[str, np.ndarray]:
    """Rasterized concept tracks used to clamp nodes during training."""
    return {
        "EA": raster(truth.excited_speech, n_steps).astype(np.int64),
        "Highlight": raster(truth.highlights, n_steps).astype(np.int64),
        "Start": raster(truth.starts, n_steps).astype(np.int64),
        "FlyOut": raster(truth.fly_outs, n_steps).astype(np.int64),
        "Passing": raster(truth.passings, n_steps).astype(np.int64),
    }


def _training_segments(
    evidence: EvidenceSequence,
    train_seconds: float,
    segment_seconds: float | None,
) -> list[EvidenceSequence]:
    train_steps = min(int(train_seconds * 10), len(evidence))
    window = evidence.slice(0, train_steps)
    if segment_seconds is None:
        return [window]
    return window.segments(int(segment_seconds * 10))


def train_audio_network(
    features: FeatureSet,
    truth: GroundTruth,
    structure: str = "a",
    temporal: str | None = "v1",
    train_seconds: float = TRAIN_SECONDS,
    segment_seconds: float | None = SEGMENT_SECONDS,
    seed: int = 0,
    max_iterations: int = 12,
    config: DiscretizationConfig | None = None,
) -> tuple[DbnTemplate, DbnEmResult]:
    """Train one audio network (BN when ``temporal`` is None, DBN else).

    Returns:
        (inference_template, em_result) — the template has EA hidden and
        the learned parameters installed.
    """
    trainer = audio_structure(structure, ea_observed=True)
    if temporal is not None:
        add_temporal_edges(trainer, temporal)
    positive_initialization(trainer, np.random.default_rng(seed))

    tracks = annotation_tracks(truth, features.n_steps)
    evidence = hard_evidence(
        trainer,
        features,
        AUDIO_NODE_TO_FEATURE,
        config=config,
        extra_hard={"EA": tracks["EA"]},
    )
    segments = _training_segments(evidence, train_seconds, segment_seconds)
    result = dbn_em(
        trainer, segments, max_iterations=max_iterations, prior_strength=2.0
    )

    inference = audio_structure(structure, ea_observed=False)
    if temporal is not None:
        add_temporal_edges(inference, temporal)
    transfer_parameters(result.template, inference)
    return inference, result


def train_av_network(
    features: FeatureSet,
    truth: GroundTruth,
    include_passing: bool = True,
    train_segments: int = 6,
    segment_seconds: float = 50.0,
    seed: int = 0,
    max_iterations: int = 8,
    config: DiscretizationConfig | None = None,
) -> tuple[DbnTemplate, DbnEmResult]:
    """Train the audio-visual DBN (Fig. 10/11).

    "We employed the learning algorithm on 6 sequences with 50 s duration
    each" — but unlike the paper we draw the six segments from windows
    centred on annotated events, which a human annotator would also pick
    (purely leading race footage contains no fly-out to learn from).
    """
    concepts = ("Highlight", "EA", "Start", "FlyOut") + (
        ("Passing",) if include_passing else ()
    )
    trainer = av_dbn(include_passing, observed_hidden=concepts, seed=seed)
    positive_initialization(trainer, np.random.default_rng(seed))
    tracks = annotation_tracks(truth, features.n_steps)
    evidence = hard_evidence(
        trainer,
        features,
        av_node_to_feature(include_passing),
        config=config,
        extra_hard={name: tracks[name] for name in concepts},
    )
    segments = _event_windows(
        evidence, truth, n_windows=train_segments, window_steps=int(segment_seconds * 10)
    )
    result = dbn_em(
        trainer, segments, max_iterations=max_iterations, prior_strength=2.0
    )

    inference = av_dbn(include_passing, observed_hidden=(), seed=seed)
    transfer_parameters(result.template, inference)
    return inference, result


def _event_windows(
    evidence: EvidenceSequence,
    truth: GroundTruth,
    n_windows: int,
    window_steps: int,
) -> list[EvidenceSequence]:
    """Training windows centred on annotated events, kind-diverse.

    The six windows cover every event kind at least once when the race
    offers it (a window bank with no fly-out teaches nothing about
    fly-outs), then fill up with further highlights in race order.
    """
    n = len(evidence)

    def anchor(interval) -> int:
        center = int(10 * (interval.start + interval.end) / 2)
        return max(center - window_steps // 2, 0)

    anchors: list[int] = [0]
    for group in (truth.starts, truth.fly_outs, truth.passings):
        if group:
            anchors.append(anchor(group[0]))
    for interval in truth.highlights:
        candidate = anchor(interval)
        if candidate not in anchors:
            anchors.append(candidate)
    out: list[EvidenceSequence] = []
    for start in anchors[:n_windows]:
        stop = min(start + window_steps, n)
        if stop - start >= window_steps // 2:
            out.append(evidence.slice(start, stop))
    if not out:
        raise LearningError("race too short to cut any training window")
    return out
