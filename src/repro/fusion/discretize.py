"""Discretization of [0, 1] feature streams into evidence states.

The DBN evidence nodes are binary; a feature stream enters either as hard
states (thresholded — used for EM training, where exact expected counts
need discrete evidence) or as soft likelihood vectors (the probabilistic
values of the paper, used at query time). Both paths share the same
per-feature thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dbn.evidence import EvidenceSequence
from repro.dbn.template import DbnTemplate
from repro.errors import SignalError
from repro.fusion.features import FeatureSet

__all__ = [
    "DiscretizationConfig",
    "KNOWN_FEATURES",
    "hard_evidence",
    "soft_evidence",
]

#: Fixed binarization thresholds for the physically calibrated streams
#: (visual color/shape fractions, replay indicator, keyword scores).
_FIXED_THRESHOLDS = {
    "f1": 0.30,
    "f11": 0.10,
    "f12": 0.50,
    "f13": 0.30,
    "f14": 0.40,
    "f15": 0.45,
    "f16": 0.45,
    "f17": 0.45,
    "passing": 0.10,
}

#: Streams cut adaptively at mean + k*std of the race's own distribution —
#: the audio excitement block, whose absolute level depends on announcer,
#: gain, and crowd (the paper likewise tuned "appropriate thresholds" per
#: setting).
_ADAPTIVE_FEATURES = {f"f{i}" for i in range(2, 11)}

#: Every feature stream with a defined discretization (fixed or adaptive).
#: The :mod:`repro.check.modelcheck` linter flags evidence-node mappings to
#: features outside this set, since they would silently binarize at 0.5.
KNOWN_FEATURES = frozenset(_FIXED_THRESHOLDS) | frozenset(_ADAPTIVE_FEATURES)


@dataclass(frozen=True)
class DiscretizationConfig:
    """Thresholds used to binarize evidence streams."""

    thresholds: dict[str, float] = field(default_factory=dict)
    #: Standard deviations above the mean for adaptive (audio) features.
    adaptive_sigma: float = 1.0
    #: Soft-evidence sharpening exponent: likelihoods are
    #: ``[1-v, v] ** gamma`` renormalized; 1.0 = linear.
    gamma: float = 1.0

    def cut(self, name: str, values: np.ndarray) -> float:
        """The binarization threshold for one stream."""
        if name in self.thresholds:
            return self.thresholds[name]
        if name in _ADAPTIVE_FEATURES:
            level = float(values.mean() + self.adaptive_sigma * values.std())
            return float(np.clip(level, 0.02, 0.95))
        if name in _FIXED_THRESHOLDS:
            return _FIXED_THRESHOLDS[name]
        return 0.5

    def threshold(self, name: str) -> float:
        """Fixed threshold lookup (adaptive features raise)."""
        if name in self.thresholds:
            return self.thresholds[name]
        if name in _ADAPTIVE_FEATURES:
            raise SignalError(
                f"feature {name!r} uses an adaptive threshold; call cut()"
            )
        return _FIXED_THRESHOLDS.get(name, 0.5)


def hard_evidence(
    template: DbnTemplate,
    features: FeatureSet,
    node_to_feature: dict[str, str],
    config: DiscretizationConfig | None = None,
    extra_hard: dict[str, np.ndarray] | None = None,
    allow_missing: bool = False,
) -> EvidenceSequence:
    """Thresholded evidence for every observed node of a template.

    Args:
        template: the network the evidence is for.
        features: extracted streams.
        node_to_feature: observed-node name -> feature-stream name.
        config: thresholds.
        extra_hard: pre-discretized sequences for observed nodes NOT driven
            by feature streams (e.g. a labelled query node during training).
        allow_missing: when a mapped feature stream is absent (its modality
            was dropped), enter the node as uninformative all-ones soft
            evidence and record it on ``EvidenceSequence.masked`` instead
            of raising — the graceful-degradation path.
    """
    config = config or DiscretizationConfig()
    extra = dict(extra_hard or {})
    hard: dict[str, np.ndarray] = {}
    masked: list[str] = []
    lengths = [features.n_steps] + [v.shape[0] for v in extra.values()]
    n = min(lengths)
    for node in template.observed_nodes():
        if node in extra:
            hard[node] = np.asarray(extra[node], dtype=np.int64)[:n]
            continue
        if node not in node_to_feature:
            raise SignalError(f"no feature mapped to observed node {node!r}")
        feature = node_to_feature[node]
        if feature not in features.streams:
            if not allow_missing:
                reason = features.dropped.get(feature, "not extracted")
                raise SignalError(
                    f"feature {feature!r} for observed node {node!r} is "
                    f"unavailable ({reason}); pass allow_missing=True to "
                    f"mask it and answer from the surviving modalities"
                )
            masked.append(node)
            continue
        full = features.stream(feature)
        cut = config.cut(feature, full)
        hard[node] = (full[:n] >= cut).astype(np.int64)
    soft = {
        node: np.ones((n, template.cardinality(node))) for node in masked
    }
    return EvidenceSequence(template, hard=hard, soft=soft, masked=masked)


def soft_evidence(
    template: DbnTemplate,
    features: FeatureSet,
    node_to_feature: dict[str, str],
    config: DiscretizationConfig | None = None,
    allow_missing: bool = False,
) -> EvidenceSequence:
    """Virtual-evidence sequences: likelihood [1 - v, v] per step.

    This is the direct use of the paper's probabilistic feature values:
    a feature at 0.8 pushes the evidence node toward its active state with
    weight 0.8 without hard-committing. With ``allow_missing=True`` nodes
    whose feature stream was dropped enter as all-ones likelihoods and are
    listed on ``EvidenceSequence.masked``.
    """
    config = config or DiscretizationConfig()
    soft: dict[str, np.ndarray] = {}
    masked: list[str] = []
    n = features.n_steps
    for node in template.observed_nodes():
        if node not in node_to_feature:
            raise SignalError(f"no feature mapped to observed node {node!r}")
        feature = node_to_feature[node]
        if feature not in features.streams:
            if not allow_missing:
                reason = features.dropped.get(feature, "not extracted")
                raise SignalError(
                    f"feature {feature!r} for observed node {node!r} is "
                    f"unavailable ({reason}); pass allow_missing=True to "
                    f"mask it and answer from the surviving modalities"
                )
            masked.append(node)
            soft[node] = np.ones((n, template.cardinality(node)))
            continue
        values = np.clip(features.stream(feature)[:n], 0.0, 1.0)
        likelihood = np.stack([1.0 - values, values], axis=1)
        if config.gamma != 1.0:
            likelihood = likelihood**config.gamma
            likelihood /= likelihood.sum(axis=1, keepdims=True)
        soft[node] = likelihood
    return EvidenceSequence(template, soft=soft, masked=masked)
