"""The audio-visual DBN of Fig. 10 / Fig. 11 (§5.5).

One slice: the **Highlight** query node generates four sub-event concepts —
Excited Announcer (EA), Start, Fly Out, and (optionally) Passing — each of
which generates its evidence:

* EA -> the audio evidence f1..f10 (directly; the audio sub-network's
  conclusion feeds the highlight decision),
* Start -> semaphore f14, motion f17, part-of-race f11,
* Fly Out -> dust f15, sand f16,
* Passing -> color difference f13 and motion f17 (so f17 has two hidden
  parents when the passing sub-network is present),
* Highlight -> replay f12 (interesting events get replayed).

Temporal wiring (Fig. 11): every hidden node keeps a self edge and the
Highlight node distributes to each sub-event in the next slice.

"Therefore, we simplified the overall audio-visual network, and excluded
the 'passing' sub-network" — :func:`av_dbn` takes ``include_passing``.
"""

from __future__ import annotations

import numpy as np

from repro.dbn.template import DbnTemplate

__all__ = [
    "HIGHLIGHT",
    "AV_SUBEVENTS",
    "AV_NODE_TO_FEATURE",
    "av_dbn",
    "av_node_to_feature",
]

HIGHLIGHT = "Highlight"
EA = "EA"
START = "Start"
FLY_OUT = "FlyOut"
PASSING = "Passing"

AV_SUBEVENTS = (EA, START, FLY_OUT, PASSING)

#: Evidence wiring: node -> (feature stream, hidden parents).
_EVIDENCE: dict[str, tuple[str, tuple[str, ...]]] = {
    **{f"f{i}": (f"f{i}", (EA,)) for i in range(1, 11)},
    "f11": ("f11", (START,)),
    "f12": ("f12", (HIGHLIGHT,)),
    # f13 is the raw color difference — "we employed very general and less
    # powerful video cues for ... especially passing" (§5.5): its
    # statistics shift with camera work, which is exactly why the passing
    # sub-network transfers badly from the German GP to the other races.
    "f13": ("f13", (PASSING,)),
    "f14": ("f14", (START,)),
    "f15": ("f15", (FLY_OUT,)),
    "f16": ("f16", (FLY_OUT,)),
    "f17": ("f17", (START, PASSING)),
}

AV_NODE_TO_FEATURE = {node: feature for node, (feature, _) in _EVIDENCE.items()}


def av_node_to_feature(include_passing: bool = True) -> dict[str, str]:
    """Observed-node -> feature-stream mapping for the chosen variant."""
    mapping = {}
    for node, (feature, parents) in _EVIDENCE.items():
        if not include_passing and parents == (PASSING,):
            continue
        mapping[node] = feature
    return mapping


def av_dbn(
    include_passing: bool = True,
    observed_hidden: tuple[str, ...] = (),
    seed: int = 0,
) -> DbnTemplate:
    """Build the audio-visual DBN template, randomly initialized.

    Args:
        include_passing: keep or drop the passing sub-network.
        observed_hidden: concept nodes to mark observed — supervised
            training clamps (Highlight, EA, Start, FlyOut, Passing) to the
            annotation tracks.
        seed: parameter-initialization seed.
    """
    template = DbnTemplate()
    concepts = [HIGHLIGHT, EA, START, FLY_OUT] + (
        [PASSING] if include_passing else []
    )
    for concept in concepts:
        template.add_node(concept, 2, observed=concept in observed_hidden)
    for concept in concepts[1:]:
        template.add_intra_edge(HIGHLIGHT, concept)

    for node, (feature, parents) in _EVIDENCE.items():
        active_parents = [p for p in parents if p in concepts]
        if not active_parents:
            continue  # passing-only evidence in the simplified network
        template.add_node(node, 2, observed=True)
        for parent in active_parents:
            template.add_intra_edge(parent, node)

    # Fig. 11 temporal wiring: self edges plus Highlight -> sub-events.
    for concept in concepts:
        template.add_inter_edge(concept, concept)
    for concept in concepts[1:]:
        template.add_inter_edge(HIGHLIGHT, concept)

    template.randomize(np.random.default_rng(seed))
    return template
